//! # self-aware-systems
//!
//! Umbrella crate for the reproduction of *Lewis, "Self-aware
//! Computing Systems: From Psychology to Engineering" (DATE 2017)*.
//!
//! The workspace contains:
//!
//! * [`selfaware`] — the computational self-awareness framework (the
//!   paper's contribution): levels, self-models, goals,
//!   meta-self-awareness, attention, self-explanation, collective
//!   awareness;
//! * [`simkernel`] — the deterministic simulation substrate;
//! * [`workloads`] — workload and disturbance generators;
//! * the four case-study simulators from the paper's narrative:
//!   [`camnet`] (smart camera networks), [`cloudsim`] (volunteer
//!   clouds), [`multicore`] (heterogeneous multi-cores), [`cpn`]
//!   (cognitive packet networks).
//!
//! Start with `examples/quickstart.rs`, then see `EXPERIMENTS.md` for
//! the full evaluation and `cargo bench` to regenerate every table and
//! figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use camnet;
pub use cloudsim;
pub use cpn;
pub use multicore;
pub use selfaware;
pub use simkernel;
pub use workloads;
