//! Derive macros for the offline `serde` stand-in.
//!
//! The stand-in's `Serialize`/`Deserialize` are marker traits, so the
//! derives only need the item's name and generic parameters. Parsing is
//! done directly on the token stream (no `syn`/`quote`, which are not
//! in the offline dependency set).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The item's name plus raw generic parameter text, e.g.
/// `("Foo", "<T: Clone>", "<T>")` for `struct Foo<T: Clone>`.
struct ItemHead {
    name: String,
    /// Generic parameter list with bounds, including angle brackets
    /// (empty string when non-generic).
    params: String,
    /// Generic argument list without bounds, e.g. `<'a, T>`.
    args: String,
}

fn parse_head(input: TokenStream) -> ItemHead {
    let mut iter = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                // The attribute body group.
                iter.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                // `pub(crate)` etc.
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => break,
        }
    }
    match iter.next() {
        Some(TokenTree::Ident(kw))
            if matches!(kw.to_string().as_str(), "struct" | "enum" | "union") => {}
        other => panic!("serde derive: expected struct/enum/union, found {other:?}"),
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected item name, found {other:?}"),
    };
    // Collect generic parameters if present: tokens between the
    // top-level `<` and its matching `>`.
    let mut params = String::new();
    let mut args = String::new();
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            iter.next();
            let mut depth = 1usize;
            let mut tokens: Vec<TokenTree> = Vec::new();
            for tt in iter.by_ref() {
                if let TokenTree::Punct(ref q) = tt {
                    match q.as_char() {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                tokens.push(tt);
            }
            let rendered: String = tokens
                .iter()
                .map(std::string::ToString::to_string)
                .collect::<Vec<_>>()
                .join(" ");
            params = format!("<{rendered}>");
            args = format!("<{}>", strip_bounds(&tokens));
        }
    }
    ItemHead { name, params, args }
}

/// Renders generic parameters without their bounds or defaults:
/// `'a , T : Clone , const N : usize` → `'a, T, N`.
fn strip_bounds(tokens: &[TokenTree]) -> String {
    let mut out: Vec<String> = Vec::new();
    let mut depth = 0usize;
    let mut take_next = true;
    let mut iter = tokens.iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => depth += 1,
                '>' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => take_next = true,
                ':' | '=' if depth == 0 => take_next = false,
                '\'' if depth == 0 && take_next => {
                    // Lifetime: the quote plus following ident.
                    if let Some(TokenTree::Ident(id)) = iter.peek() {
                        out.push(format!("'{id}"));
                        iter.next();
                        take_next = false;
                    }
                }
                _ => {}
            },
            TokenTree::Ident(id) if depth == 0 && take_next => {
                if id.to_string() == "const" {
                    continue;
                }
                out.push(id.to_string());
                take_next = false;
            }
            _ => {}
        }
    }
    out.join(", ")
}

/// Derives the stand-in `serde::Serialize` marker.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let head = parse_head(input);
    let ItemHead { name, params, args } = head;
    format!("impl {params} ::serde::Serialize for {name} {args} {{}}")
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the stand-in `serde::Deserialize` marker.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let head = parse_head(input);
    let ItemHead { name, params, args } = head;
    let impl_params = if params.is_empty() {
        "<'de>".to_string()
    } else {
        // Splice 'de in front of the existing parameter list.
        format!("<'de, {}", &params[1..])
    };
    format!("impl {impl_params} ::serde::Deserialize<'de> for {name} {args} {{}}")
        .parse()
        .expect("generated Deserialize impl parses")
}
