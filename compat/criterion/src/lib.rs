//! Offline micro-benchmark harness.
//!
//! Provides the `criterion` API subset the workspace's benches use —
//! [`Criterion`], benchmark groups, [`Bencher::iter`] /
//! [`Bencher::iter_batched_ref`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — backed by a
//! simple warm-up + timed-sampling loop over `std::time::Instant`.
//! Reported numbers are median ns/iteration with min/max across
//! samples, printed in a `criterion`-like format.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are sized; accepted for API parity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// A small per-batch input (batches of many iterations).
    SmallInput,
    /// A large per-batch input (fewer iterations per batch).
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Benchmark driver: collects timing samples for one routine.
pub struct Bencher<'a> {
    config: &'a Config,
    /// Median, min, max ns/iter — filled by an `iter*` call.
    result: Option<Sample>,
}

#[derive(Debug, Clone, Copy)]
struct Sample {
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
}

#[derive(Debug, Clone, Copy)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

fn summarize(mut per_iter_ns: Vec<f64>) -> Sample {
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let median_ns = per_iter_ns[per_iter_ns.len() / 2];
    Sample {
        median_ns,
        min_ns: per_iter_ns[0],
        max_ns: *per_iter_ns.last().expect("non-empty samples"),
    }
}

impl Bencher<'_> {
    /// Benchmarks `routine`, timing batches sized so one batch is long
    /// enough for the clock to resolve.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, also calibrating the per-batch iteration count.
        let warm_start = Instant::now();
        let mut iters_per_batch = 1u64;
        while warm_start.elapsed() < self.config.warm_up_time {
            let t = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(routine());
            }
            // Aim for batches of roughly 1 ms.
            if t.elapsed() < Duration::from_millis(1) {
                iters_per_batch = iters_per_batch.saturating_mul(2);
            }
        }
        let budget_per_sample = self.config.measurement_time / self.config.sample_size as u32;
        let mut samples = Vec::with_capacity(self.config.sample_size);
        for _ in 0..self.config.sample_size {
            let sample_start = Instant::now();
            let mut iters = 0u64;
            while sample_start.elapsed() < budget_per_sample {
                for _ in 0..iters_per_batch {
                    black_box(routine());
                }
                iters += iters_per_batch;
            }
            samples.push(sample_start.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.result = Some(summarize(samples));
    }

    /// Benchmarks `routine` against inputs created by `setup`; setup
    /// time is excluded from the measurement.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut input = setup();
        let warm_start = Instant::now();
        let mut iters_per_batch = 1u64;
        while warm_start.elapsed() < self.config.warm_up_time {
            let t = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(routine(&mut input));
            }
            if t.elapsed() < Duration::from_millis(1) {
                iters_per_batch = iters_per_batch.saturating_mul(2);
            }
        }
        let budget_per_sample = self.config.measurement_time / self.config.sample_size as u32;
        let mut samples = Vec::with_capacity(self.config.sample_size);
        for _ in 0..self.config.sample_size {
            let mut fresh = setup();
            let sample_start = Instant::now();
            let mut iters = 0u64;
            while sample_start.elapsed() < budget_per_sample {
                for _ in 0..iters_per_batch {
                    black_box(routine(&mut fresh));
                }
                iters += iters_per_batch;
            }
            samples.push(sample_start.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.result = Some(summarize(samples));
    }
}

fn format_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Top-level benchmark registry and configuration.
#[derive(Debug, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Sets the total measurement budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// Sets the warm-up duration per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(&self.config, id, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(config: &Config, id: &str, mut f: F) {
    let mut bencher = Bencher {
        config,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some(s) => println!(
            "{id:<40} time:   [{} {} {}]",
            format_time(s.min_ns),
            format_time(s.median_ns),
            format_time(s.max_ns),
        ),
        None => println!("{id:<40} (no measurement taken)"),
    }
}

/// A named collection of benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&self.criterion.config, &full, f);
        self
    }

    /// Finishes the group (printing is incremental; provided for API
    /// parity).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, in either `criterion` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_criterion() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_measures() {
        let mut c = fast_criterion();
        c.bench_function("noop_add", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(1);
                x
            });
        });
    }

    #[test]
    fn group_and_batched() {
        let mut c = fast_criterion();
        let mut group = c.benchmark_group("g");
        group.bench_function("batched", |b| {
            b.iter_batched_ref(
                || vec![1u64; 16],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
        group.finish();
    }

    #[test]
    fn time_formatting() {
        assert_eq!(format_time(12.345), "12.35 ns");
        assert_eq!(format_time(1_500.0), "1.50 µs");
        assert_eq!(format_time(2_500_000.0), "2.50 ms");
        assert_eq!(format_time(3_000_000_000.0), "3.00 s");
    }
}
