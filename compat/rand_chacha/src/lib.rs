//! Offline ChaCha8 random number generator.
//!
//! Implements the ChaCha stream cipher (D. J. Bernstein) with 8
//! rounds as an [`RngCore`] source, matching the role `rand_chacha`'s
//! `ChaCha8Rng` plays in this workspace: a portable, specified,
//! seekable-in-principle generator whose output is a pure function of
//! its 256-bit seed. The exact output stream is *this crate's*
//! specification (block-sequential word order, 64-bit block counter);
//! nothing in the workspace depends on upstream `rand_chacha` byte
//! streams, only on determinism and statistical quality.

use rand::{RngCore, SeedableRng};

const WORDS_PER_BLOCK: usize = 16;
/// "expand 32-byte k" — the standard ChaCha constants.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; WORDS_PER_BLOCK], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// ChaCha with 8 rounds, exposed as a deterministic seeded RNG.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// 256-bit key as eight little-endian words.
    key: [u32; 8],
    /// 64-bit block counter (state words 12–13).
    counter: u64,
    /// Current keystream block.
    buf: [u32; WORDS_PER_BLOCK],
    /// Next unread word in `buf`; `WORDS_PER_BLOCK` means exhausted.
    idx: usize,
}

impl ChaCha8Rng {
    fn block(key: &[u32; 8], counter: u64) -> [u32; WORDS_PER_BLOCK] {
        let mut state = [0u32; WORDS_PER_BLOCK];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(key);
        state[12] = counter as u32;
        state[13] = (counter >> 32) as u32;
        // state[14..16] is the zero nonce/stream id.
        let mut working = state;
        for _ in 0..4 {
            // Double round: 4 column rounds then 4 diagonal rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (w, s) in working.iter_mut().zip(&state) {
            *w = w.wrapping_add(*s);
        }
        working
    }

    #[inline]
    fn refill(&mut self) {
        self.buf = Self::block(&self.key, self.counter);
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }

    /// Current position in the keystream, in 32-bit words.
    #[must_use]
    pub fn word_pos(&self) -> u128 {
        // `counter` has already advanced past the buffered block.
        u128::from(self.counter.wrapping_sub(1)) * WORDS_PER_BLOCK as u128 + self.idx as u128
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            key,
            counter: 0,
            buf: [0; WORDS_PER_BLOCK],
            idx: WORDS_PER_BLOCK,
        }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.idx >= WORDS_PER_BLOCK {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng as _;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::from_seed([7; 32]);
        let mut b = ChaCha8Rng::from_seed([7; 32]);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = ChaCha8Rng::from_seed([1; 32]);
        let mut b = ChaCha8Rng::from_seed([2; 32]);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn blocks_advance() {
        let mut r = ChaCha8Rng::from_seed([3; 32]);
        let first_block: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        assert_ne!(first_block, second_block);
        assert_eq!(r.word_pos(), 32);
    }

    #[test]
    fn clone_continues_identically() {
        let mut r = ChaCha8Rng::from_seed([9; 32]);
        let _ = r.next_u64();
        let mut c = r.clone();
        for _ in 0..32 {
            assert_eq!(r.next_u32(), c.next_u32());
        }
    }

    #[test]
    fn uniformity_smoke() {
        // Mean of many uniform [0,1) draws concentrates near 0.5.
        let mut r = ChaCha8Rng::from_seed([5; 32]);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bit_balance_smoke() {
        let mut r = ChaCha8Rng::from_seed([11; 32]);
        let ones: u32 = (0..1000).map(|_| r.next_u64().count_ones()).sum();
        // 64k bits, expect ~32k ones.
        assert!((30_000..34_000).contains(&ones), "ones {ones}");
    }
}
