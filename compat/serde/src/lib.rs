//! Offline stand-in for `serde`.
//!
//! No serialisation format ships in the allowed dependency set, so the
//! workspace's serde usage is purely *contractual*: data types declare
//! `#[derive(Serialize, Deserialize)]` and tests assert the bounds hold
//! (Rust API guideline C-SERDE). This crate supplies exactly that
//! contract — the traits and a derive that implements them — without
//! any encoder/decoder machinery. When a real format is needed, the
//! genuine `serde` slots back in with no source changes outside this
//! directory.

// Lets the derive-generated `::serde::...` paths resolve inside this
// crate's own tests.
extern crate self as serde;

/// Marker for types that can be serialised. Mirrors `serde::Serialize`
/// as a bound; carries no methods in the offline stand-in.
pub trait Serialize {}

/// Marker for types that can be deserialised. Mirrors
/// `serde::Deserialize<'de>` as a bound.
pub trait Deserialize<'de>: Sized {}

/// Owned-deserialisation alias, mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};

// Foundational impls so derived containers can hold std types under a
// future bound-carrying implementation as well as this one.
macro_rules! impl_markers {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}
impl_markers!(
    (),
    bool,
    char,
    String,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}
impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::HashMap<K, V>
{
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize, Deserialize)]
    struct Plain {
        #[allow(dead_code)]
        x: f64,
    }

    #[derive(Serialize, Deserialize)]
    enum Kind {
        #[allow(dead_code)]
        A,
        #[allow(dead_code)]
        B(u32),
    }

    fn assert_serde<T: Serialize + for<'de> Deserialize<'de>>() {}

    #[test]
    fn derive_implements_both_traits() {
        assert_serde::<Plain>();
        assert_serde::<Kind>();
        assert_serde::<Vec<Plain>>();
        assert_serde::<Option<Kind>>();
    }
}
