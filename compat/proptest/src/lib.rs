//! Offline property-testing harness.
//!
//! Implements the subset of the `proptest` API this workspace's test
//! suites use: the [`proptest!`] macro, [`Strategy`] with `prop_map`,
//! numeric-range / tuple / `Just` / regex-lite string strategies,
//! [`collection::vec`], [`prop_oneof!`], and the `prop_assert*` /
//! `prop_assume!` macros. Each property runs a fixed number of cases
//! from a deterministic per-test PRNG (seeded from the test name), so
//! failures are reproducible run to run. Shrinking is not implemented;
//! the failing case's inputs appear in the panic message instead.

pub mod test_runner {
    //! Deterministic case generation for property tests.

    /// Default number of cases generated per property when
    /// `PROPTEST_CASES` is not set.
    pub const CASES: u32 = 64;

    /// Number of cases generated per property: the `PROPTEST_CASES`
    /// environment variable if set to a positive integer (CI pins it
    /// so local and gate runs agree), else [`CASES`].
    #[must_use]
    pub fn cases() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(CASES)
    }

    /// SplitMix64-based PRNG: small, fast, and plenty for case
    /// generation (the system-under-test's own RNG is separate).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name, so every property has
        /// an independent, stable stream.
        #[must_use]
        pub fn from_name(name: &str) -> Self {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in name.as_bytes() {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: hash }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            let threshold = bound.wrapping_neg() % bound;
            loop {
                let x = self.next_u64();
                let m = u128::from(x) * u128::from(bound);
                if (m as u64) >= threshold {
                    return (m >> 64) as u64;
                }
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed strategies (built by
    /// [`crate::prop_oneof!`]).
    pub struct OneOf<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> OneOf<V> {
        /// Builds from a non-empty arm list.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty.
        #[must_use]
        pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].generate(rng)
        }
    }

    /// Boxes a strategy for [`OneOf`], pinning the arm's `Value` type
    /// so `prop_oneof!` arms unify by inference.
    pub fn one_of_arm<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(strategy)
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap, clippy::cast_lossless)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = if span > u128::from(u64::MAX) {
                        rng.next_u64()
                    } else {
                        rng.below(span as u64)
                    };
                    (self.start as i128 + i128::from(draw)) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap, clippy::cast_lossless)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let draw = if span > u128::from(u64::MAX) {
                        rng.next_u64()
                    } else {
                        rng.below(span as u64)
                    };
                    (lo as i128 + i128::from(draw)) as $t
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+)),* $(,)?) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy!(
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, F)
    );

    /// Regex-lite string strategy: supports the `[a-z]{m,n}` /
    /// `[a-z]{n}` shapes used in this workspace's tests.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (lo_ch, hi_ch, min_len, max_len) = parse_char_class_repeat(self);
            let len = min_len + rng.below(max_len - min_len + 1);
            let span = u64::from(hi_ch) - u64::from(lo_ch) + 1;
            (0..len)
                .map(|_| {
                    char::from_u32(u32::from(lo_ch) + rng.below(span) as u32)
                        .expect("in-range char")
                })
                .collect()
        }
    }

    /// Parses `[a-b]{m,n}` (or `{n}`) into `(a, b, m, n)`.
    fn parse_char_class_repeat(pattern: &str) -> (char, char, u64, u64) {
        fn bad(pattern: &str) -> ! {
            panic!("unsupported string strategy pattern {pattern:?} (expected \"[a-b]{{m,n}}\")")
        }
        let Some(rest) = pattern.strip_prefix('[') else {
            bad(pattern)
        };
        let Some((class, rest)) = rest.split_once(']') else {
            bad(pattern)
        };
        let mut chars = class.chars();
        let (lo, dash, hi) = (chars.next(), chars.next(), chars.next());
        let (Some(lo), Some('-'), Some(hi), None) = (lo, dash, hi, chars.next()) else {
            bad(pattern)
        };
        let Some(counts) = rest.strip_prefix('{').and_then(|r| r.strip_suffix('}')) else {
            bad(pattern)
        };
        let (min_len, max_len) = match counts.split_once(',') {
            Some((m, n)) => match (m.parse(), n.parse()) {
                (Ok(m), Ok(n)) => (m, n),
                _ => bad(pattern),
            },
            None => match counts.parse() {
                Ok(n) => (n, n),
                Err(_) => bad(pattern),
            },
        };
        (lo, hi, min_len, max_len)
    }
}

pub mod arbitrary {
    //! `any::<T>()` support for the primitive types tests draw.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Full-type-range strategy returned by [`any`].
    #[derive(Debug, Clone, Default)]
    pub struct Any<T>(PhantomData<T>);

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The `proptest::prelude::any` entry point.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            // Finite, wide-range floats; NaN/inf handling is the
            // system-under-test's job, not random noise in every test.
            (rng.unit_f64() - 0.5) * 2e12
        }
    }
}

pub mod collection {
    //! `proptest::collection::vec`.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Inclusive-exclusive length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self {
                lo: exact,
                hi: exact + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The common import surface, mirroring `proptest::prelude::*`.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests: `proptest! { #[test] fn name(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    ($(
        #[$meta:meta]
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        #[$meta]
        fn $name() {
            let mut __proptest_rng =
                $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __proptest_case in 0..$crate::test_runner::cases() {
                let _ = __proptest_case;
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __proptest_rng);)*
                $body
            }
        }
    )*};
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

/// Skips the current case when its inputs don't satisfy a
/// precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::one_of_arm($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in -2.0f64..2.0, z in 0usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!(z <= 4);
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn exact_vec_length(v in crate::collection::vec(0.0f64..1.0, 3)) {
            prop_assert_eq!(v.len(), 3);
        }

        #[test]
        fn oneof_and_map_compose(
            k in prop_oneof![Just(1u32), Just(2u32), (10u32..20).prop_map(|x| x * 2)],
        ) {
            prop_assert!(k == 1 || k == 2 || (20..40).contains(&k));
        }

        #[test]
        fn string_pattern_shape(s in "[a-c]{2,5}") {
            prop_assert!(s.len() >= 2 && s.len() <= 5);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn assume_skips(a in any::<u64>(), b in any::<u64>()) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn tuples_generate(pair in (0u64..4, 0u32..3)) {
            prop_assert!(pair.0 < 4 && pair.1 < 3);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy as _;
        let mut r1 = crate::test_runner::TestRng::from_name("x");
        let mut r2 = crate::test_runner::TestRng::from_name("x");
        let s = 0u64..1000;
        let a: Vec<u64> = (0..32).map(|_| s.generate(&mut r1)).collect();
        let b: Vec<u64> = (0..32).map(|_| s.generate(&mut r2)).collect();
        assert_eq!(a, b);
    }
}
