//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment resolves crates without network access, so the
//! workspace vendors the thin slice of the `rand` API it actually uses:
//! [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait (`gen`,
//! `gen_range`, `gen_bool`), [`Standard`] sampling for the primitive
//! types the experiments draw, and [`seq::SliceRandom`]
//! (`choose`/`shuffle`). Algorithms follow the published `rand` 0.8
//! semantics (53-bit uniform floats, unbiased Lemire integer ranges,
//! Fisher–Yates shuffling) so swapping the real crate back in changes
//! nothing structurally.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source. Mirrors `rand::RngCore`.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// Deterministic construction from a fixed-size seed. Mirrors
/// `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Seed byte array type (e.g. `[u8; 32]`).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a single `u64` via SplitMix64
    /// expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod distributions {
    //! The `Standard` distribution for primitive types.

    use super::RngCore;

    /// Marker distribution: "the natural uniform distribution" of a
    /// type (full range for integers, `[0, 1)` for floats).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    /// A distribution that can produce values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 uniform mantissa bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u32() & 1 == 1
        }
    }

    macro_rules! impl_standard_int {
        ($($t:ty => $m:ident),* $(,)?) => {$(
            impl Distribution<$t> for Standard {
                #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.$m() as $t
                }
            }
        )*};
    }
    impl_standard_int!(
        u8 => next_u32, u16 => next_u32, u32 => next_u32,
        u64 => next_u64, usize => next_u64, u128 => next_u64,
        i8 => next_u32, i16 => next_u32, i32 => next_u32,
        i64 => next_u64, isize => next_u64,
    );
}

use distributions::{Distribution, Standard};

/// Uniform sampling within a half-open or inclusive range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws uniformly from `[lo, hi)` (or `[lo, hi]` if `inclusive`).
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        let u: f64 = Standard.sample(rng);
        // Clamp guards the open upper bound under rounding.
        let v = lo + u * (hi - lo);
        if v >= hi && lo < hi {
            lo.max(hi - (hi - lo) * f64::EPSILON)
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self {
        f64::sample_between(rng, f64::from(lo), f64::from(hi), inclusive) as f32
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_lossless)]
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span_minus_one = if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                    (hi as i128 - lo as i128) as u128
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                    (hi as i128 - lo as i128 - 1) as u128
                };
                if span_minus_one == u64::MAX as u128 {
                    return (lo as i128 + rng.next_u64() as i128) as $t;
                }
                let span = (span_minus_one + 1) as u64;
                // Lemire's unbiased multiply-shift rejection method.
                let threshold = span.wrapping_neg() % span;
                loop {
                    let x = rng.next_u64();
                    let m = u128::from(x) * u128::from(span);
                    if (m as u64) >= threshold {
                        return (lo as i128 + (m >> 64) as i128) as $t;
                    }
                }
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range argument accepted by [`Rng::gen_range`]. Mirrors
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_between(rng, lo, hi, true)
    }
}

/// User-facing convenience methods over any [`RngCore`]. Mirrors
/// `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value from the type's [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} must be in [0,1]");
        let u: f64 = Standard.sample(self);
        u < p
    }

    /// Draws a value from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Slice helpers: random element choice and Fisher–Yates shuffle.

    use super::{RngCore, SampleUniform};

    /// Mirrors `rand::seq::SliceRandom` for the methods this workspace
    /// uses.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[usize::sample_between(rng, 0, self.len(), false)])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_between(rng, 0, i, true);
                self.swap(i, j);
            }
        }
    }
}

pub mod rngs {
    //! Placeholder module for parity with the real crate layout.
}

pub mod prelude {
    //! Common imports, mirroring `rand::prelude`.
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom as _;
    use super::*;

    struct Step(u64);
    impl RngCore for Step {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 — good enough distribution for unit tests.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn f64_standard_in_unit_interval() {
        let mut r = Step(1);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = Step(2);
        for _ in 0..1000 {
            let x = r.gen_range(3..7);
            assert!((3..7).contains(&x));
            let y = r.gen_range(-1.5..=1.5);
            assert!((-1.5..=1.5).contains(&y));
            let z = r.gen_range(0usize..1);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = Step(3);
        let mut counts = [0u32; 5];
        for _ in 0..5000 {
            counts[r.gen_range(0usize..5)] += 1;
        }
        for c in counts {
            assert!((600..1400).contains(&c), "count {c} badly skewed");
        }
    }

    #[test]
    fn choose_and_shuffle() {
        let mut r = Step(4);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
        let items = [10, 20, 30];
        assert!(items.contains(items.choose(&mut r).unwrap()));
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle must be a permutation");
        assert_ne!(v, orig, "50 elements staying put is ~impossible");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Step(5);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn negative_int_ranges() {
        let mut r = Step(6);
        for _ in 0..200 {
            let x = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
        }
    }
}
