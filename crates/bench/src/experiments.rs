//! Experiment implementations (T1–T6, F1–F4). See EXPERIMENTS.md for
//! the claim each one tests and the expected shape.

use selfaware::collective::{centralized_estimate, hierarchical_estimate, GossipNetwork};
use selfaware::goals::Direction;
use selfaware::levels::{Level, LevelSet};
use selfaware::meta::ModelPool;
use selfaware::models::ar::ArModel;
use selfaware::models::ewma::Ewma;
use selfaware::models::holt::Holt;
use selfaware::models::{Forecaster, OnlineModel as _};
use selfaware::replay::{
    CounterfactualDelta, CounterfactualReport, CounterfactualRun, InterventionClass,
    InterventionMask, ReplayOutcome,
};
use simkernel::obs;
use simkernel::runner::RunReport;
use simkernel::series::render_multi;
use simkernel::table::{num, num_ci};
use simkernel::{par_map, MetricSet, Replications, SeedTree, Table, Tick, TimeSeries};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Default replication count for table experiments.
pub const REPS: u32 = 5;
/// Default horizon (ticks) for cloud scenarios.
pub const CLOUD_STEPS: u64 = 6_000;
/// Number of monitored signals in T6.
pub const T6_SIGNALS: usize = 16;

/// Renders a [`MetricSet`] as a flat JSON object.
fn metrics_json(m: &MetricSet) -> obs::Json {
    obs::Json::obj(m.iter().map(|(k, v)| (k.to_string(), obs::Json::from(v))))
}

/// Renders an arm's aggregate as `{metric: {n, mean, ci95, std_dev}}`.
fn aggregate_json(report: &RunReport) -> obs::Json {
    obs::Json::obj(report.iter().map(|(k, s)| {
        (
            k.to_string(),
            obs::Json::obj([
                ("n", obs::Json::from(s.count())),
                ("mean", obs::Json::from(s.mean())),
                ("ci95", obs::Json::from(s.ci95_halfwidth())),
                ("std_dev", obs::Json::from(s.std_dev())),
            ]),
        )
    }))
}

/// One experiment's structured run trace: provenance plus the
/// per-arm [`RunReport`]s a matrix run produced. Exported as JSONL
/// under `<artifact_root>/<experiment>/run.jsonl` (see
/// [`simkernel::obs`] for the artifact-root rules).
///
/// Line schema (one JSON object per line, discriminated by `record`):
///
/// * `provenance` — experiment id, root seed, replicate count,
///   horizon, effective `SAS_THREADS` worker count, FNV-1a digest of
///   the config description, crate versions;
/// * `arm` — one per experiment arm: label, completed/recovered
///   counts, wall-clock seconds, per-metric aggregate statistics and
///   the merged phase-timing profile;
/// * `replicate` — one per replicate of each arm: the structured
///   records the scenario emitted through [`obs::emit`] (metrics,
///   comms/supervision/health stats, drained explanations);
/// * `counterfactual` — one per intervention-class delta a replicate
///   emitted (F10): any scenario-emitted record whose `record` field
///   is `counterfactual` is lifted out of the replicate's event array
///   into a top-level typed record tagged with its arm and replicate
///   index, so trace consumers can scan measured intervention deltas
///   without unnesting.
#[derive(Debug)]
pub struct RunTrace<'a> {
    /// Experiment id — also the artifact subdirectory name.
    pub experiment: &'a str,
    /// Root seed of the [`Replications`] seed tree.
    pub seed: u64,
    /// Replicates per arm.
    pub replicates: u32,
    /// Scenario horizon in ticks.
    pub steps: u64,
    /// Human-readable config description; digested into provenance.
    pub config: &'a str,
    /// Arm labels, parallel to `reports`.
    pub arms: &'a [String],
    /// One report per arm, from a matrix run.
    pub reports: &'a [RunReport],
}

impl RunTrace<'_> {
    /// Writes the trace under the configured artifact root when
    /// observability is enabled; no-op (returning `None`) otherwise.
    /// I/O failures are reported on stderr rather than panicking —
    /// tracing must never take down an experiment run.
    pub fn export(&self) -> Option<PathBuf> {
        if !obs::enabled() {
            return None;
        }
        match self.export_in(&obs::artifact_root()) {
            Ok(path) => Some(path),
            Err(e) => {
                eprintln!("obs: run-trace export for {} failed: {e}", self.experiment);
                None
            }
        }
    }

    /// [`RunTrace::export`] with an explicit artifact root and no
    /// enabled-check (used by tests to write inside `target/`).
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures from the trace writer.
    pub fn export_in(&self, root: &Path) -> std::io::Result<PathBuf> {
        let mut w = obs::TraceWriter::create_in(root, self.experiment, "run")?;
        w.line(&obs::Json::obj([
            ("record", obs::Json::str("provenance")),
            ("experiment", obs::Json::str(self.experiment)),
            ("seed", obs::Json::from(self.seed)),
            ("replicates", obs::Json::from(self.replicates)),
            ("steps", obs::Json::from(self.steps)),
            (
                "sas_threads",
                obs::Json::from(simkernel::worker_count(self.replicates as usize) as u64),
            ),
            (
                "config_digest",
                obs::Json::str(obs::config_digest(self.config)),
            ),
            (
                "versions",
                obs::Json::obj([
                    ("sas-bench", obs::Json::str(env!("CARGO_PKG_VERSION"))),
                    ("simkernel", obs::Json::str(simkernel::VERSION)),
                    ("selfaware", obs::Json::str(selfaware::VERSION)),
                ]),
            ),
        ]));
        for (i, (label, report)) in self.arms.iter().zip(self.reports).enumerate() {
            w.line(&obs::Json::obj([
                ("record", obs::Json::str("arm")),
                ("index", obs::Json::from(i as u64)),
                ("label", obs::Json::str(label.clone())),
                ("completed", obs::Json::from(u64::from(report.completed()))),
                (
                    "recovered",
                    obs::Json::from(report.recovered().len() as u64),
                ),
                ("errors", obs::Json::from(report.errors().len() as u64)),
                ("wall_secs", obs::Json::from(report.wall_secs())),
                ("aggregate", aggregate_json(report)),
                ("profile", report.profile().to_json()),
            ]));
            for (k, records) in report.records().iter().enumerate() {
                w.line(&obs::Json::obj([
                    ("record", obs::Json::str("replicate")),
                    ("arm", obs::Json::str(label.clone())),
                    ("index", obs::Json::from(k as u64)),
                    ("events", obs::Json::Arr(records.clone())),
                ]));
                for rec in records {
                    if rec.get("record").and_then(obs::Json::as_str) != Some("counterfactual") {
                        continue;
                    }
                    let mut pairs = vec![
                        ("arm".to_string(), obs::Json::str(label.clone())),
                        ("replicate".to_string(), obs::Json::from(k as u64)),
                    ];
                    if let obs::Json::Obj(body) = rec {
                        pairs.extend(body.iter().cloned());
                    }
                    w.line(&obs::Json::Obj(pairs));
                }
            }
        }
        w.finish()
    }
}

fn cloud_strategies() -> Vec<cloudsim::Strategy> {
    vec![
        cloudsim::Strategy::Random,
        cloudsim::Strategy::RoundRobin,
        cloudsim::Strategy::LeastLoaded,
        cloudsim::Strategy::SelfAware {
            levels: LevelSet::full(),
        },
    ]
}

fn run_cloud(strategy: &cloudsim::Strategy, seeds: SeedTree, steps: u64) -> MetricSet {
    let cfg = cloudsim::ScenarioConfig::standard(strategy.clone(), steps, &seeds);
    cloudsim::run_scenario(&cfg, &seeds).metrics
}

/// T1 — self-awareness improves run-time trade-off management
/// (cloud: QoS vs cost under churn and drifting demand).
#[must_use]
pub fn run_t1(reps: u32, steps: u64) -> Table {
    let mut table = Table::new(
        format!("T1: cloud trade-off management ({steps} ticks, {reps} reps, mean±95CI)"),
        &[
            "strategy",
            "completion",
            "violations",
            "p95 lat",
            "cost",
            "utility",
        ],
    );
    let arms = cloud_strategies();
    let aggs = Replications::new(0x71, reps)
        .run_matrix(&arms, |strategy, seeds| run_cloud(strategy, seeds, steps));
    for (strategy, agg) in arms.iter().zip(&aggs) {
        table.row_owned(vec![
            strategy.label(),
            num_ci(agg.mean("completion_ratio"), agg.ci95("completion_ratio")),
            num_ci(agg.mean("violation_rate"), agg.ci95("violation_rate")),
            num(agg.mean("p95_latency")),
            num_ci(agg.mean("cost_ratio"), agg.ci95("cost_ratio")),
            num_ci(agg.mean("utility"), agg.ci95("utility")),
        ]);
    }
    table
}

/// T2 — ablation over the levels of self-awareness (cloud scenario).
#[must_use]
pub fn run_t2(reps: u32, steps: u64) -> Table {
    let ladder: Vec<(&str, LevelSet)> = vec![
        ("none (pre-self-aware)", LevelSet::new()),
        ("+stimulus", LevelSet::new().with(Level::Stimulus)),
        (
            "+time",
            LevelSet::new().with(Level::Stimulus).with(Level::Time),
        ),
        (
            "+goal",
            LevelSet::new()
                .with(Level::Stimulus)
                .with(Level::Time)
                .with(Level::Goal),
        ),
        ("full (+meta)", LevelSet::full()),
    ];
    let mut table = Table::new(
        format!("T2: level-of-self-awareness ablation ({steps} ticks, {reps} reps)"),
        &["levels", "completion", "violations", "cost", "utility"],
    );
    let aggs = Replications::new(0x72, reps).run_matrix(&ladder, |&(_, levels), seeds| {
        let strategy = cloudsim::Strategy::SelfAware { levels };
        run_cloud(&strategy, seeds, steps)
    });
    for ((name, _), agg) in ladder.iter().zip(&aggs) {
        table.row_owned(vec![
            (*name).to_string(),
            num_ci(agg.mean("completion_ratio"), agg.ci95("completion_ratio")),
            num_ci(agg.mean("violation_rate"), agg.ci95("violation_rate")),
            num_ci(agg.mean("cost_ratio"), agg.ci95("cost_ratio")),
            num_ci(agg.mean("utility"), agg.ci95("utility")),
        ]);
    }
    table
}

fn camnet_strategies() -> Vec<camnet::HandoverStrategy> {
    vec![
        camnet::HandoverStrategy::Broadcast,
        camnet::HandoverStrategy::Smooth { k: 3 },
        camnet::HandoverStrategy::Static { k: 3 },
        camnet::HandoverStrategy::self_aware_default(),
    ]
}

/// T3 — camera-network handover: tracking quality vs communication.
#[must_use]
pub fn run_t3(reps: u32, steps: u64) -> Table {
    let mut table = Table::new(
        format!("T3: camera handover strategies ({steps} ticks, {reps} reps)"),
        &[
            "strategy",
            "quality",
            "untracked",
            "msgs/tick",
            "ask ratio",
            "diversity",
            "utility",
        ],
    );
    let arms = camnet_strategies();
    let aggs = Replications::new(0x73, reps).run_matrix(&arms, |&strategy, seeds| {
        camnet::run_camnet(&camnet::CamnetConfig::standard(strategy, steps), &seeds).metrics
    });
    for (strategy, agg) in arms.iter().zip(&aggs) {
        table.row_owned(vec![
            strategy.label(),
            num_ci(agg.mean("track_quality"), agg.ci95("track_quality")),
            num(agg.mean("untracked_ratio")),
            num_ci(agg.mean("messages_per_tick"), agg.ci95("messages_per_tick")),
            num(agg.mean("ask_ratio")),
            num(agg.mean("heterogeneity_final")),
            num_ci(agg.mean("utility"), agg.ci95("utility")),
        ]);
    }
    table
}

/// F1 — emergent heterogeneity: policy divergence over time per
/// strategy (single representative seed; the divergence trajectory is
/// the figure).
#[must_use]
pub fn run_f1(steps: u64) -> String {
    let strategies = camnet_strategies();
    let series: Vec<TimeSeries> = par_map(&strategies, |&strategy| {
        camnet::run_camnet(
            &camnet::CamnetConfig::standard(strategy, steps),
            &SeedTree::new(0xF1),
        )
        .heterogeneity
    });
    let refs: Vec<&TimeSeries> = series.iter().collect();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "F1: camera policy divergence over time ({steps} ticks, seed 0xF1)"
    );
    let _ = writeln!(
        out,
        "(broadcast stays homogeneous; smooth/static heterogeneity is designed-in and flat;\n\
         the self-aware network's heterogeneity *emerges* and grows)"
    );
    out.push_str(&render_multi(&refs, 24));
    out
}

/// F2 — routing under DoS: delay time-series and per-phase means.
#[must_use]
pub fn run_f2(steps: u64) -> String {
    let strategies = [
        cpn::RoutingStrategy::StaticShortest,
        cpn::RoutingStrategy::Periodic { period: 50 },
        cpn::RoutingStrategy::cpn_default(),
    ];
    let (from, to) = cpn::CpnConfig::attack_window(steps);
    let mut out = String::new();
    let mut table = Table::new(
        format!("F2: routing under DoS (attack {from}..{to}, {steps} ticks)"),
        &[
            "strategy",
            "delivery",
            "delay pre",
            "delay attack",
            "delay post",
        ],
    );
    let results = par_map(&strategies, |&strategy| {
        cpn::run_cpn(
            &cpn::CpnConfig::standard(strategy, steps),
            &SeedTree::new(0xF2),
        )
    });
    for (strategy, result) in strategies.iter().zip(&results) {
        let m = &result.metrics;
        table.row_owned(vec![
            strategy.label(),
            num(m.get("delivery_ratio").unwrap_or(0.0)),
            num(m.get("delay_pre").unwrap_or(0.0)),
            num(m.get("delay_attack").unwrap_or(0.0)),
            num(m.get("delay_post").unwrap_or(0.0)),
        ]);
    }
    let _ = writeln!(out, "{table}");
    let refs: Vec<&TimeSeries> = results.iter().map(|r| &r.delay).collect();
    out.push_str(&render_multi(&refs, 30));
    out
}

/// T4 — heterogeneous multicore scheduling: throughput vs energy vs
/// thermal stress under a phase-switching mix.
#[must_use]
pub fn run_t4(reps: u32, steps: u64) -> Table {
    let mut table = Table::new(
        format!("T4: multicore schedulers ({steps} ticks, {reps} reps)"),
        &[
            "scheduler",
            "completion",
            "mean lat",
            "miss rate",
            "energy/task",
            "throttle",
            "utility",
        ],
    );
    let schedulers = [
        multicore::Scheduler::StaticPin,
        multicore::Scheduler::Greedy,
        multicore::Scheduler::SelfAware,
    ];
    let aggs = Replications::new(0x74, reps).run_matrix(&schedulers, |&scheduler, seeds| {
        multicore::run_multicore(
            &multicore::MulticoreConfig::standard(scheduler, steps),
            &seeds,
        )
        .metrics
    });
    for (scheduler, agg) in schedulers.iter().zip(&aggs) {
        table.row_owned(vec![
            scheduler.label().to_string(),
            num_ci(agg.mean("completion_ratio"), agg.ci95("completion_ratio")),
            num(agg.mean("mean_latency")),
            num_ci(
                agg.mean("deadline_miss_rate"),
                agg.ci95("deadline_miss_rate"),
            ),
            num_ci(agg.mean("energy_per_task"), agg.ci95("energy_per_task")),
            num(agg.mean("throttle_ratio")),
            num_ci(agg.mean("utility"), agg.ci95("utility")),
        ]);
    }
    table
}

/// F3 — meta-self-awareness under concept drift: fixed forecasters vs
/// the self-selecting model pool on a regime-switching signal.
#[must_use]
pub fn run_f3(steps: u64) -> String {
    use workloads::signal::{SignalGen, SignalSpec};
    let regimes = vec![
        (0, SignalSpec::Flat { level: 10.0 }),
        (
            steps / 4,
            SignalSpec::Trend {
                start: 10.0,
                slope: 0.3,
            },
        ),
        (
            steps / 2,
            SignalSpec::Oscillation {
                center: 40.0,
                amplitude: 8.0,
                period: 40.0,
            },
        ),
        (3 * steps / 4, SignalSpec::Flat { level: 25.0 }),
    ];
    // One worker per model. Each regenerates the (seed-deterministic)
    // signal independently and records its per-tick absolute error;
    // the joint warm-up gating and windowing run sequentially over
    // the recorded traces afterwards, so the printed figures are
    // identical to the old single-loop version.
    let model_ids: [usize; 4] = [0, 1, 2, 3];
    let traces: Vec<(Vec<Option<f64>>, u32)> = par_map(&model_ids, |&which| {
        let mut gen = SignalGen::new(regimes.clone(), 0.5, SeedTree::new(0xF3).rng("signal"));
        let mut fixed: Option<Box<dyn Forecaster>> = match which {
            0 => Some(Box::new(Ewma::new(0.3))),
            1 => Some(Box::new(Holt::new(0.5, 0.3))),
            2 => Some(Box::new(ArModel::new(2, 64))),
            _ => None,
        };
        let mut pool = ModelPool::new(0.1, 8);
        if fixed.is_none() {
            pool.add("ewma", Box::new(Ewma::new(0.3)));
            pool.add("holt", Box::new(Holt::new(0.5, 0.3)));
            pool.add("ar", Box::new(ArModel::new(2, 64)));
        }
        let mut errs = Vec::with_capacity(steps as usize);
        for t in 0..steps {
            let x = gen.sample(Tick(t));
            let pred = match &fixed {
                Some(model) => model.forecast(),
                None => pool.forecast(),
            };
            errs.push(pred.map(|p| (p - x).abs()));
            match &mut fixed {
                Some(model) => model.observe(x),
                None => pool.observe(x),
            }
        }
        (errs, pool.switches())
    });
    let pool_switches = traces[3].1;

    let mut err_series: Vec<TimeSeries> = ["ewma", "holt", "ar", "meta-pool"]
        .iter()
        .map(|n| TimeSeries::new(*n))
        .collect();
    let mut total_err = [0.0f64; 4];
    let mut count = 0u64;
    let mut window_err = [0.0f64; 4];
    let mut window_n = 0u64;

    for t in 0..steps {
        let errs: Vec<Option<f64>> = traces.iter().map(|(e, _)| e[t as usize]).collect();
        if errs.iter().all(Option::is_some) {
            for (i, e) in errs.iter().enumerate() {
                let e = e.unwrap();
                total_err[i] += e;
                window_err[i] += e;
            }
            count += 1;
            window_n += 1;
        }
        if t % 50 == 49 && window_n > 0 {
            for (i, s) in err_series.iter_mut().enumerate() {
                s.push(Tick(t), window_err[i] / window_n as f64);
            }
            window_err = [0.0; 4];
            window_n = 0;
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "F3: forecast error under concept drift ({steps} ticks, regime changes at 1/4, 1/2, 3/4)"
    );
    let mut table = Table::new(
        "mean absolute one-step error",
        &["model", "mae", "vs meta-pool"],
    );
    let pool_mae = total_err[3] / count.max(1) as f64;
    for (i, name) in ["ewma", "holt", "ar", "meta-pool"].iter().enumerate() {
        let mae = total_err[i] / count.max(1) as f64;
        table.row_owned(vec![
            (*name).to_string(),
            num(mae),
            format!("{:+.1}%", (mae / pool_mae - 1.0) * 100.0),
        ]);
    }
    let _ = writeln!(out, "{table}");
    let _ = writeln!(out, "model switches by the pool: {pool_switches}");
    let _ = writeln!(out, "windowed error over time:");
    let refs: Vec<&TimeSeries> = err_series.iter().collect();
    out.push_str(&render_multi(&refs, 24));
    out
}

/// One T5 replicate: collective estimation with `n` nodes under the
/// three architectures. Public so the parity tests can compare
/// sequential and parallel runs of the exact scenario.
#[must_use]
pub fn t5_scenario(n: usize, seeds: SeedTree) -> MetricSet {
    use rand::Rng as _;
    let mut rng = seeds.rng("obs");
    // Each node observes a global quantity plus noise.
    let truth = 20.0;
    let obs: Vec<f64> = (0..n).map(|_| truth + rng.gen_range(-2.0..2.0)).collect();
    let sample_mean = obs.iter().sum::<f64>() / n as f64;

    let central = centralized_estimate(&obs);
    let hier = hierarchical_estimate(&obs, 4);
    let mut gossip = GossipNetwork::new(obs.clone());
    let mut grng = seeds.rng("gossip");
    // Rounds ~ log2(n) * 4 suffice for tight convergence.
    let rounds = (4.0 * (n as f64).log2()).ceil() as u32;
    gossip.run(rounds, &mut grng);
    let gout = gossip.outcome();

    let mut m = MetricSet::new();
    m.set("central_err", central.mean_abs_error(sample_mean));
    m.set("central_msgs", central.messages as f64);
    m.set("central_load", central.max_node_load as f64);
    m.set("hier_err", hier.mean_abs_error(sample_mean));
    m.set("hier_msgs", hier.messages as f64);
    m.set("hier_load", hier.max_node_load as f64);
    m.set("gossip_err", gout.mean_abs_error(sample_mean));
    m.set("gossip_msgs", gout.messages as f64);
    m.set("gossip_load", gout.max_node_load as f64);
    m
}

/// T5 — collective awareness without a global component: accuracy vs
/// coordination cost vs hot-spot load, over network sizes.
#[must_use]
pub fn run_t5(reps: u32) -> Table {
    let mut table = Table::new(
        format!("T5: collective estimation architectures ({reps} reps)"),
        &[
            "N",
            "architecture",
            "node error",
            "messages",
            "hot-spot load",
        ],
    );
    let sizes = [10usize, 50, 200];
    let aggs = Replications::new(0x75, reps).run_matrix(&sizes, |&n, seeds| t5_scenario(n, seeds));
    for (n, agg) in sizes.iter().zip(&aggs) {
        for arch in ["central", "hier", "gossip"] {
            table.row_owned(vec![
                n.to_string(),
                arch.to_string(),
                format!("{:.4}", agg.mean(&format!("{arch}_err"))),
                format!("{:.0}", agg.mean(&format!("{arch}_msgs"))),
                format!("{:.0}", agg.mean(&format!("{arch}_load"))),
            ]);
        }
    }
    table
}

/// F4 — dependence on a-priori models: design-time-ranked dispatch vs
/// self-aware dispatch as the deployed world diverges from the
/// designer's beliefs.
#[must_use]
pub fn run_f4(reps: u32, steps: u64) -> String {
    let mut static_series = TimeSeries::new("static-ranked");
    let mut aware_series = TimeSeries::new("self-aware");
    let divergences = [0.0, 0.25, 0.5, 0.75, 1.0];
    let mut out = String::new();
    let mut table = Table::new(
        format!("F4: utility vs design-divergence ({steps} ticks, {reps} reps)"),
        &["divergence", "static-ranked", "self-aware", "gap"],
    );
    let aggs = Replications::new(0xF4, reps).run_matrix(&divergences, |&delta, seeds| {
        // Design-time belief: the spec the designer was given.
        let designed: Vec<cloudsim::NodeSpec> = (0..12)
            .map(|j| {
                let capacity = 1.0 + (j % 4) as f64;
                if j % 3 == 0 {
                    cloudsim::NodeSpec::reliable(capacity)
                } else {
                    cloudsim::NodeSpec::volunteer(capacity)
                }
            })
            .collect();
        // Reality: capacities rotated by a delta-dependent amount —
        // the machines that actually showed up are not the ones in
        // the design document.
        let shift = (delta * 6.0_f64).round() as usize;
        let actual: Vec<cloudsim::NodeSpec> = (0..12).map(|j| designed[(j + shift) % 12]).collect();
        let believed: Vec<f64> = designed.iter().map(|s| s.capacity).collect();

        let run = |strategy: cloudsim::Strategy, seeds: &SeedTree| {
            let mut cfg = cloudsim::ScenarioConfig::standard(strategy, steps, seeds);
            cfg.specs = actual.clone();
            cloudsim::run_scenario(&cfg, seeds).metrics
        };
        let stat = run(
            cloudsim::Strategy::StaticRanked {
                believed_capacity: believed,
            },
            &seeds,
        );
        let aware = run(
            cloudsim::Strategy::SelfAware {
                levels: LevelSet::full(),
            },
            &seeds,
        );
        let mut m = MetricSet::new();
        m.set("static", stat.get("utility").unwrap_or(0.0));
        m.set("aware", aware.get("utility").unwrap_or(0.0));
        m
    });
    for (i, (&delta, agg)) in divergences.iter().zip(&aggs).enumerate() {
        let s = agg.mean("static");
        let a = agg.mean("aware");
        table.row_owned(vec![
            format!("{delta:.2}"),
            num_ci(s, agg.ci95("static")),
            num_ci(a, agg.ci95("aware")),
            num(a - s),
        ]);
        static_series.push(Tick(i as u64), s);
        aware_series.push(Tick(i as u64), a);
    }
    let _ = writeln!(out, "{table}");
    let _ = writeln!(out, "utility across the divergence sweep:");
    out.push_str(&render_multi(&[&static_series, &aware_series], 5));
    out
}

/// One T6 replicate: [`T6_SIGNALS`] drifting signals monitored under
/// `budget` probes per tick by the attention, round-robin, and random
/// policies. Public so the parity tests can compare sequential and
/// parallel runs of the exact scenario.
#[must_use]
pub fn t6_scenario(budget: usize, steps: u64, seeds: SeedTree) -> MetricSet {
    use rand::Rng as _;
    use selfaware::attention::AttentionAllocator;
    let n_signals = T6_SIGNALS;
    let mut world_rng = seeds.rng("world");
    // Signals: a few fast random walks, the rest near-static.
    let volatilities: Vec<f64> = (0..n_signals)
        .map(|i| if i % 4 == 0 { 1.0 } else { 0.02 })
        .collect();
    let mut truth: Vec<f64> = vec![0.0; n_signals];

    let mut attn = AttentionAllocator::new(n_signals, 0.1, 0.05);
    let mut beliefs = vec![vec![0.0f64; n_signals]; 3]; // attn, rr, random
    let mut errors = [0.0f64; 3];
    let mut rr_next = 0usize;
    let mut policy_rng = seeds.rng("policy");
    let mut samples = 0u64;
    for t in 0..steps {
        // World moves.
        for i in 0..n_signals {
            truth[i] += world_rng.gen_range(-volatilities[i]..=volatilities[i]);
        }
        // Attention policy.
        let picked = attn.select(budget as f64, Tick(t), &mut policy_rng);
        for &i in &picked {
            attn.feed(i, truth[i], Tick(t));
            beliefs[0][i] = truth[i];
        }
        // Round-robin policy.
        for _ in 0..budget {
            let i = rr_next % n_signals;
            rr_next += 1;
            beliefs[1][i] = truth[i];
        }
        // Random policy.
        for _ in 0..budget {
            let i = policy_rng.gen_range(0..n_signals);
            beliefs[2][i] = truth[i];
        }
        // Score: mean absolute belief error across signals.
        for (p, belief) in beliefs.iter().enumerate() {
            let err: f64 = belief
                .iter()
                .zip(&truth)
                .map(|(b, t)| (b - t).abs())
                .sum::<f64>()
                / n_signals as f64;
            errors[p] += err;
        }
        samples += 1;
    }
    let mut m = MetricSet::new();
    m.set("attention", errors[0] / samples as f64);
    m.set("round_robin", errors[1] / samples as f64);
    m.set("random", errors[2] / samples as f64);
    m
}

/// T6 — attention under a monitoring budget: utility of budgeted
/// sensing policies on a field of drifting signals.
#[must_use]
pub fn run_t6(reps: u32, steps: u64) -> Table {
    let n_signals = T6_SIGNALS;
    let mut table = Table::new(
        format!(
            "T6: monitoring under budget ({n_signals} signals, {steps} ticks, {reps} reps; \
             cell = mean tracking error, lower is better)"
        ),
        &[
            "budget",
            "attention",
            "round-robin",
            "random",
            "attn advantage",
        ],
    );
    let budgets = [1usize, 2, 4, 8];
    let aggs = Replications::new(0x76, reps)
        .run_matrix(&budgets, |&budget, seeds| t6_scenario(budget, steps, seeds));
    for (budget, agg) in budgets.iter().zip(&aggs) {
        let a = agg.mean("attention");
        let rr = agg.mean("round_robin");
        let rnd = agg.mean("random");
        table.row_owned(vec![
            budget.to_string(),
            num_ci(a, agg.ci95("attention")),
            num(rr),
            num(rnd),
            format!("{:+.1}%", (1.0 - a / rr.min(rnd)) * 100.0),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    // Smoke tests at reduced scale: every experiment runs and produces
    // non-empty output with the expected headline ordering.

    #[test]
    fn t1_small_self_aware_wins() {
        let t = run_t1(2, 1500);
        assert_eq!(t.len(), 4);
        // utility column is last; self-aware row is last.
        let parse = |s: &str| s.split('±').next().unwrap().parse::<f64>().unwrap();
        let sa = parse(t.cell(3, 5).unwrap());
        let random = parse(t.cell(0, 5).unwrap());
        assert!(sa > random, "self-aware {sa} vs random {random}");
    }

    #[test]
    fn t2_small_runs() {
        let t = run_t2(2, 1200);
        assert_eq!(t.len(), 5);
        let parse = |s: &str| s.split('±').next().unwrap().parse::<f64>().unwrap();
        let none = parse(t.cell(0, 4).unwrap());
        let full = parse(t.cell(4, 4).unwrap());
        assert!(full > none, "full stack {full} should beat none {none}");
    }

    #[test]
    fn t3_small_runs() {
        let t = run_t3(2, 2000);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn f1_renders() {
        let s = run_f1(2000);
        assert!(s.contains("self-aware"));
        assert!(s.contains("broadcast"));
        assert!(s.contains("scale:"));
    }

    #[test]
    fn f2_cpn_wins_attack_phase() {
        let s = run_f2(1800);
        assert!(s.contains("cpn"));
        assert!(s.contains("static-shortest"));
    }

    #[test]
    fn t4_small_runs() {
        let t = run_t4(2, 1500);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn f3_pool_is_competitive() {
        let s = run_f3(2000);
        assert!(s.contains("meta-pool"));
        assert!(s.contains("model switches"));
    }

    #[test]
    fn t5_gossip_has_no_hotspot() {
        let t = run_t5(3);
        assert_eq!(t.len(), 9);
        // For N=200 rows (last three), gossip hot-spot load should be
        // far below central's.
        let central_load: f64 = t.cell(6, 4).unwrap().parse().unwrap();
        let gossip_load: f64 = t.cell(8, 4).unwrap().parse().unwrap();
        assert!(gossip_load < central_load / 4.0);
    }

    #[test]
    fn f4_gap_grows_with_divergence() {
        let s = run_f4(2, 1500);
        assert!(s.contains("divergence"));
        assert!(s.contains("self-aware"));
    }

    #[test]
    fn t6_attention_beats_baselines_at_tight_budget() {
        let t = run_t6(2, 1500);
        assert_eq!(t.len(), 4);
        let a: f64 = t
            .cell(0, 1)
            .unwrap()
            .split('±')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        let rr: f64 = t.cell(0, 2).unwrap().parse().unwrap();
        assert!(
            a < rr,
            "attention error {a} should beat round-robin {rr} at budget 1"
        );
    }
}

/// A1 (ablation) — the camera network's ask-threshold knob: how the
/// affinity threshold of the self-aware handover strategy trades
/// tracking quality against communication.
#[must_use]
pub fn run_a1(reps: u32, steps: u64) -> Table {
    let mut table = Table::new(
        format!("A1: camnet self-aware ask-threshold sweep ({steps} ticks, {reps} reps)"),
        &["threshold", "quality", "untracked", "msgs/tick", "utility"],
    );
    let thresholds = [0.1, 0.2, 0.25, 0.35, 0.5];
    let aggs = Replications::new(0xA1, reps).run_matrix(&thresholds, |&threshold, seeds| {
        let strategy = camnet::HandoverStrategy::SelfAware {
            threshold,
            epsilon: 0.05,
        };
        camnet::run_camnet(&camnet::CamnetConfig::standard(strategy, steps), &seeds).metrics
    });
    for (threshold, agg) in thresholds.iter().zip(&aggs) {
        table.row_owned(vec![
            format!("{threshold:.2}"),
            num_ci(agg.mean("track_quality"), agg.ci95("track_quality")),
            num(agg.mean("untracked_ratio")),
            num_ci(agg.mean("messages_per_tick"), agg.ci95("messages_per_tick")),
            num_ci(agg.mean("utility"), agg.ci95("utility")),
        ]);
    }
    table
}

/// A2 (ablation) — the CPN's smart-packet ratio: how much exploration
/// traffic the network needs to keep re-planning under attack.
#[must_use]
pub fn run_a2(reps: u32, steps: u64) -> Table {
    let mut table = Table::new(
        format!("A2: cpn smart-packet ratio sweep ({steps} ticks, {reps} reps)"),
        &[
            "smart ratio",
            "delivery",
            "delay pre",
            "delay attack",
            "delay post",
        ],
    );
    let ratios = [0.0, 0.05, 0.1, 0.25, 0.5];
    let aggs = Replications::new(0xA2, reps).run_matrix(&ratios, |&smart_ratio, seeds| {
        let strategy = cpn::RoutingStrategy::Cpn {
            smart_ratio,
            epsilon: 0.1,
        };
        cpn::run_cpn(&cpn::CpnConfig::standard(strategy, steps), &seeds).metrics
    });
    for (smart_ratio, agg) in ratios.iter().zip(&aggs) {
        table.row_owned(vec![
            format!("{smart_ratio:.2}"),
            num_ci(agg.mean("delivery_ratio"), agg.ci95("delivery_ratio")),
            num(agg.mean("delay_pre")),
            num_ci(agg.mean("delay_attack"), agg.ci95("delay_attack")),
            num(agg.mean("delay_post")),
        ]);
    }
    table
}

/// A3 (ablation) — the meta model-pool's switching hysteresis
/// (`patience`): too eager thrashes on noise, too patient lags regime
/// changes.
#[must_use]
pub fn run_a3(reps: u32, steps: u64) -> Table {
    use workloads::signal::{SignalGen, SignalSpec};
    let mut table = Table::new(
        format!("A3: model-pool patience sweep ({steps} ticks, {reps} reps)"),
        &["patience", "mae", "switches"],
    );
    let patiences = [1u32, 4, 8, 32, 128];
    let aggs = Replications::new(0xA3, reps).run_matrix(&patiences, |&patience, seeds| {
        let regimes = vec![
            (0, SignalSpec::Flat { level: 10.0 }),
            (
                steps / 4,
                SignalSpec::Trend {
                    start: 10.0,
                    slope: 0.3,
                },
            ),
            (
                steps / 2,
                SignalSpec::Oscillation {
                    center: 40.0,
                    amplitude: 8.0,
                    period: 40.0,
                },
            ),
            (3 * steps / 4, SignalSpec::Flat { level: 25.0 }),
        ];
        let mut gen = SignalGen::new(regimes, 0.5, seeds.rng("signal"));
        let mut pool = ModelPool::new(0.1, patience);
        pool.add("ewma", Box::new(Ewma::new(0.3)));
        pool.add("holt", Box::new(Holt::new(0.5, 0.3)));
        pool.add("ar", Box::new(ArModel::new(2, 64)));
        let mut err = 0.0;
        let mut n = 0u64;
        for t in 0..steps {
            let x = gen.sample(Tick(t));
            if let Some(p) = pool.forecast() {
                err += (p - x).abs();
                n += 1;
            }
            pool.observe(x);
        }
        let mut m = MetricSet::new();
        m.set("mae", err / n.max(1) as f64);
        m.set("switches", f64::from(pool.switches()));
        m
    });
    for (patience, agg) in patiences.iter().zip(&aggs) {
        table.row_owned(vec![
            patience.to_string(),
            num_ci(agg.mean("mae"), agg.ci95("mae")),
            format!("{:.1}", agg.mean("switches")),
        ]);
    }
    table
}

#[cfg(test)]
mod ablation_tests {
    use super::*;

    #[test]
    fn a1_threshold_monotone_in_messages() {
        let t = run_a1(2, 1500);
        assert_eq!(t.len(), 5);
        // Higher threshold → fewer messages (weak monotone check on
        // the extremes).
        let parse = |s: &str| s.split('±').next().unwrap().parse::<f64>().unwrap();
        let loose = parse(t.cell(0, 3).unwrap());
        let tight = parse(t.cell(4, 3).unwrap());
        assert!(tight < loose, "tight {tight} vs loose {loose}");
    }

    #[test]
    fn a2_runs() {
        let t = run_a2(2, 1200);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn a3_extremes_are_worse_or_equal() {
        let t = run_a3(3, 2000);
        assert_eq!(t.len(), 5);
        // Eager switching (patience 1) must switch much more often
        // than patient (128).
        let eager: f64 = t.cell(0, 2).unwrap().parse().unwrap();
        let patient: f64 = t.cell(4, 2).unwrap().parse().unwrap();
        assert!(eager > patient, "eager {eager} vs patient {patient}");
    }
}

/// Cameras taken down by the F5 outage: the centre block of the
/// standard 4×4 grid, which carries the most handover traffic.
pub const F5_OUTAGE_CAMERAS: [usize; 4] = [5, 6, 9, 10];

/// The F5 fault plan: the grid-centre cameras fail together at
/// `steps/3` and reboot at `2*steps/3`.
#[must_use]
pub fn f5_fault_plan(steps: u64) -> workloads::FaultPlan {
    let fail = Tick(steps / 3);
    let recover = Tick(2 * steps / 3);
    let mut events = Vec::new();
    for &c in &F5_OUTAGE_CAMERAS {
        events.push(workloads::FaultEvent::camera_fail(fail, c));
        events.push(workloads::FaultEvent::camera_recover(recover, c));
    }
    workloads::FaultPlan::new(events)
}

/// One F5 replicate: the standard camera network hit by the
/// grid-centre outage. Metric keys:
///
/// * `quality` — whole-run mean tracking quality;
/// * `pre_quality` — mean windowed quality before the outage;
/// * `recovery_ticks` — ticks after reboot until windowed quality
///   first returns to 95% of `pre_quality` (censored at end-of-run);
/// * `degradation_area` — integral of quality lost vs `pre_quality`
///   from outage onset onwards (quality-ticks).
///
/// Public so the parity tests can compare sequential and parallel
/// runs of the exact scenario.
#[must_use]
pub fn f5_scenario(strategy: &camnet::HandoverStrategy, seeds: SeedTree, steps: u64) -> MetricSet {
    let fail_at = steps / 3;
    let recover_at = 2 * steps / 3;
    let mut cfg = camnet::CamnetConfig::standard(*strategy, steps);
    cfg.faults = f5_fault_plan(steps);
    let result = camnet::run_camnet(&cfg, &seeds);

    let pts = result.quality.points();
    let window: u64 = 50; // camnet samples quality every 50 ticks
    let pre: Vec<f64> = pts
        .iter()
        .filter(|&&(t, _)| t < fail_at)
        .map(|&(_, q)| q)
        .collect();

    let mut m = MetricSet::new();
    m.set(
        "quality",
        result.metrics.get("track_quality").unwrap_or(0.0),
    );
    // A horizon too short to yield a pre-fault quality sample (camnet
    // samples every 50 ticks, so `steps / 3 <= 50`) has no baseline.
    // Dividing by `pre.len().max(1)` here used to report
    // `pre_quality = 0.0`, which makes the recovery predicate
    // `q >= 0.95 * pre_quality` trivially true (instant "recovery")
    // and zeroes the degradation area. Flag the replicate and omit
    // the derived metrics rather than reporting vacuous zeros.
    if pre.is_empty() {
        m.set("pre_window_empty", 1.0);
    } else {
        let pre_quality = pre.iter().sum::<f64>() / pre.len() as f64;
        let recovery_ticks = pts
            .iter()
            .find(|&&(t, q)| t >= recover_at && q >= 0.95 * pre_quality)
            .map_or(steps.saturating_sub(recover_at), |&(t, _)| t - recover_at);
        let degradation_area: f64 = pts
            .iter()
            .filter(|&&(t, _)| t >= fail_at)
            .map(|&(_, q)| (pre_quality - q).max(0.0) * window as f64)
            .sum();
        m.set("pre_window_empty", 0.0);
        m.set("pre_quality", pre_quality);
        m.set("recovery_ticks", recovery_ticks as f64);
        m.set("degradation_area", degradation_area);
    }
    obs::emit(obs::Json::obj([
        ("scenario", obs::Json::str("f5")),
        ("metrics", metrics_json(&m)),
        ("explanations", result.comms_log.to_json()),
    ]));
    m
}

/// F5 — graceful degradation under a camera outage: how fast each
/// handover strategy re-forms coalitions after the grid-centre
/// cameras fail, and how much tracking quality the outage costs.
#[must_use]
pub fn run_f5(reps: u32, steps: u64) -> Table {
    let arms = vec![
        camnet::HandoverStrategy::Broadcast,
        camnet::HandoverStrategy::Static { k: 3 },
        camnet::HandoverStrategy::self_aware_default(),
    ];
    let mut table = Table::new(
        format!("F5: camnet outage recovery ({steps} ticks, 4-camera outage, {reps} reps)"),
        &[
            "strategy",
            "quality",
            "pre-fault",
            "recovery ticks",
            "degradation area",
        ],
    );
    let aggs = Replications::new(0xF5, reps)
        .run_matrix(&arms, |strategy, seeds| f5_scenario(strategy, seeds, steps));
    let labels: Vec<String> = arms.iter().map(camnet::HandoverStrategy::label).collect();
    RunTrace {
        experiment: "f5",
        seed: 0xF5,
        replicates: reps,
        steps,
        config: &format!("f5 arms={labels:?} steps={steps} outage=grid-centre"),
        arms: &labels,
        reports: &aggs,
    }
    .export();
    for (strategy, agg) in arms.iter().zip(&aggs) {
        table.row_owned(vec![
            strategy.label(),
            num_ci(agg.mean("quality"), agg.ci95("quality")),
            num(agg.mean("pre_quality")),
            format!("{:.0}", agg.mean("recovery_ticks")),
            num_ci(agg.mean("degradation_area"), agg.ci95("degradation_area")),
        ]);
    }
    table
}

/// Number of redundant sensors observing the F6 signal.
pub const F6_SENSORS: usize = 3;

/// The F6 fault plan: a stuck-at, a bias shift, a dropout, a heavy
/// noise burst, and a *mean-reverting* noise burst staggered across
/// the three sensors. The last one is the variance-ratio watchdog's
/// target: it stays centred on the truth (5× the healthy sensor
/// noise, but zero mean), so the residual/outlier test keeps learning
/// it and only the residual-power ratio gives it away.
#[must_use]
pub fn f6_fault_plan(steps: u64) -> workloads::FaultPlan {
    use workloads::{FaultEvent, SensorFaultKind};
    workloads::FaultPlan::new(vec![
        FaultEvent::sensor_fault(
            Tick(steps / 8),
            1,
            SensorFaultKind::Noise { sigma: 1.0 },
            steps / 10,
        ),
        FaultEvent::sensor_fault(Tick(steps / 4), 0, SensorFaultKind::StuckAt, steps / 4),
        FaultEvent::sensor_fault(
            Tick(steps / 2),
            1,
            SensorFaultKind::Bias { offset: 4.0 },
            steps / 6,
        ),
        FaultEvent::sensor_fault(Tick(2 * steps / 3), 2, SensorFaultKind::Dropout, steps / 8),
        FaultEvent::sensor_fault(
            Tick(4 * steps / 5),
            0,
            SensorFaultKind::Noise { sigma: 3.0 },
            steps / 10,
        ),
    ])
}

/// One F6 replicate: three noisy sensors observe an oscillating truth
/// while the [`f6_fault_plan`] corrupts them; the fused estimate is
/// the mean of the readings each arm trusts. Metric keys: `mae`
/// (whole run), `mae_faulty` / `mae_clean` (ticks with/without an
/// active sensor fault), `quarantines`, `restores`, `degraded_ticks`.
///
/// Public so the parity tests can compare sequential and parallel
/// runs of the exact scenario.
#[must_use]
pub fn f6_scenario(guarded: bool, seeds: SeedTree, steps: u64) -> MetricSet {
    use rand::Rng as _;
    use selfaware::explain::ExplanationLog;
    use selfaware::health::SensorHealth;
    use workloads::signal::{SignalGen, SignalSpec};

    let plan = f6_fault_plan(steps);
    let mut gen = SignalGen::new(
        vec![(
            0,
            SignalSpec::Oscillation {
                center: 20.0,
                amplitude: 6.0,
                period: 300.0,
            },
        )],
        0.0,
        seeds.rng("truth"),
    );
    let mut srng = seeds.rng("sensor-noise");
    let mut frng = seeds.rng("fault-noise");
    let mut health = SensorHealth::default();
    let mut log = ExplanationLog::new(1024);
    let keys: Vec<String> = (0..F6_SENSORS).map(|i| format!("s{i}")).collect();
    let mut held = [20.0f64; F6_SENSORS];
    let mut est_prev = 20.0;
    let (mut err, mut err_faulty, mut err_clean) = (0.0f64, 0.0f64, 0.0f64);
    let (mut n_faulty, mut n_clean) = (0u64, 0u64);
    let mut degraded_ticks = 0u64;

    for t in 0..steps {
        let now = Tick(t);
        let sense_span = obs::span("f6:sense");
        let truth = gen.sample(now);
        let mut trusted: Vec<f64> = Vec::with_capacity(F6_SENSORS);
        let mut any_fault = false;
        let mut any_degraded = false;
        for i in 0..F6_SENSORS {
            let clean = truth + 0.2 * (srng.gen::<f64>() * 2.0 - 1.0);
            let fault = plan.sensor_fault_at(i, now);
            let raw = match fault {
                Some(k) => {
                    any_fault = true;
                    k.corrupt(clean, held[i], &mut frng)
                }
                None => {
                    held[i] = clean;
                    Some(clean)
                }
            };
            if guarded {
                // The previous fused estimate anchors the recovery
                // probe: a sensor leaves quarantine by agreeing with
                // the healthy consensus, not with its own stale model.
                let r = health.observe_with_reference(&keys[i], raw, Some(est_prev), now, &mut log);
                any_degraded |= r.degraded;
                if !r.degraded && !r.substituted {
                    trusted.push(r.value);
                }
            } else if let Some(x) = raw {
                trusted.push(x);
            }
        }
        drop(sense_span);
        let _decide_span = obs::span("f6:decide");
        // With every sensor distrusted (or silent), hold the last
        // estimate — the degraded-mode fallback.
        let est = if trusted.is_empty() {
            est_prev
        } else {
            trusted.iter().sum::<f64>() / trusted.len() as f64
        };
        est_prev = est;
        let e = (est - truth).abs();
        err += e;
        if any_fault {
            err_faulty += e;
            n_faulty += 1;
        } else {
            err_clean += e;
            n_clean += 1;
        }
        degraded_ticks += u64::from(any_degraded);
    }

    let mut m = MetricSet::new();
    m.set("mae", err / steps.max(1) as f64);
    m.set("mae_faulty", err_faulty / n_faulty.max(1) as f64);
    m.set("mae_clean", err_clean / n_clean.max(1) as f64);
    m.set("quarantines", health.quarantine_events() as f64);
    m.set("restores", health.restore_events() as f64);
    m.set("degraded_ticks", degraded_ticks as f64);
    // Quarantines attributed to the variance-ratio watchdog rather
    // than the residual/outlier test — the mean-reverting burst in
    // the plan is invisible to the latter.
    let variance_quarantines = log
        .iter()
        .filter(|e| {
            e.action.starts_with("quarantine:")
                && e.factors.iter().any(|f| f.name == "variance_ratio")
        })
        .count();
    m.set("variance_quarantines", variance_quarantines as f64);
    obs::emit(obs::Json::obj([
        ("scenario", obs::Json::str("f6")),
        ("guarded", obs::Json::Bool(guarded)),
        ("metrics", metrics_json(&m)),
        ("health", health.stats_json()),
        ("explanations", log.to_json()),
    ]));
    m
}

/// F6 — sensor-fault ablation: the same faulty sensor suite fused
/// with and without the [`SensorHealth`](selfaware::health::SensorHealth)
/// monitor. Self-awareness of one's own instruments should cut the
/// error paid during fault windows without hurting clean operation.
#[must_use]
pub fn run_f6(reps: u32, steps: u64) -> Table {
    let arms = [false, true];
    let mut table = Table::new(
        format!("F6: sensor-fault ablation ({steps} ticks, {reps} reps)"),
        &[
            "fusion",
            "mae",
            "mae (fault windows)",
            "mae (clean)",
            "quarantines",
            "degraded ticks",
        ],
    );
    let aggs = Replications::new(0xF6, reps)
        .run_matrix(&arms, |&guarded, seeds| f6_scenario(guarded, seeds, steps));
    let labels: Vec<String> = arms
        .iter()
        .map(|&g| if g { "health-guarded" } else { "raw mean" }.to_string())
        .collect();
    RunTrace {
        experiment: "f6",
        seed: 0xF6,
        replicates: reps,
        steps,
        config: &format!("f6 arms={labels:?} steps={steps} sensors={F6_SENSORS}"),
        arms: &labels,
        reports: &aggs,
    }
    .export();
    for (guarded, agg) in arms.iter().zip(&aggs) {
        table.row_owned(vec![
            if *guarded {
                "health-guarded"
            } else {
                "raw mean"
            }
            .to_string(),
            num_ci(agg.mean("mae"), agg.ci95("mae")),
            num_ci(agg.mean("mae_faulty"), agg.ci95("mae_faulty")),
            num(agg.mean("mae_clean")),
            format!("{:.1}", agg.mean("quarantines")),
            format!("{:.0}", agg.mean("degraded_ticks")),
        ]);
    }
    table
}

#[cfg(test)]
mod fault_experiment_tests {
    use super::*;

    #[test]
    fn f5_reports_recovery_and_degradation() {
        let t = run_f5(2, 1500);
        assert_eq!(t.len(), 3);
        for row in 0..3 {
            let area: f64 = t
                .cell(row, 4)
                .unwrap()
                .split('±')
                .next()
                .unwrap()
                .parse()
                .unwrap();
            assert!(area >= 0.0);
        }
    }

    #[test]
    fn f5_scenario_degrades_during_outage() {
        let m = f5_scenario(&camnet::HandoverStrategy::Broadcast, SeedTree::new(7), 1800);
        assert!(m.get("pre_quality").unwrap_or(0.0) > 0.3);
        assert!(m.get("degradation_area").unwrap_or(-1.0) >= 0.0);
    }

    #[test]
    fn f5_empty_pre_window_is_flagged_not_zeroed() {
        // `steps < 3` puts the outage at tick 0, so no quality sample
        // can precede it. The scenario used to divide by
        // `pre.len().max(1)` and report `pre_quality = 0.0`, which
        // makes the recovery predicate `q >= 0.95 * pre_quality`
        // trivially true (`recovery_ticks = 0`) and zeroes the
        // degradation area — silently optimistic nonsense. Now the
        // replicate is flagged and the derived metrics are omitted.
        for steps in [1u64, 2] {
            let m = f5_scenario(
                &camnet::HandoverStrategy::Broadcast,
                SeedTree::new(1),
                steps,
            );
            assert_eq!(m.get("pre_window_empty"), Some(1.0));
            assert_eq!(m.get("pre_quality"), None);
            assert_eq!(m.get("recovery_ticks"), None);
            assert_eq!(m.get("degradation_area"), None);
        }
        // A usable horizon still reports the full metric set.
        let m = f5_scenario(&camnet::HandoverStrategy::Broadcast, SeedTree::new(1), 300);
        assert_eq!(m.get("pre_window_empty"), Some(0.0));
        assert!(m.get("pre_quality").is_some());
        assert!(m.get("recovery_ticks").is_some());
        assert!(m.get("degradation_area").is_some());
    }

    #[test]
    fn f6_guarded_beats_raw_in_fault_windows() {
        let a = f6_scenario(false, SeedTree::new(11), 3000);
        let b = f6_scenario(true, SeedTree::new(11), 3000);
        let raw = a.get("mae_faulty").unwrap_or(f64::NAN);
        let guarded = b.get("mae_faulty").unwrap_or(f64::NAN);
        assert!(
            guarded < raw,
            "guarded {guarded} should beat raw {raw} during faults"
        );
        assert!(b.get("quarantines").unwrap_or(0.0) >= 3.0);
        // The mean-reverting burst on sensor 1 is caught by the
        // variance-ratio watchdog specifically, and the quarantine
        // explanation cites it.
        assert!(
            b.get("variance_quarantines").unwrap_or(0.0) >= 1.0,
            "variance-ratio watchdog must fire on the mean-reverting burst"
        );
        assert_eq!(a.get("variance_quarantines"), Some(0.0));
    }

    #[test]
    fn f6_table_renders_both_arms() {
        let t = run_f6(2, 2000);
        assert_eq!(t.len(), 2);
    }
}

/// Controller arm for the F7 corruption ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum F7Arm {
    /// Reactive: control = last observation. No model to corrupt —
    /// the floor a broken forecaster should fall back to.
    Baseline,
    /// An unsupervised Holt forecaster drives control directly;
    /// corruption flows straight into the control signal.
    Unsupervised,
    /// The same Holt forecaster watchdogged by a
    /// [`Supervisor`](selfaware::supervision::Supervisor):
    /// checkpoint/rollback, reactive fallback, backoff re-promotion.
    Supervised,
}

impl F7Arm {
    /// Short table label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            F7Arm::Baseline => "baseline (reactive)",
            F7Arm::Unsupervised => "unsupervised holt",
            F7Arm::Supervised => "supervised holt",
        }
    }
}

/// The fixed F7 corruption plan: NaN poison at `steps/4`, a ×25
/// weight scramble at `steps/2`, and a `steps/10` state freeze at
/// `3*steps/4`, all aimed at controller 0.
#[must_use]
pub fn f7_fault_plan(steps: u64) -> workloads::FaultPlan {
    use workloads::faults::ModelCorruptionKind;
    workloads::FaultPlan::new(vec![
        workloads::FaultEvent::model_corruption(Tick(steps / 4), 0, ModelCorruptionKind::NanPoison),
        workloads::FaultEvent::model_corruption(
            Tick(steps / 2),
            0,
            ModelCorruptionKind::WeightScramble { gain: 25.0 },
        ),
        workloads::FaultEvent::model_corruption(
            Tick(3 * steps / 4),
            0,
            ModelCorruptionKind::StateFreeze {
                duration: steps / 10,
            },
        ),
    ])
}

/// Per-tick regret is capped here so one NaN/exploded forecast costs
/// a bounded (but heavy) penalty instead of destroying the mean.
pub const F7_REGRET_CAP: f64 = 50.0;
/// Ticks after each corruption onset that count as the "corrupted
/// window" for `regret_corrupt`.
pub const F7_WINDOW: u64 = 150;

/// One F7 replicate: a controller tracks a drifting demand signal
/// while `plan` corrupts its forecasting model. Control for tick
/// `t+1` is chosen at the end of tick `t`; regret is
/// `min(|control - truth|, F7_REGRET_CAP)` (non-finite control pays
/// the cap). Metric keys:
///
/// * `mean_regret` — whole-run mean per-tick regret;
/// * `regret_corrupt` — mean regret inside the [`F7_WINDOW`]-tick
///   windows after each corruption onset;
/// * `recovery_ticks` — mean ticks from onset until the 10-tick
///   smoothed regret first returns inside twice the pre-corruption
///   band (censored at the next onset / end of run);
/// * `model_rollbacks` / `model_fallbacks` / `model_repromotions` —
///   supervisor interventions (0 for the other arms);
/// * `explanations` — supervision entries in the
///   [`ExplanationLog`](selfaware::explain::ExplanationLog).
///
/// Public so the parity and property tests can compare sequential and
/// parallel runs of the exact scenario.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn f7_scenario(
    arm: F7Arm,
    plan: &workloads::FaultPlan,
    seeds: SeedTree,
    steps: u64,
) -> MetricSet {
    use selfaware::explain::ExplanationLog;
    use selfaware::supervision::{ControlSource, Evidence, Supervisor};
    use workloads::faults::{FaultKind, ModelCorruptionKind};
    use workloads::signal::{SignalGen, SignalSpec};

    // Drifting demand with regime changes: enough structure that a
    // healthy forecaster beats pure reaction, and mis-forecasts cost.
    let regimes = vec![
        (
            0,
            SignalSpec::Trend {
                start: 20.0,
                slope: 0.02,
            },
        ),
        (
            steps / 3,
            SignalSpec::Oscillation {
                center: 30.0,
                amplitude: 6.0,
                period: 120.0,
            },
        ),
        (2 * steps / 3, SignalSpec::Flat { level: 24.0 }),
    ];
    let mut gen = SignalGen::new(regimes, 0.8, seeds.rng("demand"));

    let mut model = Holt::new(0.3, 0.1);
    let mut sup =
        (arm == F7Arm::Supervised).then(|| Supervisor::new("f7-demand", Holt::new(0.3, 0.1)));
    let mut log = ExplanationLog::new(1024);
    let mut frozen_until: Option<Tick> = None;
    let mut control: Option<f64> = None;
    let mut regret = Vec::with_capacity(steps as usize);
    let mut onsets: Vec<u64> = Vec::new();

    for t in 0..steps {
        let now = Tick(t);
        let sense_span = obs::span("f7:sense");
        let x = gen.sample(now);

        // Corruption strikes before the tick's model update, as in the
        // substrate simulators.
        for ev in plan.events_at(now) {
            if let FaultKind::ModelCorruption { kind, .. } = ev.kind {
                onsets.push(t);
                let target = match (&mut sup, arm) {
                    (Some(s), _) => Some(s.model_mut()),
                    (None, F7Arm::Unsupervised) => Some(&mut model),
                    _ => None,
                };
                match (kind, target) {
                    (ModelCorruptionKind::NanPoison, Some(m)) => {
                        m.set_state(f64::NAN, f64::NAN);
                    }
                    (ModelCorruptionKind::WeightScramble { gain }, Some(m)) => {
                        let (level, trend) = (m.level(), m.trend());
                        m.set_state(level * gain, -trend * gain - gain);
                    }
                    (ModelCorruptionKind::StateFreeze { duration }, _) => {
                        frozen_until = Some(Tick(t + duration));
                    }
                    _ => {}
                }
            }
        }
        let frozen = frozen_until.is_some_and(|until| now < until);
        drop(sense_span);
        let _decide_span = obs::span("f7:decide");

        // Score yesterday's control decision against today's truth.
        if let Some(c) = control {
            let r = (c - x).abs();
            regret.push(if r.is_finite() {
                r.min(F7_REGRET_CAP)
            } else {
                F7_REGRET_CAP
            });
        } else {
            regret.push(0.0);
        }

        // Update the model and choose control for the next tick.
        control = Some(match (&mut sup, arm) {
            (Some(s), _) => {
                if !frozen {
                    s.model_mut().observe(x);
                }
                let out = s.model().forecast_h(1).unwrap_or(x);
                let _ = s.observe(now, Evidence::forecast(x, out), &mut log);
                if s.source() == ControlSource::Model && out.is_finite() {
                    out
                } else {
                    x // reactive fallback while benched / non-finite
                }
            }
            (None, F7Arm::Unsupervised) => {
                if !frozen {
                    model.observe(x);
                }
                // Honest degradation: whatever the model says, flows.
                model.forecast_h(1).unwrap_or(x)
            }
            _ => x,
        });
    }

    onsets.sort_unstable();
    onsets.dedup();
    let first_onset = onsets.first().copied().unwrap_or(steps) as usize;
    let pre = &regret[..first_onset.max(1).min(regret.len())];
    let pre_mean = pre.iter().sum::<f64>() / pre.len().max(1) as f64;
    let band = 2.0 * pre_mean + 1.0;
    // Trailing 10-tick mean, clipped at the onset so pre-corruption
    // calm cannot mask the spike.
    let smooth = |i: usize, onset: usize| -> f64 {
        let lo = i.saturating_sub(9).max(onset);
        regret[lo..=i].iter().sum::<f64>() / (i - lo + 1) as f64
    };

    let mut corrupt_sum = 0.0;
    let mut corrupt_n = 0u64;
    let mut recovery_sum = 0.0;
    for (k, &onset) in onsets.iter().enumerate() {
        let end = onsets
            .get(k + 1)
            .copied()
            .unwrap_or(steps)
            .min(regret.len() as u64);
        let window_end = (onset + F7_WINDOW).min(regret.len() as u64);
        for &r in &regret[onset as usize..window_end as usize] {
            corrupt_sum += r;
            corrupt_n += 1;
        }
        let recovered = (onset..end)
            .position(|i| smooth(i as usize, onset as usize) <= band)
            .map_or(end - onset, |d| d as u64);
        recovery_sum += recovered as f64;
    }

    let stats = sup.as_ref().map(Supervisor::stats).unwrap_or_default();
    let mut m = MetricSet::new();
    m.set(
        "mean_regret",
        regret.iter().sum::<f64>() / regret.len().max(1) as f64,
    );
    m.set("regret_corrupt", corrupt_sum / corrupt_n.max(1) as f64);
    m.set("recovery_ticks", recovery_sum / onsets.len().max(1) as f64);
    m.set("model_rollbacks", f64::from(stats.rollbacks));
    m.set("model_fallbacks", f64::from(stats.fallbacks));
    m.set("model_repromotions", f64::from(stats.repromotions));
    m.set("explanations", log.len() as f64);
    obs::emit(obs::Json::obj([
        ("scenario", obs::Json::str("f7")),
        ("arm", obs::Json::str(arm.label())),
        ("metrics", metrics_json(&m)),
        ("supervision", stats.to_json()),
        ("explanations", log.to_json()),
    ]));
    m
}

/// F7 — controller-corruption ablation: the same corrupted forecaster
/// run bare, and under meta-self-aware supervision, against the
/// reactive floor. Supervision should bound the corrupted-window
/// regret and recover the model instead of riding it into the ground.
#[must_use]
pub fn run_f7(reps: u32, steps: u64) -> Table {
    let arms = [F7Arm::Baseline, F7Arm::Unsupervised, F7Arm::Supervised];
    let mut table = Table::new(
        format!(
            "F7: controller corruption ablation ({steps} ticks, {reps} reps; \
             NaN poison, weight scramble, state freeze)"
        ),
        &[
            "controller",
            "mean regret",
            "corrupted-window regret",
            "recovery ticks",
            "rollbacks",
            "fallbacks",
        ],
    );
    let aggs = Replications::new(0xF7, reps).run_matrix(&arms, |&arm, seeds| {
        f7_scenario(arm, &f7_fault_plan(steps), seeds, steps)
    });
    let labels: Vec<String> = arms.iter().map(|a| a.label().to_string()).collect();
    RunTrace {
        experiment: "f7",
        seed: 0xF7,
        replicates: reps,
        steps,
        config: &format!("f7 arms={labels:?} steps={steps}"),
        arms: &labels,
        reports: &aggs,
    }
    .export();
    for (arm, agg) in arms.iter().zip(&aggs) {
        table.row_owned(vec![
            arm.label().to_string(),
            num_ci(agg.mean("mean_regret"), agg.ci95("mean_regret")),
            num_ci(agg.mean("regret_corrupt"), agg.ci95("regret_corrupt")),
            format!("{:.0}", agg.mean("recovery_ticks")),
            format!("{:.1}", agg.mean("model_rollbacks")),
            format!("{:.1}", agg.mean("model_fallbacks")),
        ]);
    }
    table
}

#[cfg(test)]
mod f7_tests {
    use super::*;

    #[test]
    fn supervised_beats_unsupervised_in_corrupted_windows() {
        let steps = 4000;
        let plan = f7_fault_plan(steps);
        let reps = Replications::new(0xF7, 3);
        let uns = reps.run(|seeds| f7_scenario(F7Arm::Unsupervised, &plan, seeds, steps));
        let sup = reps.run(|seeds| f7_scenario(F7Arm::Supervised, &plan, seeds, steps));
        let u = uns.mean("regret_corrupt");
        let s = sup.mean("regret_corrupt");
        assert!(
            s < u,
            "supervised corrupted-window regret {s} must beat unsupervised {u}"
        );
        assert!(
            sup.mean("model_rollbacks") + sup.mean("model_fallbacks") >= 1.0,
            "supervisor must intervene"
        );
        assert!(
            sup.mean("explanations") >= 1.0,
            "interventions must be logged"
        );
    }

    #[test]
    fn supervised_recovery_is_bounded() {
        let steps = 4000;
        let m = f7_scenario(
            F7Arm::Supervised,
            &f7_fault_plan(steps),
            SeedTree::new(0xF7),
            steps,
        );
        let recovery = m.get("recovery_ticks").unwrap();
        assert!(
            recovery < f64::from(u32::try_from(steps / 4).unwrap()),
            "supervised recovery should stay inside the inter-onset gap: {recovery}"
        );
    }

    #[test]
    fn f7_table_is_reproducible() {
        let a = run_f7(2, 2000);
        let b = run_f7(2, 2000);
        assert_eq!(a.len(), 3);
        assert_eq!(format!("{a}"), format!("{b}"));
    }
}

/// One arm of the F8 unreliable-communications sweep: a per-link loss
/// rate, an optional partition length, and the comms policy under
/// test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F8Arm {
    /// Per-message drop probability applied to every comms link.
    pub loss: f64,
    /// Partition length in ticks (0 = no partition). The partition
    /// cuts a fixed node group per substrate: cameras `[0, 1, 4, 5]`
    /// and the CPN's attacked routers from `steps/3`, and cloud zone
    /// agent 2 across the demand spike.
    pub partition: u64,
    /// Fire-and-forget comms instead of the reliable
    /// staleness-weighted protocol.
    pub naive: bool,
}

impl F8Arm {
    /// Short table label, e.g. `20% loss, part 750, staleness-aware`.
    #[must_use]
    pub fn label(&self) -> String {
        let policy = if self.naive {
            "naive"
        } else {
            "staleness-aware"
        };
        if self.partition > 0 {
            format!(
                "{:.0}% loss, part {}, {policy}",
                self.loss * 100.0,
                self.partition
            )
        } else {
            format!("{:.0}% loss, {policy}", self.loss * 100.0)
        }
    }

    fn policy(&self) -> selfaware::comms::CommsPolicy {
        if self.naive {
            selfaware::comms::CommsPolicy::Naive
        } else {
            selfaware::comms::CommsPolicy::default()
        }
    }
}

/// The F8 cloud configuration: an 18-node pool driven through a
/// 3-zone command plane by a stimulus+time controller, with flat
/// demand and a sustained ×3 spike in the last quarter. Goal-level
/// safety adaptation is deliberately absent: it would partially mask
/// command loss by re-renting reachable zones whenever violations
/// rise, and F8 measures the command plane itself. The optional
/// partition cuts zone agent 2 just before the spike so the
/// controller must re-home its capacity elsewhere — or fail to.
///
/// Public so the parity and property tests can re-run the exact
/// scenario.
#[must_use]
pub fn f8_cloud_cfg(arm: F8Arm, seeds: &SeedTree, steps: u64) -> cloudsim::ScenarioConfig {
    use workloads::faults::{ChannelPlan, LinkModel};
    let mut cfg = cloudsim::ScenarioConfig::standard(
        cloudsim::Strategy::SelfAware {
            levels: LevelSet::new().with(Level::Stimulus).with(Level::Time),
        },
        steps,
        seeds,
    );
    cfg.specs = (0..18)
        .map(|i| {
            let capacity = 1.0 + (i % 4) as f64;
            if i % 3 == 0 {
                cloudsim::NodeSpec::reliable(capacity)
            } else {
                cloudsim::NodeSpec::volunteer(capacity)
            }
        })
        .collect();
    cfg.base_rate = 2.2;
    cfg.amplitude = 0.2;
    cfg.schedule = workloads::Schedule::none()
        .and(workloads::Disturbance::scale(Tick(steps / 2), 1.4))
        .and(workloads::Disturbance::spike(
            Tick(steps * 3 / 4),
            3.0,
            steps / 5,
        ));
    let mut plan = ChannelPlan::uniform(seeds, LinkModel::lossy(arm.loss));
    if arm.partition > 0 {
        plan = plan.with_partition(steps * 3 / 4, arm.partition, vec![2]);
    }
    cfg.channel = plan;
    cfg.comms = arm.policy();
    cfg.command_plane = cloudsim::CommandPlane::Zoned { zones: 3 };
    cfg
}

/// One F8 replicate: the same loss/partition/policy arm applied to
/// all three substrates, each on its own seed subtree. Metric keys:
///
/// * `cam_quality` / `cam_untracked` — camera-network tracking under
///   lossy auction and handover messaging;
/// * `cpn_delivery` / `cpn_utility` — packet delivery when the
///   smart-router control plane is lossy;
/// * `cloud_utility` / `cloud_violations` — autoscaling through the
///   zoned command plane of [`f8_cloud_cfg`];
/// * `comms_sent` / `comms_retries` / `comms_expired` /
///   `comms_partition_hits` — protocol counters summed across the
///   three substrates.
///
/// Public so the parity and property tests can compare sequential and
/// parallel runs of the exact scenario.
#[must_use]
pub fn f8_scenario(arm: F8Arm, seeds: SeedTree, steps: u64) -> MetricSet {
    use workloads::faults::{ChannelPlan, LinkModel};

    let cam_seeds = seeds.child("camnet");
    let mut cam_cfg =
        camnet::CamnetConfig::standard(camnet::HandoverStrategy::self_aware_default(), steps);
    cam_cfg.channel = ChannelPlan::uniform(&cam_seeds, LinkModel::lossy(arm.loss));
    if arm.partition > 0 {
        cam_cfg.channel =
            cam_cfg
                .channel
                .with_partition(steps / 3, arm.partition, vec![0, 1, 4, 5]);
    }
    cam_cfg.comms = arm.policy();
    let cam = camnet::run_camnet(&cam_cfg, &cam_seeds);

    // The packet network runs the periodic table router on the
    // contested (moving-flood) scenario: its only adaptivity is the
    // communicated queue state, so this is the strategy where channel
    // quality is decisive. (The CPN learner adapts from its own
    // packets' measured delays and shrugs off report loss.) The
    // partition silences the flood-ingress routers 7 and 13, whose
    // reports carry the congestion signal.
    let cpn_seeds = seeds.child("cpn");
    let mut cpn_cfg =
        cpn::CpnConfig::contested(cpn::RoutingStrategy::Periodic { period: 50 }, steps);
    cpn_cfg.channel = ChannelPlan::uniform(&cpn_seeds, LinkModel::lossy(arm.loss));
    if arm.partition > 0 {
        let (from, _) = cpn::CpnConfig::attack_window(steps);
        cpn_cfg.channel = cpn_cfg
            .channel
            .with_partition(from.value(), arm.partition, vec![7, 13]);
    }
    cpn_cfg.comms = arm.policy();
    let net = cpn::run_cpn(&cpn_cfg, &cpn_seeds);

    let cloud_seeds = seeds.child("cloud");
    let cloud = cloudsim::run_scenario(&f8_cloud_cfg(arm, &cloud_seeds, steps), &cloud_seeds);

    let mut m = MetricSet::new();
    m.set(
        "cam_quality",
        cam.metrics.get("track_quality").unwrap_or(0.0),
    );
    m.set(
        "cam_untracked",
        cam.metrics.get("untracked_ratio").unwrap_or(1.0),
    );
    m.set(
        "cpn_delivery",
        net.metrics.get("delivery_ratio").unwrap_or(0.0),
    );
    m.set("cpn_utility", net.metrics.get("utility").unwrap_or(0.0));
    m.set("cloud_utility", cloud.metrics.get("utility").unwrap_or(0.0));
    m.set(
        "cloud_violations",
        cloud.metrics.get("violation_rate").unwrap_or(1.0),
    );
    for key in [
        "comms_sent",
        "comms_retries",
        "comms_expired",
        "comms_partition_hits",
    ] {
        m.set(
            key,
            cam.metrics.get(key).unwrap_or(0.0)
                + net.metrics.get(key).unwrap_or(0.0)
                + cloud.metrics.get(key).unwrap_or(0.0),
        );
    }
    obs::emit(obs::Json::obj([
        ("scenario", obs::Json::str("f8")),
        ("arm", obs::Json::str(arm.label())),
        ("metrics", metrics_json(&m)),
        (
            "explanations",
            obs::Json::obj([
                ("camnet", cam.comms_log.to_json()),
                ("cpn", net.comms_log.to_json()),
                ("cloud", cloud.comms_log.to_json()),
            ]),
        ),
    ]));
    m
}

/// The F8 arm grid: a loss sweep at both comms policies, plus two
/// partition lengths riding on 20% loss.
#[must_use]
pub fn f8_arms() -> Vec<F8Arm> {
    let mut arms = Vec::new();
    for loss in [0.0, 0.1, 0.2, 0.3, 0.4] {
        for naive in [true, false] {
            arms.push(F8Arm {
                loss,
                partition: 0,
                naive,
            });
        }
    }
    for partition in [300, 750] {
        for naive in [true, false] {
            arms.push(F8Arm {
                loss: 0.2,
                partition,
                naive,
            });
        }
    }
    arms
}

/// F8 — collective self-awareness under unreliable communications.
/// Sweeps per-link loss (0–40%) and partition length across all three
/// substrates, comparing naive fire-and-forget messaging against the
/// reliable staleness-weighted protocol. The claim: staleness-aware
/// comms hold near their clean-channel quality where naive messaging
/// collapses, and the recovery work (retries, expiries, partition
/// hits) is visible in the explanation log.
#[must_use]
pub fn run_f8(reps: u32, steps: u64) -> Table {
    let arms = f8_arms();
    let mut table = Table::new(
        format!("F8: unreliable communications ({steps} ticks, {reps} reps, mean±95CI)"),
        &[
            "arm",
            "cam quality",
            "cpn delivery",
            "cloud utility",
            "retries",
            "expired",
            "part hits",
        ],
    );
    let aggs = Replications::new(0xF8, reps)
        .run_matrix(&arms, |&arm, seeds| f8_scenario(arm, seeds, steps));
    let labels: Vec<String> = arms.iter().map(F8Arm::label).collect();
    RunTrace {
        experiment: "f8",
        seed: 0xF8,
        replicates: reps,
        steps,
        config: &format!("f8 arms={labels:?} steps={steps}"),
        arms: &labels,
        reports: &aggs,
    }
    .export();
    for (arm, agg) in arms.iter().zip(&aggs) {
        table.row_owned(vec![
            arm.label(),
            num_ci(agg.mean("cam_quality"), agg.ci95("cam_quality")),
            num_ci(agg.mean("cpn_delivery"), agg.ci95("cpn_delivery")),
            num_ci(agg.mean("cloud_utility"), agg.ci95("cloud_utility")),
            format!("{:.0}", agg.mean("comms_retries")),
            format!("{:.0}", agg.mean("comms_expired")),
            format!("{:.0}", agg.mean("comms_partition_hits")),
        ]);
    }
    table
}

#[cfg(test)]
mod f8_tests {
    use super::*;

    #[test]
    fn staleness_aware_holds_where_naive_collapses() {
        let steps = 3000;
        let reps = Replications::new(0xF8, 3);
        let arm = |naive| F8Arm {
            loss: 0.25,
            partition: 750,
            naive,
        };
        let naive = reps.run(|seeds| f8_scenario(arm(true), seeds, steps));
        let aware = reps.run(|seeds| f8_scenario(arm(false), seeds, steps));
        assert!(
            aware.mean("cam_untracked") < naive.mean("cam_untracked"),
            "camnet: aware untracked {} must beat naive {}",
            aware.mean("cam_untracked"),
            naive.mean("cam_untracked")
        );
        assert!(
            aware.mean("cpn_utility") > naive.mean("cpn_utility"),
            "cpn: aware utility {} must beat naive {}",
            aware.mean("cpn_utility"),
            naive.mean("cpn_utility")
        );
        // The cloud signal lives in the spike window only, so
        // per-replicate wins are the robust comparison (churn noise
        // dominates whole-run means at this replication count).
        let mut cloud_wins = 0;
        for k in 0..3 {
            let n = f8_scenario(arm(true), reps.seeds_for(k), steps);
            let a = f8_scenario(arm(false), reps.seeds_for(k), steps);
            if a.get("cloud_utility") > n.get("cloud_utility") {
                cloud_wins += 1;
            }
        }
        assert!(
            cloud_wins >= 2,
            "cloud: aware should out-schedule naive on most replicates ({cloud_wins}/3)"
        );
        assert!(
            aware.mean("comms_retries") > 0.0 && aware.mean("comms_partition_hits") > 0.0,
            "the recovery work must be visible in the counters"
        );
    }

    #[test]
    fn f8_recovery_work_reaches_the_explanation_log() {
        let arm = F8Arm {
            loss: 0.2,
            partition: 300,
            naive: false,
        };
        let seeds = SeedTree::new(0xF8);
        let m = f8_scenario(arm, seeds.child("probe"), 1500);
        assert!(m.get("comms_retries").unwrap() > 0.0);
        assert!(m.get("comms_partition_hits").unwrap() > 0.0);
        let cloud_seeds = seeds.child("probe").child("cloud");
        let r = cloudsim::run_scenario(&f8_cloud_cfg(arm, &cloud_seeds, 1500), &cloud_seeds);
        assert!(
            !r.comms_log.find_by_action("comms:retry").is_empty(),
            "retries must be explained"
        );
    }

    #[test]
    fn f8_table_is_reproducible() {
        let a = run_f8(1, 900);
        let b = run_f8(1, 900);
        assert_eq!(a.len(), 14);
        assert_eq!(format!("{a}"), format!("{b}"));
    }
}

/// One arm of F9 — which layers of the composed smart-city stack run
/// self-aware. The cascade campaign is identical across arms (common
/// random numbers), so differences are pure policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum F9Arm {
    /// Every layer on: supervised CPN routing, reliable
    /// staleness-aware comms, sensor-health quarantine, degradation
    /// ladder.
    Supervised,
    /// Fire-and-forget command plane, everything else aware.
    NaiveComms,
    /// Periodic-table routing, everything else aware.
    NaiveRouter,
    /// Raw camera readings (no quarantine), everything else aware.
    NaiveCameras,
    /// Every layer naive.
    AllNaive,
}

impl F9Arm {
    /// The five ablation arms in table order.
    #[must_use]
    pub fn all() -> Vec<F9Arm> {
        vec![
            F9Arm::Supervised,
            F9Arm::NaiveComms,
            F9Arm::NaiveRouter,
            F9Arm::NaiveCameras,
            F9Arm::AllNaive,
        ]
    }

    /// The arm's [`compose::CityPolicy`].
    #[must_use]
    pub fn policy(&self) -> compose::CityPolicy {
        match self {
            F9Arm::Supervised => compose::CityPolicy::supervised(),
            F9Arm::NaiveComms => compose::CityPolicy::naive_comms(),
            F9Arm::NaiveRouter => compose::CityPolicy::naive_router(),
            F9Arm::NaiveCameras => compose::CityPolicy::naive_cameras(),
            F9Arm::AllNaive => compose::CityPolicy::all_naive(),
        }
    }

    /// Table label (the policy's label).
    #[must_use]
    pub fn label(&self) -> String {
        self.policy().label()
    }
}

/// The F9 headline campaign: a cascading composite scaled to the
/// horizon. Zone 1's backend goes dark for the middle two fifths of
/// the run (machines 3..6 of the standard 3×3 world), overlapping the
/// flash crowd; a network partition on zone agent 1 heals *inside*
/// the outage (the satellite-2 restore-ordering case); camera 2's
/// quality sensor takes a bias shift; the routing model is scrambled
/// mid-outage; and every command-plane link runs at 10% loss.
#[must_use]
pub fn f9_campaign(seeds: &SeedTree, steps: u64) -> workloads::FaultCampaign {
    use workloads::faults::LinkModel;
    workloads::FaultCampaign::new("cascade", seeds)
        .with_loss(LinkModel::lossy(0.1))
        .zone_outage(Tick(steps * 2 / 5), 3, 3, steps * 2 / 5)
        .net_partition(steps * 2 / 5 + 10, steps / 5, vec![1])
        .fault(workloads::FaultEvent::sensor_fault(
            Tick(steps / 4),
            2,
            workloads::SensorFaultKind::Bias { offset: 0.6 },
            steps / 3,
        ))
        .corruption(
            Tick(steps / 2),
            0,
            workloads::faults::ModelCorruptionKind::WeightScramble { gain: 25.0 },
        )
}

/// One F9 replicate: the composed city under the cascade campaign.
/// Returns [`compose::run_city`]'s metric set unchanged (see its docs
/// for the key glossary). Public so the parity and property tests can
/// re-run the exact scenario.
#[must_use]
pub fn f9_scenario(arm: F9Arm, seeds: SeedTree, steps: u64) -> MetricSet {
    let city_seeds = seeds.child("city");
    let mut cfg = compose::CityConfig::standard(arm.policy(), steps, &city_seeds);
    cfg.campaign = f9_campaign(&city_seeds, steps);
    let r = compose::run_city(&cfg, &city_seeds);
    obs::emit(obs::Json::obj([
        ("scenario", obs::Json::str("f9")),
        ("arm", obs::Json::str(arm.label())),
        ("metrics", metrics_json(&r.metrics)),
        // The per-link expiry / retry-budget-exhaustion maps: which
        // command links died, and how the protocol found out.
        ("comms", r.comms_stats.to_json()),
        ("explanations", r.log.to_json()),
    ]));
    r.metrics
}

/// The loss grid of the F9 CPN breaking-point sweep. F8 established
/// the learned router shrugs off report loss up to 40%; this sweep
/// continues until it breaks.
#[must_use]
pub fn f9_breaking_losses() -> Vec<f64> {
    vec![0.0, 0.4, 0.6, 0.8, 0.9, 0.95, 0.99]
}

/// One replicate of the breaking-point sweep: the contested CPN
/// scenario under the *learned* router with report-channel loss.
/// Public for the parity suite.
#[must_use]
pub fn f9_breaking_scenario(loss: f64, seeds: SeedTree, steps: u64) -> MetricSet {
    use workloads::faults::{ChannelPlan, LinkModel};
    let mut cfg = cpn::CpnConfig::contested(cpn::RoutingStrategy::cpn_default(), steps);
    cfg.channel = ChannelPlan::uniform(&seeds, LinkModel::lossy(loss));
    cpn::run_cpn(&cfg, &seeds).metrics
}

/// Runs the breaking-point sweep and returns `(table, breaking_loss)`
/// where `breaking_loss` is the smallest swept report-loss rate at
/// which the learned router's mean delivery ratio falls below 95% of
/// its clean-channel value (`None` if it never does — the router's
/// robustness outlived the sweep).
#[must_use]
pub fn f9_breaking_point(reps: u32, steps: u64) -> (Table, Option<f64>) {
    let losses = f9_breaking_losses();
    let aggs = Replications::new(0xF9B, reps).run_matrix(&losses, |&loss, seeds| {
        f9_breaking_scenario(loss, seeds, steps)
    });
    let clean = aggs[0].mean("delivery_ratio");
    let mut breaking = None;
    let mut table = Table::new(
        format!("F9b: learned-router report-loss sweep ({steps} ticks, {reps} reps)"),
        &["report loss", "delivery", "utility", "vs clean"],
    );
    for (loss, agg) in losses.iter().zip(&aggs) {
        let delivery = agg.mean("delivery_ratio");
        let rel = delivery / clean.max(1e-12);
        if breaking.is_none() && *loss > 0.0 && rel < 0.95 {
            breaking = Some(*loss);
        }
        table.row_owned(vec![
            format!("{:.0}%", loss * 100.0),
            num_ci(delivery, agg.ci95("delivery_ratio")),
            num_ci(agg.mean("utility"), agg.ci95("utility")),
            format!("{:.3}", rel),
        ]);
    }
    (table, breaking)
}

/// F9 — the composed smart-city world under the cascading campaign.
/// The claim: the fully supervised, staleness-aware stack degrades
/// gracefully (sheds quality, re-homes the dead zone, throttles
/// admission) where per-layer and all-naive ablations lose service;
/// the headline metric is the utility gap between `supervised` and
/// `all-naive` under the cascade. Also answers F8's open question by
/// reporting the learned router's report-loss breaking point.
#[must_use]
pub fn run_f9(reps: u32, steps: u64) -> Table {
    let arms = F9Arm::all();
    let aggs = Replications::new(0xF9, reps)
        .run_matrix(&arms, |&arm, seeds| f9_scenario(arm, seeds, steps));
    let labels: Vec<String> = arms.iter().map(F9Arm::label).collect();
    RunTrace {
        experiment: "f9",
        seed: 0xF9,
        replicates: reps,
        steps,
        config: &format!("f9 arms={labels:?} steps={steps}"),
        arms: &labels,
        reports: &aggs,
    }
    .export();
    let mut table = Table::new(
        format!("F9: composed smart-city cascade ({steps} ticks, {reps} reps, mean±95CI)"),
        &[
            "arm",
            "on-time",
            "service",
            "coverage",
            "track err",
            "utility",
            "rehomed",
            "expired",
        ],
    );
    for (arm, agg) in arms.iter().zip(&aggs) {
        table.row_owned(vec![
            arm.label(),
            num_ci(agg.mean("on_time_ratio"), agg.ci95("on_time_ratio")),
            num_ci(agg.mean("service_ratio"), agg.ci95("service_ratio")),
            num_ci(agg.mean("coverage"), agg.ci95("coverage")),
            num_ci(agg.mean("tracking_error"), agg.ci95("tracking_error")),
            num_ci(agg.mean("utility"), agg.ci95("utility")),
            format!("{:.0}", agg.mean("rehomed")),
            format!("{:.0}", agg.mean("comms_expired")),
        ]);
    }
    table
}

#[cfg(test)]
mod f9_tests {
    use super::*;

    #[test]
    fn supervised_stack_out_degrades_all_naive_under_the_cascade() {
        let steps = 1200;
        let reps = Replications::new(0xF9, 3);
        let sup = reps.run(|seeds| f9_scenario(F9Arm::Supervised, seeds, steps));
        let naive = reps.run(|seeds| f9_scenario(F9Arm::AllNaive, seeds, steps));
        assert!(
            sup.mean("utility") > naive.mean("utility"),
            "supervised utility {} must beat all-naive {}",
            sup.mean("utility"),
            naive.mean("utility")
        );
        assert!(
            sup.mean("rehomed") > 0.0,
            "the ladder's re-home rung must fire under the cascade"
        );
        assert!(
            sup.mean("comms_expired") > 0.0,
            "the dead zone must burn command-plane deliveries"
        );
    }

    #[test]
    fn f9_table_is_reproducible() {
        let a = run_f9(1, 600);
        let b = run_f9(1, 600);
        assert_eq!(a.len(), 5);
        assert_eq!(format!("{a}"), format!("{b}"));
    }

    #[test]
    fn breaking_point_sweep_is_reproducible_and_monotone_labelled() {
        let (a, pa) = f9_breaking_point(1, 500);
        let (b, pb) = f9_breaking_point(1, 500);
        assert_eq!(format!("{a}"), format!("{b}"));
        assert_eq!(pa, pb);
        assert_eq!(a.len(), f9_breaking_losses().len());
    }
}

/// Root seed of the F10 replication tree.
pub const F10_SEED: u64 = 0xF10;

/// Gate tolerance on a canonical cell's mean measured benefit:
/// an intervention class regresses only when suppressing it would
/// *improve* the campaign's headline metric by more than this.
pub const F10_EPSILON: f64 = 0.02;

/// One F10 fault campaign: a composed-city scenario representative of
/// an earlier experiment's fault kind, with the headline metric that
/// experiment scored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum F10Campaign {
    /// F6/F7-style sensor fault: camera quality sensors take bias
    /// shifts; the quarantine/substitution machinery is on trial.
    /// Headline: `tracking_error` (minimise).
    Bias,
    /// F5/F7-style model corruption: the routing model is NaN-poisoned
    /// and weight-scrambled; supervisor rollback/fallback/re-promotion
    /// are on trial. Headline: `utility` (maximise).
    Corruption,
    /// F8-style command-plane degradation: 25% uniform link loss plus
    /// a partition on zone agent 1; the reliable comms protocol's
    /// retries are on trial. Headline: `on_time_ratio` (maximise).
    Loss,
    /// F9-ingredient zone outage: zone 1's backend dies for the middle
    /// two fifths; the degradation ladder (re-home, shed, throttle) is
    /// on trial. Headline: `utility` (maximise).
    Outage,
    /// Capacity brownout (ROADMAP item 5): two of zone 1's three
    /// backend machines die for the middle three fifths while the
    /// zone — and its agent — stay alive. Re-homing never triggers
    /// (the zone is not dark) and gateway pressure stays under the
    /// shed threshold, so admission throttling is the *only* defence
    /// that can keep the surviving core's queueing delay inside the
    /// SLA. This is the campaign where throttle pays; the gate pins
    /// its benefit positive. Headline: `on_time_ratio` (maximise).
    Brownout,
    /// The full F9 cascading campaign ([`f9_campaign`]): everything at
    /// once. Headline: `utility` (maximise).
    Cascade,
}

impl F10Campaign {
    /// Every campaign, in table order.
    #[must_use]
    pub fn all() -> Vec<F10Campaign> {
        vec![
            F10Campaign::Bias,
            F10Campaign::Corruption,
            F10Campaign::Loss,
            F10Campaign::Outage,
            F10Campaign::Brownout,
            F10Campaign::Cascade,
        ]
    }

    /// Stable table/trace label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            F10Campaign::Bias => "bias",
            F10Campaign::Corruption => "corruption",
            F10Campaign::Loss => "loss",
            F10Campaign::Outage => "outage",
            F10Campaign::Brownout => "brownout",
            F10Campaign::Cascade => "cascade",
        }
    }

    /// The campaign's headline metric and its better-direction.
    #[must_use]
    pub fn metric(self) -> (&'static str, Direction) {
        match self {
            F10Campaign::Bias => ("tracking_error", Direction::Minimize),
            F10Campaign::Loss | F10Campaign::Brownout => ("on_time_ratio", Direction::Maximize),
            F10Campaign::Corruption | F10Campaign::Outage | F10Campaign::Cascade => {
                ("utility", Direction::Maximize)
            }
        }
    }

    /// Builds the fault campaign, scaled to the horizon.
    #[must_use]
    pub fn build(self, seeds: &SeedTree, steps: u64) -> workloads::FaultCampaign {
        use workloads::faults::LinkModel;
        match self {
            F10Campaign::Bias => workloads::FaultCampaign::new("bias", seeds)
                .fault(workloads::FaultEvent::sensor_fault(
                    Tick(steps / 4),
                    2,
                    workloads::SensorFaultKind::Bias { offset: 2.5 },
                    steps / 3,
                ))
                .fault(workloads::FaultEvent::sensor_fault(
                    Tick(steps / 2),
                    5,
                    workloads::SensorFaultKind::Bias { offset: -2.0 },
                    steps / 4,
                )),
            // The second NaN lands inside the supervisor's relapse
            // window (50 ticks): the first is cured by a rollback, the
            // relapse benches the model, and the quiet stretch after
            // it exercises re-promotion — so all three supervisor
            // rungs leave anchors.
            F10Campaign::Corruption => workloads::FaultCampaign::new("corruption", seeds)
                .corruption(
                    Tick(steps / 3),
                    0,
                    workloads::faults::ModelCorruptionKind::NanPoison,
                )
                .corruption(
                    Tick(steps / 3 + 30),
                    0,
                    workloads::faults::ModelCorruptionKind::NanPoison,
                )
                .corruption(
                    Tick(steps * 3 / 5),
                    0,
                    workloads::faults::ModelCorruptionKind::WeightScramble { gain: 25.0 },
                ),
            F10Campaign::Loss => workloads::FaultCampaign::new("loss", seeds)
                .with_loss(LinkModel::lossy(0.25))
                .net_partition(steps * 2 / 5, steps / 5, vec![1]),
            F10Campaign::Outage => workloads::FaultCampaign::new("outage", seeds).zone_outage(
                Tick(steps * 2 / 5),
                3,
                3,
                steps * 2 / 5,
            ),
            // Zones 1 and 2 each lose their big core and one little
            // for the long middle window; one little core (40% of the
            // big's speed) survives per zone, so neither zone goes
            // dark and both keep admitting. A backlog at the
            // admission cap takes a lone little longer than the SLA
            // deadline to drain, so detections serviced from a
            // saturated queue violate — unless throttling holds the
            // queue short.
            F10Campaign::Brownout => workloads::FaultCampaign::new("brownout", seeds)
                .zone_outage(Tick(steps / 8), 3, 2, steps * 3 / 4)
                .zone_outage(Tick(steps / 8), 6, 2, steps * 3 / 4),
            F10Campaign::Cascade => f9_campaign(seeds, steps),
        }
    }
}

/// Runs the composed city under `campaign` with `mask` applied —
/// the F10 re-execution primitive. Same world, policy and seed
/// derivation as [`f9_scenario`]; the mask is the only degree of
/// freedom, so [`InterventionMask::allow_all`] reproduces the factual
/// run bit for bit.
#[must_use]
pub fn f10_city(
    campaign: F10Campaign,
    mask: InterventionMask,
    seeds: &SeedTree,
    steps: u64,
) -> compose::CityResult {
    let city_seeds = seeds.child("city");
    let mut cfg =
        compose::CityConfig::standard(compose::CityPolicy::supervised(), steps, &city_seeds);
    cfg.campaign = campaign.build(&city_seeds, steps).with_mask(mask);
    compose::run_city(&cfg, &city_seeds)
}

/// One replicate's full counterfactual probe: the factual run plus one
/// single-flip masked re-execution per intervention class, under
/// common random numbers.
#[must_use]
pub fn f10_probe(campaign: F10Campaign, seeds: &SeedTree, steps: u64) -> CounterfactualReport {
    let (metric, direction) = campaign.metric();
    CounterfactualRun::new(metric, direction, |mask| {
        let r = f10_city(campaign, mask, seeds, steps);
        ReplayOutcome {
            metric: r.metrics.get(metric).unwrap_or(f64::NAN),
            log: r.log,
        }
    })
    .probe(&InterventionClass::ALL)
}

/// The typed `counterfactual` run-trace record for one delta
/// (validated by `obs_validate`): campaign tag, full delta fields,
/// and the operator-readable headline sentence.
fn counterfactual_record(campaign: &str, metric: &str, d: &CounterfactualDelta) -> obs::Json {
    let mut pairs = vec![
        ("record".to_string(), obs::Json::str("counterfactual")),
        ("campaign".to_string(), obs::Json::str(campaign)),
        ("headline".to_string(), obs::Json::str(d.headline(metric))),
    ];
    if let obs::Json::Obj(body) = d.to_json(metric) {
        pairs.extend(body);
    }
    obs::Json::Obj(pairs)
}

/// One F10 replicate, flattened for the replication harness: the
/// factual headline metric, the factual log's eviction count, and one
/// `benefit:<class>` / `events:<class>` pair per intervention class.
/// Also emits one typed `counterfactual` record per class into the
/// run trace.
#[must_use]
pub fn f10_scenario(campaign: F10Campaign, seeds: SeedTree, steps: u64) -> MetricSet {
    let report = f10_probe(campaign, &seeds, steps);
    let (metric, _) = campaign.metric();
    let mut m = MetricSet::new();
    m.set("factual", report.factual);
    m.set("log_dropped", report.log_dropped as f64);
    for d in &report.deltas {
        obs::emit(counterfactual_record(campaign.label(), metric, d));
        m.set(format!("benefit:{}", d.class.label()), d.benefit);
        m.set(format!("events:{}", d.class.label()), d.events as f64);
    }
    m
}

/// Each intervention class's canonical smoke scenario for the CI
/// regression gate: the campaign whose fault kind that class exists
/// to absorb. Tuned so the class reliably *fires* there at smoke
/// horizons (≥ 900 ticks).
#[must_use]
pub fn f10_canonical(class: InterventionClass) -> F10Campaign {
    match class {
        InterventionClass::SensorQuarantine => F10Campaign::Bias,
        InterventionClass::SupervisorRollback
        | InterventionClass::SupervisorFallback
        | InterventionClass::SupervisorRepromote => F10Campaign::Corruption,
        InterventionClass::CommsRetry => F10Campaign::Loss,
        // Throttle's canonical home is the brownout (ROADMAP item 5):
        // on the cascade its measured delta sat at ≈ 0 because the
        // zone either dies (re-home takes over) or survives with
        // enough capacity that the admission cap alone bounds
        // latency. The brownout leaves a crippled-but-alive zone
        // where holding the queue short is the only defence, so the
        // gate can demand a strictly positive delta.
        InterventionClass::ComposeThrottle => F10Campaign::Brownout,
        InterventionClass::CommsReissue
        | InterventionClass::ComposeShed
        | InterventionClass::ComposeRehome => F10Campaign::Cascade,
    }
}

/// One aggregated gate cell: a class's mean measured benefit (and
/// mean anchored event count) on its canonical campaign.
#[derive(Debug, Clone)]
pub struct F10Cell {
    /// The intervention class under test.
    pub class: InterventionClass,
    /// Canonical campaign label.
    pub campaign: &'static str,
    /// Mean direction-signed benefit over replicates.
    pub benefit: f64,
    /// Mean anchored explanation-entry count over replicates.
    pub events: f64,
    /// Whether zero anchored events is itself a failure. Canonical
    /// cells require firing (a gate that cannot observe its subject is
    /// not green); *restraint* cells set this false — they pin a
    /// campaign where the class historically misfired, so not firing
    /// is the desired outcome and only negative benefit fails.
    pub require_fire: bool,
    /// Whether the cell must show *strictly positive* mean benefit,
    /// not merely non-negative. Set on a class whose canonical
    /// campaign was built specifically so the class pays (ROADMAP
    /// item 5: throttle on the brownout) — a zero there means the
    /// campaign no longer exercises the class and the cell has
    /// silently decayed into a tautology.
    pub require_positive: bool,
}

/// The intervention-regression gate, pure over aggregated cells: a
/// class fails when its campaign mean benefit is below
/// `-`[`F10_EPSILON`] — the explanation machinery claims an
/// intervention helped while the measured counterfactual says it
/// hurt. A `require_fire` class that never fired (zero anchored
/// events) fails too: a gate that cannot observe its subject is not
/// green.
#[must_use]
pub fn f10_gate_failures(cells: &[F10Cell]) -> Vec<String> {
    let mut failures = Vec::new();
    for cell in cells {
        if cell.events <= 0.0 && cell.require_fire {
            failures.push(format!(
                "{} never fired on canonical campaign `{}` (0 anchored events)",
                cell.class.label(),
                cell.campaign
            ));
        } else if cell.benefit < -F10_EPSILON {
            failures.push(format!(
                "{} shows negative benefit {:.4} on canonical campaign `{}` (tolerance {})",
                cell.class.label(),
                cell.benefit,
                cell.campaign,
                F10_EPSILON
            ));
        } else if cell.require_positive && cell.benefit <= 0.0 {
            failures.push(format!(
                "{} shows no positive benefit ({:.4}) on canonical campaign `{}` — \
                 the campaign was built so this class pays",
                cell.class.label(),
                cell.benefit,
                cell.campaign
            ));
        }
    }
    failures
}

/// Truncation flags for the replay windows (satellite of the
/// explanation-fidelity contract): any campaign whose factual
/// explanation logs evicted entries gets a flag line, because evicted
/// entries mean undercounted anchors.
#[must_use]
pub fn f10_truncation_flags(dropped: &[(String, f64)]) -> Vec<String> {
    dropped
        .iter()
        .filter(|(_, mean)| *mean > 0.0)
        .map(|(label, mean)| {
            format!("{label}: mean {mean:.1} explanation entries dropped per replicate — anchors undercount")
        })
        .collect()
}

/// Everything `run_f10` measured, pre-rendered for the binary and CI.
#[derive(Debug)]
pub struct F10Report {
    /// Intervention × campaign mean-benefit table.
    pub table: Table,
    /// Per-campaign explanation-fidelity table.
    pub fidelity: Table,
    /// Canonical-cell gate verdicts (empty == gate green).
    pub gate_failures: Vec<String>,
    /// Replay windows flagged for explanation-log truncation.
    pub truncation_flags: Vec<String>,
    /// Replicate-0 headline sentences for classes that fired (empty
    /// when observability is off — they ride the run-trace records).
    pub headlines: Vec<String>,
}

/// F10 — deterministic counterfactual replay as a self-explanation
/// engine. Across fault campaigns representative of F5–F9, every
/// intervention class is force-disabled one bit at a time and the
/// headline-metric delta measured under common random numbers. The
/// claim: the self-awareness interventions the explanation log brags
/// about carry *measured* benefit — explanation fidelity is the
/// fraction of fired classes whose measured benefit is not negative.
#[must_use]
pub fn run_f10(reps: u32, steps: u64) -> F10Report {
    let campaigns = F10Campaign::all();
    let aggs = Replications::new(F10_SEED, reps)
        .run_matrix(&campaigns, |&c, seeds| f10_scenario(c, seeds, steps));
    let labels: Vec<String> = campaigns.iter().map(|c| c.label().to_string()).collect();
    RunTrace {
        experiment: "f10",
        seed: F10_SEED,
        replicates: reps,
        steps,
        config: &format!("f10 campaigns={labels:?} steps={steps}"),
        arms: &labels,
        reports: &aggs,
    }
    .export();

    // Intervention × campaign benefit table.
    let mut headers: Vec<&str> = vec!["intervention"];
    headers.extend(campaigns.iter().map(|c| c.label()));
    let mut table = Table::new(
        format!("F10: measured intervention benefit ({steps} ticks, {reps} reps, mean±95CI)"),
        &headers,
    );
    for class in InterventionClass::ALL {
        let mut row = vec![class.label().to_string()];
        for (_, agg) in campaigns.iter().zip(&aggs) {
            let b = format!("benefit:{}", class.label());
            let e = format!("events:{}", class.label());
            let events = agg.mean(&e);
            if events <= 0.0 && agg.mean(&b).abs() < 1e-12 {
                row.push("–".into());
            } else {
                row.push(num_ci(agg.mean(&b), agg.ci95(&b)));
            }
        }
        table.row_owned(row);
    }

    // Per-campaign fidelity: of the classes that fired (anchored
    // events in the factual log), how many have non-negative measured
    // benefit within tolerance.
    let mut fidelity = Table::new(
        format!("F10: explanation fidelity per fault kind (tolerance {F10_EPSILON})"),
        &[
            "campaign",
            "metric",
            "fired",
            "confirmed",
            "fidelity",
            "log dropped",
        ],
    );
    for (c, agg) in campaigns.iter().zip(&aggs) {
        let (metric, _) = c.metric();
        let mut fired = 0u32;
        let mut confirmed = 0u32;
        for class in InterventionClass::ALL {
            let events = agg.mean(&format!("events:{}", class.label()));
            if events > 0.0 {
                fired += 1;
                if agg.mean(&format!("benefit:{}", class.label())) >= -F10_EPSILON {
                    confirmed += 1;
                }
            }
        }
        let score = if fired == 0 {
            "–".to_string()
        } else {
            format!("{:.2}", f64::from(confirmed) / f64::from(fired))
        };
        fidelity.row_owned(vec![
            c.label().to_string(),
            metric.to_string(),
            fired.to_string(),
            confirmed.to_string(),
            score,
            format!("{:.1}", agg.mean("log_dropped")),
        ]);
    }

    // Canonical gate cells.
    let mut cells: Vec<F10Cell> = InterventionClass::ALL
        .into_iter()
        .map(|class| {
            let canonical = f10_canonical(class);
            let idx = campaigns
                .iter()
                .position(|c| *c == canonical)
                .expect("canonical campaign is in the table");
            F10Cell {
                class,
                campaign: canonical.label(),
                benefit: aggs[idx].mean(&format!("benefit:{}", class.label())),
                events: aggs[idx].mean(&format!("events:{}", class.label())),
                require_fire: true,
                // The brownout exists so throttle pays (ROADMAP item
                // 5); its cell must show a strictly positive delta.
                require_positive: class == InterventionClass::ComposeThrottle,
            }
        })
        .collect();
    // Restraint cell (PR 9): the loss campaign partitions a zone whose
    // backend stays alive — the F10 misfire was re-homing away from
    // it. With bounce-corroborated dark detection the rehome must now
    // either hold fire (0 events) or fire with non-negative measured
    // benefit; both pass, a harmful firing fails.
    if let Some(idx) = campaigns.iter().position(|c| *c == F10Campaign::Loss) {
        let label = InterventionClass::ComposeRehome.label();
        cells.push(F10Cell {
            class: InterventionClass::ComposeRehome,
            campaign: F10Campaign::Loss.label(),
            benefit: aggs[idx].mean(&format!("benefit:{label}")),
            events: aggs[idx].mean(&format!("events:{label}")),
            require_fire: false,
            require_positive: false,
        });
    }
    // Restraint cell (this PR, ROADMAP item 5): the cascade is where
    // throttle historically idled at ≈ 0 measured benefit. Now that
    // its canonical (positive) home is the brownout, the cascade cell
    // only polices harm: throttle may hold fire there or fire with
    // non-negative delta, but a harmful firing fails.
    if let Some(idx) = campaigns.iter().position(|c| *c == F10Campaign::Cascade) {
        let label = InterventionClass::ComposeThrottle.label();
        cells.push(F10Cell {
            class: InterventionClass::ComposeThrottle,
            campaign: F10Campaign::Cascade.label(),
            benefit: aggs[idx].mean(&format!("benefit:{label}")),
            events: aggs[idx].mean(&format!("events:{label}")),
            require_fire: false,
            require_positive: false,
        });
    }
    let gate_failures = f10_gate_failures(&cells);

    let dropped: Vec<(String, f64)> = campaigns
        .iter()
        .zip(&aggs)
        .map(|(c, agg)| (c.label().to_string(), agg.mean("log_dropped")))
        .collect();
    let truncation_flags = f10_truncation_flags(&dropped);

    // Replicate-0 headlines, read back from the emitted trace records.
    let mut headlines = Vec::new();
    for (c, agg) in campaigns.iter().zip(&aggs) {
        if let Some(records) = agg.records().first() {
            for rec in records {
                if rec.get("record").and_then(obs::Json::as_str) != Some("counterfactual") {
                    continue;
                }
                let fired = rec.get("events").and_then(obs::Json::as_num).unwrap_or(0.0) > 0.0;
                if let (true, Some(h)) = (fired, rec.get("headline").and_then(obs::Json::as_str)) {
                    headlines.push(format!("[{}] {h}", c.label()));
                }
            }
        }
    }

    F10Report {
        table,
        fidelity,
        gate_failures,
        truncation_flags,
        headlines,
    }
}

#[cfg(test)]
mod f10_tests {
    use super::*;

    const STEPS: u64 = 350;

    #[test]
    fn all_bits_off_mask_replays_every_campaign_bit_exactly() {
        // The acceptance contract: replaying any F10 arm with the
        // all-bits-off mask reproduces the original (mask-free) run
        // bit for bit — metrics, comms counters, everything the
        // scenario scores.
        let seeds = Replications::new(F10_SEED, 1).seeds_for(0);
        for c in F10Campaign::all() {
            let city_seeds = seeds.child("city");
            let mut cfg = compose::CityConfig::standard(
                compose::CityPolicy::supervised(),
                STEPS,
                &city_seeds,
            );
            cfg.campaign = c.build(&city_seeds, STEPS);
            let original = compose::run_city(&cfg, &city_seeds);
            let replay = f10_city(c, InterventionMask::allow_all(), &seeds, STEPS);
            assert_eq!(original.metrics, replay.metrics, "campaign {c:?}");
            assert_eq!(original.comms_stats, replay.comms_stats, "campaign {c:?}");
        }
    }

    #[test]
    fn masked_replays_are_deterministic() {
        let seeds = Replications::new(F10_SEED, 1).seeds_for(0);
        for class in [
            InterventionClass::SensorQuarantine,
            InterventionClass::CommsRetry,
            InterventionClass::ComposeShed,
        ] {
            let mask = InterventionMask::suppressing(class);
            let a = f10_city(F10Campaign::Cascade, mask, &seeds, STEPS);
            let b = f10_city(F10Campaign::Cascade, mask, &seeds, STEPS);
            assert_eq!(a.metrics, b.metrics, "class {class:?}");
        }
    }

    #[test]
    fn scenario_flattens_every_class_and_surfaces_log_pressure() {
        let m = f10_scenario(F10Campaign::Outage, SeedTree::new(7), STEPS);
        assert!(m.get("factual").is_some());
        // Satellite contract: the ring buffer's eviction count rides
        // the metric set so truncated replay windows can be flagged.
        assert!(m.get("log_dropped").is_some());
        for class in InterventionClass::ALL {
            assert!(
                m.get(&format!("benefit:{}", class.label())).is_some(),
                "missing benefit for {class:?}"
            );
            assert!(
                m.get(&format!("events:{}", class.label())).is_some(),
                "missing events for {class:?}"
            );
        }
    }

    #[test]
    fn gate_fails_on_negative_benefit_and_on_silent_classes() {
        let cells = vec![
            F10Cell {
                class: InterventionClass::SupervisorRollback,
                campaign: "corruption",
                benefit: 0.5,
                events: 2.0,
                require_fire: true,
                require_positive: false,
            },
            F10Cell {
                class: InterventionClass::CommsRetry,
                campaign: "loss",
                benefit: -0.5,
                events: 3.0,
                require_fire: true,
                require_positive: false,
            },
            F10Cell {
                class: InterventionClass::ComposeShed,
                campaign: "cascade",
                benefit: 0.0,
                events: 0.0,
                require_fire: true,
                require_positive: false,
            },
        ];
        let failures = f10_gate_failures(&cells);
        assert_eq!(failures.len(), 2, "{failures:?}");
        assert!(failures.iter().any(|f| f.contains("comms-retry")));
        assert!(failures.iter().any(|f| f.contains("compose-shed")));
        // Within tolerance: a small negative mean is noise, not a
        // regression.
        let ok = f10_gate_failures(&[F10Cell {
            class: InterventionClass::CommsRetry,
            campaign: "loss",
            benefit: -F10_EPSILON / 2.0,
            events: 1.0,
            require_fire: true,
            require_positive: false,
        }]);
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn restraint_cells_pass_silent_and_fail_harmful() {
        // A restraint cell (require_fire = false) passes when the
        // class holds fire entirely…
        let silent = F10Cell {
            class: InterventionClass::ComposeRehome,
            campaign: "loss",
            benefit: 0.0,
            events: 0.0,
            require_fire: false,
            require_positive: false,
        };
        assert!(f10_gate_failures(&[silent]).is_empty());
        // …and still fails when it fires with measured harm.
        let harmful = F10Cell {
            class: InterventionClass::ComposeRehome,
            campaign: "loss",
            benefit: -0.4,
            events: 2.0,
            require_fire: false,
            require_positive: false,
        };
        let failures = f10_gate_failures(&[harmful]);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("compose-rehome"));
    }

    #[test]
    fn positive_cells_fail_at_zero_benefit() {
        // ROADMAP item 5's closure is enforced, not prose: the
        // throttle cell on the brownout demands a strictly positive
        // measured delta, so a relapse to the old ≈ 0 misfire fails
        // the gate even though 0 is within the negative tolerance.
        let flat = F10Cell {
            class: InterventionClass::ComposeThrottle,
            campaign: "brownout",
            benefit: 0.0,
            events: 40.0,
            require_fire: true,
            require_positive: true,
        };
        let failures = f10_gate_failures(std::slice::from_ref(&flat));
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("no positive benefit"), "{failures:?}");
        // Any strictly positive mean passes…
        let paying = F10Cell {
            benefit: 0.015,
            ..flat.clone()
        };
        assert!(f10_gate_failures(&[paying]).is_empty());
        // …and silence still trips the require_fire arm first.
        let silent = F10Cell {
            benefit: 0.0,
            events: 0.0,
            ..flat
        };
        let failures = f10_gate_failures(&[silent]);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("never fired"), "{failures:?}");
    }

    #[test]
    fn throttle_is_canonically_homed_on_the_brownout() {
        assert_eq!(
            f10_canonical(InterventionClass::ComposeThrottle),
            F10Campaign::Brownout
        );
        // The brownout keeps both browned-out zones alive: no machine
        // set covers a whole zone, so re-home never has a dark zone
        // to move (the throttle delta is not confounded).
        let seeds = SeedTree::new(1);
        let campaign = F10Campaign::Brownout.build(&seeds, 1000);
        let plan = campaign.faults();
        for z in 0..3usize {
            let all_down = (0..3).all(|k| plan.zone_down_at(z * 3 + k, Tick(500)));
            assert!(!all_down, "zone {z} fully dark mid-brownout");
        }
    }

    #[test]
    fn truncation_flags_name_only_dropping_windows() {
        let flags =
            f10_truncation_flags(&[("bias".to_string(), 0.0), ("cascade".to_string(), 12.5)]);
        assert_eq!(flags.len(), 1);
        assert!(flags[0].contains("cascade"), "{flags:?}");
        assert!(flags[0].contains("12.5"), "{flags:?}");
    }

    #[test]
    fn f10_tables_are_reproducible() {
        let a = run_f10(1, 300);
        let b = run_f10(1, 300);
        assert_eq!(a.table.len(), InterventionClass::ALL.len());
        assert_eq!(a.fidelity.len(), F10Campaign::all().len());
        assert_eq!(format!("{}", a.table), format!("{}", b.table));
        assert_eq!(format!("{}", a.fidelity), format!("{}", b.fidelity));
        assert_eq!(a.gate_failures, b.gate_failures);
    }
}

// ---------------------------------------------------------------------------
// F11 — live-traffic mode
// ---------------------------------------------------------------------------

/// Root seed of the F11 replication tree.
pub const F11_SEED: u64 = 0xF11;

/// One F11 replicate: replay the standard seeded chaos campaign (flash
/// crowd overlapping a slow-handler stall, connection drops, handler
/// panics, arrival-model poisoning) against one provisioning arm of
/// the live TCP server, and flatten the client/server/governor reports
/// into metrics.
///
/// Unlike every other experiment in this file the scenario body runs
/// on wall-clock time; only the *plan* (arrivals, service times,
/// faults) is seed-deterministic. Replication averages out scheduler
/// noise.
#[must_use]
pub fn f11_scenario(arm: liveserve::Arm, seeds: SeedTree, ticks: u64) -> MetricSet {
    let plan = liveserve::ChaosPlan::standard(ticks);
    let r = match liveserve::run_arm(arm, &plan, &seeds) {
        Ok(r) => r,
        Err(e) => panic!("f11 {} arm failed to start: {e}", arm.label()),
    };
    let mut m = MetricSet::new();
    m.set("goodput", r.load.goodput());
    m.set(
        "requests_per_sec",
        r.load.ok as f64 / r.load.wall_secs.max(f64::MIN_POSITIVE),
    );
    m.set("p50_ms", r.load.latency_percentile(0.50));
    m.set("p99_ms", r.load.latency_percentile(0.99));
    m.set("error_rate", r.load.error_rate());
    m.set("offered", r.load.offered as f64);
    m.set("ok", r.load.ok as f64);
    m.set("on_time", r.load.on_time as f64);
    m.set("client_shed", r.load.shed as f64);
    m.set("retries", r.load.retries as f64);
    m.set("served", r.server.served as f64);
    m.set("server_shed", r.server.shed as f64);
    m.set("timed_out", r.server.timed_out as f64);
    m.set("panicked", r.server.panicked as f64);
    m.set(
        "clean_shutdown",
        f64::from(u8::from(r.server.clean_shutdown)),
    );
    m.set(
        "threads_leaked",
        r.server
            .threads_spawned
            .saturating_sub(r.server.threads_joined) as f64,
    );
    let count = |ev: &str| r.transitions.iter().filter(|t| t.event == ev).count() as f64;
    m.set("shed_engagements", count("live:shed"));
    m.set("recoveries", count("live:recover"));
    m.set(
        "watchdog_reactions",
        f64::from(r.supervision.warns + r.supervision.rollbacks + r.supervision.fallbacks),
    );
    obs::emit(obs::Json::obj([
        ("scenario", obs::Json::str("f11")),
        ("arm", obs::Json::str(arm.label())),
        ("metrics", metrics_json(&m)),
        (
            "transitions",
            obs::Json::Arr(
                r.transitions
                    .iter()
                    .map(|t| {
                        obs::Json::obj([
                            ("tick", obs::Json::from(t.tick)),
                            ("event", obs::Json::str(t.event.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("supervision", r.supervision.to_json()),
    ]));
    m
}

/// Everything `run_f11` measured plus its acceptance verdicts.
#[derive(Debug)]
pub struct F11Report {
    /// Per-arm results table.
    pub table: Table,
    /// Replicate-0 supervised governor transitions, pre-rendered.
    pub transitions: Vec<String>,
    /// Harness-asserted acceptance failures (empty == pass): clean
    /// shutdown and zero thread leaks on every arm and replicate,
    /// shed *and* recover observed, the poisoned model noticed, and
    /// supervised beating naive on goodput and p99 with
    /// non-overlapping 95% CIs.
    pub failures: Vec<String>,
}

/// F11 — wall-clock self-aware serving beats fixed provisioning under
/// chaos. The same supervised autoscaler, watchdog ladder and
/// hysteresis machinery that runs the simulated substrates governs a
/// real threaded TCP server; the naive arm has the same worker pool
/// and a deeper queue but fixed limits and no admission control.
/// `strict = false` (the CI smoke at tiny horizons / single
/// replicates) skips only the *statistical* separation gates — CI
/// non-overlap on goodput and p99 needs full-length runs to be
/// meaningful — while keeping every robustness gate (clean shutdown,
/// zero leaks, shed→recover cycle, poisoning noticed) mandatory.
#[must_use]
pub fn run_f11(reps: u32, ticks: u64, strict: bool) -> F11Report {
    liveserve::install_quiet_panic_hook();
    let arms = [liveserve::Arm::Supervised, liveserve::Arm::Naive];
    let labels: Vec<String> = arms.iter().map(|a| a.label().to_string()).collect();
    // One worker: wall-clock arms must not time-share the machine
    // with each other, or they would corrupt each other's latencies.
    let aggs = Replications::new(F11_SEED, reps)
        .run_matrix_threads(1, &arms, |&a, seeds| f11_scenario(a, seeds, ticks));
    RunTrace {
        experiment: "f11",
        seed: F11_SEED,
        replicates: reps,
        steps: ticks,
        config: &format!("f11 arms={labels:?} ticks={ticks} plan=standard"),
        arms: &labels,
        reports: &aggs,
    }
    .export();

    let mut table = Table::new(
        format!(
            "F11: live-traffic chaos, supervised vs naive ({ticks} ticks ≈ {}s offered load, {reps} reps, mean±95CI)",
            ticks / 100
        ),
        &[
            "arm",
            "goodput ok/s",
            "p50 ms",
            "p99 ms",
            "error rate",
            "shed",
            "503s",
            "clean",
        ],
    );
    for (label, agg) in labels.iter().zip(&aggs) {
        table.row_owned(vec![
            label.clone(),
            num_ci(agg.mean("goodput"), agg.ci95("goodput")),
            num(agg.mean("p50_ms")),
            num_ci(agg.mean("p99_ms"), agg.ci95("p99_ms")),
            num_ci(agg.mean("error_rate"), agg.ci95("error_rate")),
            num(agg.mean("server_shed")),
            num(agg.mean("timed_out")),
            format!("{:.0}/{reps}", agg.mean("clean_shutdown") * f64::from(reps)),
        ]);
    }

    let mut failures = Vec::new();
    for (label, agg) in labels.iter().zip(&aggs) {
        if agg.mean("clean_shutdown") < 1.0 {
            failures.push(format!(
                "{label}: unclean shutdown in at least one replicate (deadlock or stuck thread)"
            ));
        }
        if agg.mean("threads_leaked") > 0.0 {
            failures.push(format!(
                "{label}: leaked threads (mean {:.2})",
                agg.mean("threads_leaked")
            ));
        }
    }
    let (sup, naive) = (&aggs[0], &aggs[1]);
    if sup.mean("shed_engagements") <= 0.0 || sup.mean("recoveries") <= 0.0 {
        failures.push(format!(
            "supervised arm never completed a shed→recover cycle (shed {:.1}, recover {:.1})",
            sup.mean("shed_engagements"),
            sup.mean("recoveries")
        ));
    }
    if sup.mean("watchdog_reactions") <= 0.0 {
        failures.push("supervised arm: poisoned arrival model went unnoticed".to_string());
    }
    if strict {
        let (gs, gsc) = (sup.mean("goodput"), sup.ci95("goodput"));
        let (gn, gnc) = (naive.mean("goodput"), naive.ci95("goodput"));
        if gs - gsc <= gn + gnc {
            failures.push(format!(
                "goodput CIs overlap: supervised {gs:.1}±{gsc:.1} vs naive {gn:.1}±{gnc:.1}"
            ));
        }
        let (ps, psc) = (sup.mean("p99_ms"), sup.ci95("p99_ms"));
        let (pn, pnc) = (naive.mean("p99_ms"), naive.ci95("p99_ms"));
        if ps + psc >= pn - pnc {
            failures.push(format!(
                "p99 CIs overlap: supervised {ps:.0}±{psc:.0}ms vs naive {pn:.0}±{pnc:.0}ms"
            ));
        }
    }

    // Replicate-0 supervised transitions, read back from the trace
    // records (present only when observability is on).
    let mut transitions = Vec::new();
    if let Some(records) = sup.records().first() {
        for rec in records {
            if rec.get("scenario").and_then(obs::Json::as_str) != Some("f11") {
                continue;
            }
            if let Some(obs::Json::Arr(ts)) = rec.get("transitions") {
                for t in ts {
                    let tick = t.get("tick").and_then(obs::Json::as_num).unwrap_or(-1.0);
                    let event = t.get("event").and_then(obs::Json::as_str).unwrap_or("?");
                    transitions.push(format!("t={tick:>6.0} {event}"));
                }
            }
        }
    }

    F11Report {
        table,
        transitions,
        failures,
    }
}

#[cfg(test)]
mod f11_tests {
    use super::*;

    #[test]
    fn f11_scenario_flattens_all_acceptance_metrics() {
        liveserve::install_quiet_panic_hook();
        // Short calm-ish horizon: this is a schema test, not a
        // performance measurement.
        let m = f11_scenario(liveserve::Arm::Supervised, SeedTree::new(3), 120);
        for key in [
            "goodput",
            "requests_per_sec",
            "p50_ms",
            "p99_ms",
            "error_rate",
            "clean_shutdown",
            "threads_leaked",
            "shed_engagements",
            "recoveries",
            "watchdog_reactions",
        ] {
            assert!(m.get(key).is_some(), "missing metric {key}");
        }
        assert!(
            (m.get("clean_shutdown").unwrap_or(0.0) - 1.0).abs() < f64::EPSILON,
            "short run must shut down cleanly"
        );
        assert!(m.get("threads_leaked").unwrap_or(1.0).abs() < f64::EPSILON);
    }
}

// ---------------------------------------------------------------------------
// F12 — discrete-event substrate scale.
// ---------------------------------------------------------------------------

/// Root seed of the F12 replication tree.
pub const F12_SEED: u64 = 0xF12;

/// Scale floors the full-mode F12 gate enforces: the tentpole claim
/// is a ≥10k-camera network and a ≥1M-request cloud trace, simulated
/// whole.
pub const F12_MIN_CAMERAS: u64 = 10_000;
/// Minimum arrived requests for the full-mode cloud arm.
pub const F12_MIN_REQUESTS: f64 = 1_000_000.0;
/// Minimum wall-clock-per-entity-tick improvement of sparse\@full over
/// dense\@reduced the full-mode gate demands, per substrate.
pub const F12_MIN_SPEEDUP: f64 = 10.0;

/// One measured F12 arm: a (substrate, drive, scale) cell with its
/// wall clock normalised per *potential* entity-tick — `entities ×
/// steps`, the work a dense loop must do regardless of activity. The
/// sparse arms also report how many entity visits actually happened,
/// which is the point: cost tracks activity, not population.
#[derive(Debug, Clone)]
pub struct DesMeasurement {
    /// `"camnet"` or `"cloud"`.
    pub substrate: &'static str,
    /// `"dense@reduced"`, `"sparse@reduced"` or `"sparse@full"`.
    pub arm: &'static str,
    /// Entity count (cameras / nodes) at this scale.
    pub entities: u64,
    /// Simulated horizon in ticks.
    pub steps: u64,
    /// `entities × steps` — the dense-equivalent workload.
    pub potential_entity_ticks: u64,
    /// Entity visits the drive mode actually performed.
    pub visits: f64,
    /// Scheduler wake events consumed (0 in dense mode).
    pub wakes: f64,
    /// Requests arrived (cloud substrate; 0 for camnet).
    pub requests: f64,
    /// Wall-clock seconds for the measurement run (1 replicate, 1
    /// worker).
    pub wall_secs: f64,
    /// `wall_secs × 1e9 / potential_entity_ticks`.
    pub ns_per_entity_tick: f64,
}

/// The F12 scale matrix. Dense arms run only at *reduced* scale — at
/// full scale the dense camnet loop alone is ~5×10¹⁰ distance tests —
/// and the per-entity-tick comparison leans on the dense loop's cost
/// being linear in the population: per tick it does O(objects) work
/// per camera and O(1) work per node, both independent of how many
/// other entities exist, so ns-per-entity-tick measured at reduced
/// scale transfers to full scale (the extrapolation EXPERIMENTS.md
/// documents).
struct F12Scales {
    cam_side_full: usize,
    cam_side_reduced: usize,
    cam_objects: usize,
    cam_steps_full: u64,
    cam_steps_reduced: u64,
    cloud_nodes_full: usize,
    cloud_nodes_reduced: usize,
    cloud_steps_full: u64,
    cloud_steps_reduced: u64,
    cloud_rate: f64,
}

impl F12Scales {
    fn new(smoke: bool) -> Self {
        if smoke {
            Self {
                cam_side_full: 12,
                cam_side_reduced: 8,
                cam_objects: 32,
                cam_steps_full: 300,
                cam_steps_reduced: 120,
                cloud_nodes_full: 512,
                cloud_nodes_reduced: 128,
                cloud_steps_full: 4_000,
                cloud_steps_reduced: 1_000,
                cloud_rate: 4.0,
            }
        } else {
            Self {
                // 141² = 19 881 cameras — ~2× the 10k floor. The
                // woken-camera count per tick depends on objects ×
                // coverage, not on the grid size, so the sparse
                // advantage grows with the population.
                cam_side_full: 141,
                cam_side_reduced: 20,
                cam_objects: 256,
                cam_steps_full: 2_000,
                cam_steps_reduced: 250,
                cloud_nodes_full: 32_768,
                cloud_nodes_reduced: 1_024,
                cloud_steps_full: 150_000,
                cloud_steps_reduced: 20_000,
                cloud_rate: 8.0,
            }
        }
    }
}

/// The F12 camnet fault campaign: a handful of camera failures and
/// recoveries so the at-scale run exercises the scheduler's fault
/// class, scaled to the grid.
fn f12_camnet_faults(side: usize, steps: u64) -> workloads::faults::FaultPlan {
    let n = side * side;
    let mut plan = workloads::faults::FaultPlan::none();
    for k in 0..4usize {
        let cam = (k * n) / 4 + side / 2;
        plan = plan
            .and(workloads::FaultEvent::camera_fail(Tick(steps / 4), cam))
            .and(workloads::FaultEvent::camera_recover(
                Tick(steps * 3 / 4),
                cam,
            ));
    }
    plan
}

/// The F12 cloud fault campaign: one mid-run rack outage over an
/// eighth of the fleet.
fn f12_cloud_faults(nodes: usize, steps: u64) -> workloads::faults::FaultPlan {
    workloads::faults::FaultPlan::none().and(workloads::FaultEvent::zone_outage(
        Tick(steps / 3),
        nodes / 4,
        (nodes / 8).max(1),
        steps / 4,
    ))
}

fn f12_camnet_cfg(
    scales: &F12Scales,
    full: bool,
    drive: simkernel::DriveMode,
) -> camnet::DesCamnetConfig {
    let side = if full {
        scales.cam_side_full
    } else {
        scales.cam_side_reduced
    };
    let steps = if full {
        scales.cam_steps_full
    } else {
        scales.cam_steps_reduced
    };
    let mut cfg = camnet::DesCamnetConfig::at_scale(side, scales.cam_objects, steps);
    cfg.faults = f12_camnet_faults(side, steps);
    cfg.drive = drive;
    cfg
}

fn f12_cloud_cfg(
    scales: &F12Scales,
    full: bool,
    drive: simkernel::DriveMode,
) -> cloudsim::DesCloudConfig {
    let nodes = if full {
        scales.cloud_nodes_full
    } else {
        scales.cloud_nodes_reduced
    };
    let steps = if full {
        scales.cloud_steps_full
    } else {
        scales.cloud_steps_reduced
    };
    let mut cfg = cloudsim::DesCloudConfig::at_scale(nodes, steps, scales.cloud_rate);
    // Trace-scale churn: at 150k ticks the `at_scale` default flips
    // every node ~150 times, which is availability chaos, not
    // volunteer churn. A node here flips ~15 times per full trace.
    // Applied at both scales so dense@reduced and sparse arms model
    // the same fleet.
    cfg.churn_off = 2e-4;
    cfg.churn_on = 2e-3;
    cfg.faults = f12_cloud_faults(nodes, steps);
    cfg.drive = drive;
    cfg
}

/// One F12 camnet replicate, flattened: world metrics plus the
/// activation counters (deterministic, so they ride report equality).
#[must_use]
pub fn f12_camnet_scenario(cfg: &camnet::DesCamnetConfig, seeds: &SeedTree) -> MetricSet {
    let r = camnet::run_des_camnet(cfg, seeds);
    let mut m = r.metrics;
    m.set("des_visits", r.perf.visits as f64);
    m.set("des_wakes", r.perf.wakes as f64);
    m.set("des_shed", r.perf.shed as f64);
    m
}

/// One F12 cloud replicate, flattened like
/// [`f12_camnet_scenario`].
#[must_use]
pub fn f12_cloud_scenario(cfg: &cloudsim::DesCloudConfig, seeds: &SeedTree) -> MetricSet {
    let r = cloudsim::run_des_cloud(cfg, seeds);
    let mut m = r.metrics;
    m.set("des_visits", r.perf.visits as f64);
    m.set("des_wakes", r.perf.wakes as f64);
    m.set("des_shed", r.perf.shed as f64);
    m
}

/// Runs the six F12 measurement arms (per substrate: dense\@reduced,
/// sparse\@reduced, sparse\@full), one replicate at one worker each —
/// these are wall-clock measurements, so they never time-share.
/// `progress` receives one line per finished arm.
#[must_use]
pub fn f12_measurements(smoke: bool, progress: &mut impl FnMut(&str)) -> Vec<DesMeasurement> {
    f12_measured_arms(smoke, progress)
        .into_iter()
        .map(|(m, _)| m)
        .collect()
}

/// [`f12_measurements`] keeping each arm's [`RunReport`] for the run
/// trace.
fn f12_measured_arms(
    smoke: bool,
    progress: &mut impl FnMut(&str),
) -> Vec<(DesMeasurement, RunReport)> {
    let scales = F12Scales::new(smoke);
    let runs = Replications::new(F12_SEED, 1);
    let mut out = Vec::new();
    let arms = [
        ("dense@reduced", false, simkernel::DriveMode::Dense),
        ("sparse@reduced", false, simkernel::DriveMode::Sparse),
        ("sparse@full", true, simkernel::DriveMode::Sparse),
    ];
    for (arm, full, drive) in arms {
        let cfg = f12_camnet_cfg(&scales, full, drive);
        let entities = (cfg.side * cfg.side) as u64;
        let steps = cfg.steps;
        let report = runs.run_par_threads(1, {
            let cfg = cfg.clone();
            move |seeds| f12_camnet_scenario(&cfg, &seeds)
        });
        out.push((
            des_measurement("camnet", arm, entities, steps, &report),
            report,
        ));
        progress(&format!("f12/camnet/{arm}: done"));
    }
    for (arm, full, drive) in arms {
        let cfg = f12_cloud_cfg(&scales, full, drive);
        let entities = cfg.nodes as u64;
        let steps = cfg.steps;
        let report = runs.run_par_threads(1, {
            let cfg = cfg.clone();
            move |seeds| f12_cloud_scenario(&cfg, &seeds)
        });
        out.push((
            des_measurement("cloud", arm, entities, steps, &report),
            report,
        ));
        progress(&format!("f12/cloud/{arm}: done"));
    }
    out
}

fn des_measurement(
    substrate: &'static str,
    arm: &'static str,
    entities: u64,
    steps: u64,
    report: &RunReport,
) -> DesMeasurement {
    let potential = entities * steps;
    let wall = report.wall_secs();
    DesMeasurement {
        substrate,
        arm,
        entities,
        steps,
        potential_entity_ticks: potential,
        visits: report.aggregate().mean("des_visits"),
        wakes: report.aggregate().mean("des_wakes"),
        requests: report.aggregate().mean("arrived"),
        wall_secs: wall,
        ns_per_entity_tick: wall * 1e9 / potential.max(1) as f64,
    }
}

/// Per-substrate speedup: dense\@reduced ns-per-entity-tick over
/// sparse\@full ns-per-entity-tick. Empty if either arm is missing.
#[must_use]
pub fn f12_speedups(measurements: &[DesMeasurement]) -> Vec<(&'static str, f64)> {
    let mut out = Vec::new();
    for substrate in ["camnet", "cloud"] {
        let find = |arm: &str| {
            measurements
                .iter()
                .find(|m| m.substrate == substrate && m.arm == arm)
        };
        if let (Some(dense), Some(sparse)) = (find("dense@reduced"), find("sparse@full")) {
            out.push((
                dense.substrate,
                dense.ns_per_entity_tick / sparse.ns_per_entity_tick.max(f64::MIN_POSITIVE),
            ));
        }
    }
    out
}

/// Everything `run_f12` measured plus its acceptance verdicts.
#[derive(Debug)]
pub struct F12Report {
    /// Per-arm measurement table.
    pub table: Table,
    /// (substrate, dense\@reduced ÷ sparse\@full ns-per-entity-tick).
    pub speedups: Vec<(&'static str, f64)>,
    /// Gate failures (empty == pass): dense-vs-sparse and 1-vs-4-worker
    /// bit-identity always; scale floors and the ≥10× speedup in full
    /// mode only (smoke horizons are too short to time meaningfully).
    pub failures: Vec<String>,
}

/// F12 — discrete-event substrate scale. The tentpole claim: driving
/// the substrates through [`simkernel::SimScheduler`] with sparse
/// activation simulates a ≥10k-camera network and a ≥1M-request cloud
/// trace whole, at wall-clock-per-entity-tick ≥10× better than the
/// dense loops, while staying **bit-identical** to them — same
/// metrics dense vs sparse, same aggregates at 1 and 4 workers.
#[must_use]
pub fn run_f12(smoke: bool, mut progress: impl FnMut(&str)) -> F12Report {
    let scales = F12Scales::new(smoke);
    let mut failures = Vec::new();

    // Bit-identity: dense vs sparse at reduced scale, and 1 vs 4
    // workers on the sparse full-scale arm (the one the scale claim
    // rests on). 3 replicates each.
    let parity_runs = Replications::new(F12_SEED, 3);
    {
        // World metrics only: the activation counters differ between
        // drive modes by design (sparse visits ≪ dense visits), so
        // the dense-vs-sparse contract is over `.metrics` alone.
        let dense_cfg = f12_camnet_cfg(&scales, false, simkernel::DriveMode::Dense);
        let sparse_cfg = f12_camnet_cfg(&scales, false, simkernel::DriveMode::Sparse);
        let dense = parity_runs.run_par_threads(1, move |seeds| {
            camnet::run_des_camnet(&dense_cfg, &seeds).metrics
        });
        let sparse = parity_runs.run_par_threads(1, move |seeds| {
            camnet::run_des_camnet(&sparse_cfg, &seeds).metrics
        });
        if dense != sparse {
            failures.push("camnet: dense and sparse drives disagree at reduced scale".into());
        }
        let full_cfg = f12_camnet_cfg(&scales, true, simkernel::DriveMode::Sparse);
        let t1 = parity_runs.run_par_threads(1, {
            let cfg = full_cfg.clone();
            move |seeds| f12_camnet_scenario(&cfg, &seeds)
        });
        let t4 =
            parity_runs.run_par_threads(4, move |seeds| f12_camnet_scenario(&full_cfg, &seeds));
        if t1 != t4 {
            failures
                .push("camnet: sparse full-scale aggregates differ between 1 and 4 workers".into());
        }
        progress("f12/camnet: parity checks done");
    }
    {
        let dense_cfg = f12_cloud_cfg(&scales, false, simkernel::DriveMode::Dense);
        let sparse_cfg = f12_cloud_cfg(&scales, false, simkernel::DriveMode::Sparse);
        let dense = parity_runs.run_par_threads(1, move |seeds| {
            cloudsim::run_des_cloud(&dense_cfg, &seeds).metrics
        });
        let sparse = parity_runs.run_par_threads(1, move |seeds| {
            cloudsim::run_des_cloud(&sparse_cfg, &seeds).metrics
        });
        if dense != sparse {
            failures.push("cloud: dense and sparse drives disagree at reduced scale".into());
        }
        let full_cfg = f12_cloud_cfg(&scales, true, simkernel::DriveMode::Sparse);
        let t1 = parity_runs.run_par_threads(1, {
            let cfg = full_cfg.clone();
            move |seeds| f12_cloud_scenario(&cfg, &seeds)
        });
        let t4 = parity_runs.run_par_threads(4, move |seeds| f12_cloud_scenario(&full_cfg, &seeds));
        if t1 != t4 {
            failures
                .push("cloud: sparse full-scale aggregates differ between 1 and 4 workers".into());
        }
        progress("f12/cloud: parity checks done");
    }

    // Wall-clock measurements (also exported as the benchmark
    // document's `des` section by `run_perfbench`).
    let measured = f12_measured_arms(smoke, &mut progress);
    let measurements: Vec<DesMeasurement> = measured.iter().map(|(m, _)| m.clone()).collect();
    let speedups = f12_speedups(&measurements);

    // Run trace: the six measurement arms' metric aggregates.
    let labels: Vec<String> = measurements
        .iter()
        .map(|m| format!("{}:{}", m.substrate, m.arm))
        .collect();
    let reports: Vec<RunReport> = measured.into_iter().map(|(_, r)| r).collect();
    RunTrace {
        experiment: "f12",
        seed: F12_SEED,
        replicates: 1,
        steps: scales.cam_steps_full.max(scales.cloud_steps_full),
        config: &format!(
            "f12 smoke={smoke} camnet side {}/{} objects {} cloud nodes {}/{} rate {}",
            scales.cam_side_reduced,
            scales.cam_side_full,
            scales.cam_objects,
            scales.cloud_nodes_reduced,
            scales.cloud_nodes_full,
            scales.cloud_rate
        ),
        arms: &labels,
        reports: &reports,
    }
    .export();

    let mut table = Table::new(
        format!(
            "F12: discrete-event substrate scale ({} mode, 1 rep, 1 worker)",
            if smoke { "smoke" } else { "full" }
        ),
        &[
            "arm",
            "entities",
            "ticks",
            "entity-ticks",
            "visits",
            "wall s",
            "ns/entity-tick",
        ],
    );
    for m in &measurements {
        table.row_owned(vec![
            format!("{}:{}", m.substrate, m.arm),
            m.entities.to_string(),
            m.steps.to_string(),
            m.potential_entity_ticks.to_string(),
            format!("{:.0}", m.visits),
            format!("{:.3}", m.wall_secs),
            format!("{:.1}", m.ns_per_entity_tick),
        ]);
    }

    if !smoke {
        let cam_full = measurements
            .iter()
            .find(|m| m.substrate == "camnet" && m.arm == "sparse@full");
        if let Some(m) = cam_full {
            if m.entities < F12_MIN_CAMERAS {
                failures.push(format!(
                    "camnet full scale is {} cameras, below the {F12_MIN_CAMERAS} floor",
                    m.entities
                ));
            }
        }
        let cloud_full = measurements
            .iter()
            .find(|m| m.substrate == "cloud" && m.arm == "sparse@full");
        if let Some(m) = cloud_full {
            if m.requests < F12_MIN_REQUESTS {
                failures.push(format!(
                    "cloud full scale arrived {:.0} requests, below the {F12_MIN_REQUESTS:.0} floor",
                    m.requests
                ));
            }
        }
        for (substrate, speedup) in &speedups {
            if *speedup < F12_MIN_SPEEDUP {
                failures.push(format!(
                    "{substrate}: sparse@full is only {speedup:.1}× dense@reduced per entity-tick (gate {F12_MIN_SPEEDUP}×)"
                ));
            }
        }
    }

    F12Report {
        table,
        speedups,
        failures,
    }
}

#[cfg(test)]
mod f12_tests {
    use super::*;

    #[test]
    fn smoke_run_passes_every_non_timing_gate() {
        // Smoke mode skips the wall-clock gates but keeps every
        // bit-identity check; any parity failure surfaces here.
        let report = run_f12(true, |_| ());
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        assert_eq!(report.speedups.len(), 2);
    }

    #[test]
    fn measurements_cover_both_substrates_and_all_arms() {
        let ms = f12_measurements(true, &mut |_| ());
        assert_eq!(ms.len(), 6);
        for substrate in ["camnet", "cloud"] {
            for arm in ["dense@reduced", "sparse@reduced", "sparse@full"] {
                assert!(
                    ms.iter().any(|m| m.substrate == substrate && m.arm == arm),
                    "missing {substrate}:{arm}"
                );
            }
        }
        // The point of sparse activation: at the full (larger) scale
        // the visit count stays tied to activity, far below the
        // dense-equivalent entity-tick count.
        let sparse_full = ms
            .iter()
            .find(|m| m.substrate == "cloud" && m.arm == "sparse@full")
            .expect("cloud sparse@full");
        assert!(
            sparse_full.visits < sparse_full.potential_entity_ticks as f64 / 10.0,
            "visits {} vs potential {}",
            sparse_full.visits,
            sparse_full.potential_entity_ticks
        );
    }
}
