//! `perfbench`: the committed macro-benchmark harness behind
//! `BENCH_<n>.json`.
//!
//! The repo's self-awareness loop is only credible at scale if its own
//! runtime cost is measured and held: this module runs the F5–F10
//! experiment scenarios under forced observability (`SAS_OBS=1`
//! semantics via [`obs::set_override`]) with **fixed seeds, steps and
//! replicate counts**, and renders one JSON document containing, per
//! experiment arm:
//!
//! * wall-clock seconds at `SAS_THREADS` 1, 2 and 4 (explicit worker
//!   counts — the process environment is never touched);
//! * replicate throughput (completed replicates per second) at each
//!   worker count;
//! * the merged per-phase (sense/decide/act/comms) profile from
//!   [`simkernel::obs::PhaseProfile`], including the log2-ns latency
//!   histograms, taken from the single-worker run;
//!
//! plus process-wide peak RSS ([`obs::read_peak_rss`], `null` off
//! Linux). Since bench 9 the document also carries a `live` section:
//! the F11 wall-clock server arms (supervised vs naive) measured
//! **sequentially at one worker only** — real-time arms must never
//! time-share the machine — reporting served requests/sec and
//! client-observed p50/p99 latency instead of replicate throughput.
//! The document is committed at the repo root as
//! `BENCH_<n>.json` so every future PR claiming a speedup (or risking
//! a slowdown) has a trajectory to cite. CI regenerates a `--smoke`
//! variant and validates **schema only** — timings are
//! machine-dependent and must never gate a build.
//!
//! Arm labels are exactly the labels `run_f5`..`run_f10` print, so
//! benchmark arms and experiment arms cannot silently diverge (see
//! EXPERIMENTS.md).

use crate::experiments::{
    f10_scenario, f11_scenario, f5_scenario, f6_scenario, f7_fault_plan, f7_scenario, f8_arms,
    f8_scenario, f9_scenario, F10Campaign, F7Arm, F9Arm, F10_SEED, F11_SEED,
};
use simkernel::obs::{self, Json};
use simkernel::{MetricSet, Replications, SeedTree};
use std::path::{Path, PathBuf};

/// Worker counts the harness scales over.
pub const BENCH_THREADS: [usize; 3] = [1, 2, 4];
/// Replicates per arm in full mode (≥ 4 so the `t4` column has real
/// work to scale over).
pub const FULL_REPS: u32 = 5;
/// Replicates per arm in `--smoke` mode.
pub const SMOKE_REPS: u32 = 2;
/// Sequence number of the committed benchmark document this code
/// emits (`BENCH_9.json`).
pub const BENCH_VERSION: u64 = 9;

/// One benchmark arm: a label (identical to the experiment table's
/// arm label) and the replicate scenario behind it.
struct ArmSpec {
    label: String,
    run: Box<dyn Fn(SeedTree) -> MetricSet + Sync + Send>,
}

/// One experiment's fixed benchmark parameters.
struct ExpSpec {
    name: &'static str,
    seed: u64,
    steps: u64,
    arms: Vec<ArmSpec>,
}

fn experiment_specs(smoke: bool) -> Vec<ExpSpec> {
    let pick = |full: u64, quick: u64| if smoke { quick } else { full };

    let f5_steps = pick(4_000, 250);
    let f5_arms: Vec<ArmSpec> = [
        camnet::HandoverStrategy::Broadcast,
        camnet::HandoverStrategy::Static { k: 3 },
        camnet::HandoverStrategy::self_aware_default(),
    ]
    .into_iter()
    .map(|strategy| ArmSpec {
        label: strategy.label(),
        run: Box::new(move |seeds| f5_scenario(&strategy, seeds, f5_steps)),
    })
    .collect();

    let f6_steps = pick(6_000, 400);
    let f6_arms: Vec<ArmSpec> = [false, true]
        .into_iter()
        .map(|guarded| ArmSpec {
            label: if guarded {
                "health-guarded"
            } else {
                "raw mean"
            }
            .to_string(),
            run: Box::new(move |seeds| f6_scenario(guarded, seeds, f6_steps)),
        })
        .collect();

    let f7_steps = pick(6_000, 400);
    let f7_arms: Vec<ArmSpec> = [F7Arm::Baseline, F7Arm::Unsupervised, F7Arm::Supervised]
        .into_iter()
        .map(|arm| {
            let plan = f7_fault_plan(f7_steps);
            ArmSpec {
                label: arm.label().to_string(),
                run: Box::new(move |seeds| f7_scenario(arm, &plan, seeds, f7_steps)),
            }
        })
        .collect();

    let f8_steps = pick(2_400, 200);
    let f8_arm_specs: Vec<ArmSpec> = f8_arms()
        .into_iter()
        .map(|arm| ArmSpec {
            label: arm.label(),
            run: Box::new(move |seeds| f8_scenario(arm, seeds, f8_steps)),
        })
        .collect();

    let f9_steps = pick(1_500, 150);
    let f9_arm_specs: Vec<ArmSpec> = F9Arm::all()
        .into_iter()
        .map(|arm| ArmSpec {
            label: arm.label(),
            run: Box::new(move |seeds| f9_scenario(arm, seeds, f9_steps)),
        })
        .collect();

    // Each F10 replicate re-executes the city once per intervention
    // class plus the factual run (10 full simulations), so the horizon
    // is kept short relative to F9.
    let f10_steps = pick(600, 100);
    let f10_arm_specs: Vec<ArmSpec> = F10Campaign::all()
        .into_iter()
        .map(|campaign| ArmSpec {
            label: campaign.label().to_string(),
            run: Box::new(move |seeds| f10_scenario(campaign, seeds, f10_steps)),
        })
        .collect();

    vec![
        ExpSpec {
            name: "f5",
            seed: 0xF5,
            steps: f5_steps,
            arms: f5_arms,
        },
        ExpSpec {
            name: "f6",
            seed: 0xF6,
            steps: f6_steps,
            arms: f6_arms,
        },
        ExpSpec {
            name: "f7",
            seed: 0xF7,
            steps: f7_steps,
            arms: f7_arms,
        },
        ExpSpec {
            name: "f8",
            seed: 0xF8,
            steps: f8_steps,
            arms: f8_arm_specs,
        },
        ExpSpec {
            name: "f9",
            seed: 0xF9,
            steps: f9_steps,
            arms: f9_arm_specs,
        },
        ExpSpec {
            name: "f10",
            seed: F10_SEED,
            steps: f10_steps,
            arms: f10_arm_specs,
        },
    ]
}

fn thread_key(threads: usize) -> String {
    format!("t{threads}")
}

/// Runs the F11 wall-clock server arms and renders the `live` section.
///
/// Unlike the simulated experiments this measures a real TCP server on
/// real time, so it runs **sequentially and at one worker only**:
/// scaling wall-clock arms over a thread matrix would make the arms
/// time-share the machine and corrupt each other's latencies. Per arm
/// it reports served requests/sec, client-observed p50/p99 (ms),
/// goodput (on-SLA 200s/sec) and error rate, averaged over `reps`
/// seed-deterministic chaos replays.
fn run_live_section(smoke: bool, progress: &mut impl FnMut(&str)) -> Json {
    liveserve::install_quiet_panic_hook();
    let ticks = if smoke { 120 } else { 500 };
    let reps = if smoke { 1 } else { 3 };
    let replications = Replications::new(F11_SEED, reps);
    let mut arm_objs = Vec::new();
    for arm in [liveserve::Arm::Supervised, liveserve::Arm::Naive] {
        let report = replications.run_par_threads(1, |seeds| f11_scenario(arm, seeds, ticks));
        progress(&format!("f11/{}: done", arm.label()));
        arm_objs.push(Json::obj([
            ("label", Json::str(arm.label())),
            ("wall_secs", Json::from(report.wall_secs())),
            (
                "requests_per_sec",
                Json::from(report.aggregate().mean("requests_per_sec")),
            ),
            ("p50_ms", Json::from(report.aggregate().mean("p50_ms"))),
            ("p99_ms", Json::from(report.aggregate().mean("p99_ms"))),
            ("goodput", Json::from(report.aggregate().mean("goodput"))),
            (
                "error_rate",
                Json::from(report.aggregate().mean("error_rate")),
            ),
        ]));
    }
    Json::obj([
        ("experiment", Json::str("f11")),
        ("seed", Json::from(F11_SEED)),
        ("ticks", Json::from(ticks)),
        ("reps", Json::from(reps)),
        ("arms", Json::Arr(arm_objs)),
    ])
}

/// Runs the full harness and renders the benchmark document.
///
/// `progress` receives one human-readable line per finished
/// (experiment, arm) pair; pass `|_| ()` for silence. Observability is
/// forced on for the duration (the previous override is restored
/// before returning), so phase profiles populate regardless of the
/// caller's `SAS_OBS` environment.
pub fn run_perfbench(smoke: bool, mut progress: impl FnMut(&str)) -> Json {
    obs::set_override(Some(true));
    let reps = if smoke { SMOKE_REPS } else { FULL_REPS };
    let mut experiments = Vec::new();
    for exp in experiment_specs(smoke) {
        let replications = Replications::new(exp.seed, reps);
        let mut arm_objs = Vec::new();
        for arm in &exp.arms {
            let mut walls = Vec::new();
            let mut rates = Vec::new();
            let mut phases = Json::Obj(Vec::new());
            for &threads in &BENCH_THREADS {
                let report = replications.run_par_threads(threads, |seeds| (arm.run)(seeds));
                let wall = report.wall_secs().max(f64::MIN_POSITIVE);
                walls.push((thread_key(threads), Json::from(report.wall_secs())));
                rates.push((
                    thread_key(threads),
                    Json::from(f64::from(report.completed()) / wall),
                ));
                if threads == 1 {
                    phases = report.profile().to_json();
                }
            }
            progress(&format!("{}/{}: done", exp.name, arm.label));
            arm_objs.push(Json::obj([
                ("label", Json::str(arm.label.clone())),
                ("wall_secs", Json::Obj(walls)),
                ("reps_per_sec", Json::Obj(rates)),
                ("phases", phases),
            ]));
        }
        experiments.push(Json::obj([
            ("experiment", Json::str(exp.name)),
            ("seed", Json::from(exp.seed)),
            ("steps", Json::from(exp.steps)),
            ("reps", Json::from(reps)),
            ("arms", Json::Arr(arm_objs)),
        ]));
    }
    let live = run_live_section(smoke, &mut progress);
    obs::set_override(None);
    Json::obj([
        ("record", Json::str("perfbench")),
        ("bench", Json::from(BENCH_VERSION)),
        ("mode", Json::str(if smoke { "smoke" } else { "full" })),
        (
            "threads",
            Json::Arr(
                BENCH_THREADS
                    .iter()
                    .map(|&t| Json::from(t as u64))
                    .collect(),
            ),
        ),
        (
            "peak_rss_bytes",
            obs::read_peak_rss().map_or(Json::Null, Json::from),
        ),
        ("experiments", Json::Arr(experiments)),
        ("live", live),
    ])
}

/// Walks up from the current directory to the workspace root (the
/// ancestor holding `Cargo.lock`) — where `BENCH_<n>.json` lives.
#[must_use]
pub fn repo_root() -> Option<PathBuf> {
    let cwd = std::env::current_dir().ok()?;
    cwd.ancestors()
        .find(|d| d.join("Cargo.lock").is_file())
        .map(Path::to_path_buf)
}

/// The default output path, `<repo root>/BENCH_9.json`.
#[must_use]
pub fn default_bench_path() -> Option<PathBuf> {
    repo_root().map(|r| r.join(format!("BENCH_{BENCH_VERSION}.json")))
}

fn require<'a>(obj: &'a Json, key: &str, what: &str) -> Result<&'a Json, String> {
    obj.get(key)
        .ok_or_else(|| format!("{what}: missing key `{key}`"))
}

fn require_num(obj: &Json, key: &str, what: &str) -> Result<f64, String> {
    require(obj, key, what)?
        .as_num()
        .ok_or_else(|| format!("{what}: `{key}` is not a number"))
}

/// Validates a benchmark document against the `perfbench` schema.
///
/// Checks structure only — record tag, experiment coverage (at least
/// F5–F8; newer documents also carry F9/F10, and bench ≥ 9 must carry
/// the wall-clock `live` F11 section with both serving arms),
/// per-arm wall-clock/throughput maps over exactly
/// [`BENCH_THREADS`], phase-profile summaries with histogram arrays,
/// and a numeric-or-null peak RSS. Deliberately says nothing about
/// the *values* of timings: those are machine-dependent and must not
/// gate CI.
pub fn validate_bench(doc: &Json) -> Result<(), String> {
    if doc.get("record").and_then(Json::as_str) != Some("perfbench") {
        return Err("top-level: `record` must be \"perfbench\"".into());
    }
    require_num(doc, "bench", "top-level")?;
    let mode = require(doc, "mode", "top-level")?
        .as_str()
        .ok_or_else(|| "top-level: `mode` is not a string".to_string())?;
    if mode != "full" && mode != "smoke" {
        return Err(format!("top-level: unknown mode `{mode}`"));
    }
    match require(doc, "peak_rss_bytes", "top-level")? {
        Json::Null | Json::Num(_) => {}
        other => {
            return Err(format!(
                "top-level: peak_rss_bytes must be number or null, got {other:?}"
            ))
        }
    }
    let experiments = require(doc, "experiments", "top-level")?
        .as_arr()
        .ok_or_else(|| "top-level: `experiments` is not an array".to_string())?;
    let mut names: Vec<&str> = Vec::new();
    for exp in experiments {
        let name = require(exp, "experiment", "experiment")?
            .as_str()
            .ok_or_else(|| "experiment: `experiment` is not a string".to_string())?;
        names.push(name);
        require_num(exp, "seed", name)?;
        require_num(exp, "steps", name)?;
        require_num(exp, "reps", name)?;
        let arms = require(exp, "arms", name)?
            .as_arr()
            .ok_or_else(|| format!("{name}: `arms` is not an array"))?;
        if arms.is_empty() {
            return Err(format!("{name}: no arms"));
        }
        for arm in arms {
            let label = require(arm, "label", name)?
                .as_str()
                .ok_or_else(|| format!("{name}: arm label is not a string"))?;
            let what = format!("{name}/{label}");
            for field in ["wall_secs", "reps_per_sec"] {
                let by_threads = require(arm, field, &what)?;
                for t in BENCH_THREADS {
                    let v = require_num(by_threads, &thread_key(t), &format!("{what}.{field}"))?;
                    if !v.is_finite() || v < 0.0 {
                        return Err(format!("{what}.{field}.t{t}: non-finite or negative"));
                    }
                }
            }
            let phases = require(arm, "phases", &what)?;
            let Json::Obj(pairs) = phases else {
                return Err(format!("{what}: `phases` is not an object"));
            };
            if pairs.is_empty() {
                return Err(format!(
                    "{what}: empty phase profile — was observability off?"
                ));
            }
            for (phase, stats) in pairs {
                let pwhat = format!("{what}.phases.{phase}");
                for key in [
                    "count",
                    "total_secs",
                    "mean_secs",
                    "min_secs",
                    "max_secs",
                    "p50_secs",
                    "p95_secs",
                    "p99_secs",
                ] {
                    require_num(stats, key, &pwhat)?;
                }
                let hist = require(stats, "hist", &pwhat)?
                    .as_arr()
                    .ok_or_else(|| format!("{pwhat}: `hist` is not an array"))?;
                if hist.is_empty() {
                    return Err(format!("{pwhat}: empty histogram"));
                }
            }
        }
    }
    for expected in ["f5", "f6", "f7", "f8"] {
        if !names.contains(&expected) {
            return Err(format!("missing experiment `{expected}`"));
        }
    }
    // Bench 9 introduced the wall-clock `live` (F11) section; older
    // committed documents legitimately lack it.
    let bench = require_num(doc, "bench", "top-level")?;
    match doc.get("live") {
        None if bench >= 9.0 => return Err("bench >= 9 document missing `live` section".into()),
        None => {}
        Some(live) => {
            if require(live, "experiment", "live")?.as_str() != Some("f11") {
                return Err("live: `experiment` must be \"f11\"".into());
            }
            require_num(live, "seed", "live")?;
            require_num(live, "ticks", "live")?;
            require_num(live, "reps", "live")?;
            let arms = require(live, "arms", "live")?
                .as_arr()
                .ok_or_else(|| "live: `arms` is not an array".to_string())?;
            let mut labels = Vec::new();
            for arm in arms {
                let label = require(arm, "label", "live arm")?
                    .as_str()
                    .ok_or_else(|| "live arm: label is not a string".to_string())?;
                labels.push(label);
                let what = format!("live/{label}");
                for key in [
                    "wall_secs",
                    "requests_per_sec",
                    "p50_ms",
                    "p99_ms",
                    "goodput",
                    "error_rate",
                ] {
                    let v = require_num(arm, key, &what)?;
                    if !v.is_finite() || v < 0.0 {
                        return Err(format!("{what}.{key}: non-finite or negative"));
                    }
                }
            }
            for expected in ["supervised", "naive"] {
                if !labels.contains(&expected) {
                    return Err(format!("live: missing arm `{expected}`"));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn committed_bench_document_matches_schema() {
        let path = default_bench_path().expect("workspace root with Cargo.lock");
        // During early bootstrap the document may not exist yet; once
        // committed, any schema drift fails here.
        if !path.is_file() {
            return;
        }
        let text = std::fs::read_to_string(&path).expect("readable BENCH json");
        let doc = obs::parse(&text).expect("well-formed JSON");
        validate_bench(&doc).expect("schema-valid committed benchmark document");
        assert_eq!(
            doc.get("mode").and_then(Json::as_str),
            Some("full"),
            "the committed document must come from a full run, not --smoke"
        );
    }

    #[test]
    fn validator_rejects_drift() {
        let minimal = Json::obj([("record", Json::str("perfbench"))]);
        assert!(validate_bench(&minimal).is_err());
        let wrong_tag = Json::obj([("record", Json::str("bench"))]);
        assert!(validate_bench(&wrong_tag).is_err());
    }

    #[test]
    fn thread_keys_are_stable() {
        assert_eq!(thread_key(1), "t1");
        assert_eq!(thread_key(4), "t4");
    }
}
