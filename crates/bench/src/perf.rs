//! `perfbench`: the committed macro-benchmark harness behind
//! `BENCH_<n>.json`.
//!
//! The repo's self-awareness loop is only credible at scale if its own
//! runtime cost is measured and held: this module runs the F5–F10
//! experiment scenarios under forced observability (`SAS_OBS=1`
//! semantics via [`obs::set_override`]) with **fixed seeds, steps and
//! replicate counts**, and renders one JSON document containing, per
//! experiment arm:
//!
//! * wall-clock seconds at `SAS_THREADS` 1, 2 and 4 (explicit worker
//!   counts — the process environment is never touched);
//! * replicate throughput (completed replicates per second) at each
//!   worker count;
//! * the merged per-phase (sense/decide/act/comms) profile from
//!   [`simkernel::obs::PhaseProfile`], including the log2-ns latency
//!   histograms, taken from the single-worker run;
//!
//! plus process-wide peak RSS ([`obs::read_peak_rss`], `null` off
//! Linux). Since bench 9 the document also carries a `live` section:
//! the F11 wall-clock server arms (supervised vs naive) measured
//! **sequentially at one worker only** — real-time arms must never
//! time-share the machine — reporting served requests/sec and
//! client-observed p50/p99 latency instead of replicate throughput.
//! Since bench 10 it also carries a `des` section: the F12
//! discrete-event substrate arms (dense/sparse × reduced/full scale
//! per substrate) with wall clock normalised per potential
//! entity-tick, plus the per-substrate sparse-activation speedups.
//! The document is committed at the repo root as
//! `BENCH_<n>.json` so every future PR claiming a speedup (or risking
//! a slowdown) has a trajectory to cite — every prior `BENCH_<n>.json`
//! stays committed, and [`bench_delta_table`] renders the cross-PR
//! wall-clock deltas for arms present in two or more documents. CI
//! regenerates a `--smoke` variant and validates **schema only** —
//! timings are machine-dependent and must never gate a build.
//!
//! Arm labels are exactly the labels `run_f5`..`run_f10` print, so
//! benchmark arms and experiment arms cannot silently diverge (see
//! EXPERIMENTS.md).

use crate::experiments::{
    f10_scenario, f11_scenario, f12_measurements, f12_speedups, f5_scenario, f6_scenario,
    f7_fault_plan, f7_scenario, f8_arms, f8_scenario, f9_scenario, F10Campaign, F7Arm, F9Arm,
    F10_SEED, F11_SEED, F12_SEED,
};
use simkernel::obs::{self, Json};
use simkernel::{MetricSet, Replications, SeedTree, Table};
use std::path::{Path, PathBuf};

/// Worker counts the harness scales over.
pub const BENCH_THREADS: [usize; 3] = [1, 2, 4];
/// Replicates per arm in full mode (≥ 4 so the `t4` column has real
/// work to scale over).
pub const FULL_REPS: u32 = 5;
/// Replicates per arm in `--smoke` mode.
pub const SMOKE_REPS: u32 = 2;
/// Sequence number of the committed benchmark document this code
/// emits (`BENCH_10.json`). Every prior `BENCH_<n>.json` stays
/// committed from bench 10 on — the trajectory, not just the latest
/// point, is the artifact (see [`bench_history_paths`]).
pub const BENCH_VERSION: u64 = 10;

/// One benchmark arm: a label (identical to the experiment table's
/// arm label) and the replicate scenario behind it.
struct ArmSpec {
    label: String,
    run: Box<dyn Fn(SeedTree) -> MetricSet + Sync + Send>,
}

/// One experiment's fixed benchmark parameters.
struct ExpSpec {
    name: &'static str,
    seed: u64,
    steps: u64,
    arms: Vec<ArmSpec>,
}

fn experiment_specs(smoke: bool) -> Vec<ExpSpec> {
    let pick = |full: u64, quick: u64| if smoke { quick } else { full };

    let f5_steps = pick(4_000, 250);
    let f5_arms: Vec<ArmSpec> = [
        camnet::HandoverStrategy::Broadcast,
        camnet::HandoverStrategy::Static { k: 3 },
        camnet::HandoverStrategy::self_aware_default(),
    ]
    .into_iter()
    .map(|strategy| ArmSpec {
        label: strategy.label(),
        run: Box::new(move |seeds| f5_scenario(&strategy, seeds, f5_steps)),
    })
    .collect();

    let f6_steps = pick(6_000, 400);
    let f6_arms: Vec<ArmSpec> = [false, true]
        .into_iter()
        .map(|guarded| ArmSpec {
            label: if guarded {
                "health-guarded"
            } else {
                "raw mean"
            }
            .to_string(),
            run: Box::new(move |seeds| f6_scenario(guarded, seeds, f6_steps)),
        })
        .collect();

    let f7_steps = pick(6_000, 400);
    let f7_arms: Vec<ArmSpec> = [F7Arm::Baseline, F7Arm::Unsupervised, F7Arm::Supervised]
        .into_iter()
        .map(|arm| {
            let plan = f7_fault_plan(f7_steps);
            ArmSpec {
                label: arm.label().to_string(),
                run: Box::new(move |seeds| f7_scenario(arm, &plan, seeds, f7_steps)),
            }
        })
        .collect();

    let f8_steps = pick(2_400, 200);
    let f8_arm_specs: Vec<ArmSpec> = f8_arms()
        .into_iter()
        .map(|arm| ArmSpec {
            label: arm.label(),
            run: Box::new(move |seeds| f8_scenario(arm, seeds, f8_steps)),
        })
        .collect();

    let f9_steps = pick(1_500, 150);
    let f9_arm_specs: Vec<ArmSpec> = F9Arm::all()
        .into_iter()
        .map(|arm| ArmSpec {
            label: arm.label(),
            run: Box::new(move |seeds| f9_scenario(arm, seeds, f9_steps)),
        })
        .collect();

    // Each F10 replicate re-executes the city once per intervention
    // class plus the factual run (10 full simulations), so the horizon
    // is kept short relative to F9.
    let f10_steps = pick(600, 100);
    let f10_arm_specs: Vec<ArmSpec> = F10Campaign::all()
        .into_iter()
        .map(|campaign| ArmSpec {
            label: campaign.label().to_string(),
            run: Box::new(move |seeds| f10_scenario(campaign, seeds, f10_steps)),
        })
        .collect();

    vec![
        ExpSpec {
            name: "f5",
            seed: 0xF5,
            steps: f5_steps,
            arms: f5_arms,
        },
        ExpSpec {
            name: "f6",
            seed: 0xF6,
            steps: f6_steps,
            arms: f6_arms,
        },
        ExpSpec {
            name: "f7",
            seed: 0xF7,
            steps: f7_steps,
            arms: f7_arms,
        },
        ExpSpec {
            name: "f8",
            seed: 0xF8,
            steps: f8_steps,
            arms: f8_arm_specs,
        },
        ExpSpec {
            name: "f9",
            seed: 0xF9,
            steps: f9_steps,
            arms: f9_arm_specs,
        },
        ExpSpec {
            name: "f10",
            seed: F10_SEED,
            steps: f10_steps,
            arms: f10_arm_specs,
        },
    ]
}

fn thread_key(threads: usize) -> String {
    format!("t{threads}")
}

/// Runs the F11 wall-clock server arms and renders the `live` section.
///
/// Unlike the simulated experiments this measures a real TCP server on
/// real time, so it runs **sequentially and at one worker only**:
/// scaling wall-clock arms over a thread matrix would make the arms
/// time-share the machine and corrupt each other's latencies. Per arm
/// it reports served requests/sec, client-observed p50/p99 (ms),
/// goodput (on-SLA 200s/sec) and error rate, averaged over `reps`
/// seed-deterministic chaos replays.
fn run_live_section(smoke: bool, progress: &mut impl FnMut(&str)) -> Json {
    liveserve::install_quiet_panic_hook();
    let ticks = if smoke { 120 } else { 500 };
    let reps = if smoke { 1 } else { 3 };
    let replications = Replications::new(F11_SEED, reps);
    let mut arm_objs = Vec::new();
    for arm in [liveserve::Arm::Supervised, liveserve::Arm::Naive] {
        let report = replications.run_par_threads(1, |seeds| f11_scenario(arm, seeds, ticks));
        progress(&format!("f11/{}: done", arm.label()));
        arm_objs.push(Json::obj([
            ("label", Json::str(arm.label())),
            ("wall_secs", Json::from(report.wall_secs())),
            (
                "requests_per_sec",
                Json::from(report.aggregate().mean("requests_per_sec")),
            ),
            ("p50_ms", Json::from(report.aggregate().mean("p50_ms"))),
            ("p99_ms", Json::from(report.aggregate().mean("p99_ms"))),
            ("goodput", Json::from(report.aggregate().mean("goodput"))),
            (
                "error_rate",
                Json::from(report.aggregate().mean("error_rate")),
            ),
        ]));
    }
    Json::obj([
        ("experiment", Json::str("f11")),
        ("seed", Json::from(F11_SEED)),
        ("ticks", Json::from(ticks)),
        ("reps", Json::from(reps)),
        ("arms", Json::Arr(arm_objs)),
    ])
}

/// Runs the F12 discrete-event substrate arms and renders the `des`
/// section.
///
/// Wall clock is normalised per *potential* entity-tick (`entities ×
/// steps`, the dense-equivalent workload) so the dense arm at reduced
/// scale and the sparse arm at full scale are directly comparable;
/// the per-substrate `speedups` are the F12 tentpole numbers. Like
/// the `live` section these are wall-clock measurements, so the arms
/// run sequentially at one worker.
fn run_des_section(smoke: bool, progress: &mut impl FnMut(&str)) -> Json {
    let measurements = f12_measurements(smoke, progress);
    let speedups = f12_speedups(&measurements);
    let arm_objs = measurements
        .iter()
        .map(|m| {
            Json::obj([
                ("substrate", Json::str(m.substrate)),
                ("arm", Json::str(m.arm)),
                ("label", Json::str(format!("{}:{}", m.substrate, m.arm))),
                ("entities", Json::from(m.entities)),
                ("steps", Json::from(m.steps)),
                ("entity_ticks", Json::from(m.potential_entity_ticks)),
                ("visits", Json::from(m.visits)),
                ("wakes", Json::from(m.wakes)),
                ("requests", Json::from(m.requests)),
                ("wall_secs", Json::from(m.wall_secs)),
                ("ns_per_entity_tick", Json::from(m.ns_per_entity_tick)),
            ])
        })
        .collect();
    Json::obj([
        ("experiment", Json::str("f12")),
        ("seed", Json::from(F12_SEED)),
        ("arms", Json::Arr(arm_objs)),
        (
            "speedups",
            Json::Obj(
                speedups
                    .into_iter()
                    .map(|(substrate, speedup)| (substrate.to_string(), Json::from(speedup)))
                    .collect(),
            ),
        ),
    ])
}

/// Runs the full harness and renders the benchmark document.
///
/// `progress` receives one human-readable line per finished
/// (experiment, arm) pair; pass `|_| ()` for silence. Observability is
/// forced on for the duration (the previous override is restored
/// before returning), so phase profiles populate regardless of the
/// caller's `SAS_OBS` environment.
pub fn run_perfbench(smoke: bool, mut progress: impl FnMut(&str)) -> Json {
    obs::set_override(Some(true));
    let reps = if smoke { SMOKE_REPS } else { FULL_REPS };
    let mut experiments = Vec::new();
    for exp in experiment_specs(smoke) {
        let replications = Replications::new(exp.seed, reps);
        let mut arm_objs = Vec::new();
        for arm in &exp.arms {
            let mut walls = Vec::new();
            let mut rates = Vec::new();
            let mut phases = Json::Obj(Vec::new());
            for &threads in &BENCH_THREADS {
                let report = replications.run_par_threads(threads, |seeds| (arm.run)(seeds));
                let wall = report.wall_secs().max(f64::MIN_POSITIVE);
                walls.push((thread_key(threads), Json::from(report.wall_secs())));
                rates.push((
                    thread_key(threads),
                    Json::from(f64::from(report.completed()) / wall),
                ));
                if threads == 1 {
                    phases = report.profile().to_json();
                }
            }
            progress(&format!("{}/{}: done", exp.name, arm.label));
            arm_objs.push(Json::obj([
                ("label", Json::str(arm.label.clone())),
                ("wall_secs", Json::Obj(walls)),
                ("reps_per_sec", Json::Obj(rates)),
                ("phases", phases),
            ]));
        }
        experiments.push(Json::obj([
            ("experiment", Json::str(exp.name)),
            ("seed", Json::from(exp.seed)),
            ("steps", Json::from(exp.steps)),
            ("reps", Json::from(reps)),
            ("arms", Json::Arr(arm_objs)),
        ]));
    }
    let live = run_live_section(smoke, &mut progress);
    let des = run_des_section(smoke, &mut progress);
    obs::set_override(None);
    Json::obj([
        ("record", Json::str("perfbench")),
        ("bench", Json::from(BENCH_VERSION)),
        ("mode", Json::str(if smoke { "smoke" } else { "full" })),
        (
            "threads",
            Json::Arr(
                BENCH_THREADS
                    .iter()
                    .map(|&t| Json::from(t as u64))
                    .collect(),
            ),
        ),
        (
            "peak_rss_bytes",
            obs::read_peak_rss().map_or(Json::Null, Json::from),
        ),
        ("experiments", Json::Arr(experiments)),
        ("live", live),
        ("des", des),
    ])
}

/// Walks up from the current directory to the workspace root (the
/// ancestor holding `Cargo.lock`) — where `BENCH_<n>.json` lives.
#[must_use]
pub fn repo_root() -> Option<PathBuf> {
    let cwd = std::env::current_dir().ok()?;
    cwd.ancestors()
        .find(|d| d.join("Cargo.lock").is_file())
        .map(Path::to_path_buf)
}

/// The default output path, `<repo root>/BENCH_<BENCH_VERSION>.json`.
#[must_use]
pub fn default_bench_path() -> Option<PathBuf> {
    repo_root().map(|r| r.join(format!("BENCH_{BENCH_VERSION}.json")))
}

/// Discovers every committed `BENCH_<n>.json` at the repo root,
/// sorted by bench number. Empty when the root (or any document) is
/// missing — discovery never fails, validation of the individual
/// files is the caller's job (`perfbench --validate-all`).
#[must_use]
pub fn bench_history_paths() -> Vec<(u64, PathBuf)> {
    let Some(root) = repo_root() else {
        return Vec::new();
    };
    let Ok(entries) = std::fs::read_dir(&root) else {
        return Vec::new();
    };
    let mut out: Vec<(u64, PathBuf)> = entries
        .flatten()
        .filter_map(|entry| {
            let name = entry.file_name();
            let version = name
                .to_str()?
                .strip_prefix("BENCH_")?
                .strip_suffix(".json")?
                .parse::<u64>()
                .ok()?;
            Some((version, entry.path()))
        })
        .collect();
    out.sort_by_key(|(version, _)| *version);
    out
}

/// Extracts the comparable wall-clock series from one benchmark
/// document: `(arm key, seconds)` pairs keyed `f5/broadcast`
/// (single-worker wall), `live/supervised`, or
/// `des/camnet:sparse@full`, so the same arm lines up across bench
/// versions regardless of which sections a document carries.
#[must_use]
pub fn bench_wall_rows(doc: &Json) -> Vec<(String, f64)> {
    let mut rows = Vec::new();
    if let Some(exps) = doc.get("experiments").and_then(Json::as_arr) {
        for exp in exps {
            let Some(name) = exp.get("experiment").and_then(Json::as_str) else {
                continue;
            };
            let Some(arms) = exp.get("arms").and_then(Json::as_arr) else {
                continue;
            };
            for arm in arms {
                let Some(label) = arm.get("label").and_then(Json::as_str) else {
                    continue;
                };
                let wall = arm
                    .get("wall_secs")
                    .and_then(|w| w.get(&thread_key(1)))
                    .and_then(Json::as_num);
                if let Some(wall) = wall {
                    rows.push((format!("{name}/{label}"), wall));
                }
            }
        }
    }
    for (section, key) in [("live", "label"), ("des", "label")] {
        let Some(arms) = doc
            .get(section)
            .and_then(|s| s.get("arms"))
            .and_then(Json::as_arr)
        else {
            continue;
        };
        for arm in arms {
            let Some(label) = arm.get(key).and_then(Json::as_str) else {
                continue;
            };
            if let Some(wall) = arm.get("wall_secs").and_then(Json::as_num) {
                rows.push((format!("{section}/{label}"), wall));
            }
        }
    }
    rows
}

/// Renders the cross-PR wall-clock trajectory: one row per arm
/// appearing in **two or more** committed benchmark documents, one
/// column per bench version, plus the relative delta between the two
/// most recent documents carrying that arm. Purely informational —
/// timings are machine-dependent and the table never gates anything.
#[must_use]
pub fn bench_delta_table(history: &[(u64, Json)]) -> Table {
    let mut header: Vec<String> = vec!["arm".to_string()];
    header.extend(history.iter().map(|(v, _)| format!("bench {v} (s)")));
    header.push("Δ latest".to_string());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "cross-PR wall-clock trajectory (single-worker seconds)",
        &header_refs,
    );
    let per_doc: Vec<Vec<(String, f64)>> = history
        .iter()
        .map(|(_, doc)| bench_wall_rows(doc))
        .collect();
    let mut arm_keys: Vec<String> = Vec::new();
    for rows in &per_doc {
        for (key, _) in rows {
            if !arm_keys.contains(key) {
                arm_keys.push(key.clone());
            }
        }
    }
    for key in arm_keys {
        let series: Vec<Option<f64>> = per_doc
            .iter()
            .map(|rows| rows.iter().find(|(k, _)| *k == key).map(|(_, wall)| *wall))
            .collect();
        let sightings: Vec<f64> = series.iter().filter_map(|v| *v).collect();
        if sightings.len() < 2 {
            continue;
        }
        let prev = sightings[sightings.len() - 2];
        let last = sightings[sightings.len() - 1];
        let delta = if prev > 0.0 {
            format!("{:+.1}%", (last - prev) / prev * 100.0)
        } else {
            "-".to_string()
        };
        let mut cells = vec![key];
        cells.extend(
            series
                .iter()
                .map(|v| v.map_or_else(|| "-".to_string(), |wall| format!("{wall:.3}"))),
        );
        cells.push(delta);
        table.row_owned(cells);
    }
    table
}

fn require<'a>(obj: &'a Json, key: &str, what: &str) -> Result<&'a Json, String> {
    obj.get(key)
        .ok_or_else(|| format!("{what}: missing key `{key}`"))
}

fn require_num(obj: &Json, key: &str, what: &str) -> Result<f64, String> {
    require(obj, key, what)?
        .as_num()
        .ok_or_else(|| format!("{what}: `{key}` is not a number"))
}

/// Validates a benchmark document against the `perfbench` schema.
///
/// Checks structure only — record tag, experiment coverage (at least
/// F5–F8; newer documents also carry F9/F10, bench ≥ 9 must carry
/// the wall-clock `live` F11 section with both serving arms, and
/// bench ≥ 10 must carry the `des` F12 section with both substrates
/// at all three drive×scale arms), per-arm wall-clock/throughput maps
/// over exactly [`BENCH_THREADS`], phase-profile summaries with
/// histogram arrays, and a numeric-or-null peak RSS. Deliberately
/// says nothing about the *values* of timings: those are
/// machine-dependent and must not gate CI.
pub fn validate_bench(doc: &Json) -> Result<(), String> {
    if doc.get("record").and_then(Json::as_str) != Some("perfbench") {
        return Err("top-level: `record` must be \"perfbench\"".into());
    }
    require_num(doc, "bench", "top-level")?;
    let mode = require(doc, "mode", "top-level")?
        .as_str()
        .ok_or_else(|| "top-level: `mode` is not a string".to_string())?;
    if mode != "full" && mode != "smoke" {
        return Err(format!("top-level: unknown mode `{mode}`"));
    }
    match require(doc, "peak_rss_bytes", "top-level")? {
        Json::Null | Json::Num(_) => {}
        other => {
            return Err(format!(
                "top-level: peak_rss_bytes must be number or null, got {other:?}"
            ))
        }
    }
    let experiments = require(doc, "experiments", "top-level")?
        .as_arr()
        .ok_or_else(|| "top-level: `experiments` is not an array".to_string())?;
    let mut names: Vec<&str> = Vec::new();
    for exp in experiments {
        let name = require(exp, "experiment", "experiment")?
            .as_str()
            .ok_or_else(|| "experiment: `experiment` is not a string".to_string())?;
        names.push(name);
        require_num(exp, "seed", name)?;
        require_num(exp, "steps", name)?;
        require_num(exp, "reps", name)?;
        let arms = require(exp, "arms", name)?
            .as_arr()
            .ok_or_else(|| format!("{name}: `arms` is not an array"))?;
        if arms.is_empty() {
            return Err(format!("{name}: no arms"));
        }
        for arm in arms {
            let label = require(arm, "label", name)?
                .as_str()
                .ok_or_else(|| format!("{name}: arm label is not a string"))?;
            let what = format!("{name}/{label}");
            for field in ["wall_secs", "reps_per_sec"] {
                let by_threads = require(arm, field, &what)?;
                for t in BENCH_THREADS {
                    let v = require_num(by_threads, &thread_key(t), &format!("{what}.{field}"))?;
                    if !v.is_finite() || v < 0.0 {
                        return Err(format!("{what}.{field}.t{t}: non-finite or negative"));
                    }
                }
            }
            let phases = require(arm, "phases", &what)?;
            let Json::Obj(pairs) = phases else {
                return Err(format!("{what}: `phases` is not an object"));
            };
            if pairs.is_empty() {
                return Err(format!(
                    "{what}: empty phase profile — was observability off?"
                ));
            }
            for (phase, stats) in pairs {
                let pwhat = format!("{what}.phases.{phase}");
                for key in [
                    "count",
                    "total_secs",
                    "mean_secs",
                    "min_secs",
                    "max_secs",
                    "p50_secs",
                    "p95_secs",
                    "p99_secs",
                ] {
                    require_num(stats, key, &pwhat)?;
                }
                let hist = require(stats, "hist", &pwhat)?
                    .as_arr()
                    .ok_or_else(|| format!("{pwhat}: `hist` is not an array"))?;
                if hist.is_empty() {
                    return Err(format!("{pwhat}: empty histogram"));
                }
            }
        }
    }
    for expected in ["f5", "f6", "f7", "f8"] {
        if !names.contains(&expected) {
            return Err(format!("missing experiment `{expected}`"));
        }
    }
    // Bench 9 introduced the wall-clock `live` (F11) section; older
    // committed documents legitimately lack it.
    let bench = require_num(doc, "bench", "top-level")?;
    match doc.get("live") {
        None if bench >= 9.0 => return Err("bench >= 9 document missing `live` section".into()),
        None => {}
        Some(live) => {
            if require(live, "experiment", "live")?.as_str() != Some("f11") {
                return Err("live: `experiment` must be \"f11\"".into());
            }
            require_num(live, "seed", "live")?;
            require_num(live, "ticks", "live")?;
            require_num(live, "reps", "live")?;
            let arms = require(live, "arms", "live")?
                .as_arr()
                .ok_or_else(|| "live: `arms` is not an array".to_string())?;
            let mut labels = Vec::new();
            for arm in arms {
                let label = require(arm, "label", "live arm")?
                    .as_str()
                    .ok_or_else(|| "live arm: label is not a string".to_string())?;
                labels.push(label);
                let what = format!("live/{label}");
                for key in [
                    "wall_secs",
                    "requests_per_sec",
                    "p50_ms",
                    "p99_ms",
                    "goodput",
                    "error_rate",
                ] {
                    let v = require_num(arm, key, &what)?;
                    if !v.is_finite() || v < 0.0 {
                        return Err(format!("{what}.{key}: non-finite or negative"));
                    }
                }
            }
            for expected in ["supervised", "naive"] {
                if !labels.contains(&expected) {
                    return Err(format!("live: missing arm `{expected}`"));
                }
            }
        }
    }
    // Bench 10 introduced the discrete-event `des` (F12) section;
    // older committed documents legitimately lack it.
    match doc.get("des") {
        None if bench >= 10.0 => return Err("bench >= 10 document missing `des` section".into()),
        None => {}
        Some(des) => {
            if require(des, "experiment", "des")?.as_str() != Some("f12") {
                return Err("des: `experiment` must be \"f12\"".into());
            }
            require_num(des, "seed", "des")?;
            let arms = require(des, "arms", "des")?
                .as_arr()
                .ok_or_else(|| "des: `arms` is not an array".to_string())?;
            let mut labels = Vec::new();
            for arm in arms {
                let substrate = require(arm, "substrate", "des arm")?
                    .as_str()
                    .ok_or_else(|| "des arm: substrate is not a string".to_string())?;
                let drive = require(arm, "arm", "des arm")?
                    .as_str()
                    .ok_or_else(|| "des arm: arm is not a string".to_string())?;
                let label = format!("{substrate}:{drive}");
                let what = format!("des/{label}");
                if require(arm, "label", &what)?.as_str() != Some(label.as_str()) {
                    return Err(format!("{what}: `label` disagrees with substrate:arm"));
                }
                for key in [
                    "entities",
                    "steps",
                    "entity_ticks",
                    "visits",
                    "wakes",
                    "requests",
                    "wall_secs",
                    "ns_per_entity_tick",
                ] {
                    let v = require_num(arm, key, &what)?;
                    if !v.is_finite() || v < 0.0 {
                        return Err(format!("{what}.{key}: non-finite or negative"));
                    }
                }
                labels.push(label);
            }
            for substrate in ["camnet", "cloud"] {
                for drive in ["dense@reduced", "sparse@reduced", "sparse@full"] {
                    let expected = format!("{substrate}:{drive}");
                    if !labels.contains(&expected) {
                        return Err(format!("des: missing arm `{expected}`"));
                    }
                }
            }
            let speedups = require(des, "speedups", "des")?;
            for substrate in ["camnet", "cloud"] {
                let v = require_num(speedups, substrate, "des.speedups")?;
                if !v.is_finite() || v < 0.0 {
                    return Err(format!("des.speedups.{substrate}: non-finite or negative"));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn committed_bench_document_matches_schema() {
        let path = default_bench_path().expect("workspace root with Cargo.lock");
        // During early bootstrap the document may not exist yet; once
        // committed, any schema drift fails here.
        if !path.is_file() {
            return;
        }
        let text = std::fs::read_to_string(&path).expect("readable BENCH json");
        let doc = obs::parse(&text).expect("well-formed JSON");
        validate_bench(&doc).expect("schema-valid committed benchmark document");
        assert_eq!(
            doc.get("mode").and_then(Json::as_str),
            Some("full"),
            "the committed document must come from a full run, not --smoke"
        );
    }

    #[test]
    fn every_committed_bench_document_matches_schema() {
        // The perf-trajectory contract: every historical BENCH_<n>.json
        // stays committed and stays schema-valid under its own
        // version's rules.
        for (version, path) in bench_history_paths() {
            let text = std::fs::read_to_string(&path).expect("readable BENCH json");
            let doc = obs::parse(&text).expect("well-formed JSON");
            validate_bench(&doc)
                .unwrap_or_else(|e| panic!("BENCH_{version}.json fails validation: {e}"));
        }
    }

    #[test]
    fn validator_requires_des_section_from_bench_10() {
        let path = default_bench_path().expect("workspace root with Cargo.lock");
        if !path.is_file() {
            return;
        }
        let text = std::fs::read_to_string(&path).expect("readable BENCH json");
        let doc = obs::parse(&text).expect("well-formed JSON");
        let Json::Obj(pairs) = doc else {
            return;
        };
        let stripped = Json::Obj(pairs.into_iter().filter(|(k, _)| k != "des").collect());
        assert!(
            validate_bench(&stripped).is_err(),
            "a bench >= 10 document without `des` must be rejected"
        );
    }

    fn wall_doc(wall: f64) -> Json {
        Json::obj([
            (
                "experiments",
                Json::Arr(vec![Json::obj([
                    ("experiment", Json::str("f5")),
                    (
                        "arms",
                        Json::Arr(vec![Json::obj([
                            ("label", Json::str("broadcast")),
                            ("wall_secs", Json::obj([("t1", Json::from(wall))])),
                        ])]),
                    ),
                ])]),
            ),
            (
                "des",
                Json::obj([(
                    "arms",
                    Json::Arr(vec![Json::obj([
                        ("label", Json::str("camnet:sparse@full")),
                        ("wall_secs", Json::from(wall * 2.0)),
                    ])]),
                )]),
            ),
        ])
    }

    #[test]
    fn wall_rows_cover_experiment_and_section_arms() {
        let rows = bench_wall_rows(&wall_doc(1.5));
        assert!(rows.contains(&("f5/broadcast".to_string(), 1.5)));
        assert!(rows.contains(&("des/camnet:sparse@full".to_string(), 3.0)));
    }

    #[test]
    fn delta_table_needs_an_arm_in_two_documents() {
        assert!(bench_delta_table(&[(9, wall_doc(1.0))]).is_empty());
        let table = bench_delta_table(&[(9, wall_doc(1.0)), (10, wall_doc(0.5))]);
        assert_eq!(table.len(), 2, "both arms appear in both documents");
    }

    #[test]
    fn history_is_sorted_by_version() {
        let versions: Vec<u64> = bench_history_paths().iter().map(|(v, _)| *v).collect();
        let mut sorted = versions.clone();
        sorted.sort_unstable();
        assert_eq!(versions, sorted);
    }

    #[test]
    fn validator_rejects_drift() {
        let minimal = Json::obj([("record", Json::str("perfbench"))]);
        assert!(validate_bench(&minimal).is_err());
        let wrong_tag = Json::obj([("record", Json::str("bench"))]);
        assert!(validate_bench(&wrong_tag).is_err());
    }

    #[test]
    fn thread_keys_are_stable() {
        assert_eq!(thread_key(1), "t1");
        assert_eq!(thread_key(4), "t4");
    }
}
