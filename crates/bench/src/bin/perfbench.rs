//! Regenerates (or validates) the committed perf envelope,
//! `BENCH_<n>.json`. See `sas_bench::perf` for the schema and
//! DESIGN.md ("Performance") for the rules it enforces.
//!
//! Usage:
//!
//! * `cargo run --release -p sas-bench --bin perfbench`
//!   — full run; writes `BENCH_<n>.json` at the repo root.
//! * `... -- --smoke [--out PATH]`
//!   — reduced steps/reps (CI); same schema, machine-local timings.
//! * `... -- --validate PATH`
//!   — schema-check an existing document; exits non-zero on drift.
//!   No benchmarks run in this mode.
//! * `... -- --validate-all`
//!   — schema-check **every** committed `BENCH_<n>.json` at the repo
//!   root and print the cross-PR wall-clock delta table for arms
//!   present in two or more documents. Exits non-zero on drift in any
//!   document (timings stay informational). No benchmarks run.
//!
//! `--out PATH` overrides the output path in the generating modes.

use sas_bench::perf;
use simkernel::obs;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    smoke: bool,
    out: Option<PathBuf>,
    validate: Option<PathBuf>,
    validate_all: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        out: None,
        validate: None,
        validate_all: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => {
                args.out = Some(PathBuf::from(
                    it.next().ok_or("--out requires a path".to_string())?,
                ));
            }
            "--validate" => {
                args.validate = Some(PathBuf::from(
                    it.next().ok_or("--validate requires a path".to_string())?,
                ));
            }
            "--validate-all" => args.validate_all = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

/// Validates every committed `BENCH_<n>.json` and prints the cross-PR
/// wall-clock trajectory. Fails on schema drift in any document or
/// when no documents are found at all (the trajectory must never
/// silently vanish); timing differences are printed, never gated.
fn validate_all() -> ExitCode {
    let paths = perf::bench_history_paths();
    if paths.is_empty() {
        eprintln!("perfbench: no BENCH_<n>.json documents found at the repo root");
        return ExitCode::FAILURE;
    }
    let mut history = Vec::new();
    for (version, path) in paths {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("perfbench: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let doc = match obs::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("perfbench: {} is not valid JSON: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = perf::validate_bench(&doc) {
            eprintln!("perfbench: schema drift in {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("perfbench: {} conforms to the schema", path.display());
        history.push((version, doc));
    }
    let table = perf::bench_delta_table(&history);
    if table.is_empty() {
        println!("perfbench: no arm appears in two or more documents yet — no delta table");
    } else {
        println!("{table}");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("perfbench: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.validate_all {
        return validate_all();
    }

    if let Some(path) = args.validate {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("perfbench: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let doc = match obs::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("perfbench: {} is not valid JSON: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        return match perf::validate_bench(&doc) {
            Ok(()) => {
                println!("perfbench: {} conforms to the schema", path.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("perfbench: schema drift in {}: {e}", path.display());
                ExitCode::FAILURE
            }
        };
    }

    let out = match args.out.or_else(perf::default_bench_path) {
        Some(p) => p,
        None => {
            eprintln!("perfbench: cannot locate the workspace root (no Cargo.lock ancestor); pass --out PATH");
            return ExitCode::FAILURE;
        }
    };
    let start = std::time::Instant::now();
    let doc = perf::run_perfbench(args.smoke, |line| eprintln!("perfbench: {line}"));
    if let Err(e) = perf::validate_bench(&doc) {
        eprintln!("perfbench: generated document fails its own schema: {e}");
        return ExitCode::FAILURE;
    }
    let mut text = doc.render();
    text.push('\n');
    if let Err(e) = std::fs::write(&out, text) {
        eprintln!("perfbench: cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    eprintln!(
        "perfbench: wrote {} in {:.2?} ({} mode)",
        out.display(),
        start.elapsed(),
        if args.smoke { "smoke" } else { "full" }
    );
    ExitCode::SUCCESS
}
