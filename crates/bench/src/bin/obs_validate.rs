//! Validates run-trace artifacts emitted under the observability
//! layer (see `simkernel::obs` and `sas_bench::RunTrace`).
//!
//! Usage: `cargo run -p sas-bench --bin obs_validate [ROOT]`
//!
//! Scans `ROOT` (default: the configured artifact root, i.e.
//! `$SAS_OBS_DIR` or `target/obs`) for `*.jsonl` files and checks,
//! for each one, that every line parses as JSON and that the records
//! follow the trace schema: a leading `provenance` record with the
//! expected keys, then `arm` records carrying aggregates and phase
//! profiles, each followed by its `replicate` records and any
//! `counterfactual` records lifted from replay probes (F10). Exits
//! non-zero on the first malformed artifact — CI runs this after a
//! `SAS_OBS=1` smoke experiment.

use simkernel::obs::{self, Json};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Recursively collects `*.jsonl` files under `root`, sorted for
/// deterministic output.
fn collect_jsonl(root: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(root)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_jsonl(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "jsonl") {
            out.push(path);
        }
    }
    Ok(())
}

fn require_keys(record: &Json, keys: &[&str], what: &str) -> Result<(), String> {
    for key in keys {
        if record.get(key).is_none() {
            return Err(format!("{what} record is missing key {key:?}"));
        }
    }
    Ok(())
}

/// Checks one artifact against the trace schema. Returns a
/// human-readable error naming the offending line on failure.
fn validate(path: &Path) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("unreadable: {e}"))?;
    let (mut arms, mut replicates, mut counterfactuals) = (0usize, 0usize, 0usize);
    let mut saw_provenance = false;
    for (i, line) in text.lines().enumerate() {
        let record = obs::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let kind = record
            .get("record")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: no \"record\" discriminator", i + 1))?
            .to_string();
        let check = match kind.as_str() {
            "provenance" => {
                saw_provenance = true;
                require_keys(
                    &record,
                    &[
                        "experiment",
                        "seed",
                        "replicates",
                        "steps",
                        "sas_threads",
                        "config_digest",
                        "versions",
                    ],
                    "provenance",
                )
            }
            "arm" => {
                arms += 1;
                require_keys(
                    &record,
                    &["label", "completed", "wall_secs", "aggregate", "profile"],
                    "arm",
                )
            }
            "replicate" => {
                replicates += 1;
                require_keys(&record, &["arm", "index", "events"], "replicate")
            }
            "counterfactual" => {
                counterfactuals += 1;
                require_keys(
                    &record,
                    &[
                        "arm",
                        "replicate",
                        "campaign",
                        "headline",
                        "class",
                        "metric",
                        "factual",
                        "counterfactual",
                        "benefit",
                        "events",
                        "anchor_tick",
                        "anchor_action",
                        "log_dropped",
                        "truncated",
                    ],
                    "counterfactual",
                )
            }
            other => Err(format!("unknown record kind {other:?}")),
        };
        check.map_err(|e| format!("line {}: {e}", i + 1))?;
    }
    if !saw_provenance {
        return Err("no provenance record".to_string());
    }
    if arms == 0 {
        return Err("no arm records".to_string());
    }
    Ok(format!(
        "{arms} arm(s), {replicates} replicate record(s), {counterfactuals} counterfactual record(s)"
    ))
}

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map_or_else(obs::artifact_root, PathBuf::from);
    let mut files = Vec::new();
    if let Err(e) = collect_jsonl(&root, &mut files) {
        eprintln!("obs_validate: cannot scan {}: {e}", root.display());
        return ExitCode::FAILURE;
    }
    if files.is_empty() {
        eprintln!("obs_validate: no .jsonl artifacts under {}", root.display());
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in &files {
        match validate(path) {
            Ok(summary) => println!("ok  {} ({summary})", path.display()),
            Err(e) => {
                eprintln!("BAD {}: {e}", path.display());
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
