//! # sas-bench — the evaluation harness
//!
//! One module per experiment in EXPERIMENTS.md. Each `run_*` function
//! executes the experiment at its standard scale and returns the
//! rendered table/figure as a string; the `benches/` targets are thin
//! `main`s that print that string (so `cargo bench` regenerates every
//! table and figure of the reproduction).
//!
//! All experiments use common random numbers across strategies
//! (replicate *k* shares a seed subtree regardless of strategy), which
//! tightens the pairwise comparisons.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod perf;

pub use experiments::*;
