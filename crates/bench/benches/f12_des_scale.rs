//! Regenerates Table F12 (discrete-event substrate scale) and runs
//! its acceptance gate. See EXPERIMENTS.md. `F12_SMOKE=1` switches to
//! the reduced CI scale, which keeps every bit-identity check but
//! skips the wall-clock gates (scale floors, ≥10× per-entity-tick
//! speedup) — timing claims need the full scale to mean anything.
//! Exits non-zero when the gate fails.
fn main() {
    let smoke = std::env::var("F12_SMOKE").is_ok_and(|v| v != "0");
    let start = std::time::Instant::now();
    let report = sas_bench::run_f12(smoke, |line| eprintln!("  {line}"));
    println!("{}", report.table);
    for (substrate, speedup) in &report.speedups {
        println!(
            "{substrate}: sparse@full runs {speedup:.0}× faster per entity-tick than dense@reduced"
        );
    }
    eprintln!(
        "regenerated in {:.2?} on {} worker thread(s)",
        start.elapsed(),
        simkernel::worker_count(usize::MAX)
    );
    if report.failures.is_empty() {
        println!("F12 scale gate: PASS");
    } else {
        for failure in &report.failures {
            eprintln!("GATE {failure}");
        }
        eprintln!("F12 scale gate: FAIL");
        std::process::exit(1);
    }
}
