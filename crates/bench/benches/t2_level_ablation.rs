//! Regenerates Table T2. See EXPERIMENTS.md.
fn main() {
    println!(
        "{}",
        sas_bench::run_t2(sas_bench::REPS, sas_bench::CLOUD_STEPS)
    );
}
