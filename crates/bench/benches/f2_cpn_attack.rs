//! Regenerates Figure F2. See EXPERIMENTS.md.
fn main() {
    println!("{}", sas_bench::run_f2(3_000));
}
