//! Regenerates Table F8. See EXPERIMENTS.md. `F8_STEPS` overrides the
//! horizon (default 3000) for quick smoke runs.
fn main() {
    let steps = std::env::var("F8_STEPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3_000);
    let start = std::time::Instant::now();
    let table = sas_bench::run_f8(sas_bench::REPS, steps);
    println!("{table}");
    eprintln!(
        "regenerated in {:.2?} on {} worker thread(s)",
        start.elapsed(),
        simkernel::worker_count(usize::MAX)
    );
}
