//! Regenerates Table F9 (composed smart-city cascade) and the F9b
//! learned-router breaking-point sweep. See EXPERIMENTS.md. `F9_STEPS`
//! overrides the horizon (default 3000) for quick smoke runs.
fn main() {
    let steps = std::env::var("F9_STEPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3_000);
    let start = std::time::Instant::now();
    let table = sas_bench::run_f9(sas_bench::REPS, steps);
    println!("{table}");
    let (sweep, breaking) = sas_bench::f9_breaking_point(sas_bench::REPS, steps);
    println!("{sweep}");
    match breaking {
        Some(loss) => println!(
            "breaking point: learned-router delivery drops >5% below clean at {:.0}% report loss",
            loss * 100.0
        ),
        None => println!(
            "breaking point: not reached — the learned router held within 5% of clean delivery across the whole sweep"
        ),
    }
    eprintln!(
        "regenerated in {:.2?} on {} worker thread(s)",
        start.elapsed(),
        simkernel::worker_count(usize::MAX)
    );
}
