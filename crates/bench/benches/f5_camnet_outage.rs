//! Regenerates Table F5. See EXPERIMENTS.md. `F5_STEPS` overrides the
//! horizon (default 6000) and `F5_REPS` the replicate count — used by
//! CI for quick `SAS_OBS=1` smoke runs.
fn main() {
    let steps = std::env::var("F5_STEPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(6_000);
    let reps = std::env::var("F5_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(sas_bench::REPS);
    let start = std::time::Instant::now();
    let table = sas_bench::run_f5(reps, steps);
    println!("{table}");
    eprintln!(
        "regenerated in {:.2?} on {} worker thread(s)",
        start.elapsed(),
        simkernel::worker_count(usize::MAX)
    );
}
