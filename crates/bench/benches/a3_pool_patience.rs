//! Ablation A3: meta model-pool patience sweep. See EXPERIMENTS.md.
fn main() {
    let start = std::time::Instant::now();
    let out = sas_bench::run_a3(sas_bench::REPS, 4_000);
    println!("{out}");
    eprintln!(
        "regenerated in {:.2?} on {} worker thread(s)",
        start.elapsed(),
        simkernel::worker_count(usize::MAX)
    );
}
