//! Ablation A3: meta model-pool patience sweep. See EXPERIMENTS.md.
fn main() {
    println!("{}", sas_bench::run_a3(sas_bench::REPS, 4_000));
}
