//! Regenerates Table F11 (live-traffic chaos: supervised vs naive
//! provisioning on a real TCP server). See EXPERIMENTS.md.
//!
//! `F11_TICKS` overrides the horizon in 10 ms governor quanta
//! (default 800 ≈ 8 s of offered load per arm-replicate); `F11_REPS`
//! overrides the replicate count (default 3). Exits non-zero when any
//! acceptance check fails: unclean shutdown or leaked threads on any
//! replicate, a supervised run with no shed→recover cycle or an
//! unnoticed model poisoning, or supervised failing to beat naive on
//! goodput and p99 with non-overlapping 95% CIs. `F11_SMOKE=1` (the CI
//! smoke, which runs short horizons) skips only the two statistical
//! CI-separation gates; the robustness gates always apply.

fn main() {
    let ticks = std::env::var("F11_TICKS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(800);
    let reps = std::env::var("F11_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let strict = std::env::var("F11_SMOKE").map_or(true, |v| v != "1");
    let start = std::time::Instant::now();
    let report = sas_bench::run_f11(reps, ticks, strict);
    println!("{}", report.table);
    if !report.transitions.is_empty() {
        println!("replicate-0 supervised transitions:");
        for line in &report.transitions {
            println!("  {line}");
        }
    }
    eprintln!(
        "regenerated in {:.2?} (wall-clock scenario)",
        start.elapsed()
    );
    if report.failures.is_empty() {
        println!("live-traffic acceptance: PASS");
    } else {
        for failure in &report.failures {
            eprintln!("GATE {failure}");
        }
        eprintln!("live-traffic acceptance: FAIL");
        std::process::exit(1);
    }
}
