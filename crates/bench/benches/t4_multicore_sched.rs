//! Regenerates Table T4. See EXPERIMENTS.md.
fn main() {
    println!("{}", sas_bench::run_t4(sas_bench::REPS, 3_000));
}
