//! B1 — micro-benchmark of the self-awareness loop itself: cost of
//! one `SelfAwareAgent::step` per possessed level set, plus the core
//! model primitives. Engineering sanity check: the paper's pitch only
//! works if the loop is cheap relative to the decisions it improves.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use selfaware::prelude::*;
use simkernel::{SeedTree, Tick};

struct World {
    load: f64,
    queue: f64,
    temp: f64,
}

fn make_agent(levels: LevelSet) -> SelfAwareAgent<World, usize> {
    let goal = Goal::new("g")
        .objective(Objective::new("load", Direction::Minimize, 1.0, 1.0))
        .objective(Objective::new("queue", Direction::Minimize, 10.0, 1.0));
    let policy = UtilityPolicy::new(
        vec![(0usize, "a".into()), (1, "b".into()), (2, "c".into())],
        Box::new(|a: &usize, kb: &KnowledgeBase| {
            let load = kb.last_or("forecast.load", 0.5);
            *a as f64 * load
        }),
    );
    SelfAwareAgent::builder("bench")
        .levels(levels)
        .sensor("load", Scope::Public, |w: &World| w.load)
        .sensor("queue", Scope::Private, |w: &World| w.queue)
        .sensor("temp", Scope::Private, |w: &World| w.temp)
        .goal(goal)
        .policy(Box::new(policy))
        .build()
        .expect("valid agent")
}

fn bench_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("b1_agent_step");
    let cases = [
        ("stimulus", LevelSet::new().with(Level::Stimulus)),
        (
            "stimulus+time",
            LevelSet::new().with(Level::Stimulus).with(Level::Time),
        ),
        (
            "stimulus+time+goal",
            LevelSet::new()
                .with(Level::Stimulus)
                .with(Level::Time)
                .with(Level::Goal),
        ),
        ("full", LevelSet::full()),
    ];
    for (name, levels) in cases {
        group.bench_function(name, |b| {
            b.iter_batched_ref(
                || (make_agent(levels), SeedTree::new(1).rng("bench"), 0u64),
                |(agent, rng, t)| {
                    *t += 1;
                    let world = World {
                        load: (*t as f64 * 0.1).sin().abs(),
                        queue: (*t % 17) as f64,
                        temp: 40.0 + (*t % 13) as f64,
                    };
                    let d = agent.step(&world, Tick(*t), rng);
                    agent.reward(if d.action == 0 { 1.0 } else { 0.0 });
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("b1_model_primitives");
    group.bench_function("ewma_observe", |b| {
        let mut m = Ewma::new(0.2);
        let mut x = 0.0_f64;
        b.iter(|| {
            x += 0.1;
            m.observe(std::hint::black_box(x.sin()));
            std::hint::black_box(m.forecast())
        });
    });
    group.bench_function("holt_observe", |b| {
        let mut m = Holt::new(0.3, 0.1);
        let mut x = 0.0_f64;
        b.iter(|| {
            x += 0.1;
            m.observe(std::hint::black_box(x.sin()));
            std::hint::black_box(m.forecast())
        });
    });
    group.bench_function("ucb1_select_update", |b| {
        let mut bandit = Ucb1::new(16, 1.4);
        let mut rng = SeedTree::new(2).rng("ucb");
        b.iter(|| {
            let arm = bandit.select(&mut rng);
            bandit.update(arm, 0.5);
            std::hint::black_box(arm)
        });
    });
    group.bench_function("page_hinkley_observe", |b| {
        let mut d = PageHinkley::new(0.05, 50.0);
        let mut x = 0.0_f64;
        b.iter(|| {
            x += 0.01;
            std::hint::black_box(d.observe(x.sin()))
        });
    });
    group.finish();
}

/// One moderately heavy replicate (a few ms of agent stepping) used
/// to compare sequential and parallel replication fan-out.
fn replication_scenario(seeds: SeedTree) -> simkernel::MetricSet {
    let mut agent = make_agent(LevelSet::full());
    let mut rng = seeds.rng("bench");
    let mut m = simkernel::MetricSet::new();
    let mut hits = 0.0;
    for t in 1..=2_000u64 {
        let world = World {
            load: (t as f64 * 0.1).sin().abs(),
            queue: (t % 17) as f64,
            temp: 40.0 + (t % 13) as f64,
        };
        let d = agent.step(&world, Tick(t), &mut rng);
        let reward = if d.action == 0 { 1.0 } else { 0.0 };
        agent.reward(reward);
        hits += reward;
    }
    m.set("hit_ratio", hits / 2_000.0);
    m
}

fn bench_replication(c: &mut Criterion) {
    use simkernel::Replications;
    let reps = Replications::new(0xB1, 16);
    let mut group = c.benchmark_group("b1_replication_engine");
    group.bench_function("sequential_run", |b| {
        b.iter(|| std::hint::black_box(reps.run(replication_scenario)));
    });
    let hw = simkernel::worker_count(usize::MAX);
    for threads in [1, 2, 4, hw] {
        group.bench_function(&format!("run_par_threads_{threads}"), |b| {
            b.iter(|| std::hint::black_box(reps.run_par_threads(threads, replication_scenario)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_loop, bench_models, bench_replication
}
criterion_main!(benches);
