//! Regenerates Figure F1. See EXPERIMENTS.md.
fn main() {
    println!("{}", sas_bench::run_f1(6_000));
}
