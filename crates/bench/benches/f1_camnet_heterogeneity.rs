//! Regenerates Figure F1. See EXPERIMENTS.md.
fn main() {
    let start = std::time::Instant::now();
    let out = sas_bench::run_f1(6_000);
    println!("{out}");
    eprintln!(
        "regenerated in {:.2?} on {} worker thread(s)",
        start.elapsed(),
        simkernel::worker_count(usize::MAX)
    );
}
