//! Regenerates Table T5. See EXPERIMENTS.md.
fn main() {
    println!("{}", sas_bench::run_t5(10));
}
