//! Regenerates Table T1. See EXPERIMENTS.md.
fn main() {
    println!(
        "{}",
        sas_bench::run_t1(sas_bench::REPS, sas_bench::CLOUD_STEPS)
    );
}
