//! Regenerates Table T1. See EXPERIMENTS.md.
fn main() {
    let start = std::time::Instant::now();
    let out = sas_bench::run_t1(sas_bench::REPS, sas_bench::CLOUD_STEPS);
    println!("{out}");
    eprintln!(
        "regenerated in {:.2?} on {} worker thread(s)",
        start.elapsed(),
        simkernel::worker_count(usize::MAX)
    );
}
