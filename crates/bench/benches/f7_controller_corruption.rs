//! Regenerates Table F7. See EXPERIMENTS.md.
fn main() {
    let start = std::time::Instant::now();
    let table = sas_bench::run_f7(sas_bench::REPS, 6_000);
    println!("{table}");
    eprintln!(
        "regenerated in {:.2?} on {} worker thread(s)",
        start.elapsed(),
        simkernel::worker_count(usize::MAX)
    );
}
