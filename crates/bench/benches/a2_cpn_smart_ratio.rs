//! Ablation A2: CPN smart-packet ratio sweep. See EXPERIMENTS.md.
fn main() {
    println!("{}", sas_bench::run_a2(sas_bench::REPS, 3_000));
}
