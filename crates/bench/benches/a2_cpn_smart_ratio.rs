//! Ablation A2: CPN smart-packet ratio sweep. See EXPERIMENTS.md.
fn main() {
    let start = std::time::Instant::now();
    let out = sas_bench::run_a2(sas_bench::REPS, 3_000);
    println!("{out}");
    eprintln!(
        "regenerated in {:.2?} on {} worker thread(s)",
        start.elapsed(),
        simkernel::worker_count(usize::MAX)
    );
}
