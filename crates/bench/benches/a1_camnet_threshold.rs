//! Ablation A1: camnet ask-threshold sweep. See EXPERIMENTS.md.
fn main() {
    println!("{}", sas_bench::run_a1(sas_bench::REPS, 6_000));
}
