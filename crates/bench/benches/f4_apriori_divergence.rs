//! Regenerates Figure F4. See EXPERIMENTS.md.
fn main() {
    println!("{}", sas_bench::run_f4(sas_bench::REPS, 4_000));
}
