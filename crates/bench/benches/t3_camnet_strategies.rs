//! Regenerates Table T3. See EXPERIMENTS.md.
fn main() {
    println!("{}", sas_bench::run_t3(sas_bench::REPS, 6_000));
}
