//! Regenerates Table T6. See EXPERIMENTS.md.
fn main() {
    println!("{}", sas_bench::run_t6(sas_bench::REPS, 4_000));
}
