//! Regenerates Table F10 (counterfactual-replay explanation fidelity)
//! and runs the intervention-regression gate. See EXPERIMENTS.md.
//! `F10_STEPS` overrides the horizon (default 3000) for quick smoke
//! runs. Exits non-zero when the gate fails — CI treats any
//! intervention class with negative measured benefit on its canonical
//! campaign as a regression.
fn main() {
    let steps = std::env::var("F10_STEPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3_000);
    let start = std::time::Instant::now();
    let report = sas_bench::run_f10(sas_bench::REPS, steps);
    println!("{}", report.table);
    println!("{}", report.fidelity);
    if !report.headlines.is_empty() {
        println!("replicate-0 headlines:");
        for line in &report.headlines {
            println!("  {line}");
        }
    }
    for flag in &report.truncation_flags {
        println!("WARNING {flag}");
    }
    eprintln!(
        "regenerated in {:.2?} on {} worker thread(s)",
        start.elapsed(),
        simkernel::worker_count(usize::MAX)
    );
    if report.gate_failures.is_empty() {
        println!("intervention-regression gate: PASS");
    } else {
        for failure in &report.gate_failures {
            eprintln!("GATE {failure}");
        }
        eprintln!("intervention-regression gate: FAIL");
        std::process::exit(1);
    }
}
