//! Regenerates Figure F3. See EXPERIMENTS.md.
fn main() {
    println!("{}", sas_bench::run_f3(4_000));
}
