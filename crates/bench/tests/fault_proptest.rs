//! Property tests for the fault layer: for *any* fault plan, runs are
//! (a) deterministic per seed and (b) bit-identical between the
//! sequential and parallel replication engines.
//!
//! Case counts are kept low because each case simulates full
//! scenarios; the point is plan-shape coverage, not statistical power.

use proptest::prelude::*;
use sas_bench::experiments::{f7_scenario, F7Arm, F7_REGRET_CAP};
use selfaware::comms::{CommsPolicy, ReliableConfig};
use simkernel::{Aggregate, Replications, SeedTree, Tick};
use workloads::faults::{ChannelPlan, LinkModel, ModelCorruptionKind};
use workloads::{FaultEvent, FaultPlan, SensorFaultKind};

const STEPS: u64 = 400;
const REPS: u32 = 2;

fn assert_bitwise_equal(a: &Aggregate, b: &Aggregate, what: &str) {
    assert_eq!(a, b, "{what}: aggregates differ");
    for (name, _) in a.iter() {
        assert_eq!(
            a.mean(name).to_bits(),
            b.mean(name).to_bits(),
            "{what}: mean({name}) diverged"
        );
    }
}

/// An arbitrary fail/recover pair on one camera of the 4×4 grid.
fn camera_outage() -> impl Strategy<Value = [FaultEvent; 2]> {
    (0usize..16, 0u64..STEPS, 1u64..STEPS / 2).prop_map(|(cam, at, down)| {
        [
            FaultEvent::camera_fail(Tick(at), cam),
            FaultEvent::camera_recover(Tick(at + down), cam),
        ]
    })
}

/// An arbitrary cut/restore pair on a horizontal link of the 4×6 CPN
/// grid.
fn link_outage() -> impl Strategy<Value = [FaultEvent; 2]> {
    (0usize..4, 0usize..5, 0u64..STEPS, 1u64..STEPS / 2).prop_map(|(r, c, at, down)| {
        let (a, b) = (r * 6 + c, r * 6 + c + 1);
        [
            FaultEvent::link_cut(Tick(at), a, b),
            FaultEvent::link_restore(Tick(at + down), a, b),
        ]
    })
}

/// An arbitrary fail/recover pair on one of the 8 multicore cores.
fn core_outage() -> impl Strategy<Value = [FaultEvent; 2]> {
    (0usize..8, 0u64..STEPS, 1u64..STEPS / 2).prop_map(|(core, at, down)| {
        [
            FaultEvent::core_fail(Tick(at), core),
            FaultEvent::core_recover(Tick(at + down), core),
        ]
    })
}

/// An arbitrary sensor fault on one of three sensors.
fn sensor_fault() -> impl Strategy<Value = FaultEvent> {
    let kind = prop_oneof![
        Just(SensorFaultKind::StuckAt),
        (-5.0f64..5.0).prop_map(|offset| SensorFaultKind::Bias { offset }),
        Just(SensorFaultKind::Dropout),
        (0.1f64..4.0).prop_map(|sigma| SensorFaultKind::Noise { sigma }),
    ];
    (0usize..3, 0u64..STEPS, 1u64..STEPS / 2, kind)
        .prop_map(|(sensor, at, dur, kind)| FaultEvent::sensor_fault(Tick(at), sensor, kind, dur))
}

/// An arbitrary unreliable-link model: any mix of loss, duplication,
/// and delay/reordering within the validated probability ranges.
fn link_model() -> impl Strategy<Value = LinkModel> {
    (0.0f64..0.6, 0.0f64..0.3, 0.0f64..0.4, 1u64..6).prop_map(
        |(loss, dup, delay_prob, max_delay)| LinkModel {
            loss,
            dup,
            delay_prob,
            max_delay,
        },
    )
}

/// An optional scheduled partition silencing a random node subset.
/// Node ids stay below 16 so the same spec is valid on the camnet
/// grid (16 cameras) and the CPN grid (24 routers).
fn partition_spec() -> impl Strategy<Value = Option<(u64, u64, Vec<usize>)>> {
    (
        any::<bool>(),
        0u64..STEPS,
        1u64..STEPS / 2,
        proptest::collection::vec(0usize..16, 1..4),
    )
        .prop_map(|(on, start, duration, nodes)| on.then_some((start, duration, nodes)))
}

fn channel_of(
    seeds: &SeedTree,
    model: LinkModel,
    part: &Option<(u64, u64, Vec<usize>)>,
) -> ChannelPlan {
    let mut plan = ChannelPlan::uniform(seeds, model);
    if let Some((start, duration, nodes)) = part.clone() {
        plan = plan.with_partition(start, duration, nodes);
    }
    plan
}

/// An arbitrary model-corruption event aimed at controller 0.
fn model_corruption() -> impl Strategy<Value = FaultEvent> {
    let kind = prop_oneof![
        Just(ModelCorruptionKind::NanPoison),
        (2.0f64..60.0).prop_map(|gain| ModelCorruptionKind::WeightScramble { gain }),
        (1u64..STEPS / 3).prop_map(|duration| ModelCorruptionKind::StateFreeze { duration }),
    ];
    (0u64..STEPS, kind).prop_map(|(at, kind)| FaultEvent::model_corruption(Tick(at), 0, kind))
}

fn plan_of(events: Vec<[FaultEvent; 2]>) -> FaultPlan {
    FaultPlan::new(events.into_iter().flatten().collect())
}

fn check_parity<F>(base_seed: u64, scenario: F, what: &str)
where
    F: Fn(SeedTree) -> simkernel::MetricSet + Sync,
{
    let reps = Replications::new(base_seed, REPS);
    let seq = reps.run(&scenario);
    let par = reps.run_par_threads(4, &scenario);
    assert_bitwise_equal(&par, &seq, what);
}

proptest! {

    #[test]
    fn any_camera_fault_plan_is_parity_clean(outages in proptest::collection::vec(camera_outage(), 0..5)) {
        let plan = plan_of(outages);
        check_parity(0x9A1, |seeds| {
            let mut cfg = camnet::CamnetConfig::standard(
                camnet::HandoverStrategy::self_aware_default(),
                STEPS,
            );
            cfg.faults = plan.clone();
            camnet::run_camnet(&cfg, &seeds).metrics
        }, "proptest/camnet");
    }

    #[test]
    fn any_link_fault_plan_is_parity_clean(outages in proptest::collection::vec(link_outage(), 0..5)) {
        let plan = plan_of(outages);
        check_parity(0x9A2, |seeds| {
            let mut cfg = cpn::CpnConfig::standard(cpn::RoutingStrategy::cpn_default(), STEPS);
            cfg.faults = plan.clone();
            cpn::run_cpn(&cfg, &seeds).metrics
        }, "proptest/cpn");
    }

    #[test]
    fn any_core_fault_plan_is_parity_clean(outages in proptest::collection::vec(core_outage(), 0..5)) {
        let plan = plan_of(outages);
        check_parity(0x9A3, |seeds| {
            let mut cfg = multicore::MulticoreConfig::standard(
                multicore::Scheduler::SelfAware,
                STEPS,
            );
            cfg.faults = plan.clone();
            multicore::run_multicore(&cfg, &seeds).metrics
        }, "proptest/multicore");
    }

    #[test]
    fn any_corruption_plan_is_parity_clean_and_bounded(events in proptest::collection::vec(model_corruption(), 0..5)) {
        // For any random corruption plan, the supervised F7 controller
        // (a) stays seq/par parity-clean and (b) never pays more than
        // the regret cap per tick on average.
        let plan = FaultPlan::new(events);
        for arm in [F7Arm::Unsupervised, F7Arm::Supervised] {
            check_parity(0x9A5, |seeds| f7_scenario(arm, &plan, seeds, STEPS), "proptest/f7");
        }
        let m = f7_scenario(F7Arm::Supervised, &plan, SeedTree::new(0x9A5), STEPS);
        let mean = m.get("mean_regret").unwrap_or(f64::NAN);
        prop_assert!(mean.is_finite() && mean <= F7_REGRET_CAP, "mean regret {mean}");
    }

    #[test]
    fn nan_poison_always_favours_supervision(at in (STEPS / 8)..(STEPS / 2), seed in 0u64..32) {
        // Wherever a NaN poisoning lands (with room left to recover),
        // the supervised controller's corrupted-window regret must
        // strictly beat the unsupervised one's: the unsupervised Holt
        // forecasts NaN forever after, paying the cap each tick.
        let plan = FaultPlan::new(vec![FaultEvent::model_corruption(
            Tick(at),
            0,
            ModelCorruptionKind::NanPoison,
        )]);
        let sup = f7_scenario(F7Arm::Supervised, &plan, SeedTree::new(seed), STEPS);
        let uns = f7_scenario(F7Arm::Unsupervised, &plan, SeedTree::new(seed), STEPS);
        let s = sup.get("regret_corrupt").unwrap_or(f64::NAN);
        let u = uns.get("regret_corrupt").unwrap_or(f64::NAN);
        prop_assert!(s < u, "supervised {s} vs unsupervised {u} (poison at {at})");
    }

    #[test]
    fn any_channel_plan_is_parity_clean(
        model in link_model(),
        part in partition_spec(),
        naive in any::<bool>(),
    ) {
        // For any random channel (loss + duplication + delay/reorder +
        // optional partition) and either comms policy, the lossy
        // collective runs must stay bit-identical between the
        // sequential and parallel replication engines: channel draws
        // are stateless hashes of (plan salt, link, sequence number),
        // never of replicate order.
        let policy = if naive {
            CommsPolicy::Naive
        } else {
            CommsPolicy::Reliable(ReliableConfig::default())
        };
        check_parity(0x9A6, |seeds| {
            let mut cfg = camnet::CamnetConfig::standard(
                camnet::HandoverStrategy::self_aware_default(),
                STEPS,
            );
            cfg.channel = channel_of(&seeds, model, &part);
            cfg.comms = policy;
            camnet::run_camnet(&cfg, &seeds).metrics
        }, "proptest/channel/camnet");
        check_parity(0x9A7, |seeds| {
            let mut cfg = cpn::CpnConfig::standard(cpn::RoutingStrategy::cpn_default(), STEPS);
            cfg.channel = channel_of(&seeds, model, &part);
            cfg.comms = policy;
            cpn::run_cpn(&cfg, &seeds).metrics
        }, "proptest/channel/cpn");
    }

    #[test]
    fn any_sensor_fault_plan_keeps_runs_deterministic(events in proptest::collection::vec(sensor_fault(), 0..6)) {
        // The F6 pipeline re-run with the same seed must be identical
        // under any plan; guarded and raw arms both go through it.
        let plan = FaultPlan::new(events);
        let seeds = SeedTree::new(0x9A4);
        for guarded in [false, true] {
            let a = f6_like(&plan, guarded, seeds);
            let b = f6_like(&plan, guarded, seeds);
            prop_assert_eq!(a, b, "guarded={}", guarded);
        }
    }
}

/// A reduced F6 pipeline parameterised on an arbitrary plan, returning
/// the bits of the final estimate error (for exact comparison).
fn f6_like(plan: &FaultPlan, guarded: bool, seeds: SeedTree) -> u64 {
    use rand::Rng as _;
    use selfaware::explain::ExplanationLog;
    use selfaware::health::SensorHealth;
    use workloads::signal::{SignalGen, SignalSpec};

    let mut gen = SignalGen::new(
        vec![(
            0,
            SignalSpec::Oscillation {
                center: 20.0,
                amplitude: 6.0,
                period: 300.0,
            },
        )],
        0.0,
        seeds.rng("truth"),
    );
    let mut srng = seeds.rng("sensor-noise");
    let mut frng = seeds.rng("fault-noise");
    let mut health = SensorHealth::default();
    let mut log = ExplanationLog::new(256);
    let mut held = [20.0f64; 3];
    let mut est = 20.0;
    let mut err = 0.0f64;
    for t in 0..STEPS {
        let now = Tick(t);
        let truth = gen.sample(now);
        let mut trusted = Vec::with_capacity(3);
        for (i, h) in held.iter_mut().enumerate() {
            let clean = truth + 0.2 * (srng.gen::<f64>() * 2.0 - 1.0);
            let raw = match plan.sensor_fault_at(i, now) {
                Some(k) => k.corrupt(clean, *h, &mut frng),
                None => {
                    *h = clean;
                    Some(clean)
                }
            };
            if guarded {
                let key = ["s0", "s1", "s2"][i];
                let r = health.observe_with_reference(key, raw, Some(est), now, &mut log);
                if !r.degraded && !r.substituted {
                    trusted.push(r.value);
                }
            } else if let Some(x) = raw {
                trusted.push(x);
            }
        }
        if !trusted.is_empty() {
            est = trusted.iter().sum::<f64>() / trusted.len() as f64;
        }
        err += (est - truth).abs();
    }
    err.to_bits()
}

/// An arbitrary zone outage over the F9 world's 9 backend machines
/// (3 zones × 3 cores).
fn zone_outage_event() -> impl Strategy<Value = FaultEvent> {
    (0usize..9, 1usize..4, 0u64..STEPS, 1u64..STEPS / 2)
        .prop_map(|(first, count, at, dur)| FaultEvent::zone_outage(Tick(at), first, count, dur))
}

proptest! {
    #[test]
    fn any_fault_campaign_is_parity_clean(
        zones in proptest::collection::vec(zone_outage_event(), 0..3),
        links in proptest::collection::vec(link_outage(), 0..3),
        sensors in proptest::collection::vec(sensor_fault(), 0..3),
        corruptions in proptest::collection::vec(model_corruption(), 0..2),
        model in link_model(),
        part in partition_spec(),
        naive in any::<bool>(),
    ) {
        // The F9 composition is the union of every fault surface:
        // random composed campaigns (zone outages + CPN link cuts +
        // sensor faults + model corruption + an arbitrary lossy /
        // partitioned command channel) over the composed city must
        // never panic, never wedge the delivery queue, and stay
        // bit-identical between the sequential and parallel
        // replication engines at both stack policies.
        let plan = FaultPlan::new(
            zones
                .into_iter()
                .chain(links.into_iter().flatten())
                .chain(sensors)
                .chain(corruptions)
                .collect(),
        );
        let policy = if naive {
            compose::CityPolicy::all_naive()
        } else {
            compose::CityPolicy::supervised()
        };
        check_parity(0x9A9, |seeds| {
            let city_seeds = seeds.child("city");
            let mut cfg = compose::CityConfig::standard(policy.clone(), STEPS, &city_seeds);
            cfg.campaign = workloads::FaultCampaign::new("prop", &city_seeds)
                .with_faults(&plan)
                .with_channel(channel_of(&city_seeds, model, &part));
            compose::run_city(&cfg, &city_seeds).metrics
        }, &format!("proptest/f9-campaign/naive={naive}"));
    }

    #[test]
    fn any_single_flip_mask_is_parity_clean_and_factual_mask_is_identity(
        zones in proptest::collection::vec(zone_outage_event(), 0..2),
        links in proptest::collection::vec(link_outage(), 0..2),
        sensors in proptest::collection::vec(sensor_fault(), 0..3),
        corruptions in proptest::collection::vec(model_corruption(), 0..2),
        model in link_model(),
        class_idx in 0usize..selfaware::replay::InterventionClass::ALL.len(),
    ) {
        // The counterfactual-replay contract (F10): suppressing any
        // single intervention class must leave the composed-city run
        // (a) bit-identical between the sequential engine and the
        // parallel engine at 1 and 4 threads — masked branches consume
        // no RNG, so masking cannot perturb replicate seed streams —
        // and (b) the factual (all-bits-off) mask must reproduce the
        // unmasked original run bit-exactly.
        use selfaware::replay::{InterventionClass, InterventionMask};
        let plan = FaultPlan::new(
            zones
                .into_iter()
                .chain(links.into_iter().flatten())
                .chain(sensors)
                .chain(corruptions)
                .collect(),
        );
        let run = |seeds: SeedTree, mask: Option<InterventionMask>| {
            let city_seeds = seeds.child("city");
            let mut cfg = compose::CityConfig::standard(
                compose::CityPolicy::supervised(),
                STEPS,
                &city_seeds,
            );
            let mut campaign = workloads::FaultCampaign::new("prop-mask", &city_seeds)
                .with_faults(&plan)
                .with_channel(channel_of(&city_seeds, model, &None));
            if let Some(m) = mask {
                campaign = campaign.with_mask(m);
            }
            cfg.campaign = campaign;
            compose::run_city(&cfg, &city_seeds).metrics
        };

        let flipped = InterventionMask::suppressing(InterventionClass::ALL[class_idx]);
        let reps = Replications::new(0x9AB, REPS);
        let masked = |seeds: SeedTree| run(seeds, Some(flipped));
        let seq = reps.run(&masked);
        assert_bitwise_equal(&reps.run_par_threads(1, masked), &seq, "proptest/mask/par1");
        assert_bitwise_equal(&reps.run_par_threads(4, masked), &seq, "proptest/mask/par4");

        let factual = reps.run(|seeds| run(seeds, Some(InterventionMask::allow_all())));
        let original = reps.run(|seeds| run(seeds, None));
        assert_bitwise_equal(&factual, &original, "proptest/mask/factual-identity");
    }
}
