//! Observability must be a pure exporter: toggling `SAS_OBS` or the
//! worker count can never change a simulation result.
//!
//! These tests run real experiment scenarios with observability off
//! and on, at 1 and 4 worker threads, and require bit-identical
//! aggregates (including the comms counters, i.e. `CommsStats`) and
//! identical structured records — metrics, stats blocks, and drained
//! explanation sequences — across thread counts. They live in their
//! own integration binary because the obs override is process-global:
//! sharing a binary with unrelated tests would race the toggle.

use sas_bench::experiments::{f5_scenario, f8_scenario, F8Arm, RunTrace};
use simkernel::obs::{self, Json};
use simkernel::{Aggregate, MetricSet, Replications, RunReport, SeedTree};
use std::sync::Mutex;

const REPS: u32 = 3;

/// Serialises tests that flip the process-global obs override.
fn obs_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn assert_bitwise_equal(a: &Aggregate, b: &Aggregate, what: &str) {
    assert_eq!(a, b, "{what}: aggregates differ");
    for (name, _) in a.iter() {
        assert_eq!(
            a.mean(name).to_bits(),
            b.mean(name).to_bits(),
            "{what}: mean({name}) diverged"
        );
    }
}

/// Renders every replicate's records to JSONL text — the
/// determinism-relevant projection of the observations.
fn rendered_records(report: &RunReport) -> Vec<Vec<String>> {
    report
        .records()
        .iter()
        .map(|replicate| replicate.iter().map(Json::render).collect())
        .collect()
}

/// Runs `scenario` with obs off and on, each at 1 and 4 threads, and
/// checks the full parity contract.
fn check_obs_parity<F>(base_seed: u64, scenario: F, what: &str)
where
    F: Fn(SeedTree) -> MetricSet + Sync,
{
    let reps = Replications::new(base_seed, REPS);
    obs::set_override(Some(false));
    let off1 = reps.run_par_threads(1, &scenario);
    let off4 = reps.run_par_threads(4, &scenario);
    obs::set_override(Some(true));
    let on1 = reps.run_par_threads(1, &scenario);
    let on4 = reps.run_par_threads(4, &scenario);
    obs::set_override(None);

    // The metric aggregates — including the comms_* counters, which
    // are the CommsStats of every protocol endpoint — are bitwise
    // identical whether or not observation happened, at any width.
    for (other, label) in [(&off4, "off/4"), (&on1, "on/1"), (&on4, "on/4")] {
        assert_bitwise_equal(&off1, other, &format!("{what}: off/1 vs {label}"));
    }

    // Observation itself is deterministic: the structured records
    // (metrics, stats blocks, drained explanation sequences) agree
    // exactly between sequential and parallel runs.
    assert_eq!(on1, on4, "{what}: reports diverged across thread counts");
    assert_eq!(
        rendered_records(&on1),
        rendered_records(&on4),
        "{what}: rendered records diverged across thread counts"
    );
    assert_eq!(on1.records().len(), REPS as usize);
    assert!(
        on1.records().iter().all(|r| !r.is_empty()),
        "{what}: every replicate should have emitted a record"
    );
    assert!(
        off1.records().iter().all(Vec::is_empty),
        "{what}: obs off must not collect records"
    );
}

#[test]
fn f5_scenario_obs_parity() {
    let _guard = obs_lock();
    check_obs_parity(
        0xF5,
        |seeds| f5_scenario(&camnet::HandoverStrategy::self_aware_default(), seeds, 800),
        "obs/f5",
    );
}

#[test]
fn f8_scenario_obs_parity() {
    let _guard = obs_lock();
    // Lossy + partitioned arm: exercises the reliable comms protocol
    // on all three comms-bearing substrates, so the comms_* counters
    // and exported explanation logs are non-trivial.
    let arm = F8Arm {
        loss: 0.2,
        partition: 100,
        naive: false,
    };
    check_obs_parity(0xF8, |seeds| f8_scenario(arm, seeds, 400), "obs/f8");
}

#[test]
fn exported_run_trace_parses_and_carries_replicate_events() {
    let _guard = obs_lock();
    obs::set_override(Some(true));
    let reps = Replications::new(0xF5, REPS);
    let report = reps.run_par_threads(4, |seeds| {
        f5_scenario(&camnet::HandoverStrategy::Broadcast, seeds, 800)
    });
    obs::set_override(None);

    // Stay inside the workspace target directory.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/obs-test-bench");
    let labels = vec!["broadcast".to_string()];
    let reports = vec![report];
    let path = RunTrace {
        experiment: "f5-test",
        seed: 0xF5,
        replicates: REPS,
        steps: 800,
        config: "obs_parity integration test",
        arms: &labels,
        reports: &reports,
    }
    .export_in(&root)
    .expect("export failed");

    let text = std::fs::read_to_string(&path).expect("artifact unreadable");
    let lines: Vec<Json> = text
        .lines()
        .map(|l| obs::parse(l).expect("invalid JSON line"))
        .collect();
    // 1 provenance + 1 arm + REPS replicate lines.
    assert_eq!(lines.len(), 2 + REPS as usize);
    let prov = &lines[0];
    assert_eq!(
        prov.get("record").and_then(Json::as_str),
        Some("provenance")
    );
    for key in [
        "experiment",
        "seed",
        "replicates",
        "sas_threads",
        "config_digest",
        "versions",
    ] {
        assert!(prov.get(key).is_some(), "provenance missing {key}");
    }
    let arm = &lines[1];
    assert_eq!(arm.get("record").and_then(Json::as_str), Some("arm"));
    assert!(arm.get("aggregate").is_some() && arm.get("profile").is_some());
    for line in &lines[2..] {
        assert_eq!(line.get("record").and_then(Json::as_str), Some("replicate"));
        let events = line.get("events").and_then(Json::as_arr).expect("events");
        assert!(!events.is_empty(), "replicate carries emitted records");
        let metrics = events[0].get("metrics").expect("scenario metrics record");
        assert!(metrics.get("quality").is_some());
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn f9_scenario_obs_parity() {
    use sas_bench::experiments::{f9_scenario, F9Arm};
    let _guard = obs_lock();
    // The composed city emits the full structured record (metrics +
    // per-link comms maps + explanations); none of it may feed back
    // into the simulation at any thread count.
    check_obs_parity(
        0xF9,
        |seeds| f9_scenario(F9Arm::Supervised, seeds, 400),
        "f9/supervised",
    );
}
