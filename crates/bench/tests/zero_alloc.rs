//! Counting-allocator proof of the comms zero-allocation contract.
//!
//! `selfaware::comms` promises that the steady-state reliable
//! send/deliver/ack cycle performs no heap allocation per message
//! (payload slab + bitmap dedup + recycled delivery buffers), and
//! that the retry path stays allocation-free while the explanation
//! log is disabled. This test installs a counting `GlobalAlloc` and
//! holds the layer to it: after a warmup that populates every reused
//! buffer, a long steady-state run must leave the allocation counter
//! untouched.
//!
//! The counter is **per-thread**: the libtest harness thread keeps
//! running (and occasionally allocating for its timed bookkeeping)
//! while the test thread measures, so a process-wide counter would be
//! flaky. Only allocations made by the measuring thread itself count.

use selfaware::comms::{Channel, ChannelOutcome, CommsNetwork, CommsPolicy, IdealChannel};
use selfaware::explain::ExplanationLog;
use simkernel::{obs, Tick};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    // const-initialised Cell: reading/bumping it never allocates, so
    // the allocator cannot recurse into itself.
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    // try_with: a thread whose TLS is already torn down (destructor
    // running a final allocation) simply goes uncounted instead of
    // panicking inside the allocator.
    let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
}

struct CountingAlloc;

// SAFETY: defers entirely to `System`; the counter is a plain
// thread-local cell with no other side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.try_with(Cell::get).unwrap_or(0)
}

/// Loses every first attempt of a data frame; retransmissions and
/// acks pass. Forces the retry path on every single message.
struct FirstAttemptDrop;

const ACK_BIT: u64 = 1 << 63;
const ATTEMPT_SHIFT: u32 = 48;

impl Channel for FirstAttemptDrop {
    fn transmit(&self, _src: usize, _dst: usize, seq: u64, now: Tick) -> ChannelOutcome {
        let is_ack = seq & ACK_BIT != 0;
        let attempt = (seq & !ACK_BIT) >> ATTEMPT_SHIFT;
        if !is_ack && attempt == 0 {
            ChannelOutcome::lost()
        } else {
            ChannelOutcome::delivered(now)
        }
    }
}

/// Runs `ticks` send+step cycles and returns how many allocations
/// they performed.
fn run_cycles<C: Channel>(
    net: &mut CommsNetwork<u64>,
    ch: &C,
    log: &mut ExplanationLog,
    start: u64,
    ticks: u64,
) -> u64 {
    let mut inbox = Vec::with_capacity(16);
    // One send per tick from each direction keeps both links hot.
    let before = allocations();
    for t in start..start + ticks {
        net.send(ch, 0, 1, t, Tick(t), log);
        net.send(ch, 1, 0, t, Tick(t), log);
        inbox.clear();
        net.step_into(ch, Tick(t), log, &mut inbox);
    }
    allocations() - before
}

#[test]
fn steady_state_comms_cycle_is_allocation_free() {
    // Force observability off regardless of the environment: span
    // timing is outside this contract.
    obs::set_override(Some(false));

    // Phase A: ideal channel, explanation log enabled (the steady
    // state records nothing, so enabled logging must still be free).
    let mut net: CommsNetwork<u64> = CommsNetwork::new(CommsPolicy::default());
    let mut log = ExplanationLog::new(64);
    let warmup = run_cycles(&mut net, &IdealChannel, &mut log, 0, 64);
    assert!(warmup > 0, "warmup should populate the reused buffers");
    let steady = run_cycles(&mut net, &IdealChannel, &mut log, 64, 512);
    assert_eq!(
        steady, 0,
        "ideal-channel send/deliver/ack steady state must not allocate"
    );

    // Phase B: every message loses its first attempt, so every
    // message exercises backoff bookkeeping and retransmission. With
    // the log disabled, the lazy explanation construction must keep
    // the whole retry path allocation-free too.
    let mut lossy_net: CommsNetwork<u64> = CommsNetwork::new(CommsPolicy::default());
    let mut quiet = ExplanationLog::new(64);
    quiet.set_enabled(false);
    run_cycles(&mut lossy_net, &FirstAttemptDrop, &mut quiet, 0, 64);
    let retry_allocs = run_cycles(&mut lossy_net, &FirstAttemptDrop, &mut quiet, 64, 512);
    assert_eq!(
        retry_allocs, 0,
        "retry/ack steady state with a disabled log must not allocate"
    );
    assert!(
        lossy_net.stats().retries > 500,
        "the lossy phase must actually exercise retries (saw {})",
        lossy_net.stats().retries
    );

    obs::set_override(None);
}
