//! Sequential/parallel parity for every experiment's scenario.
//!
//! EXPERIMENTS.md promises that regenerated tables are bit-identical
//! regardless of worker count. These tests run each domain scenario
//! through sequential `run` and parallel `run_par`/`run_matrix` at a
//! reduced scale and require exact equality of every mean and ci95.

use sas_bench::experiments::{run_f1, run_f2, run_f3, t5_scenario, t6_scenario};
use selfaware::levels::LevelSet;
use selfaware::meta::ModelPool;
use selfaware::models::ar::ArModel;
use selfaware::models::ewma::Ewma;
use selfaware::models::holt::Holt;
use simkernel::{Aggregate, MetricSet, Replications, SeedTree};

const STEPS: u64 = 800;
const REPS: u32 = 3;

fn assert_bitwise_equal(a: &Aggregate, b: &Aggregate, what: &str) {
    assert_eq!(a, b, "{what}: aggregates differ");
    for (name, _) in a.iter() {
        assert_eq!(
            a.mean(name).to_bits(),
            b.mean(name).to_bits(),
            "{what}: mean({name}) diverged"
        );
        assert_eq!(
            a.ci95(name).to_bits(),
            b.ci95(name).to_bits(),
            "{what}: ci95({name}) diverged"
        );
    }
}

/// Runs one scenario through `run`, `run_par_threads` (several
/// counts), and a one-arm `run_matrix`, asserting exact agreement.
fn check_parity<F>(base_seed: u64, scenario: F, what: &str)
where
    F: Fn(SeedTree) -> MetricSet + Sync,
{
    let reps = Replications::new(base_seed, REPS);
    let seq = reps.run(&scenario);
    for threads in [1, 2, 4] {
        let par = reps.run_par_threads(threads, &scenario);
        assert_bitwise_equal(&par, &seq, what);
    }
    let matrix = reps.run_matrix_threads(4, &[()], |(), seeds| scenario(seeds));
    assert_bitwise_equal(&matrix[0], &seq, what);
}

#[test]
fn cloud_scenarios_are_parity_clean() {
    // T1/T2/F4 all reduce to cloudsim::run_scenario under a strategy.
    let strategies = [
        cloudsim::Strategy::Random,
        cloudsim::Strategy::LeastLoaded,
        cloudsim::Strategy::SelfAware {
            levels: LevelSet::full(),
        },
    ];
    for strategy in &strategies {
        check_parity(
            0x71,
            |seeds| {
                let cfg = cloudsim::ScenarioConfig::standard(strategy.clone(), STEPS, &seeds);
                cloudsim::run_scenario(&cfg, &seeds).metrics
            },
            &format!("cloud/{}", strategy.label()),
        );
    }
}

#[test]
fn camnet_scenarios_are_parity_clean() {
    // T3/A1: camera handover under each strategy family.
    let strategies = [
        camnet::HandoverStrategy::Broadcast,
        camnet::HandoverStrategy::self_aware_default(),
    ];
    for &strategy in &strategies {
        check_parity(
            0x73,
            |seeds| {
                camnet::run_camnet(&camnet::CamnetConfig::standard(strategy, STEPS), &seeds).metrics
            },
            &format!("camnet/{}", strategy.label()),
        );
    }
}

#[test]
fn multicore_scenarios_are_parity_clean() {
    // T4: every scheduler.
    for scheduler in [
        multicore::Scheduler::StaticPin,
        multicore::Scheduler::Greedy,
        multicore::Scheduler::SelfAware,
    ] {
        check_parity(
            0x74,
            |seeds| {
                multicore::run_multicore(
                    &multicore::MulticoreConfig::standard(scheduler, STEPS),
                    &seeds,
                )
                .metrics
            },
            &format!("multicore/{}", scheduler.label()),
        );
    }
}

#[test]
fn cpn_scenarios_are_parity_clean() {
    // F2/A2: routing under DoS.
    for strategy in [
        cpn::RoutingStrategy::StaticShortest,
        cpn::RoutingStrategy::cpn_default(),
    ] {
        check_parity(
            0xA2,
            |seeds| cpn::run_cpn(&cpn::CpnConfig::standard(strategy, STEPS), &seeds).metrics,
            &format!("cpn/{}", strategy.label()),
        );
    }
}

#[test]
fn model_pool_scenario_is_parity_clean() {
    // A3: the meta model-pool on a drifting signal.
    use workloads::signal::{SignalGen, SignalSpec};
    check_parity(
        0xA3,
        |seeds| {
            let regimes = vec![
                (0, SignalSpec::Flat { level: 10.0 }),
                (
                    STEPS / 2,
                    SignalSpec::Trend {
                        start: 10.0,
                        slope: 0.3,
                    },
                ),
            ];
            let mut gen = SignalGen::new(regimes, 0.5, seeds.rng("signal"));
            let mut pool = ModelPool::new(0.1, 8);
            pool.add("ewma", Box::new(Ewma::new(0.3)));
            pool.add("holt", Box::new(Holt::new(0.5, 0.3)));
            pool.add("ar", Box::new(ArModel::new(2, 64)));
            let mut err = 0.0;
            let mut n = 0u64;
            for t in 0..STEPS {
                let x = gen.sample(simkernel::Tick(t));
                if let Some(p) = pool.forecast() {
                    err += (p - x).abs();
                    n += 1;
                }
                pool.observe(x);
            }
            let mut m = MetricSet::new();
            m.set("mae", err / n.max(1) as f64);
            m.set("switches", f64::from(pool.switches()));
            m
        },
        "pool/patience-8",
    );
}

#[test]
fn t5_collective_scenario_is_parity_clean() {
    for n in [10usize, 50] {
        check_parity(0x75, |seeds| t5_scenario(n, seeds), &format!("t5/n={n}"));
    }
}

#[test]
fn t6_attention_scenario_is_parity_clean() {
    for budget in [1usize, 4] {
        check_parity(
            0x76,
            |seeds| t6_scenario(budget, STEPS, seeds),
            &format!("t6/budget={budget}"),
        );
    }
}

#[test]
fn figure_experiments_are_deterministic_under_par_map() {
    // F1/F2/F3 fan single-seed runs over strategies/models with
    // par_map; re-running must reproduce the exact rendered output.
    assert_eq!(run_f1(STEPS), run_f1(STEPS));
    assert_eq!(run_f2(STEPS), run_f2(STEPS));
    assert_eq!(run_f3(STEPS), run_f3(STEPS));
}

#[test]
fn faulted_camnet_is_parity_clean() {
    // Fixed plan (the F5 outage) and a seed-derived random plan: the
    // fault layer must not disturb replicate-order determinism.
    use sas_bench::experiments::f5_scenario;
    check_parity(
        0xF5,
        |seeds| {
            f5_scenario(
                &camnet::HandoverStrategy::self_aware_default(),
                seeds,
                STEPS,
            )
        },
        "faults/camnet/f5",
    );
    check_parity(
        0xF5,
        |seeds| {
            let mut cfg = camnet::CamnetConfig::standard(
                camnet::HandoverStrategy::self_aware_default(),
                STEPS,
            );
            cfg.faults = workloads::FaultPlan::random_camera_outages(
                &seeds,
                16,
                3,
                (STEPS / 4, 3 * STEPS / 4),
                STEPS / 8,
            );
            camnet::run_camnet(&cfg, &seeds).metrics
        },
        "faults/camnet/random-plan",
    );
}

#[test]
fn faulted_cpn_is_parity_clean() {
    use workloads::FaultEvent;
    for strategy in [
        cpn::RoutingStrategy::StaticShortest,
        cpn::RoutingStrategy::cpn_default(),
    ] {
        check_parity(
            0xF5C,
            |seeds| {
                let mut cfg = cpn::CpnConfig::standard(strategy, STEPS);
                // Cut two row links mid-run, restore one.
                cfg.faults = workloads::FaultPlan::new(vec![
                    FaultEvent::link_cut(simkernel::Tick(STEPS / 4), 1, 2),
                    FaultEvent::link_cut(simkernel::Tick(STEPS / 4), 7, 8),
                    FaultEvent::link_restore(simkernel::Tick(3 * STEPS / 4), 1, 2),
                ]);
                cpn::run_cpn(&cfg, &seeds).metrics
            },
            &format!("faults/cpn/{}", strategy.label()),
        );
    }
}

#[test]
fn faulted_multicore_is_parity_clean() {
    use workloads::FaultEvent;
    for scheduler in [
        multicore::Scheduler::Greedy,
        multicore::Scheduler::SelfAware,
    ] {
        check_parity(
            0xF5D,
            |seeds| {
                let mut cfg = multicore::MulticoreConfig::standard(scheduler, STEPS);
                cfg.faults = workloads::FaultPlan::new(vec![
                    FaultEvent::core_fail(simkernel::Tick(STEPS / 3), 0),
                    FaultEvent::core_fail(simkernel::Tick(STEPS / 3), 1),
                    FaultEvent::core_recover(simkernel::Tick(2 * STEPS / 3), 0),
                    FaultEvent::core_recover(simkernel::Tick(2 * STEPS / 3), 1),
                ]);
                multicore::run_multicore(&cfg, &seeds).metrics
            },
            &format!("faults/multicore/{}", scheduler.label()),
        );
    }
}

#[test]
fn faulted_cloud_is_parity_clean() {
    use workloads::FaultEvent;
    check_parity(
        0xF5E,
        |seeds| {
            let strategy = cloudsim::Strategy::SelfAware {
                levels: LevelSet::full(),
            };
            let mut cfg = cloudsim::ScenarioConfig::standard(strategy, STEPS, &seeds);
            cfg.faults = workloads::FaultPlan::new(vec![FaultEvent::zone_outage(
                simkernel::Tick(STEPS / 3),
                0,
                6,
                STEPS / 4,
            )]);
            cloudsim::run_scenario(&cfg, &seeds).metrics
        },
        "faults/cloud/zone-outage",
    );
}

#[test]
fn f6_sensor_fault_scenario_is_parity_clean() {
    use sas_bench::experiments::f6_scenario;
    for guarded in [false, true] {
        check_parity(
            0xF6,
            |seeds| f6_scenario(guarded, seeds, STEPS),
            &format!("faults/f6/guarded={guarded}"),
        );
    }
}

#[test]
fn f7_controller_corruption_is_parity_clean() {
    use sas_bench::experiments::{f7_fault_plan, f7_scenario, F7Arm};
    let plan = f7_fault_plan(STEPS);
    for arm in [F7Arm::Baseline, F7Arm::Unsupervised, F7Arm::Supervised] {
        check_parity(
            0xF7,
            |seeds| f7_scenario(arm, &plan, seeds, STEPS),
            &format!("faults/f7/{}", arm.label()),
        );
    }
}

#[test]
fn supervised_substrates_are_parity_clean() {
    use workloads::faults::ModelCorruptionKind;
    // Every substrate's supervised arm, with its model actively
    // corrupted mid-run: rollback/fallback/re-promotion machinery must
    // not disturb replicate-order determinism.
    let plan = || {
        workloads::FaultPlan::new(vec![
            workloads::FaultEvent::model_corruption(
                simkernel::Tick(STEPS / 3),
                0,
                ModelCorruptionKind::NanPoison,
            ),
            workloads::FaultEvent::model_corruption(
                simkernel::Tick(2 * STEPS / 3),
                0,
                ModelCorruptionKind::WeightScramble { gain: 20.0 },
            ),
        ])
    };
    check_parity(
        0xF7A,
        |seeds| {
            let strategy = cloudsim::Strategy::SupervisedSelfAware {
                levels: LevelSet::full(),
            };
            let mut cfg = cloudsim::ScenarioConfig::standard(strategy, STEPS, &seeds);
            cfg.faults = plan();
            cloudsim::run_scenario(&cfg, &seeds).metrics
        },
        "supervised/cloud",
    );
    check_parity(
        0xF7B,
        |seeds| {
            let mut cfg = multicore::MulticoreConfig::standard(
                multicore::Scheduler::SupervisedSelfAware,
                STEPS,
            );
            cfg.faults = plan();
            multicore::run_multicore(&cfg, &seeds).metrics
        },
        "supervised/multicore",
    );
    check_parity(
        0xF7C,
        |seeds| {
            let mut cfg =
                cpn::CpnConfig::standard(cpn::RoutingStrategy::supervised_cpn_default(), STEPS);
            cfg.faults = plan();
            cpn::run_cpn(&cfg, &seeds).metrics
        },
        "supervised/cpn",
    );
    check_parity(
        0xF7D,
        |seeds| {
            let mut cfg = camnet::CamnetConfig::standard(
                camnet::HandoverStrategy::self_aware_default(),
                STEPS,
            );
            cfg.supervise = true;
            cfg.faults = plan();
            camnet::run_camnet(&cfg, &seeds).metrics
        },
        "supervised/camnet",
    );
}

#[test]
fn f8_lossy_comms_scenarios_are_parity_clean() {
    use sas_bench::experiments::{f8_scenario, F8Arm};
    // Lossy channels and partitions on every substrate, both comms
    // policies: the channel draws are stateless hashes, so replicate
    // order must not leak into any delivered, retried, or expired
    // message.
    for naive in [false, true] {
        for partition in [0, 200] {
            let arm = F8Arm {
                loss: 0.3,
                partition,
                naive,
            };
            check_parity(
                0xF8,
                |seeds| f8_scenario(arm, seeds, STEPS),
                &format!("comms/f8/naive={naive}/partition={partition}"),
            );
        }
    }
}

#[test]
fn f9_composed_city_scenarios_are_parity_clean() {
    use sas_bench::experiments::{f9_scenario, F9Arm};
    // The composed world crosses every substrate boundary in one
    // tick; the cascade campaign (zone outage + healing-inside-outage
    // partition + sensor bias + model scramble + lossy command links)
    // exercises all of them at once. Both the full stack and the
    // all-naive ablation must be bit-identical seq vs parallel.
    for arm in [F9Arm::Supervised, F9Arm::AllNaive] {
        check_parity(
            0xF9,
            |seeds| f9_scenario(arm, seeds, STEPS),
            &format!("compose/f9/{}", arm.label()),
        );
    }
}
