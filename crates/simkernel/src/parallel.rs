//! Deterministic parallel execution primitives.
//!
//! Everything here preserves one invariant: **output is a pure
//! function of the inputs, independent of thread count and
//! scheduling**. Work items are claimed dynamically (an atomic
//! cursor, so fast workers take more cells), but results are indexed
//! by their input position and reassembled in input order before
//! anything order-sensitive (like [`crate::runner::Aggregate`]
//! absorption) sees them. Combined with [`crate::rng::SeedTree`]
//! deriving every replicate's randomness from its index rather than
//! from call order, a parallel run is bit-identical to a sequential
//! one.
//!
//! The worker pool sizes itself from
//! [`std::thread::available_parallelism`], clamped by the
//! `SAS_THREADS` environment variable (see [`worker_count`]); no
//! external thread-pool crate is involved.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the worker-pool size.
pub const THREADS_ENV: &str = "SAS_THREADS";

/// Number of worker threads to use for `cells` independent work
/// items: `min(cells, SAS_THREADS or available_parallelism)`, at
/// least 1.
#[must_use]
pub fn worker_count(cells: usize) -> usize {
    let hardware = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let configured = std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(hardware);
    configured.min(cells.max(1))
}

/// Chunk size for claiming replication cells: coarse enough to cut
/// work-queue contention, fine enough to keep load imbalance small.
///
/// Tuned from the measured per-replicate variance in the committed
/// perf trajectory (BENCH_9.json): replicate wall-clock within an arm
/// is tightly clustered (per-phase log₂-ns histograms span only a
/// couple of buckets), so dynamic one-at-a-time claiming buys almost
/// no balancing — its cost is pure claim traffic. Handing out about
/// four chunks per worker bounds the worst-case tail imbalance near
/// `1/(4·threads)` of the run while dividing atomic claims (and their
/// cache-line ping-pong) by the chunk size.
#[must_use]
pub fn replication_chunk(cells: usize, threads: usize) -> usize {
    if threads <= 1 {
        return 1;
    }
    (cells / (threads * 4)).clamp(1, 64)
}

/// Applies `f` to every index in `0..n` on `threads` workers and
/// returns the results **in index order** — the parallel schedule
/// never leaks into the output.
///
/// Panics in `f` are propagated to the caller (first panicking worker
/// wins).
pub fn par_map_index<U, F>(n: usize, threads: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    par_map_index_chunked(n, threads, 1, f)
}

/// [`par_map_index`] with workers claiming `chunk` consecutive
/// indices per atomic operation (clamped to at least 1). Results are
/// still reassembled in index order, so the output — including which
/// cell panics first — is identical for every chunk size; only the
/// scheduling granularity changes. See [`replication_chunk`] for the
/// tuning policy the replication runner uses.
pub fn par_map_index_chunked<U, F>(n: usize, threads: usize, chunk: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let chunk = chunk.max(1);
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, U)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads.min(n))
            .map(|_| {
                scope.spawn(|| {
                    let mut claimed = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        for i in start..(start + chunk).min(n) {
                            claimed.push((i, f(i)));
                        }
                    }
                    claimed
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(bucket) => bucket,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut slots: Vec<Option<U>> = std::iter::repeat_with(|| None).take(n).collect();
    for (i, value) in buckets.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "cell {i} computed twice");
        slots[i] = Some(value);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every cell claimed exactly once"))
        .collect()
}

/// Ordered parallel map over a slice, using the default worker count.
///
/// Equivalent to `items.iter().map(f).collect()` — including output
/// order — but fanned out across cores.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_index(items.len(), worker_count(items.len()), |i| f(&items[i]))
}

/// Like [`par_map_index`], but each cell runs under
/// [`std::panic::catch_unwind`]: a panicking cell yields
/// `Err(message)` in its slot instead of killing the pool, and every
/// other cell still completes. Output remains in index order — the
/// panic-isolation layer does not weaken the determinism contract.
///
/// The sequential path (`threads <= 1` or `n <= 1`) catches panics
/// identically, so sequential and parallel runs agree on which cells
/// failed and with what message.
pub fn try_par_map_index<U, F>(n: usize, threads: usize, f: F) -> Vec<Result<U, String>>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let guarded = |i: usize| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i)))
            .map_err(|p| panic_message(&*p))
    };
    par_map_index(n, threads, guarded)
}

/// Extracts a human-readable message from a panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..97).collect();
        let doubled = par_map(&items, |&x| x * 2);
        assert_eq!(doubled, (0..97).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_index_matches_sequential_any_thread_count() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let sequential: Vec<u64> = (0..53).map(f).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(
                par_map_index(53, threads, f),
                sequential,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn chunked_matches_sequential_for_any_chunk() {
        let f = |i: usize| (i as u64).wrapping_mul(0x2545_F491_4F6C_DD1D);
        let sequential: Vec<u64> = (0..101).map(f).collect();
        for threads in [2, 4, 7] {
            for chunk in [0, 1, 2, 13, 101, 500] {
                assert_eq!(
                    par_map_index_chunked(101, threads, chunk, f),
                    sequential,
                    "threads={threads} chunk={chunk}"
                );
            }
        }
    }

    #[test]
    fn replication_chunk_policy_bounds() {
        assert_eq!(replication_chunk(100, 1), 1, "sequential stays 1:1");
        assert_eq!(replication_chunk(0, 4), 1);
        assert_eq!(replication_chunk(70, 4), 4);
        assert_eq!(replication_chunk(10_000, 4), 64, "capped");
        for cells in [1usize, 5, 16, 70, 1000] {
            for threads in [2usize, 4, 16] {
                let c = replication_chunk(cells, threads);
                assert!((1..=64).contains(&c), "cells={cells} threads={threads}");
            }
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        assert_eq!(par_map_index(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_index(1, 4, |i| i + 10), vec![10]);
        let empty: [u8; 0] = [];
        assert_eq!(par_map(&empty, |&x| x), Vec::<u8>::new());
    }

    #[test]
    fn more_threads_than_cells_is_fine() {
        assert_eq!(par_map_index(3, 100, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn worker_count_is_positive_and_clamped() {
        assert!(worker_count(0) >= 1);
        assert!(worker_count(1) >= 1);
        assert!(worker_count(1000) >= 1);
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            par_map_index(8, 4, |i| {
                assert!(i != 5, "deliberate failure");
                i
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn try_par_map_isolates_panics_and_completes_the_rest() {
        for threads in [1, 2, 4, 16] {
            let out = try_par_map_index(9, threads, |i| {
                assert!(i != 3, "cell 3 is poisoned");
                i * 10
            });
            assert_eq!(out.len(), 9, "threads={threads}");
            for (i, r) in out.iter().enumerate() {
                if i == 3 {
                    let msg = r.as_ref().expect_err("cell 3 must fail");
                    assert!(msg.contains("cell 3 is poisoned"), "got {msg:?}");
                } else {
                    assert_eq!(r.as_ref().ok(), Some(&(i * 10)), "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn try_par_map_sequential_matches_parallel() {
        let f = |i: usize| {
            assert!(i % 4 != 2, "poison {i}");
            i as u64 * 3
        };
        let seq = try_par_map_index(13, 1, f);
        for threads in [2, 5, 13] {
            assert_eq!(try_par_map_index(13, threads, f), seq, "threads={threads}");
        }
    }

    #[test]
    fn panic_message_handles_string_payloads() {
        let out = try_par_map_index(2, 1, |i| {
            if i == 0 {
                std::panic::panic_any(format!("formatted {i}"));
            }
            i
        });
        assert_eq!(out[0].as_ref().expect_err("cell 0 panics"), "formatted 0");
        assert_eq!(out[1], Ok(1));
    }
}
