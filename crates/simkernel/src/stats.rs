//! Streaming statistics used by every experiment in the workspace.
//!
//! [`OnlineStats`] implements Welford's numerically stable one-pass
//! algorithm for mean and variance, with min/max tracking.
//! [`Percentiles`] keeps an exact sorted sample (the experiments here
//! are small enough that an exact buffer beats a sketch in both
//! simplicity and fidelity). [`OnlineStats::ci95_halfwidth`] gives the
//! Student-t 95% confidence half-interval used in the printed tables
//! (critical values from [`t975`]).

use serde::{Deserialize, Serialize};
use std::fmt;

/// One-pass mean/variance/min/max accumulator (Welford).
///
/// # Example
///
/// ```
/// use simkernel::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 if empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by n; 0 if empty).
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance (divides by n-1; 0 if fewer than 2 samples).
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Minimum observed value (+inf if empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observed value (-inf if empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Half-width of the Student-t 95% confidence interval of the
    /// mean (`t₀.₉₇₅(n−1) · s / √n`; 0 if fewer than 2 samples).
    ///
    /// The t critical value matters at the replicate counts the
    /// experiments actually run: the old normal approximation
    /// (z = 1.96) understated the interval by 42% at n = 5 and by
    /// 14% at n = 10.
    #[must_use]
    pub fn ci95_halfwidth(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            t975(self.n - 1) * self.std_dev() / (self.n as f64).sqrt()
        }
    }
}

/// Two-sided 95% Student-t critical value (97.5th percentile of the
/// t-distribution) for `df` degrees of freedom.
///
/// Exact table for df ≤ 30; beyond that the Cornish–Fisher-style
/// asymptotic `z + (z³ + z)/(4·df)` with z = 1.96 is accurate to
/// < 0.002 (checked against standard tables at df = 40, 60, 120 in
/// the unit tests) and converges to 1.96 as df → ∞.
#[must_use]
pub fn t975(df: u64) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[(df - 1) as usize],
        _ => {
            const Z: f64 = 1.96;
            Z + (Z * Z * Z + Z) / (4.0 * df as f64)
        }
    }
}

impl fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.n,
            self.mean(),
            self.std_dev(),
            self.min,
            self.max
        )
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = OnlineStats::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

/// Exact percentile estimator over a retained sample.
///
/// Keeps every pushed value; percentile queries sort lazily. Suitable
/// for the ≤10⁶-sample workloads in this repo.
///
/// # Example
///
/// ```
/// use simkernel::stats::Percentiles;
/// let mut p = Percentiles::new();
/// for x in 1..=100 {
///     p.push(x as f64);
/// }
/// assert!((p.quantile(0.5).unwrap() - 50.5).abs() < 1.0);
/// assert_eq!(p.quantile(1.0), Some(100.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Percentiles {
    values: Vec<f64>,
    sorted: bool,
}

impl Percentiles {
    /// Creates an empty estimator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            values: Vec::new(),
            sorted: true,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.values.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no observations have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values
                .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            self.sorted = true;
        }
    }

    /// Linear-interpolated quantile `q ∈ [0, 1]`; `None` if empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]` or NaN.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.values.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let n = self.values.len();
        if n == 1 {
            return Some(self.values[0]);
        }
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(self.values[lo] * (1.0 - frac) + self.values[hi] * frac)
    }

    /// Convenience: the median.
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Convenience: the 95th percentile (tail-latency staple).
    pub fn p95(&mut self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// Convenience: the 99th percentile.
    pub fn p99(&mut self) -> Option<f64> {
        self.quantile(0.99)
    }
}

impl FromIterator<f64> for Percentiles {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut p = Percentiles::new();
        for x in iter {
            p.push(x);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0 + 3.0).collect();
        let s: OnlineStats = data.iter().copied().collect();
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-9);
        assert!((s.sample_variance() - var).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.ci95_halfwidth(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..500).map(|i| ((i * 37) % 101) as f64).collect();
        let (a, b) = data.split_at(137);
        let mut sa: OnlineStats = a.iter().copied().collect();
        let sb: OnlineStats = b.iter().copied().collect();
        sa.merge(&sb);
        let all: OnlineStats = data.iter().copied().collect();
        assert_eq!(sa.count(), all.count());
        assert!((sa.mean() - all.mean()).abs() < 1e-9);
        assert!((sa.sample_variance() - all.sample_variance()).abs() < 1e-9);
        assert_eq!(sa.min(), all.min());
        assert_eq!(sa.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: OnlineStats = [1.0, 2.0, 3.0].into_iter().collect();
        let before = s;
        s.merge(&OnlineStats::new());
        assert_eq!(s, before);
        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn min_max_sum() {
        let s: OnlineStats = [3.0, -1.0, 7.0].into_iter().collect();
        assert_eq!(s.min(), -1.0);
        assert_eq!(s.max(), 7.0);
        assert!((s.sum() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles_interpolate() {
        let mut p: Percentiles = (1..=4).map(f64::from).collect();
        assert_eq!(p.quantile(0.0), Some(1.0));
        assert_eq!(p.quantile(1.0), Some(4.0));
        assert!((p.median().unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn percentiles_single_and_empty() {
        let mut p = Percentiles::new();
        assert_eq!(p.median(), None);
        p.push(42.0);
        assert_eq!(p.quantile(0.3), Some(42.0));
        assert_eq!(p.len(), 1);
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0,1]")]
    fn percentile_out_of_range_panics() {
        let mut p: Percentiles = [1.0].into_iter().collect();
        let _ = p.quantile(1.5);
    }

    #[test]
    fn percentiles_resort_after_push() {
        let mut p = Percentiles::new();
        p.push(10.0);
        p.push(1.0);
        assert_eq!(p.quantile(0.0), Some(1.0));
        p.push(0.5);
        assert_eq!(p.quantile(0.0), Some(0.5));
    }

    #[test]
    fn t_critical_values_match_tables() {
        // n = 2, 5, 30, 1000 → df = 1, 4, 29, 999 (the satellite's
        // required sample sizes).
        assert!((t975(1) - 12.706).abs() < 1e-9);
        assert!((t975(4) - 2.776).abs() < 1e-9);
        assert!((t975(29) - 2.045).abs() < 1e-9);
        assert!((t975(999) - 1.962).abs() < 5e-3);
        // Asymptotic branch against standard tables.
        assert!((t975(40) - 2.021).abs() < 5e-3);
        assert!((t975(60) - 2.000).abs() < 5e-3);
        assert!((t975(120) - 1.980).abs() < 5e-3);
        // Monotone decreasing toward z, never below it.
        assert!(t975(5) > t975(10) && t975(10) > t975(100));
        assert!(t975(1_000_000) > 1.96 && t975(1_000_000) < 1.9601);
        assert_eq!(t975(0), f64::INFINITY);
    }

    #[test]
    fn ci95_uses_student_t_not_normal() {
        // Regression: the old implementation multiplied by z = 1.96
        // for every n, understating small-sample intervals. At
        // n = 2, 5, 30, 1000 the half-width must equal t·s/√n and
        // strictly exceed the normal approximation.
        for n in [2u64, 5, 30, 1000] {
            let s: OnlineStats = (0..n).map(|i| (i % 7) as f64).collect();
            let expected = t975(n - 1) * s.std_dev() / (n as f64).sqrt();
            let z_width = 1.96 * s.std_dev() / (n as f64).sqrt();
            assert!((s.ci95_halfwidth() - expected).abs() < 1e-12, "n={n}");
            assert!(s.ci95_halfwidth() > z_width, "n={n}");
        }
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let small: OnlineStats = (0..10).map(|i| f64::from(i % 3)).collect();
        let large: OnlineStats = (0..1000).map(|i| f64::from(i % 3)).collect();
        assert!(large.ci95_halfwidth() < small.ci95_halfwidth());
    }
}
