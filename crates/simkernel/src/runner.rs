//! Replication runner: fan a scenario out over independently seeded
//! replicates and aggregate the resulting metrics.
//!
//! Every experiment in EXPERIMENTS.md reports means (± 95% CI) over R
//! replications. A scenario is any `Fn(SeedTree) -> MetricSet`; the
//! runner derives per-replicate seed subtrees so replicate *k* is
//! identical across strategies (common random numbers, which sharpens
//! the comparisons the paper's hypothesis calls for).

use crate::obs::{self, Json, PhaseProfile, ReplicateObs};
use crate::parallel::{panic_message, par_map_index_chunked, replication_chunk, worker_count};
use crate::rng::SeedTree;
use crate::stats::OnlineStats;
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::ops::Deref;
use std::time::Instant;

/// Metric name: `&'static str` in the common literal-key case (no
/// allocation on the per-tick hot path), owned `String` when built at
/// run time.
pub type MetricKey = Cow<'static, str>;

/// A named bag of scalar results produced by one simulation run.
///
/// Backed by a `BTreeMap` so iteration (and thus printed output) is
/// deterministically ordered.
///
/// # Example
///
/// ```
/// use simkernel::MetricSet;
/// let mut m = MetricSet::new();
/// m.set("utility", 0.8);
/// m.add("violations", 1.0);
/// m.add("violations", 2.0);
/// assert_eq!(m.get("utility"), Some(0.8));
/// assert_eq!(m.get("violations"), Some(3.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricSet {
    values: BTreeMap<MetricKey, f64>,
}

impl MetricSet {
    /// Creates an empty metric set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets metric `name` to `value`, replacing any previous value.
    ///
    /// `&'static str` keys (the normal case) are stored without
    /// allocating; pass a `String` for run-time-built names.
    pub fn set(&mut self, name: impl Into<MetricKey>, value: f64) {
        self.values.insert(name.into(), value);
    }

    /// Adds `delta` to metric `name` (starting from 0 if absent).
    ///
    /// Like [`MetricSet::set`], `&'static str` keys do not allocate —
    /// this is called inside per-tick simulation loops.
    pub fn add(&mut self, name: impl Into<MetricKey>, delta: f64) {
        *self.values.entry(name.into()).or_insert(0.0) += delta;
    }

    /// Reads metric `name`, if present.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<f64> {
        self.values.get(name).copied()
    }

    /// Iterates `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.values.iter().map(|(k, v)| (k.as_ref(), *v))
    }

    /// Number of metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no metrics have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl FromIterator<(String, f64)> for MetricSet {
    fn from_iter<I: IntoIterator<Item = (String, f64)>>(iter: I) -> Self {
        Self {
            values: iter
                .into_iter()
                .map(|(k, v)| (MetricKey::from(k), v))
                .collect(),
        }
    }
}

/// Aggregated per-metric statistics over replications.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Aggregate {
    stats: BTreeMap<MetricKey, OnlineStats>,
}

impl Aggregate {
    /// Folds one replicate's metrics into the aggregate.
    ///
    /// Allocates only when a metric name is seen for the first time
    /// *and* was built at run time; literal-keyed metrics are
    /// absorbed with zero allocation.
    pub fn absorb(&mut self, metrics: &MetricSet) {
        for (name, value) in &metrics.values {
            match self.stats.get_mut(name.as_ref()) {
                Some(stats) => stats.push(*value),
                None => {
                    // Cloning a `Cow::Borrowed` key is a pointer copy.
                    let mut stats = OnlineStats::new();
                    stats.push(*value);
                    self.stats.insert(name.clone(), stats);
                }
            }
        }
    }

    /// Mean of metric `name` across replicates (0 if absent).
    #[must_use]
    pub fn mean(&self, name: &str) -> f64 {
        self.stats.get(name).map_or(0.0, OnlineStats::mean)
    }

    /// 95% CI half-width of metric `name` (0 if absent).
    #[must_use]
    pub fn ci95(&self, name: &str) -> f64 {
        self.stats
            .get(name)
            .map_or(0.0, OnlineStats::ci95_halfwidth)
    }

    /// Full stats for metric `name`, if recorded.
    #[must_use]
    pub fn stats(&self, name: &str) -> Option<&OnlineStats> {
        self.stats.get(name)
    }

    /// Iterates `(name, stats)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &OnlineStats)> {
        self.stats.iter().map(|(k, v)| (k.as_ref(), v))
    }
}

/// A replicate whose panic survived the one-shot retry: the typed
/// error surfaced by the panic-isolated runners instead of a dead
/// worker pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicateError {
    /// Replicate index.
    pub replicate: u32,
    /// Panic message of the original attempt.
    pub panic: String,
    /// Panic message of the fresh-seed retry.
    pub retry_panic: String,
}

/// Result of a panic-isolated replication run: the aggregate over the
/// replicates that completed, plus an explicit account of the ones
/// that did not.
///
/// Dereferences to [`Aggregate`], so `report.mean("x")` keeps working
/// at existing call sites; [`RunReport::excluded`] says how many
/// replicates the aggregate does *not* include.
///
/// When observability is on (see [`crate::obs`]) the report also
/// carries per-replicate structured [`RunReport::records`] and a
/// merged phase-timing [`RunReport::profile`]; every guarded run
/// additionally measures [`RunReport::wall_secs`]. Equality
/// deliberately **excludes the timing fields** (`profile`,
/// `wall_secs`): they are wall-clock measurements, never bit-stable
/// across runs, while everything else is part of the deterministic
/// parity contract. Emitted `records` *are* compared — they are pure
/// functions of the seeds whenever observability state is the same on
/// both sides.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    aggregate: Aggregate,
    completed: u32,
    recovered: Vec<u32>,
    errors: Vec<ReplicateError>,
    records: Vec<Vec<Json>>,
    profile: PhaseProfile,
    wall_secs: f64,
}

impl PartialEq for RunReport {
    fn eq(&self, other: &Self) -> bool {
        self.aggregate == other.aggregate
            && self.completed == other.completed
            && self.recovered == other.recovered
            && self.errors == other.errors
            && self.records == other.records
    }
}

impl RunReport {
    /// The aggregate over all completed replicates (including
    /// retried-and-recovered ones).
    #[must_use]
    pub fn aggregate(&self) -> &Aggregate {
        &self.aggregate
    }

    /// Number of replicates whose metrics the aggregate includes.
    #[must_use]
    pub fn completed(&self) -> u32 {
        self.completed
    }

    /// Replicates that panicked once but completed on the fresh-seed
    /// retry branch (their retried metrics are in the aggregate).
    #[must_use]
    pub fn recovered(&self) -> &[u32] {
        &self.recovered
    }

    /// Replicates excluded from the aggregate, with both panic
    /// messages each.
    #[must_use]
    pub fn errors(&self) -> &[ReplicateError] {
        &self.errors
    }

    /// Explicit excluded-replicate count (`errors().len()`).
    #[must_use]
    pub fn excluded(&self) -> u32 {
        self.errors.len() as u32
    }

    /// Per-replicate structured records emitted via
    /// [`crate::obs::emit`], indexed by replicate (empty `Vec` for a
    /// replicate that emitted nothing or failed; all empty when
    /// observability is off).
    #[must_use]
    pub fn records(&self) -> &[Vec<Json>] {
        &self.records
    }

    /// Phase-timing profile merged over all completed replicates
    /// (empty when observability is off). Measurement only — never
    /// part of report equality.
    #[must_use]
    pub fn profile(&self) -> &PhaseProfile {
        &self.profile
    }

    /// Wall-clock seconds of the engine call that produced this
    /// report (for a matrix run: the whole matrix, since cells from
    /// all arms share one work queue). Always measured; never part of
    /// report equality.
    #[must_use]
    pub fn wall_secs(&self) -> f64 {
        self.wall_secs
    }
}

impl Deref for RunReport {
    type Target = Aggregate;

    fn deref(&self) -> &Aggregate {
        &self.aggregate
    }
}

/// How one guarded replicate cell ended.
enum CellOutcome {
    Done(MetricSet),
    Recovered(MetricSet),
    Failed { panic: String, retry_panic: String },
}

/// One guarded replicate's outcome plus whatever it observed
/// (observations are empty when observability is off or the cell
/// failed — a failed attempt's partial spans/records are discarded so
/// traces only describe completed replicates).
struct Cell {
    outcome: CellOutcome,
    obs: ReplicateObs,
}

/// Runs `attempt` under `catch_unwind`, mapping a panic to its
/// message.
fn catch_metrics<G: FnOnce() -> MetricSet>(attempt: G) -> Result<MetricSet, String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(attempt)).map_err(|p| panic_message(&*p))
}

/// Folds per-replicate cells (in replicate order) into a report.
fn report_from(cells: impl IntoIterator<Item = Cell>) -> RunReport {
    let mut report = RunReport::default();
    for (k, cell) in cells.into_iter().enumerate() {
        report.profile.merge(&cell.obs.profile);
        report.records.push(cell.obs.records);
        match cell.outcome {
            CellOutcome::Done(m) => {
                report.aggregate.absorb(&m);
                report.completed += 1;
            }
            CellOutcome::Recovered(m) => {
                report.aggregate.absorb(&m);
                report.completed += 1;
                report.recovered.push(k as u32);
            }
            CellOutcome::Failed { panic, retry_panic } => {
                report.errors.push(ReplicateError {
                    replicate: k as u32,
                    panic,
                    retry_panic,
                });
            }
        }
    }
    report
}

/// Stamps a report (or several) with the wall clock of producing it.
fn timed<T>(f: impl FnOnce() -> T, stamp: impl FnOnce(&mut T, f64)) -> T {
    let t0 = Instant::now();
    let mut out = f();
    stamp(&mut out, t0.elapsed().as_secs_f64());
    out
}

/// Runs a scenario over R common-random-number replicates.
///
/// # Example
///
/// ```
/// use simkernel::{Replications, MetricSet};
/// use rand::Rng;
///
/// let agg = Replications::new(42, 8).run(|seeds| {
///     let mut rng = seeds.rng("noise");
///     let mut m = MetricSet::new();
///     m.set("x", rng.gen_range(0.0..1.0));
///     m
/// });
/// assert!(agg.mean("x") > 0.0 && agg.mean("x") < 1.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Replications {
    base_seed: u64,
    count: u32,
}

impl Replications {
    /// Configures `count` replicates rooted at `base_seed`.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    #[must_use]
    pub fn new(base_seed: u64, count: u32) -> Self {
        assert!(count > 0, "at least one replication required");
        Self { base_seed, count }
    }

    /// Number of replicates.
    #[must_use]
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Seed subtree for replicate `k` — stable across strategies so
    /// that strategy comparisons share random numbers.
    #[must_use]
    pub fn seeds_for(&self, k: u32) -> SeedTree {
        SeedTree::new(self.base_seed).child_idx(u64::from(k))
    }

    /// Seed subtree for the one-shot retry of replicate `k`: a fresh
    /// branch (labelled, so it perturbs no existing stream) in case
    /// the panic was provoked by that replicate's particular draws.
    /// Index-derived like [`Replications::seeds_for`], so retries are
    /// just as deterministic and order-independent as first attempts.
    #[must_use]
    pub fn retry_seeds_for(&self, k: u32) -> SeedTree {
        SeedTree::new(self.base_seed)
            .child("retry")
            .child_idx(u64::from(k))
    }

    /// Runs a guarded replicate: attempt, retry once on a fresh seed
    /// branch, surface both panic messages if the retry dies too.
    /// Each attempt observes into its own sink (see
    /// [`crate::obs::with_sink`]); only a *completed* attempt's
    /// observations survive, so the trace never mixes spans from a
    /// panicked attempt with its retry's.
    fn guarded_cell(&self, k: u32, run: &dyn Fn(SeedTree) -> MetricSet) -> Cell {
        let (first, obs) = obs::with_sink(|| catch_metrics(|| run(self.seeds_for(k))));
        match first {
            Ok(m) => Cell {
                outcome: CellOutcome::Done(m),
                obs,
            },
            Err(panic) => {
                let (retry, obs) =
                    obs::with_sink(|| catch_metrics(|| run(self.retry_seeds_for(k))));
                match retry {
                    Ok(m) => Cell {
                        outcome: CellOutcome::Recovered(m),
                        obs,
                    },
                    Err(retry_panic) => Cell {
                        outcome: CellOutcome::Failed { panic, retry_panic },
                        obs: ReplicateObs::default(),
                    },
                }
            }
        }
    }

    /// Runs `scenario` once per replicate and aggregates metrics.
    ///
    /// This is the unguarded sequential reference: a panic in
    /// `scenario` propagates. For panic isolation use
    /// [`Replications::run_try`] (sequential) or the parallel runners,
    /// which all quarantine poisoned replicates.
    pub fn run<F>(&self, mut scenario: F) -> Aggregate
    where
        F: FnMut(SeedTree) -> MetricSet,
    {
        let mut agg = Aggregate::default();
        for k in 0..self.count {
            let metrics = scenario(self.seeds_for(k));
            agg.absorb(&metrics);
        }
        agg
    }

    /// Sequential panic-isolated run: each replicate is guarded by
    /// `catch_unwind`, retried once on a fresh seed branch, and
    /// otherwise reported as a typed [`ReplicateError`] — the exact
    /// semantics of [`Replications::run_par`] at one worker, so the
    /// two are comparable with `==` in parity tests.
    pub fn run_try<F>(&self, scenario: F) -> RunReport
    where
        F: Fn(SeedTree) -> MetricSet,
    {
        timed(
            || report_from((0..self.count).map(|k| self.guarded_cell(k, &scenario))),
            |r, secs| r.wall_secs = secs,
        )
    }

    /// Runs `scenario` once per replicate **in parallel** and
    /// aggregates metrics, isolating panics per replicate.
    ///
    /// Bit-identical to [`Replications::run`] on the completed
    /// replicates: each replicate's randomness comes from its
    /// index-derived seed subtree (never from execution order), and
    /// finished metric sets are absorbed into the [`Aggregate`] in
    /// replicate order regardless of which worker produced them
    /// first. A panicking replicate is retried once on a fresh seed
    /// branch and otherwise quarantined as a [`ReplicateError`] —
    /// the pool and the other replicates always complete. The worker
    /// pool sizes itself from `available_parallelism`, overridable
    /// with the `SAS_THREADS` environment variable.
    ///
    /// # Example
    ///
    /// ```
    /// use simkernel::{Replications, MetricSet};
    /// use rand::Rng;
    ///
    /// let scenario = |seeds: simkernel::SeedTree| {
    ///     let mut rng = seeds.rng("noise");
    ///     let mut m = MetricSet::new();
    ///     m.set("x", rng.gen_range(0.0..1.0));
    ///     m
    /// };
    /// let reps = Replications::new(42, 8);
    /// let report = reps.run_par(&scenario);
    /// assert_eq!(report.aggregate(), &reps.run(scenario));
    /// assert_eq!(report.completed(), 8);
    /// assert_eq!(report.excluded(), 0);
    /// ```
    pub fn run_par<F>(&self, scenario: F) -> RunReport
    where
        F: Fn(SeedTree) -> MetricSet + Sync,
    {
        self.run_par_threads(worker_count(self.count as usize), scenario)
    }

    /// [`Replications::run_par`] with an explicit worker count
    /// (used by the determinism-parity tests to pin thread counts
    /// without touching process environment).
    pub fn run_par_threads<F>(&self, threads: usize, scenario: F) -> RunReport
    where
        F: Fn(SeedTree) -> MetricSet + Sync,
    {
        timed(
            || {
                let n = self.count as usize;
                let cells = par_map_index_chunked(n, threads, replication_chunk(n, threads), |k| {
                    self.guarded_cell(k as u32, &scenario)
                });
                report_from(cells)
            },
            |r, secs| r.wall_secs = secs,
        )
    }

    /// Runs `scenario` once per replicate sequentially and returns the
    /// raw per-replicate values in replicate order.
    ///
    /// This is the paired common-random-number hook for counterfactual
    /// replay: replicate `k` always runs on
    /// [`Replications::seeds_for`]`(k)`, so two `collect` calls with
    /// different scenario closures (factual vs intervention-masked)
    /// yield positionally paired samples whose per-index differences
    /// isolate the intervention's effect from sampling noise.
    pub fn collect<T, F>(&self, mut scenario: F) -> Vec<T>
    where
        F: FnMut(SeedTree) -> T,
    {
        (0..self.count)
            .map(|k| scenario(self.seeds_for(k)))
            .collect()
    }

    /// [`Replications::collect`] fanned out over an explicit worker
    /// count. Values land in replicate order regardless of which
    /// worker produced them first, so the result is bit-identical to
    /// the sequential [`Replications::collect`]. Panics propagate
    /// (no per-replicate retry: replay drivers must see every
    /// replicate or none).
    pub fn collect_par_threads<T, F>(&self, threads: usize, scenario: F) -> Vec<T>
    where
        T: Send,
        F: Fn(SeedTree) -> T + Sync,
    {
        let n = self.count as usize;
        par_map_index_chunked(n, threads, replication_chunk(n, threads), |k| {
            scenario(self.seeds_for(k as u32))
        })
    }

    /// Fans a whole *strategy × replicate* matrix out over the worker
    /// pool and returns one [`RunReport`] per arm, in arm order.
    ///
    /// This is the experiment-harness workhorse: comparing controller
    /// variants under common random numbers is embarrassingly
    /// parallel at the cell level, so all `arms.len() × count()`
    /// cells feed one dynamic work queue (no idle cores while a slow
    /// arm finishes). Per-arm aggregates absorb cells in replicate
    /// order, so each arm's result is bit-identical to
    /// `Replications::run` on that arm alone; a panicking cell is
    /// retried once and otherwise quarantined in its arm's report
    /// without disturbing any other cell.
    pub fn run_matrix<S, F>(&self, arms: &[S], scenario: F) -> Vec<RunReport>
    where
        S: Sync,
        F: Fn(&S, SeedTree) -> MetricSet + Sync,
    {
        let cells = arms.len() * self.count as usize;
        self.run_matrix_threads(worker_count(cells), arms, scenario)
    }

    /// [`Replications::run_matrix`] with an explicit worker count.
    pub fn run_matrix_threads<S, F>(
        &self,
        threads: usize,
        arms: &[S],
        scenario: F,
    ) -> Vec<RunReport>
    where
        S: Sync,
        F: Fn(&S, SeedTree) -> MetricSet + Sync,
    {
        let reps = self.count as usize;
        let cells = arms.len() * reps;
        timed(
            || {
                let outcomes = par_map_index_chunked(
                    cells,
                    threads,
                    replication_chunk(cells, threads),
                    |cell| {
                        let (arm, k) = (cell / reps, cell % reps);
                        self.guarded_cell(k as u32, &|seeds| scenario(&arms[arm], seeds))
                    },
                );
                let mut arm_outcomes: Vec<Vec<Cell>> = Vec::with_capacity(arms.len());
                let mut it = outcomes.into_iter();
                for _ in 0..arms.len() {
                    arm_outcomes.push(it.by_ref().take(reps).collect());
                }
                arm_outcomes.into_iter().map(report_from).collect()
            },
            |reports: &mut Vec<RunReport>, secs| {
                // Cells from every arm share one work queue, so the
                // only meaningful wall clock is the whole matrix's.
                for r in reports {
                    r.wall_secs = secs;
                }
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng as _;

    #[test]
    fn metricset_set_add_get() {
        let mut m = MetricSet::new();
        assert!(m.is_empty());
        m.set("a", 1.0);
        m.add("a", 2.0);
        m.add("b", 5.0);
        assert_eq!(m.get("a"), Some(3.0));
        assert_eq!(m.get("b"), Some(5.0));
        assert_eq!(m.get("c"), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn metricset_iterates_in_name_order() {
        let mut m = MetricSet::new();
        m.set("z", 1.0);
        m.set("a", 2.0);
        let names: Vec<&str> = m.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "z"]);
    }

    #[test]
    fn aggregate_means() {
        let mut agg = Aggregate::default();
        for v in [1.0, 2.0, 3.0] {
            let mut m = MetricSet::new();
            m.set("x", v);
            agg.absorb(&m);
        }
        assert!((agg.mean("x") - 2.0).abs() < 1e-12);
        assert_eq!(agg.stats("x").unwrap().count(), 3);
        assert_eq!(agg.mean("missing"), 0.0);
    }

    #[test]
    fn replicates_have_distinct_but_reproducible_seeds() {
        let r = Replications::new(7, 4);
        assert_ne!(r.seeds_for(0).raw(), r.seeds_for(1).raw());
        assert_eq!(
            r.seeds_for(2).raw(),
            Replications::new(7, 4).seeds_for(2).raw()
        );
    }

    #[test]
    fn run_is_deterministic() {
        let scenario = |seeds: SeedTree| {
            let mut rng = seeds.rng("s");
            let mut m = MetricSet::new();
            m.set("v", rng.gen::<f64>());
            m
        };
        let a = Replications::new(1, 10).run(scenario).mean("v");
        let b = Replications::new(1, 10).run(scenario).mean("v");
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one replication")]
    fn zero_replications_panics() {
        let _ = Replications::new(1, 0);
    }

    #[test]
    fn run_par_is_bit_identical_to_run() {
        let scenario = |seeds: SeedTree| {
            let mut rng = seeds.rng("s");
            let mut m = MetricSet::new();
            m.set("v", rng.gen::<f64>());
            m.add("w", rng.gen::<f64>() - 0.5);
            m
        };
        let reps = Replications::new(0xC0FFEE, 17);
        let sequential = reps.run(scenario);
        for threads in [1, 2, 4, 16] {
            let parallel = reps.run_par_threads(threads, scenario);
            assert_eq!(parallel.aggregate(), &sequential, "threads={threads}");
            assert_eq!(parallel.completed(), 17);
            assert_eq!(parallel.excluded(), 0);
        }
        assert_eq!(reps.run_par(scenario).aggregate(), &sequential);
    }

    #[test]
    fn run_matrix_matches_per_arm_run() {
        let arms = [1.0_f64, 2.0, 3.0];
        let scenario = |scale: &f64, seeds: SeedTree| {
            let mut rng = seeds.rng("s");
            let mut m = MetricSet::new();
            m.set("v", scale * rng.gen::<f64>());
            m
        };
        let reps = Replications::new(0xBEEF, 9);
        let matrix = reps.run_matrix(&arms, scenario);
        assert_eq!(matrix.len(), arms.len());
        for (arm, report) in arms.iter().zip(&matrix) {
            let solo = reps.run(|seeds| scenario(arm, seeds));
            assert_eq!(report.aggregate(), &solo);
            assert_eq!(report.completed(), 9);
        }
    }

    #[test]
    fn run_matrix_with_empty_arms() {
        let reps = Replications::new(1, 4);
        let out = reps.run_matrix(&[] as &[u8], |_, _| MetricSet::new());
        assert!(out.is_empty());
    }

    #[test]
    fn literal_and_owned_keys_are_equivalent() {
        // Behavioural proxy for the no-alloc guarantee: borrowed keys
        // survive round trips and compare equal to owned ones.
        let mut a = MetricSet::new();
        a.set("x", 1.0);
        let mut b = MetricSet::new();
        b.set(String::from("x"), 1.0);
        assert_eq!(a, b);
        let mut agg = Aggregate::default();
        agg.absorb(&a);
        agg.absorb(&b);
        assert_eq!(agg.stats("x").unwrap().count(), 2);
    }

    /// A scenario that panics on replicate seeds listed in `poison`
    /// (matched by raw seed value, since scenarios only see seeds).
    fn poisoned_scenario(poison: Vec<u64>) -> impl Fn(SeedTree) -> MetricSet + Sync {
        move |seeds: SeedTree| {
            assert!(
                !poison.contains(&seeds.raw()),
                "poisoned replicate {:#x}",
                seeds.raw()
            );
            let mut rng = seeds.rng("s");
            let mut m = MetricSet::new();
            m.set("v", rng.gen::<f64>());
            m
        }
    }

    #[test]
    fn retry_seeds_differ_from_primary_and_are_stable() {
        let r = Replications::new(5, 4);
        for k in 0..4 {
            assert_ne!(r.seeds_for(k).raw(), r.retry_seeds_for(k).raw());
            assert_eq!(
                r.retry_seeds_for(k).raw(),
                Replications::new(5, 4).retry_seeds_for(k).raw()
            );
        }
    }

    #[test]
    fn poisoned_replicate_recovers_on_retry_branch() {
        let reps = Replications::new(0xDEAD, 8);
        // Poison only the primary attempt of replicate 3: the retry
        // branch runs clean and its metrics join the aggregate.
        let scenario = poisoned_scenario(vec![reps.seeds_for(3).raw()]);
        for threads in [1, 2, 4, 16] {
            let report = reps.run_par_threads(threads, &scenario);
            assert_eq!(report.completed(), 8, "threads={threads}");
            assert_eq!(report.recovered(), &[3], "threads={threads}");
            assert_eq!(report.excluded(), 0);
            assert_eq!(report.stats("v").map(|s| s.count()), Some(8));
        }
    }

    #[test]
    fn doubly_poisoned_replicate_is_quarantined_not_fatal() {
        let reps = Replications::new(0xDEAD, 8);
        // Poison both the primary and the retry branch of replicate 3.
        let scenario =
            poisoned_scenario(vec![reps.seeds_for(3).raw(), reps.retry_seeds_for(3).raw()]);
        // Reference aggregate over the 7 survivors only.
        let mut survivors = Aggregate::default();
        for k in 0..8 {
            if k != 3 {
                survivors.absorb(&poisoned_scenario(vec![])(reps.seeds_for(k)));
            }
        }
        for threads in [1, 2, 4, 16] {
            let report = reps.run_par_threads(threads, &scenario);
            assert_eq!(report.completed(), 7, "threads={threads}");
            assert_eq!(report.excluded(), 1);
            assert_eq!(report.errors().len(), 1);
            let err = &report.errors()[0];
            assert_eq!(err.replicate, 3);
            assert!(err.panic.contains("poisoned replicate"), "{err:?}");
            assert!(err.retry_panic.contains("poisoned replicate"));
            assert_eq!(
                report.aggregate(),
                &survivors,
                "survivor aggregate must be bit-identical, threads={threads}"
            );
        }
        // Sequential guarded run agrees exactly with the parallel one.
        assert_eq!(reps.run_try(&scenario), reps.run_par_threads(4, &scenario));
    }

    #[test]
    fn run_matrix_quarantines_per_arm() {
        let reps = Replications::new(0xF00D, 6);
        let arms = ["clean", "poisoned"];
        let poison_primary = reps.seeds_for(2).raw();
        let poison_retry = reps.retry_seeds_for(2).raw();
        let scenario = move |arm: &&str, seeds: SeedTree| {
            if *arm == "poisoned" {
                assert!(
                    seeds.raw() != poison_primary && seeds.raw() != poison_retry,
                    "poisoned cell"
                );
            }
            let mut rng = seeds.rng("s");
            let mut m = MetricSet::new();
            m.set("v", rng.gen::<f64>());
            m
        };
        for threads in [1, 3, 8] {
            let matrix = reps.run_matrix_threads(threads, &arms, scenario);
            assert_eq!(matrix[0].completed(), 6, "clean arm untouched");
            assert_eq!(matrix[0].excluded(), 0);
            assert_eq!(matrix[1].completed(), 5, "threads={threads}");
            assert_eq!(matrix[1].excluded(), 1);
            assert_eq!(matrix[1].errors()[0].replicate, 2);
            // Both arms share seeds: the poisoned arm's survivors saw
            // the same draws as the clean arm's matching replicates.
            assert_eq!(matrix[0].stats("v").map(|s| s.count()), Some(6));
            assert_eq!(matrix[1].stats("v").map(|s| s.count()), Some(5));
        }
    }

    /// `set_override` is process-global, and these tests share one
    /// binary with the rest of the suite — serialize the ones that
    /// flip it.
    fn obs_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Scenario that emits one record and opens one span per
    /// replicate — results depend only on the seeds, never on obs.
    fn observing_scenario(seeds: SeedTree) -> MetricSet {
        let _tick = crate::obs::span("test:phase");
        let mut rng = seeds.rng("s");
        let mut m = MetricSet::new();
        let v = rng.gen::<f64>();
        m.set("v", v);
        crate::obs::emit(Json::obj([("v", Json::from(v))]));
        m
    }

    #[test]
    fn report_collects_records_and_profile_when_enabled() {
        let _guard = obs_lock();
        crate::obs::set_override(Some(true));
        let reps = Replications::new(0x0B5, 5);
        let report = reps.run_par_threads(3, observing_scenario);
        crate::obs::set_override(None);
        assert_eq!(report.records().len(), 5);
        for (k, records) in report.records().iter().enumerate() {
            assert_eq!(records.len(), 1, "replicate {k} emitted one record");
            assert!(records[0].get("v").is_some());
        }
        let phase = report
            .profile()
            .phase("test:phase")
            .expect("spans recorded");
        assert_eq!(phase.stats.count(), 5);
        assert!(report.wall_secs() > 0.0);
    }

    #[test]
    fn report_records_empty_when_disabled() {
        let _guard = obs_lock();
        crate::obs::set_override(Some(false));
        let reps = Replications::new(0x0B5, 4);
        let report = reps.run_par_threads(2, observing_scenario);
        crate::obs::set_override(None);
        assert_eq!(report.records().len(), 4);
        assert!(report.records().iter().all(Vec::is_empty));
        assert!(report.profile().is_empty());
        // Wall clock is still measured: it is cheap and feeds nothing.
        assert!(report.wall_secs() > 0.0);
    }

    #[test]
    fn obs_toggle_never_changes_results_and_timing_is_excluded_from_eq() {
        let _guard = obs_lock();
        let reps = Replications::new(0x0B5E, 6);
        crate::obs::set_override(Some(false));
        let off = reps.run_par_threads(4, observing_scenario);
        crate::obs::set_override(Some(true));
        let on_seq = reps.run_try(observing_scenario);
        let on_par = reps.run_par_threads(4, observing_scenario);
        crate::obs::set_override(None);
        // Simulation outputs are bit-identical with obs on or off…
        assert_eq!(off.aggregate(), on_seq.aggregate());
        // …and full reports (incl. emitted records) are identical
        // across thread counts, despite different wall clocks.
        assert_eq!(on_seq, on_par);
        assert_ne!(on_seq.wall_secs(), 0.0);
    }

    #[test]
    fn failed_attempt_observations_are_discarded() {
        let _guard = obs_lock();
        crate::obs::set_override(Some(true));
        let reps = Replications::new(0xDEAD, 4);
        let poison = reps.seeds_for(2).raw();
        let scenario = move |seeds: SeedTree| {
            crate::obs::emit(Json::str("attempt"));
            assert!(seeds.raw() != poison, "poisoned replicate");
            observing_scenario(seeds)
        };
        let report = reps.run_par_threads(2, scenario);
        crate::obs::set_override(None);
        assert_eq!(report.recovered(), &[2]);
        // The recovered replicate's records come from the retry only:
        // one "attempt" marker plus one observing_scenario record.
        assert_eq!(report.records()[2].len(), 2);
        assert_eq!(report.records()[0].len(), 2);
    }

    #[test]
    fn common_random_numbers_across_strategies() {
        // Two "strategies" that consume the same stream should see the
        // same draws per replicate.
        let draws = |seeds: SeedTree| seeds.rng("env").gen::<u64>();
        let r = Replications::new(99, 3);
        for k in 0..3 {
            assert_eq!(draws(r.seeds_for(k)), draws(r.seeds_for(k)));
        }
    }
}
