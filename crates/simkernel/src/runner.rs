//! Replication runner: fan a scenario out over independently seeded
//! replicates and aggregate the resulting metrics.
//!
//! Every experiment in EXPERIMENTS.md reports means (± 95% CI) over R
//! replications. A scenario is any `Fn(SeedTree) -> MetricSet`; the
//! runner derives per-replicate seed subtrees so replicate *k* is
//! identical across strategies (common random numbers, which sharpens
//! the comparisons the paper's hypothesis calls for).

use crate::rng::SeedTree;
use crate::stats::OnlineStats;
use std::collections::BTreeMap;

/// A named bag of scalar results produced by one simulation run.
///
/// Backed by a `BTreeMap` so iteration (and thus printed output) is
/// deterministically ordered.
///
/// # Example
///
/// ```
/// use simkernel::MetricSet;
/// let mut m = MetricSet::new();
/// m.set("utility", 0.8);
/// m.add("violations", 1.0);
/// m.add("violations", 2.0);
/// assert_eq!(m.get("utility"), Some(0.8));
/// assert_eq!(m.get("violations"), Some(3.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricSet {
    values: BTreeMap<String, f64>,
}

impl MetricSet {
    /// Creates an empty metric set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets metric `name` to `value`, replacing any previous value.
    pub fn set(&mut self, name: &str, value: f64) {
        self.values.insert(name.to_string(), value);
    }

    /// Adds `delta` to metric `name` (starting from 0 if absent).
    pub fn add(&mut self, name: &str, delta: f64) {
        *self.values.entry(name.to_string()).or_insert(0.0) += delta;
    }

    /// Reads metric `name`, if present.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<f64> {
        self.values.get(name).copied()
    }

    /// Iterates `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no metrics have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl FromIterator<(String, f64)> for MetricSet {
    fn from_iter<I: IntoIterator<Item = (String, f64)>>(iter: I) -> Self {
        Self {
            values: iter.into_iter().collect(),
        }
    }
}

/// Aggregated per-metric statistics over replications.
#[derive(Debug, Clone, Default)]
pub struct Aggregate {
    stats: BTreeMap<String, OnlineStats>,
}

impl Aggregate {
    /// Folds one replicate's metrics into the aggregate.
    pub fn absorb(&mut self, metrics: &MetricSet) {
        for (name, value) in metrics.iter() {
            self.stats.entry(name.to_string()).or_default().push(value);
        }
    }

    /// Mean of metric `name` across replicates (0 if absent).
    #[must_use]
    pub fn mean(&self, name: &str) -> f64 {
        self.stats.get(name).map_or(0.0, OnlineStats::mean)
    }

    /// 95% CI half-width of metric `name` (0 if absent).
    #[must_use]
    pub fn ci95(&self, name: &str) -> f64 {
        self.stats
            .get(name)
            .map_or(0.0, OnlineStats::ci95_halfwidth)
    }

    /// Full stats for metric `name`, if recorded.
    #[must_use]
    pub fn stats(&self, name: &str) -> Option<&OnlineStats> {
        self.stats.get(name)
    }

    /// Iterates `(name, stats)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &OnlineStats)> {
        self.stats.iter().map(|(k, v)| (k.as_str(), v))
    }
}

/// Runs a scenario over R common-random-number replicates.
///
/// # Example
///
/// ```
/// use simkernel::{Replications, MetricSet};
/// use rand::Rng;
///
/// let agg = Replications::new(42, 8).run(|seeds| {
///     let mut rng = seeds.rng("noise");
///     let mut m = MetricSet::new();
///     m.set("x", rng.gen_range(0.0..1.0));
///     m
/// });
/// assert!(agg.mean("x") > 0.0 && agg.mean("x") < 1.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Replications {
    base_seed: u64,
    count: u32,
}

impl Replications {
    /// Configures `count` replicates rooted at `base_seed`.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    #[must_use]
    pub fn new(base_seed: u64, count: u32) -> Self {
        assert!(count > 0, "at least one replication required");
        Self { base_seed, count }
    }

    /// Number of replicates.
    #[must_use]
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Seed subtree for replicate `k` — stable across strategies so
    /// that strategy comparisons share random numbers.
    #[must_use]
    pub fn seeds_for(&self, k: u32) -> SeedTree {
        SeedTree::new(self.base_seed).child_idx(u64::from(k))
    }

    /// Runs `scenario` once per replicate and aggregates metrics.
    pub fn run<F>(&self, mut scenario: F) -> Aggregate
    where
        F: FnMut(SeedTree) -> MetricSet,
    {
        let mut agg = Aggregate::default();
        for k in 0..self.count {
            let metrics = scenario(self.seeds_for(k));
            agg.absorb(&metrics);
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng as _;

    #[test]
    fn metricset_set_add_get() {
        let mut m = MetricSet::new();
        assert!(m.is_empty());
        m.set("a", 1.0);
        m.add("a", 2.0);
        m.add("b", 5.0);
        assert_eq!(m.get("a"), Some(3.0));
        assert_eq!(m.get("b"), Some(5.0));
        assert_eq!(m.get("c"), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn metricset_iterates_in_name_order() {
        let mut m = MetricSet::new();
        m.set("z", 1.0);
        m.set("a", 2.0);
        let names: Vec<&str> = m.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "z"]);
    }

    #[test]
    fn aggregate_means() {
        let mut agg = Aggregate::default();
        for v in [1.0, 2.0, 3.0] {
            let mut m = MetricSet::new();
            m.set("x", v);
            agg.absorb(&m);
        }
        assert!((agg.mean("x") - 2.0).abs() < 1e-12);
        assert_eq!(agg.stats("x").unwrap().count(), 3);
        assert_eq!(agg.mean("missing"), 0.0);
    }

    #[test]
    fn replicates_have_distinct_but_reproducible_seeds() {
        let r = Replications::new(7, 4);
        assert_ne!(r.seeds_for(0).raw(), r.seeds_for(1).raw());
        assert_eq!(
            r.seeds_for(2).raw(),
            Replications::new(7, 4).seeds_for(2).raw()
        );
    }

    #[test]
    fn run_is_deterministic() {
        let scenario = |seeds: SeedTree| {
            let mut rng = seeds.rng("s");
            let mut m = MetricSet::new();
            m.set("v", rng.gen::<f64>());
            m
        };
        let a = Replications::new(1, 10).run(scenario).mean("v");
        let b = Replications::new(1, 10).run(scenario).mean("v");
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one replication")]
    fn zero_replications_panics() {
        let _ = Replications::new(1, 0);
    }

    #[test]
    fn common_random_numbers_across_strategies() {
        // Two "strategies" that consume the same stream should see the
        // same draws per replicate.
        let draws = |seeds: SeedTree| seeds.rng("env").gen::<u64>();
        let r = Replications::new(99, 3);
        for k in 0..3 {
            assert_eq!(draws(r.seeds_for(k)), draws(r.seeds_for(k)));
        }
    }
}
