//! # simkernel — deterministic simulation kernel
//!
//! Shared substrate for every simulator in the `self-aware-systems`
//! workspace. Reproducibility is the prime directive: **all** stochastic
//! behaviour in the workspace flows from a single `u64` seed through
//! [`rng::SeedTree`], so any experiment, test, or benchmark can be
//! replayed bit-for-bit from its seed.
//!
//! The kernel provides:
//!
//! * [`rng`] — hierarchical, label-addressed seed derivation on top of a
//!   portable ChaCha stream cipher RNG;
//! * [`clock`] — a time-stepped simulation clock ([`clock::Clock`]),
//!   the [`clock::Tick`] newtype used as the workspace-wide time unit,
//!   and the [`clock::ClockSource`] trait that lets control loops run
//!   against either simulated ticks or real elapsed time
//!   ([`clock::WallClock`]);
//! * [`events`] — a deterministic discrete-event queue with stable
//!   FIFO ordering among simultaneous events;
//! * [`sched`] — the discrete-event main-loop scheduler: sparse
//!   activation via `wake_at`/`wake_on_input` with a deterministic
//!   `(tick, priority class, FIFO seq)` delivery order and a
//!   same-tick re-schedule budget;
//! * [`delivery`] — a tick-indexed in-flight buffer for message copies
//!   travelling through lossy/delaying channels, drained in a
//!   deterministic (arrival tick, FIFO) order;
//! * [`stats`] — streaming statistics (Welford moments, percentile
//!   reservoirs, confidence intervals) used by every experiment;
//! * [`series`] — down-sampled time-series capture and ASCII sparkline
//!   rendering for the "figure" benchmarks;
//! * [`table`] — aligned ASCII table rendering for the "table"
//!   benchmarks;
//! * [`runner`] — a replication runner that fans one scenario out over
//!   independently-seeded replicates and aggregates metrics;
//! * [`parallel`] — order-preserving parallel map primitives that keep
//!   multi-core runs bit-identical to sequential ones (worker count
//!   from `available_parallelism`, overridable via `SAS_THREADS`);
//! * [`obs`] — structured observability: `SAS_OBS`-gated phase
//!   profiling spans, per-replicate record emission, and a JSONL
//!   run-trace writer, all guaranteed never to feed simulation state
//!   (so parity holds with observability on or off).
//!
//! ## Example
//!
//! ```
//! use simkernel::rng::SeedTree;
//! use simkernel::stats::OnlineStats;
//! use rand::Rng;
//!
//! let tree = SeedTree::new(42);
//! let mut rng = tree.rng("example");
//! let mut stats = OnlineStats::new();
//! for _ in 0..1000 {
//!     stats.push(rng.gen_range(0.0..1.0));
//! }
//! assert!((stats.mean() - 0.5).abs() < 0.05);
//! ```

#![forbid(unsafe_code)]
#![deny(clippy::unwrap_used, clippy::panic)]
#![warn(missing_docs)]

pub mod clock;
pub mod delivery;
pub mod events;
pub mod obs;
pub mod parallel;
pub mod rng;
pub mod runner;
pub mod sched;
pub mod series;
pub mod stats;
pub mod table;

pub use clock::{Clock, ClockSource, Tick, WallClock};
pub use delivery::DeliveryQueue;
pub use events::EventQueue;
pub use obs::{Json, PhaseProfile};
pub use parallel::{par_map, par_map_index, try_par_map_index, worker_count};
pub use rng::SeedTree;
pub use runner::{Aggregate, MetricKey, MetricSet, ReplicateError, Replications, RunReport};
pub use sched::{ActivationStats, DriveMode, SimScheduler, WakeDedup};
pub use series::TimeSeries;
pub use stats::OnlineStats;
pub use table::Table;

/// Crate version, recorded in run-trace provenance (see [`obs`]).
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
