//! Deterministic tick-indexed delivery queue.
//!
//! The unreliable-communication layer (see `selfaware::comms` and
//! `workloads::faults::ChannelPlan`) needs to hold message copies "in
//! the air" until their scheduled arrival tick. [`DeliveryQueue`] is
//! the scheduler-side primitive for that: items are filed under the
//! tick at which they become visible, and [`DeliveryQueue::due`]
//! drains everything that has arrived by `now` in a fully
//! deterministic order — ascending arrival tick, FIFO among items
//! scheduled for the same tick.
//!
//! Unlike [`crate::events::EventQueue`] this queue carries arbitrary
//! payloads and never inspects them, so callers can keep whole
//! messages (not just event tags) in flight.
//!
//! ```
//! use simkernel::delivery::DeliveryQueue;
//! use simkernel::Tick;
//!
//! let mut q = DeliveryQueue::new();
//! q.schedule(Tick(5), "late");
//! q.schedule(Tick(2), "early");
//! q.schedule(Tick(2), "early-2");
//! assert_eq!(q.due(Tick(2)), vec!["early", "early-2"]);
//! assert_eq!(q.len(), 1);
//! assert_eq!(q.due(Tick(10)), vec!["late"]);
//! assert!(q.is_empty());
//! ```

use crate::clock::Tick;
use std::collections::BTreeMap;

/// A deterministic "in flight" buffer: payloads scheduled for future
/// ticks, drained in (arrival tick, insertion order) order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeliveryQueue<T> {
    slots: BTreeMap<u64, Vec<T>>,
    len: usize,
}

impl<T> Default for DeliveryQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> DeliveryQueue<T> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self {
            slots: BTreeMap::new(),
            len: 0,
        }
    }

    /// Files `item` for visibility at tick `at` (inclusive).
    pub fn schedule(&mut self, at: Tick, item: T) {
        self.slots.entry(at.0).or_default().push(item);
        self.len += 1;
    }

    /// Removes and returns every item whose arrival tick is `<= now`,
    /// ordered by (arrival tick, insertion order).
    pub fn due(&mut self, now: Tick) -> Vec<T> {
        let mut out = Vec::new();
        // At `now = u64::MAX` everything is due; splitting at
        // `now + 1` would overflow (hit by comms configs whose
        // saturated retry deadlines step the protocol at Tick MAX).
        let later = now
            .0
            .checked_add(1)
            .map_or_else(BTreeMap::new, |bound| self.slots.split_off(&bound));
        for (_, mut batch) in std::mem::replace(&mut self.slots, later) {
            out.append(&mut batch);
        }
        self.len -= out.len();
        out
    }

    /// Earliest arrival tick still queued, if any.
    #[must_use]
    pub fn next_arrival(&self) -> Option<Tick> {
        self.slots.keys().next().map(|&t| Tick(t))
    }

    /// Number of items still in flight.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is in flight.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_in_tick_then_fifo_order() {
        let mut q = DeliveryQueue::new();
        q.schedule(Tick(3), "c");
        q.schedule(Tick(1), "a1");
        q.schedule(Tick(1), "a2");
        q.schedule(Tick(2), "b");
        assert_eq!(q.next_arrival(), Some(Tick(1)));
        assert_eq!(q.due(Tick(2)), vec!["a1", "a2", "b"]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.due(Tick(2)), Vec::<&str>::new());
        assert_eq!(q.due(Tick(3)), vec!["c"]);
        assert!(q.is_empty());
        assert_eq!(q.next_arrival(), None);
    }

    #[test]
    fn due_at_zero_picks_up_same_tick_items() {
        let mut q = DeliveryQueue::new();
        q.schedule(Tick(0), 7u32);
        assert_eq!(q.due(Tick(0)), vec![7]);
    }

    #[test]
    fn due_at_tick_max_drains_everything() {
        let mut q = DeliveryQueue::new();
        q.schedule(Tick(0), "a");
        q.schedule(Tick(u64::MAX), "b");
        assert_eq!(q.due(Tick(u64::MAX)), vec!["a", "b"]);
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_drain_keeps_count() {
        let mut q = DeliveryQueue::new();
        for t in 0..100u64 {
            q.schedule(Tick(t + 3), t);
            let got = q.due(Tick(t));
            for g in got {
                assert_eq!(g + 3, t);
            }
        }
        assert_eq!(q.len(), 3);
    }
}
