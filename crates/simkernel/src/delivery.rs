//! Deterministic tick-indexed delivery queue.
//!
//! The unreliable-communication layer (see `selfaware::comms` and
//! `workloads::faults::ChannelPlan`) needs to hold message copies "in
//! the air" until their scheduled arrival tick. [`DeliveryQueue`] is
//! the scheduler-side primitive for that: items are filed under the
//! tick at which they become visible, and [`DeliveryQueue::due`]
//! drains everything that has arrived by `now` in a fully
//! deterministic order — ascending arrival tick, FIFO among items
//! scheduled for the same tick.
//!
//! Unlike [`crate::events::EventQueue`] this queue carries arbitrary
//! payloads and never inspects them, so callers can keep whole
//! messages (not just event tags) in flight.
//!
//! ```
//! use simkernel::delivery::DeliveryQueue;
//! use simkernel::Tick;
//!
//! let mut q = DeliveryQueue::new();
//! q.schedule(Tick(5), "late");
//! q.schedule(Tick(2), "early");
//! q.schedule(Tick(2), "early-2");
//! assert_eq!(q.due(Tick(2)), vec!["early", "early-2"]);
//! assert_eq!(q.len(), 1);
//! assert_eq!(q.due(Tick(10)), vec!["late"]);
//! assert!(q.is_empty());
//! ```

use crate::clock::Tick;
use std::collections::BTreeMap;

/// Spent per-tick batch buffers retained for reuse (see
/// [`DeliveryQueue::drain_due_into`]); bounded so a burst cannot pin
/// memory forever.
const POOL_LIMIT: usize = 32;

/// A deterministic "in flight" buffer: payloads scheduled for future
/// ticks, drained in (arrival tick, insertion order) order.
///
/// Emptied per-tick buffers are recycled into future [`schedule`]
/// calls, so a steady-state schedule/drain cycle performs no heap
/// allocation (the comms layer's zero-alloc hot path depends on
/// this).
///
/// [`schedule`]: DeliveryQueue::schedule
#[derive(Debug, Clone)]
pub struct DeliveryQueue<T> {
    slots: BTreeMap<u64, Vec<T>>,
    len: usize,
    pool: Vec<Vec<T>>,
}

// The recycling pool is invisible state: equality is defined by what
// is in flight, not by how many spare buffers are cached.
impl<T: PartialEq> PartialEq for DeliveryQueue<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.slots == other.slots
    }
}

impl<T: Eq> Eq for DeliveryQueue<T> {}

impl<T> Default for DeliveryQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> DeliveryQueue<T> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self {
            slots: BTreeMap::new(),
            len: 0,
            pool: Vec::new(),
        }
    }

    /// Files `item` for visibility at tick `at` (inclusive).
    pub fn schedule(&mut self, at: Tick, item: T) {
        let pool = &mut self.pool;
        self.slots
            .entry(at.0)
            .or_insert_with(|| pool.pop().unwrap_or_default())
            .push(item);
        self.len += 1;
    }

    /// Removes and returns every item whose arrival tick is `<= now`,
    /// ordered by (arrival tick, insertion order).
    pub fn due(&mut self, now: Tick) -> Vec<T> {
        let mut out = Vec::new();
        self.drain_due_into(now, &mut out);
        out
    }

    /// Appends every item whose arrival tick is `<= now` to `out`, in
    /// (arrival tick, insertion order) order; `out` is *not* cleared
    /// first. The emptied per-tick buffers are kept for future
    /// [`DeliveryQueue::schedule`] calls, so callers that reuse `out`
    /// get an allocation-free steady state.
    pub fn drain_due_into(&mut self, now: Tick, out: &mut Vec<T>) {
        // Removing one tick at a time sidesteps the `now + 1`
        // overflow a `split_off` bound would hit at `Tick(u64::MAX)`
        // (where everything is due).
        while let Some((&t, _)) = self.slots.first_key_value() {
            if t > now.0 {
                break;
            }
            if let Some(mut batch) = self.slots.remove(&t) {
                self.len -= batch.len();
                out.append(&mut batch);
                if self.pool.len() < POOL_LIMIT {
                    self.pool.push(batch);
                }
            }
        }
    }

    /// Earliest arrival tick still queued, if any.
    #[must_use]
    pub fn next_arrival(&self) -> Option<Tick> {
        self.slots.keys().next().map(|&t| Tick(t))
    }

    /// Number of items still in flight.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is in flight.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_in_tick_then_fifo_order() {
        let mut q = DeliveryQueue::new();
        q.schedule(Tick(3), "c");
        q.schedule(Tick(1), "a1");
        q.schedule(Tick(1), "a2");
        q.schedule(Tick(2), "b");
        assert_eq!(q.next_arrival(), Some(Tick(1)));
        assert_eq!(q.due(Tick(2)), vec!["a1", "a2", "b"]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.due(Tick(2)), Vec::<&str>::new());
        assert_eq!(q.due(Tick(3)), vec!["c"]);
        assert!(q.is_empty());
        assert_eq!(q.next_arrival(), None);
    }

    #[test]
    fn due_at_zero_picks_up_same_tick_items() {
        let mut q = DeliveryQueue::new();
        q.schedule(Tick(0), 7u32);
        assert_eq!(q.due(Tick(0)), vec![7]);
    }

    #[test]
    fn due_at_tick_max_drains_everything() {
        let mut q = DeliveryQueue::new();
        q.schedule(Tick(0), "a");
        q.schedule(Tick(u64::MAX), "b");
        assert_eq!(q.due(Tick(u64::MAX)), vec!["a", "b"]);
        assert!(q.is_empty());
    }

    #[test]
    fn drain_due_into_appends_without_clearing_and_recycles() {
        let mut q = DeliveryQueue::new();
        q.schedule(Tick(1), 10u32);
        q.schedule(Tick(2), 20);
        let mut out = vec![5u32];
        q.drain_due_into(Tick(1), &mut out);
        assert_eq!(out, vec![5, 10]);
        // The emptied tick-1 buffer is recycled by later schedules;
        // drain order and contents are unaffected.
        q.schedule(Tick(3), 30);
        out.clear();
        q.drain_due_into(Tick(u64::MAX), &mut out);
        assert_eq!(out, vec![20, 30]);
        assert!(q.is_empty());
    }

    #[test]
    fn pool_does_not_affect_equality() {
        let mut a = DeliveryQueue::new();
        let b = DeliveryQueue::<u32>::new();
        a.schedule(Tick(0), 1);
        let _ = a.due(Tick(0));
        // `a` now holds a recycled buffer, `b` never allocated one.
        assert_eq!(a, b);
    }

    #[test]
    fn interleaved_schedule_and_drain_keeps_count() {
        let mut q = DeliveryQueue::new();
        for t in 0..100u64 {
            q.schedule(Tick(t + 3), t);
            let got = q.due(Tick(t));
            for g in got {
                assert_eq!(g + 3, t);
            }
        }
        assert_eq!(q.len(), 3);
    }
}
