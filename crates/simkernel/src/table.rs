//! Aligned ASCII table rendering for the "table" benchmarks.
//!
//! Each T* experiment prints one [`Table`]: a title, a header row, and
//! data rows. Cells are strings; numeric helpers format with fixed
//! precision so the emitted tables diff cleanly between runs.

use std::fmt;

/// A simple column-aligned table.
///
/// # Example
///
/// ```
/// use simkernel::Table;
/// let mut t = Table::new("T0: demo", &["strategy", "utility"]);
/// t.row(&["static", "0.41"]);
/// t.row(&["self-aware", "0.78"]);
/// let s = t.to_string();
/// assert!(s.contains("self-aware"));
/// assert!(s.contains("utility"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of preformatted cells.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header width"
        );
        self.rows
            .push(cells.iter().map(|s| (*s).to_string()).collect());
    }

    /// Appends a row from owned strings (convenient with `format!`).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The cell at `(row, col)`, if present.
    #[must_use]
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows
            .get(row)
            .and_then(|r| r.get(col))
            .map(String::as_str)
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let fmt_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut first = true;
            for (i, cell) in cells.iter().enumerate() {
                if !first {
                    write!(f, "  ")?;
                }
                first = false;
                write!(f, "{cell:<w$}", w = widths[i])?;
            }
            writeln!(f)
        };
        fmt_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            fmt_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with 3 decimal places (table convention).
#[must_use]
pub fn num(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats `mean ± ci` with 3 decimal places.
#[must_use]
pub fn num_ci(mean: f64, ci: f64) -> String {
    format!("{mean:.3}±{ci:.3}")
}

/// Formats a percentage with 1 decimal place.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_title_header_rows() {
        let mut t = Table::new("demo", &["a", "bbbb"]);
        t.row(&["1", "2"]);
        t.row_owned(vec!["333".into(), "4".into()]);
        let s = t.to_string();
        assert!(s.contains("== demo =="));
        assert!(s.contains("a    bbbb"));
        assert!(s.contains("333"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn cell_access() {
        let mut t = Table::new("x", &["c1", "c2"]);
        t.row(&["v1", "v2"]);
        assert_eq!(t.cell(0, 1), Some("v2"));
        assert_eq!(t.cell(1, 0), None);
        assert_eq!(t.cell(0, 5), None);
    }

    #[test]
    #[should_panic(expected = "row width must match header width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn numeric_formatting() {
        assert_eq!(num(1.23456), "1.235");
        assert_eq!(num_ci(1.0, 0.5), "1.000±0.500");
        assert_eq!(pct(0.123), "12.3%");
    }

    #[test]
    fn columns_align() {
        let mut t = Table::new("align", &["name", "v"]);
        t.row(&["short", "1"]);
        t.row(&["a-very-long-name", "2"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        // header line and both data rows should place column 2 at the
        // same byte offset
        let off = |l: &str| l.rfind(char::is_numeric).or_else(|| l.rfind('v'));
        assert_eq!(off(lines[1]), off(lines[3]));
    }
}
