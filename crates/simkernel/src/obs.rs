//! Structured observability: run-trace export and phase profiling.
//!
//! Everything in this module obeys one contract, stated once and
//! relied on everywhere: **observation never feeds simulation
//! state**. Spans read the clock, records copy already-computed
//! values, and the trace writer runs after a replicate has finished —
//! so a run with `SAS_OBS=1` is bit-identical (in every
//! parity-relevant output: metrics, comms stats, explanation
//! sequences) to the same run with observability off, at any
//! `SAS_THREADS` value. The parity suites assert exactly that.
//!
//! Three layers:
//!
//! * **Toggle** — [`enabled`] reads the `SAS_OBS` environment variable
//!   once per process (overridable in-process via [`set_override`] for
//!   tests and tooling). The off path costs one atomic load plus one
//!   cached-bool read per call site.
//! * **Per-replicate sink** — the replication runner installs a
//!   thread-local [`ReplicateObs`] around each replicate attempt
//!   (see [`with_sink`]); simulator code drops [`span`] guards around
//!   its sense/decide/act/comms phases and [`emit`]s one structured
//!   record per replicate. With no sink installed (or obs off) both
//!   are no-ops.
//! * **Artifacts** — [`TraceWriter`] emits JSONL files under
//!   `target/obs/<experiment>/` (root overridable via `SAS_OBS_DIR`),
//!   one self-describing [`Json`] object per line. The hand-rolled
//!   [`Json`] value type exists because the workspace's vendored
//!   `serde` is a contract-only stand-in with no encoder.

use crate::stats::OnlineStats;
use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Environment variable enabling observability (`1`/`true` → on).
pub const OBS_ENV: &str = "SAS_OBS";

/// Environment variable overriding the artifact root directory
/// (default `target/obs`).
pub const OBS_DIR_ENV: &str = "SAS_OBS_DIR";

// ---------------------------------------------------------------------------
// Toggle
// ---------------------------------------------------------------------------

/// In-process override: 0 = unset (fall through to env), 1 = forced
/// off, 2 = forced on. Tests toggle this instead of mutating the
/// process environment (which is racy under the parallel test
/// harness).
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

fn env_enabled() -> bool {
    static CACHE: OnceLock<bool> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var(OBS_ENV)
            .map(|v| matches!(v.trim(), "1" | "true" | "TRUE" | "on"))
            .unwrap_or(false)
    })
}

/// Whether observability is on for this process.
///
/// Resolution order: [`set_override`] (if set) → `SAS_OBS`
/// environment variable (read once, cached). The off path is a
/// relaxed atomic load plus a cached boolean — cheap enough to call
/// per span site per tick.
#[must_use]
pub fn enabled() -> bool {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => env_enabled(),
    }
}

/// Forces observability on/off for this process (`None` restores the
/// environment-variable behaviour). Used by parity tests and
/// tooling; simulation results must not depend on it — that is the
/// whole point.
pub fn set_override(on: Option<bool>) {
    OVERRIDE.store(
        match on {
            None => 0,
            Some(false) => 1,
            Some(true) => 2,
        },
        Ordering::Relaxed,
    );
}

// ---------------------------------------------------------------------------
// JSON values (hand-rolled: the vendored serde has no encoder)
// ---------------------------------------------------------------------------

/// A JSON value, with a serializer ([`Json::render`]) and a strict
/// parser ([`parse`]) used by the artifact validator.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. Non-finite values render as `null` (JSON has no
    /// NaN/Inf).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is preserved as built (builders in this
    /// workspace emit deterministic orders).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    #[must_use]
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Self {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds a string value.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Self {
        Json::Str(s.into())
    }

    /// Looks up `key` in an object (None for non-objects / missing).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to a compact single-line JSON string.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // `{}` on f64 is the shortest representation that
                    // round-trips, and prints integers without ".0" —
                    // both valid JSON.
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_str(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        // f64 is exact up to 2^53; every counter in this workspace is
        // far below that over any simulated horizon.
        Json::Num(n as f64)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Self {
        Json::Num(f64::from(n))
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_owned())
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document (strict; no trailing garbage). Used by the
/// artifact validator and the round-trip tests — not a general-purpose
/// parser, but it accepts everything [`Json::render`] emits plus
/// standard whitespace and escapes.
///
/// # Errors
///
/// Returns a human-readable message with a byte offset on malformed
/// input.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing input at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                skip_ws(bytes, pos);
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                skip_ws(bytes, pos);
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| "truncated \\u escape".to_owned())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        // Surrogate pairs are not produced by our
                        // renderer; map lone surrogates to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is &str, so byte
                // boundaries are valid).
                let rest = &bytes[*pos..];
                let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                if let Some(c) = s.chars().next() {
                    out.push(c);
                    *pos += c.len_utf8();
                } else {
                    return Err("unterminated string".to_owned());
                }
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

// ---------------------------------------------------------------------------
// Digests
// ---------------------------------------------------------------------------

/// 64-bit FNV-1a over `bytes` — stable, dependency-free content
/// digest for run provenance (not cryptographic).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325_u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Hex-formatted [`fnv1a64`] of a configuration description string —
/// the `config_digest` field in provenance records.
#[must_use]
pub fn config_digest(description: &str) -> String {
    format!("{:016x}", fnv1a64(description.as_bytes()))
}

// ---------------------------------------------------------------------------
// Phase profiling
// ---------------------------------------------------------------------------

/// Number of log₂-spaced histogram buckets: bucket `i` counts
/// durations in `[2^(i-1), 2^i)` nanoseconds (bucket 0 is `< 1ns`),
/// so 64 buckets cover every representable duration.
const HIST_BUCKETS: usize = 64;

/// A fixed-size log₂-bucketed duration histogram: bounded memory no
/// matter how many spans a run records (exact-sample percentile
/// reservoirs would grow with ticks × replicates), mergeable across
/// worker threads, with quantile estimates good to a factor of 2 —
/// plenty for "where does the time go" profiling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: [u64; HIST_BUCKETS],
    total: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self {
            counts: [0; HIST_BUCKETS],
            total: 0,
        }
    }
}

impl LogHistogram {
    fn bucket_for(nanos: u128) -> usize {
        // floor(log2(nanos)) + 1, clamped; 0ns → bucket 0.
        let n = u64::try_from(nanos).unwrap_or(u64::MAX);
        (64 - n.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }

    /// Records one duration.
    pub fn record(&mut self, d: Duration) {
        self.counts[Self::bucket_for(d.as_nanos())] += 1;
        self.total += 1;
    }

    /// Total recorded samples.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Adds every sample of `other` into `self`.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Estimated quantile `q` (0..=1) in seconds: the geometric
    /// midpoint of the bucket containing the q-th sample. 0.0 when
    /// empty.
    #[must_use]
    pub fn quantile_secs(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Bucket i spans [2^(i-1), 2^i) ns; use the geometric
                // midpoint (√2·2^(i-1)) as the representative value.
                let lo = if i == 0 {
                    0.5
                } else {
                    (1u128 << (i - 1)) as f64
                };
                return lo * std::f64::consts::SQRT_2 * 1e-9;
            }
        }
        0.0
    }

    /// Non-empty `(bucket_upper_bound_secs, count)` pairs, for export.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| ((1u128 << i) as f64 * 1e-9, c))
    }
}

/// Streaming stats + histogram for one profiled phase.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseStats {
    /// Welford moments over span durations, in seconds.
    pub stats: OnlineStats,
    /// Log₂ histogram of span durations.
    pub hist: LogHistogram,
}

impl PhaseStats {
    fn record(&mut self, d: Duration) {
        self.stats.push(d.as_secs_f64());
        self.hist.record(d);
    }

    fn merge(&mut self, other: &Self) {
        self.stats.merge(&other.stats);
        self.hist.merge(&other.hist);
    }

    /// JSON summary: count, total/mean seconds, and p50/p95/p99
    /// estimates from the histogram.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::from(self.stats.count())),
            ("total_secs", Json::from(self.stats.sum())),
            ("mean_secs", Json::from(self.stats.mean())),
            ("min_secs", Json::from(self.stats.min())),
            ("max_secs", Json::from(self.stats.max())),
            ("p50_secs", Json::from(self.hist.quantile_secs(0.50))),
            ("p95_secs", Json::from(self.hist.quantile_secs(0.95))),
            ("p99_secs", Json::from(self.hist.quantile_secs(0.99))),
            (
                "hist",
                Json::Arr(
                    self.hist
                        .buckets()
                        .map(|(ub, c)| Json::Arr(vec![Json::from(ub), Json::from(c)]))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Per-phase timing profile, keyed by span name. Phases sort by name
/// so every rendering is deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseProfile {
    phases: BTreeMap<Cow<'static, str>, PhaseStats>,
}

impl PhaseProfile {
    /// Records one span duration for `phase`.
    pub fn record(&mut self, phase: impl Into<Cow<'static, str>>, d: Duration) {
        self.phases.entry(phase.into()).or_default().record(d);
    }

    /// Merges another profile into this one (used when folding
    /// per-replicate profiles into a run-level profile).
    pub fn merge(&mut self, other: &Self) {
        for (name, stats) in &other.phases {
            match self.phases.get_mut(name.as_ref()) {
                Some(mine) => mine.merge(stats),
                None => {
                    self.phases.insert(name.clone(), stats.clone());
                }
            }
        }
    }

    /// Stats for one phase, if any spans were recorded.
    #[must_use]
    pub fn phase(&self, name: &str) -> Option<&PhaseStats> {
        self.phases.get(name)
    }

    /// Iterates `(phase, stats)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &PhaseStats)> {
        self.phases.iter().map(|(k, v)| (k.as_ref(), v))
    }

    /// Whether no spans have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// JSON object `{phase: summary, ...}` in phase-name order.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.phases
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_json()))
                .collect(),
        )
    }
}

// ---------------------------------------------------------------------------
// Process resource sampling
// ---------------------------------------------------------------------------

/// Peak resident-set size of the current process in **bytes**, read
/// from `/proc/self/status` (`VmHWM`). Returns `None` on platforms
/// without procfs (or when the field is absent/unparseable), so
/// consumers like `perfbench` can stay schema-stable cross-platform
/// by emitting an explicit null instead of a bogus number.
#[must_use]
pub fn read_peak_rss() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kib: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kib.saturating_mul(1024));
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Per-replicate sink
// ---------------------------------------------------------------------------

/// Everything one replicate observed: phase spans and emitted
/// records. Collected thread-locally so worker threads never contend,
/// and drained by the replication runner after each attempt.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReplicateObs {
    /// Phase timing recorded by [`span`] guards.
    pub profile: PhaseProfile,
    /// Structured records appended by [`emit`].
    pub records: Vec<Json>,
}

thread_local! {
    static SINK: RefCell<Option<ReplicateObs>> = const { RefCell::new(None) };
}

/// Runs `f` with a fresh observation sink installed on this thread
/// and returns `(f(), observations)`. The previous sink (if any) is
/// saved and restored, so nested replication runs — e.g. a scenario
/// that itself fans out — observe into their own sinks without
/// clobbering the outer one.
///
/// When observability is disabled the sink is not installed and the
/// returned observations are empty.
pub fn with_sink<R>(f: impl FnOnce() -> R) -> (R, ReplicateObs) {
    if !enabled() {
        return (f(), ReplicateObs::default());
    }
    let saved = SINK.with(|s| s.replace(Some(ReplicateObs::default())));
    let out = f();
    let collected = SINK.with(|s| s.replace(saved));
    (out, collected.unwrap_or_default())
}

/// Appends one structured record to the current replicate's sink.
/// No-op when observability is off or no sink is installed (so
/// library code can emit unconditionally).
pub fn emit(record: Json) {
    if !enabled() {
        return;
    }
    SINK.with(|s| {
        if let Some(sink) = s.borrow_mut().as_mut() {
            sink.records.push(record);
        }
    });
}

/// An RAII span guard: measures wall time from construction to drop
/// and records it under `phase` in the current sink. When
/// observability is off, construction is a cached-bool check and drop
/// is a no-op — cheap enough for per-tick scopes.
///
/// Timing is measurement only: span durations are never readable from
/// simulation code, so they cannot perturb results (the determinism
/// contract above).
#[must_use = "a span measures until dropped; binding it to `_` drops immediately"]
pub struct Span {
    phase: &'static str,
    start: Option<Instant>,
}

/// Opens a [`Span`] for `phase`. Convention: `<substrate>:<stage>`
/// with stages `sense`, `decide`, `act`, and the cross-substrate
/// `comms` span recorded by the protocol layer itself.
pub fn span(phase: &'static str) -> Span {
    Span {
        phase,
        start: enabled().then(Instant::now),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let elapsed = start.elapsed();
            SINK.with(|s| {
                if let Some(sink) = s.borrow_mut().as_mut() {
                    sink.profile.record(self.phase, elapsed);
                }
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Trace writer
// ---------------------------------------------------------------------------

/// Default artifact root, relative to the workspace root (see
/// [`artifact_root`] for how that is located).
pub const DEFAULT_OBS_ROOT: &str = "target/obs";

/// Resolves the artifact root: `SAS_OBS_DIR` if set, else
/// [`DEFAULT_OBS_ROOT`] under the workspace root.
///
/// Cargo runs test and bench binaries with their working directory
/// set to the *package* root, not the workspace root, so a plain
/// relative default would scatter artifacts across `crates/*/target/`
/// depending on which binary emitted them. Instead the default is
/// anchored at the nearest ancestor of the working directory that
/// holds a `Cargo.lock` (the workspace root marker), falling back to
/// the working directory itself.
#[must_use]
pub fn artifact_root() -> PathBuf {
    if let Some(dir) = std::env::var_os(OBS_DIR_ENV) {
        return PathBuf::from(dir);
    }
    let cwd = std::env::current_dir().unwrap_or_default();
    let mut dir = cwd.as_path();
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.join(DEFAULT_OBS_ROOT);
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => return PathBuf::from(DEFAULT_OBS_ROOT),
        }
    }
}

/// Writes one JSONL run-trace artifact. Lines are buffered in memory
/// and flushed on [`TraceWriter::finish`], so a crashed run leaves no
/// half-written file behind.
#[derive(Debug)]
pub struct TraceWriter {
    path: PathBuf,
    buf: String,
}

impl TraceWriter {
    /// Creates a writer for `<artifact_root>/<experiment>/<stem>.jsonl`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn create(experiment: &str, stem: &str) -> std::io::Result<Self> {
        Self::create_in(artifact_root(), experiment, stem)
    }

    /// [`TraceWriter::create`] with an explicit root (used by tests to
    /// stay inside the workspace `target/` directory).
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn create_in(
        root: impl AsRef<Path>,
        experiment: &str,
        stem: &str,
    ) -> std::io::Result<Self> {
        let dir = root.as_ref().join(experiment);
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            path: dir.join(format!("{stem}.jsonl")),
            buf: String::new(),
        })
    }

    /// Appends one record as a single JSONL line.
    pub fn line(&mut self, record: &Json) {
        record.render_into(&mut self.buf);
        self.buf.push('\n');
    }

    /// Destination path of the artifact.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Writes the buffered lines to disk and returns the artifact
    /// path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem write failures.
    pub fn finish(self) -> std::io::Result<PathBuf> {
        std::fs::write(&self.path, self.buf.as_bytes())?;
        Ok(self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_is_positive_on_linux_and_none_elsewhere() {
        match read_peak_rss() {
            // A process that got this far has touched megabytes; the
            // value is in bytes, so it must comfortably exceed a page.
            Some(bytes) => assert!(bytes >= 4096, "implausible peak RSS: {bytes}"),
            // Non-Linux (no procfs): the helper must degrade to None
            // rather than fabricate a number.
            None => {
                if cfg!(target_os = "linux") {
                    panic!("Linux with procfs should report VmHWM");
                }
            }
        }
    }

    #[test]
    fn json_renders_compact() {
        let v = Json::obj([
            ("a", Json::from(1.5)),
            ("b", Json::Arr(vec![Json::Null, Json::Bool(true)])),
            ("c", Json::str("x\"y\\z\n")),
        ]);
        assert_eq!(v.render(), r#"{"a":1.5,"b":[null,true],"c":"x\"y\\z\n"}"#);
    }

    #[test]
    fn json_numbers_round_trip_exactly() {
        for n in [
            0.0,
            -1.0,
            1.0 / 3.0,
            1e300,
            123456789.125,
            f64::MIN_POSITIVE,
        ] {
            let rendered = Json::Num(n).render();
            match parse(&rendered) {
                Ok(Json::Num(back)) => assert_eq!(back.to_bits(), n.to_bits(), "{rendered}"),
                other => panic!("expected number back, got {other:?}"),
            }
        }
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn json_parse_round_trips_structures() {
        let v = Json::obj([
            ("experiment", Json::str("f5")),
            ("seed", Json::from(0xF5_u64)),
            ("empty_obj", Json::obj::<&str>([])),
            ("empty_arr", Json::Arr(vec![])),
            (
                "nested",
                Json::Arr(vec![Json::obj([("k", Json::from(2.0))]), Json::Null]),
            ),
            ("tab", Json::str("a\tb\u{1}")),
        ]);
        let back = parse(&v.render()).expect("round trip");
        assert_eq!(back, v);
    }

    #[test]
    fn json_parse_accepts_whitespace_and_rejects_garbage() {
        assert_eq!(
            parse(" { \"a\" : [ 1 , 2 ] } ").expect("ok"),
            Json::obj([("a", Json::Arr(vec![Json::from(1.0), Json::from(2.0)]))])
        );
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("{\"a\"").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn fnv_digest_is_stable_and_input_sensitive() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(config_digest("a"), config_digest("b"));
        assert_eq!(config_digest("steps=6000"), config_digest("steps=6000"));
        assert_eq!(config_digest("x").len(), 16);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = LogHistogram::default();
        for _ in 0..99 {
            h.record(Duration::from_nanos(1000)); // bucket ~1µs
        }
        h.record(Duration::from_millis(10));
        assert_eq!(h.total(), 100);
        let p50 = h.quantile_secs(0.50);
        assert!(p50 > 0.4e-6 && p50 < 2.2e-6, "p50={p50}");
        let p99 = h.quantile_secs(0.99);
        assert!(p99 < 2.2e-6, "99 of 100 samples are ~1µs, p99={p99}");
        let p100 = h.quantile_secs(1.0);
        assert!(p100 > 5e-3 && p100 < 25e-3, "p100={p100}");
        assert_eq!(h.quantile_secs(0.0), p50.min(h.quantile_secs(0.01)));
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = LogHistogram::default();
        let mut b = LogHistogram::default();
        a.record(Duration::from_nanos(10));
        b.record(Duration::from_nanos(10));
        b.record(Duration::from_secs(1));
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.buckets().count(), 2);
    }

    #[test]
    fn profile_records_and_merges() {
        let mut p = PhaseProfile::default();
        p.record("sense", Duration::from_micros(5));
        p.record("sense", Duration::from_micros(7));
        p.record("act", Duration::from_micros(2));
        let mut q = PhaseProfile::default();
        q.record("sense", Duration::from_micros(1));
        p.merge(&q);
        let sense = p.phase("sense").expect("sense recorded");
        assert_eq!(sense.stats.count(), 3);
        assert!(p.phase("act").is_some());
        assert!(p.phase("comms").is_none());
        let names: Vec<&str> = p.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["act", "sense"], "name-ordered");
        let json = p.to_json().render();
        assert!(json.contains("\"sense\""), "{json}");
        assert!(json.contains("\"p95_secs\""), "{json}");
    }

    #[test]
    fn sink_collects_only_when_enabled() {
        set_override(Some(false));
        let ((), off) = with_sink(|| {
            let _s = span("phase");
            emit(Json::Null);
        });
        assert!(off.records.is_empty());
        assert!(off.profile.is_empty());

        set_override(Some(true));
        let ((), on) = with_sink(|| {
            let _s = span("phase");
            emit(Json::str("r"));
        });
        set_override(None);
        assert_eq!(on.records, vec![Json::str("r")]);
        assert_eq!(on.profile.phase("phase").map(|p| p.stats.count()), Some(1));
    }

    #[test]
    fn sink_nesting_saves_and_restores() {
        set_override(Some(true));
        let ((), outer) = with_sink(|| {
            emit(Json::str("outer-1"));
            let ((), inner) = with_sink(|| emit(Json::str("inner")));
            assert_eq!(inner.records, vec![Json::str("inner")]);
            emit(Json::str("outer-2"));
        });
        set_override(None);
        assert_eq!(
            outer.records,
            vec![Json::str("outer-1"), Json::str("outer-2")]
        );
    }

    #[test]
    fn emit_without_sink_is_a_noop() {
        set_override(Some(true));
        emit(Json::str("dropped"));
        let _s = span("orphan");
        drop(_s);
        set_override(None);
        // Nothing to assert beyond "did not panic": no sink, no effect.
    }

    #[test]
    fn trace_writer_writes_jsonl() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/obs-test")
            .join("writer");
        let mut w = TraceWriter::create_in(&root, "exp", "trace").expect("create");
        w.line(&Json::obj([("type", Json::str("provenance"))]));
        w.line(&Json::obj([("type", Json::str("replicate"))]));
        let path = w.finish().expect("finish");
        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v = parse(line).expect("each line parses");
            assert!(v.get("type").is_some());
        }
        std::fs::remove_dir_all(&root).ok();
    }
}
