//! Time-series capture and ASCII rendering for the "figure" benchmarks.
//!
//! Figures in EXPERIMENTS.md are (time, value) series per strategy. A
//! [`TimeSeries`] records points (optionally bucket-averaged to bound
//! memory), and [`render_multi`] prints several aligned series as a
//! compact ASCII chart plus the raw bucket means, so the benchmark
//! output is both human-readable and machine-recoverable.

use crate::clock::Tick;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A named sequence of `(tick, value)` samples with optional bucketing.
///
/// # Example
///
/// ```
/// use simkernel::{TimeSeries, Tick};
/// let mut s = TimeSeries::new("latency");
/// for t in 0..100u64 {
///     s.push(Tick(t), t as f64);
/// }
/// assert_eq!(s.len(), 100);
/// let b = s.bucketed(10);
/// assert_eq!(b.len(), 10);
/// assert!((b[0].1 - 4.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    name: String,
    points: Vec<(u64, f64)>,
}

impl TimeSeries {
    /// Creates an empty series called `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Series name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample.
    pub fn push(&mut self, t: Tick, value: f64) {
        self.points.push((t.value(), value));
    }

    /// Number of raw samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series has no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Raw samples as `(tick, value)` pairs.
    #[must_use]
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// Mean value over all samples (0 if empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.1).sum::<f64>() / self.points.len() as f64
    }

    /// Mean value over samples with tick in `[from, to)`.
    #[must_use]
    pub fn mean_in(&self, from: Tick, to: Tick) -> f64 {
        let mut sum = 0.0;
        let mut n = 0u64;
        for &(t, v) in &self.points {
            if t >= from.value() && t < to.value() {
                sum += v;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Down-samples into `buckets` equal-width time buckets, returning
    /// `(bucket_midpoint_tick, bucket_mean)` for each non-empty bucket.
    #[must_use]
    pub fn bucketed(&self, buckets: usize) -> Vec<(f64, f64)> {
        if self.points.is_empty() || buckets == 0 {
            return Vec::new();
        }
        let t_min = self.points.iter().map(|p| p.0).min().unwrap_or(0) as f64;
        let t_max = self.points.iter().map(|p| p.0).max().unwrap_or(0) as f64;
        let span = (t_max - t_min).max(1.0);
        let mut sums = vec![0.0; buckets];
        let mut counts = vec![0u64; buckets];
        for &(t, v) in &self.points {
            let mut idx = (((t as f64 - t_min) / span) * buckets as f64) as usize;
            if idx >= buckets {
                idx = buckets - 1;
            }
            sums[idx] += v;
            counts[idx] += 1;
        }
        (0..buckets)
            .filter(|&i| counts[i] > 0)
            .map(|i| {
                let mid = t_min + span * (i as f64 + 0.5) / buckets as f64;
                (mid, sums[i] / counts[i] as f64)
            })
            .collect()
    }
}

const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders one series as a unicode sparkline over `buckets` buckets.
#[must_use]
pub fn sparkline(series: &TimeSeries, buckets: usize) -> String {
    let b = series.bucketed(buckets);
    if b.is_empty() {
        return String::new();
    }
    let lo = b.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
    let hi = b.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    b.iter()
        .map(|&(_, v)| {
            let idx = (((v - lo) / span) * (GLYPHS.len() - 1) as f64).round() as usize;
            GLYPHS[idx.min(GLYPHS.len() - 1)]
        })
        .collect()
}

/// Renders several series on a shared scale: one sparkline row per
/// series plus the numeric bucket means, suitable for figure benches.
#[must_use]
pub fn render_multi(series: &[&TimeSeries], buckets: usize) -> String {
    let mut out = String::new();
    let all: Vec<Vec<(f64, f64)>> = series.iter().map(|s| s.bucketed(buckets)).collect();
    let lo = all
        .iter()
        .flatten()
        .map(|p| p.1)
        .fold(f64::INFINITY, f64::min);
    let hi = all
        .iter()
        .flatten()
        .map(|p| p.1)
        .fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    let name_w = series.iter().map(|s| s.name().len()).max().unwrap_or(4);
    for (s, b) in series.iter().zip(&all) {
        let spark: String = b
            .iter()
            .map(|&(_, v)| {
                let idx = (((v - lo) / span) * (GLYPHS.len() - 1) as f64).round() as usize;
                GLYPHS[idx.min(GLYPHS.len() - 1)]
            })
            .collect();
        let _ = writeln!(out, "{:name_w$} |{spark}|", s.name());
    }
    let _ = writeln!(out, "{:name_w$}  scale: [{lo:.3} .. {hi:.3}]", "");
    // Numeric dump (bucket means), one line per series.
    for (s, b) in series.iter().zip(&all) {
        let vals: Vec<String> = b.iter().map(|&(_, v)| format!("{v:.3}")).collect();
        let _ = writeln!(out, "{:name_w$} : {}", s.name(), vals.join(" "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(name: &str, n: u64) -> TimeSeries {
        let mut s = TimeSeries::new(name);
        for t in 0..n {
            s.push(Tick(t), t as f64);
        }
        s
    }

    #[test]
    fn push_and_len() {
        let s = ramp("r", 10);
        assert_eq!(s.len(), 10);
        assert!(!s.is_empty());
        assert_eq!(s.name(), "r");
        assert_eq!(s.points()[3], (3, 3.0));
    }

    #[test]
    fn mean_and_windowed_mean() {
        let s = ramp("r", 10);
        assert!((s.mean() - 4.5).abs() < 1e-12);
        assert!((s.mean_in(Tick(0), Tick(5)) - 2.0).abs() < 1e-12);
        assert_eq!(s.mean_in(Tick(100), Tick(200)), 0.0);
    }

    #[test]
    fn bucketing_preserves_trend() {
        let s = ramp("r", 100);
        let b = s.bucketed(5);
        assert_eq!(b.len(), 5);
        for w in b.windows(2) {
            assert!(w[1].1 > w[0].1, "bucket means should be increasing");
        }
    }

    #[test]
    fn bucketing_edge_cases() {
        let empty = TimeSeries::new("e");
        assert!(empty.bucketed(4).is_empty());
        assert!(ramp("r", 5).bucketed(0).is_empty());
        let mut single = TimeSeries::new("s");
        single.push(Tick(3), 9.0);
        let b = single.bucketed(4);
        assert_eq!(b.len(), 1);
        assert!((b[0].1 - 9.0).abs() < 1e-12);
    }

    #[test]
    fn sparkline_monotone_ramp() {
        let s = ramp("r", 64);
        let sp = sparkline(&s, 8);
        assert_eq!(sp.chars().count(), 8);
        assert_eq!(sp.chars().next(), Some('▁'));
        assert_eq!(sp.chars().last(), Some('█'));
    }

    #[test]
    fn render_multi_contains_names_and_scale() {
        let a = ramp("alpha", 50);
        let b = ramp("beta", 50);
        let out = render_multi(&[&a, &b], 10);
        assert!(out.contains("alpha"));
        assert!(out.contains("beta"));
        assert!(out.contains("scale:"));
    }

    #[test]
    fn sparkline_empty_is_empty() {
        let s = TimeSeries::new("e");
        assert!(sparkline(&s, 8).is_empty());
    }
}
