//! A deterministic discrete-event queue.
//!
//! Events are ordered by time; events scheduled for the same tick are
//! delivered in insertion (FIFO) order, which keeps simulations
//! deterministic regardless of heap internals. Used by the
//! packet-level `cpn` simulator and by the churn process in `cloudsim`.
//!
//! Like [`crate::sched::SimScheduler`], the queue carries a per-tick
//! same-tick delivery budget guarding the `pop_due` drain idiom
//! against a handler that re-schedules at `now` forever: past the
//! budget, debug builds panic and release builds shed the event (with
//! an `events_shed` observability record) and end the drain. Equality
//! is seq-counter-exclusive — two queues compare equal when they would
//! deliver the same `(tick, event)` sequence, whatever their absolute
//! FIFO counters — mirroring `DeliveryQueue`'s pool-exclusive
//! equality, so queue state can be parity-compared between runs.

use crate::clock::Tick;
use crate::obs;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Default per-tick same-tick delivery budget for
/// [`EventQueue::pop_due`] drains.
pub const DEFAULT_SAME_TICK_BUDGET: u64 = 1 << 20;

#[derive(Debug, Clone)]
struct Scheduled<E> {
    at: Tick,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first, and break
        // ties by sequence number for FIFO among simultaneous events.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A future-event list keyed by [`Tick`].
///
/// # Example
///
/// ```
/// use simkernel::{EventQueue, Tick};
///
/// let mut q = EventQueue::new();
/// q.schedule(Tick(5), "b");
/// q.schedule(Tick(2), "a");
/// q.schedule(Tick(5), "c");
/// assert_eq!(q.pop(), Some((Tick(2), "a")));
/// assert_eq!(q.pop(), Some((Tick(5), "b"))); // FIFO among ties
/// assert_eq!(q.pop(), Some((Tick(5), "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    budget: u64,
    drain_at: Tick,
    drained: u64,
    shed: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the default same-tick budget.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            budget: DEFAULT_SAME_TICK_BUDGET,
            drain_at: Tick::ZERO,
            drained: 0,
            shed: 0,
        }
    }

    /// Replaces the per-tick same-tick delivery budget (min 1).
    #[must_use]
    pub fn with_same_tick_budget(mut self, budget: u64) -> Self {
        self.budget = budget.max(1);
        self
    }

    /// Events shed by the same-tick budget (always 0 in debug builds,
    /// which panic instead).
    #[must_use]
    pub fn shed_count(&self) -> u64 {
        self.shed
    }

    /// Schedules `event` to fire at time `at`.
    pub fn schedule(&mut self, at: Tick, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Tick, E)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// Removes and returns the earliest event **only if** it is due at
    /// or before `now`. Used by time-stepped simulators that drain all
    /// events due in the current tick.
    ///
    /// Applies the same-tick budget: a drain loop that keeps producing
    /// events due at `now` (a handler re-scheduling at the current
    /// tick) panics in debug builds once the budget is exceeded; in
    /// release builds the event is shed, one `events_shed`
    /// observability record is emitted for the tick, and `None` is
    /// returned so the drain terminates.
    pub fn pop_due(&mut self, now: Tick) -> Option<(Tick, E)> {
        if self.heap.peek().is_none_or(|s| s.at > now) {
            return None;
        }
        if self.drain_at != now {
            self.drain_at = now;
            self.drained = 0;
        }
        self.drained += 1;
        if self.drained > self.budget {
            debug_assert!(
                false,
                "EventQueue: same-tick event budget ({}) exceeded at {now} — \
                 a handler is re-scheduling at `now` inside the drain loop",
                self.budget
            );
            self.heap.pop();
            self.shed += 1;
            obs::emit(obs::Json::obj([
                ("record", obs::Json::str("events_shed")),
                ("at", obs::Json::from(now.value())),
                ("budget", obs::Json::from(self.budget)),
                ("shed_total", obs::Json::from(self.shed)),
            ]));
            return None;
        }
        self.pop()
    }

    /// Time of the next event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<Tick> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// Seq-counter-exclusive equality: two queues are equal when they
/// would deliver the same `(tick, event)` sequence, regardless of the
/// absolute values of their internal FIFO counters or their budget
/// accounting (the same idiom as `DeliveryQueue`'s pool-exclusive
/// equality).
impl<E: PartialEq> PartialEq for EventQueue<E> {
    fn eq(&self, other: &Self) -> bool {
        if self.heap.len() != other.heap.len() {
            return false;
        }
        let order = |a: &&Scheduled<E>, b: &&Scheduled<E>| (a.at, a.seq).cmp(&(b.at, b.seq));
        let mut mine: Vec<&Scheduled<E>> = self.heap.iter().collect();
        let mut theirs: Vec<&Scheduled<E>> = other.heap.iter().collect();
        mine.sort_unstable_by(order);
        theirs.sort_unstable_by(order);
        mine.iter()
            .zip(&theirs)
            .all(|(a, b)| a.at == b.at && a.event == b.event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Tick(10), 1);
        q.schedule(Tick(1), 2);
        q.schedule(Tick(5), 3);
        assert_eq!(q.pop(), Some((Tick(1), 2)));
        assert_eq!(q.pop(), Some((Tick(5), 3)));
        assert_eq!(q.pop(), Some((Tick(10), 1)));
    }

    #[test]
    fn fifo_among_simultaneous() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Tick(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Tick(7), i)));
        }
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(Tick(3), "x");
        assert_eq!(q.pop_due(Tick(2)), None);
        assert_eq!(q.pop_due(Tick(3)), Some((Tick(3), "x")));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Tick(1), ());
        q.schedule(Tick(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Tick(1)));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn eq_ignores_absolute_seq_values() {
        let mut a = EventQueue::new();
        a.schedule(Tick(1), "consumed");
        assert!(a.pop().is_some()); // bumps a's seq counter past b's
        let mut b = EventQueue::new();
        for q in [&mut a, &mut b] {
            q.schedule(Tick(4), "x");
            q.schedule(Tick(4), "y");
        }
        assert_eq!(a, b);
        b.schedule(Tick(5), "z");
        assert_ne!(a, b);
        // Same multiset, different same-tick delivery order: unequal.
        let mut c = EventQueue::new();
        c.schedule(Tick(4), "y");
        c.schedule(Tick(4), "x");
        assert_ne!(a, c);
    }

    #[test]
    fn clone_preserves_delivery_order() {
        let mut a = EventQueue::new();
        for i in 0..40u32 {
            a.schedule(Tick(u64::from(i % 5)), i);
        }
        let mut b = a.clone();
        assert_eq!(a, b);
        while let Some(x) = a.pop() {
            assert_eq!(Some(x), b.pop());
        }
        assert!(b.is_empty());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "same-tick event budget")]
    fn same_tick_reschedule_panics_in_debug() {
        let mut q = EventQueue::new().with_same_tick_budget(8);
        q.schedule(Tick(1), ());
        while let Some((_, ())) = q.pop_due(Tick(1)) {
            q.schedule(Tick(1), ()); // pathological handler
        }
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn same_tick_reschedule_sheds_in_release() {
        let mut q = EventQueue::new().with_same_tick_budget(8);
        q.schedule(Tick(1), ());
        let mut delivered = 0u64;
        while let Some((_, ())) = q.pop_due(Tick(1)) {
            delivered += 1;
            q.schedule(Tick(1), ());
        }
        assert_eq!(delivered, 8);
        assert_eq!(q.shed_count(), 1);
        q.schedule(Tick(2), ());
        assert!(q.pop_due(Tick(2)).is_some()); // next tick is clean
    }

    #[test]
    fn budget_resets_each_tick() {
        let mut q = EventQueue::new().with_same_tick_budget(3);
        let mut popped = 0;
        for t in 1..=5u64 {
            for _ in 0..3 {
                q.schedule(Tick(t), ());
            }
            while q.pop_due(Tick(t)).is_some() {
                popped += 1;
            }
        }
        assert_eq!(popped, 15);
        assert_eq!(q.shed_count(), 0);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(Tick(2), "a");
        assert_eq!(q.pop(), Some((Tick(2), "a")));
        q.schedule(Tick(1), "b");
        q.schedule(Tick(1), "c");
        assert_eq!(q.pop(), Some((Tick(1), "b")));
        assert_eq!(q.pop(), Some((Tick(1), "c")));
    }
}
