//! A deterministic discrete-event queue.
//!
//! Events are ordered by time; events scheduled for the same tick are
//! delivered in insertion (FIFO) order, which keeps simulations
//! deterministic regardless of heap internals. Used by the
//! packet-level `cpn` simulator and by the churn process in `cloudsim`.

use crate::clock::Tick;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug)]
struct Scheduled<E> {
    at: Tick,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first, and break
        // ties by sequence number for FIFO among simultaneous events.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A future-event list keyed by [`Tick`].
///
/// # Example
///
/// ```
/// use simkernel::{EventQueue, Tick};
///
/// let mut q = EventQueue::new();
/// q.schedule(Tick(5), "b");
/// q.schedule(Tick(2), "a");
/// q.schedule(Tick(5), "c");
/// assert_eq!(q.pop(), Some((Tick(2), "a")));
/// assert_eq!(q.pop(), Some((Tick(5), "b"))); // FIFO among ties
/// assert_eq!(q.pop(), Some((Tick(5), "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at time `at`.
    pub fn schedule(&mut self, at: Tick, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Tick, E)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// Removes and returns the earliest event **only if** it is due at
    /// or before `now`. Used by time-stepped simulators that drain all
    /// events due in the current tick.
    pub fn pop_due(&mut self, now: Tick) -> Option<(Tick, E)> {
        if self.heap.peek().is_some_and(|s| s.at <= now) {
            self.pop()
        } else {
            None
        }
    }

    /// Time of the next event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<Tick> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Tick(10), 1);
        q.schedule(Tick(1), 2);
        q.schedule(Tick(5), 3);
        assert_eq!(q.pop(), Some((Tick(1), 2)));
        assert_eq!(q.pop(), Some((Tick(5), 3)));
        assert_eq!(q.pop(), Some((Tick(10), 1)));
    }

    #[test]
    fn fifo_among_simultaneous() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Tick(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Tick(7), i)));
        }
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(Tick(3), "x");
        assert_eq!(q.pop_due(Tick(2)), None);
        assert_eq!(q.pop_due(Tick(3)), Some((Tick(3), "x")));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Tick(1), ());
        q.schedule(Tick(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Tick(1)));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(Tick(2), "a");
        assert_eq!(q.pop(), Some((Tick(2), "a")));
        q.schedule(Tick(1), "b");
        q.schedule(Tick(1), "c");
        assert_eq!(q.pop(), Some((Tick(1), "b")));
        assert_eq!(q.pop(), Some((Tick(1), "c")));
    }
}
