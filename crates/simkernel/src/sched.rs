//! Deterministic discrete-event scheduler with sparse activation.
//!
//! [`SimScheduler`] promotes the calendar-queue machinery of
//! [`crate::events::EventQueue`] / [`crate::delivery::DeliveryQueue`]
//! into a *main-loop* primitive: instead of visiting every entity every
//! tick, a simulator registers **wakes** — `(tick, class, entity)`
//! triples — and each tick visits only the entities with a due wake.
//! An entity is woken when
//!
//! * a previously scheduled event falls due ([`SimScheduler::wake_at`]
//!   — fault onsets, churn transitions, timer expiries), or
//! * one of its inputs changed this tick
//!   ([`SimScheduler::wake_on_input`] — a request arrived, an object
//!   entered its field of view).
//!
//! ## Ordering contract
//!
//! Wakes are delivered in `(tick, class, FIFO seq)` order. The class
//! byte is a *priority class* (lower fires first within a tick) so a
//! simulator can pin, e.g., fault application before entity visits;
//! the FIFO sequence makes simultaneous same-class wakes fire in
//! scheduling order regardless of heap internals. Because the delivery
//! order is a pure function of the schedule calls — never of worker
//! count or timing — sparse runs preserve the workspace's
//! seq-vs-parallel bit-identity contract.
//!
//! ## Same-tick budget
//!
//! A handler that re-schedules a wake at `now` from inside the drain
//! loop would otherwise spin forever. Each scheduler carries a
//! per-tick same-tick delivery budget
//! ([`DEFAULT_SAME_TICK_BUDGET`], overridable via
//! [`SimScheduler::with_same_tick_budget`]); exceeding it panics in
//! debug builds and, in release builds, sheds the wake, emits a
//! `sched_shed` record through [`crate::obs`], and terminates the
//! drain (the shed is visible in [`SimScheduler::shed_count`]).
//!
//! ## Parity comparison
//!
//! Like `DeliveryQueue`'s pool-exclusive equality, `SimScheduler`'s
//! [`PartialEq`] compares *delivery order* — the `(tick, class, key)`
//! sequence the heap would drain — while ignoring the absolute values
//! of the internal FIFO counter, so two schedulers that went through
//! different scheduling histories but will behave identically compare
//! equal.
//!
//! # Example
//!
//! ```
//! use simkernel::sched::SimScheduler;
//! use simkernel::Tick;
//!
//! let mut s: SimScheduler<&str> = SimScheduler::new();
//! s.wake_at(Tick(5), 1, "camera-3");
//! s.wake_at(Tick(5), 0, "fault");
//! s.wake_at(Tick(2), 1, "node-7");
//! assert_eq!(s.next_wake(), Some(Tick(2)));
//! assert_eq!(s.pop_due(Tick(2)), Some((Tick(2), 1, "node-7")));
//! assert_eq!(s.pop_due(Tick(2)), None); // nothing else due yet
//! // At t5 the class-0 fault wake outranks the class-1 visit.
//! assert_eq!(s.pop_due(Tick(5)), Some((Tick(5), 0, "fault")));
//! assert_eq!(s.pop_due(Tick(5)), Some((Tick(5), 1, "camera-3")));
//! ```

use crate::clock::Tick;
use crate::obs;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Default per-tick same-tick delivery budget. Generous — real worlds
/// deliver a handful of wakes per entity per tick — while still
/// bounding a same-tick re-schedule loop to one tick's worth of work.
pub const DEFAULT_SAME_TICK_BUDGET: u64 = 1 << 20;

#[derive(Debug, Clone)]
struct Wake<K> {
    at: Tick,
    class: u8,
    seq: u64,
    key: K,
}

impl<K> PartialEq for Wake<K> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.class == other.class && self.seq == other.seq
    }
}
impl<K> Eq for Wake<K> {}

impl<K> Ord for Wake<K> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first, then
        // priority class, then FIFO among simultaneous same-class
        // wakes.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.class.cmp(&self.class))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<K> PartialOrd for Wake<K> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic sparse-activation wake queue (see module docs).
#[derive(Debug, Clone)]
pub struct SimScheduler<K> {
    heap: BinaryHeap<Wake<K>>,
    next_seq: u64,
    now: Tick,
    fired_at: Tick,
    fired: u64,
    budget: u64,
    shed: u64,
}

impl<K> SimScheduler<K> {
    /// Creates an empty scheduler at time zero with the default
    /// same-tick budget.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Tick::ZERO,
            fired_at: Tick::ZERO,
            fired: 0,
            budget: DEFAULT_SAME_TICK_BUDGET,
            shed: 0,
        }
    }

    /// Replaces the per-tick same-tick delivery budget (min 1).
    #[must_use]
    pub fn with_same_tick_budget(mut self, budget: u64) -> Self {
        self.budget = budget.max(1);
        self
    }

    /// Current scheduler time (the largest tick passed to
    /// [`SimScheduler::pop_due`] or [`SimScheduler::advance`]).
    #[must_use]
    pub fn now(&self) -> Tick {
        self.now
    }

    /// Advances scheduler time without draining (monotone; calling
    /// with a past tick is a no-op).
    pub fn advance(&mut self, to: Tick) {
        if to > self.now {
            self.now = to;
        }
    }

    /// Schedules a wake for entity `key` at `at` in priority class
    /// `class` (lower classes fire first within a tick). A time in the
    /// past is clamped to `now`.
    pub fn wake_at(&mut self, at: Tick, class: u8, key: K) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Wake {
            at,
            class,
            seq,
            key,
        });
    }

    /// Schedules a wake for entity `key` at the current tick — the
    /// "dirty input" activation: something this entity consumes
    /// changed and it must be visited before the tick ends.
    pub fn wake_on_input(&mut self, class: u8, key: K) {
        self.wake_at(self.now, class, key);
    }

    /// Time of the earliest pending wake, if any.
    #[must_use]
    pub fn next_wake(&self) -> Option<Tick> {
        self.heap.peek().map(|w| w.at)
    }

    /// Time and priority class of the earliest pending wake, if any.
    /// Lets a drain loop stop at a class boundary — e.g. deliver all
    /// due fault-class wakes before the tick's dispatch phase, then
    /// come back for the entity-class wakes.
    #[must_use]
    pub fn peek(&self) -> Option<(Tick, u8)> {
        self.heap.peek().map(|w| (w.at, w.class))
    }

    /// Delivers the next wake due at or before `now`, advancing
    /// scheduler time to `now`. Returns `None` when nothing (more) is
    /// due this tick — the caller's drain loop terminates on it.
    ///
    /// Applies the same-tick budget: past it, debug builds panic
    /// (`debug_assert!`) and release builds shed the wake, emit one
    /// `sched_shed` observability record for the tick, and return
    /// `None`.
    pub fn pop_due(&mut self, now: Tick) -> Option<(Tick, u8, K)> {
        self.advance(now);
        if self.heap.peek().is_none_or(|w| w.at > now) {
            return None;
        }
        let w = self.heap.pop()?;
        if self.fired_at != now {
            self.fired_at = now;
            self.fired = 0;
        }
        self.fired += 1;
        if self.fired > self.budget {
            debug_assert!(
                false,
                "SimScheduler: same-tick wake budget ({}) exceeded at {now} — \
                 a handler is re-scheduling at `now` inside the drain loop",
                self.budget
            );
            self.shed += 1;
            obs::emit(obs::Json::obj([
                ("record", obs::Json::str("sched_shed")),
                ("at", obs::Json::from(now.value())),
                ("budget", obs::Json::from(self.budget)),
                ("shed_total", obs::Json::from(self.shed)),
            ]));
            return None;
        }
        Some((w.at, w.class, w.key))
    }

    /// Wakes shed by the same-tick budget (always 0 in debug builds,
    /// which panic instead).
    #[must_use]
    pub fn shed_count(&self) -> u64 {
        self.shed
    }

    /// Number of pending wakes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no wakes are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending wakes.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<K> Default for SimScheduler<K> {
    fn default() -> Self {
        Self::new()
    }
}

/// Seq-counter-exclusive equality: two schedulers are equal when they
/// are at the same time and would deliver the same `(tick, class,
/// key)` sequence, regardless of absolute FIFO counter values (the
/// same idiom as `DeliveryQueue`'s pool-exclusive equality).
impl<K: PartialEq> PartialEq for SimScheduler<K> {
    fn eq(&self, other: &Self) -> bool {
        if self.now != other.now || self.heap.len() != other.heap.len() {
            return false;
        }
        let order =
            |a: &&Wake<K>, b: &&Wake<K>| (a.at, a.class, a.seq).cmp(&(b.at, b.class, b.seq));
        let mut mine: Vec<&Wake<K>> = self.heap.iter().collect();
        let mut theirs: Vec<&Wake<K>> = other.heap.iter().collect();
        mine.sort_unstable_by(order);
        theirs.sort_unstable_by(order);
        mine.iter()
            .zip(&theirs)
            .all(|(a, b)| a.at == b.at && a.class == b.class && a.key == b.key)
    }
}

/// How a substrate's main loop visits its entities.
///
/// Every DES-ported simulator keeps its legacy dense loop selectable
/// so the sparse path can be equivalence-tested against it: the two
/// modes must produce **bit-identical** simulation metrics (they share
/// every RNG draw site), differing only in wall-clock and visit
/// counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DriveMode {
    /// Visit every entity every tick (the legacy time-stepped loop).
    Dense,
    /// Visit only entities with a due wake — a pending scheduled event
    /// or a dirty input ([`SimScheduler::wake_on_input`]).
    #[default]
    Sparse,
}

/// Activation accounting a DES substrate reports next to its metrics.
///
/// These are *performance* counters, deliberately kept out of the
/// simulation `MetricSet`: dense and sparse runs of the same scenario
/// produce identical metrics but very different visit counts, and the
/// dense-vs-sparse parity tests compare metrics only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ActivationStats {
    /// Entity visits actually performed (dense: one per entity per
    /// tick; sparse: one per delivered entity wake).
    pub visits: u64,
    /// Wakes delivered by the scheduler (0 in dense mode except fault
    /// wakes, which both modes schedule).
    pub wakes: u64,
    /// Logical entity-ticks in the scenario (`entities × steps`) — the
    /// denominator for wall-clock-per-entity-tick, identical across
    /// modes.
    pub entity_ticks: u64,
    /// Wakes shed by the same-tick budget (release builds only).
    pub shed: u64,
}

/// O(1)-per-mark wake de-duplication for dirty-input activation.
///
/// Several inputs of one entity often change in the same tick (two
/// objects enter one camera's neighbourhood); scheduling one wake per
/// change would multiply the drain work. `WakeDedup` remembers the
/// last tick each entity was marked for, so the caller schedules a
/// wake only on the first mark per `(entity, tick)`.
///
/// # Example
///
/// ```
/// use simkernel::sched::WakeDedup;
/// use simkernel::Tick;
///
/// let mut d = WakeDedup::new(4);
/// assert!(d.mark(2, Tick(7)));  // first mark this tick: schedule
/// assert!(!d.mark(2, Tick(7))); // already marked: skip
/// assert!(d.mark(2, Tick(8)));  // new tick: schedule again
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WakeDedup {
    // Last marked tick per entity; u64::MAX = never marked (a wake at
    // Tick(u64::MAX) itself is not meaningful — horizons are finite).
    stamp: Vec<u64>,
}

impl WakeDedup {
    /// A dedup table over `entities` entity ids, all unmarked.
    #[must_use]
    pub fn new(entities: usize) -> Self {
        Self {
            stamp: vec![u64::MAX; entities],
        }
    }

    /// Marks entity `id` for tick `at`; returns `true` when this is
    /// the first mark for that `(entity, tick)` — i.e. the caller
    /// should schedule the wake.
    pub fn mark(&mut self, id: usize, at: Tick) -> bool {
        debug_assert!(at.value() != u64::MAX, "Tick(u64::MAX) is reserved");
        match self.stamp.get_mut(id) {
            Some(s) if *s != at.value() => {
                *s = at.value();
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_tick_class_seq_order() {
        let mut s = SimScheduler::new();
        s.wake_at(Tick(3), 1, "b");
        s.wake_at(Tick(3), 0, "a");
        s.wake_at(Tick(1), 2, "c");
        s.wake_at(Tick(3), 1, "d");
        assert_eq!(s.pop_due(Tick(3)), Some((Tick(1), 2, "c")));
        assert_eq!(s.pop_due(Tick(3)), Some((Tick(3), 0, "a")));
        assert_eq!(s.pop_due(Tick(3)), Some((Tick(3), 1, "b")));
        assert_eq!(s.pop_due(Tick(3)), Some((Tick(3), 1, "d")));
        assert_eq!(s.pop_due(Tick(3)), None);
    }

    #[test]
    fn pop_due_respects_now_and_next_wake() {
        let mut s = SimScheduler::new();
        s.wake_at(Tick(10), 0, 42usize);
        assert_eq!(s.next_wake(), Some(Tick(10)));
        assert_eq!(s.pop_due(Tick(9)), None);
        assert_eq!(s.pop_due(Tick(10)), Some((Tick(10), 0, 42)));
        assert!(s.is_empty());
        assert_eq!(s.next_wake(), None);
    }

    #[test]
    fn wake_on_input_fires_this_tick_and_past_wakes_clamp() {
        let mut s = SimScheduler::new();
        s.advance(Tick(5));
        s.wake_on_input(1, "dirty");
        s.wake_at(Tick(2), 0, "late"); // in the past: clamps to now
        assert_eq!(s.pop_due(Tick(5)), Some((Tick(5), 0, "late")));
        assert_eq!(s.pop_due(Tick(5)), Some((Tick(5), 1, "dirty")));
    }

    #[test]
    fn eq_ignores_absolute_seq_values() {
        let mut a = SimScheduler::new();
        a.wake_at(Tick(1), 0, "x"); // consumed: bumps a's counter
        assert!(a.pop_due(Tick(1)).is_some());
        a.advance(Tick::ZERO); // no-op; time stays at 1
        let mut b = SimScheduler::new();
        b.advance(Tick(1));
        a.wake_at(Tick(4), 1, "y");
        b.wake_at(Tick(4), 1, "y");
        a.wake_at(Tick(4), 1, "z");
        b.wake_at(Tick(4), 1, "z");
        assert_eq!(a, b); // different seq counters, same delivery order
        b.wake_at(Tick(5), 0, "w");
        assert_ne!(a, b);
    }

    #[test]
    fn eq_detects_different_same_tick_order() {
        let mut a = SimScheduler::new();
        a.wake_at(Tick(2), 0, "first");
        a.wake_at(Tick(2), 0, "second");
        let mut b = SimScheduler::new();
        b.wake_at(Tick(2), 0, "second");
        b.wake_at(Tick(2), 0, "first");
        assert_ne!(a, b);
    }

    #[test]
    fn clone_preserves_delivery_order() {
        let mut a = SimScheduler::new();
        for i in 0..50u32 {
            a.wake_at(Tick(u64::from(i % 7)), (i % 3) as u8, i);
        }
        let mut b = a.clone();
        assert_eq!(a, b);
        loop {
            let x = a.pop_due(Tick(100));
            assert_eq!(x, b.pop_due(Tick(100)));
            if x.is_none() {
                break;
            }
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "same-tick wake budget")]
    fn same_tick_reschedule_panics_in_debug() {
        let mut s = SimScheduler::new().with_same_tick_budget(16);
        s.wake_at(Tick(1), 0, 0usize);
        // A pathological handler: every delivery re-schedules at now.
        while let Some((_, _, k)) = s.pop_due(Tick(1)) {
            s.wake_on_input(0, k);
        }
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn same_tick_reschedule_sheds_in_release() {
        let mut s = SimScheduler::new().with_same_tick_budget(16);
        s.wake_at(Tick(1), 0, 0usize);
        let mut delivered = 0u64;
        while let Some((_, _, k)) = s.pop_due(Tick(1)) {
            delivered += 1;
            s.wake_on_input(0, k);
        }
        assert_eq!(delivered, 16);
        assert_eq!(s.shed_count(), 1);
        // The next tick proceeds normally.
        assert!(s.pop_due(Tick(2)).is_some());
    }

    #[test]
    fn budget_resets_each_tick() {
        let mut s = SimScheduler::new().with_same_tick_budget(4);
        for t in 1..=10u64 {
            for i in 0..4usize {
                s.wake_at(Tick(t), 0, i);
            }
        }
        let mut n = 0;
        for t in 1..=10u64 {
            while s.pop_due(Tick(t)).is_some() {
                n += 1;
            }
        }
        assert_eq!(n, 40);
        assert_eq!(s.shed_count(), 0);
    }

    #[test]
    fn dedup_marks_once_per_tick() {
        let mut d = WakeDedup::new(3);
        assert!(d.mark(0, Tick(1)));
        assert!(!d.mark(0, Tick(1)));
        assert!(d.mark(1, Tick(1)));
        assert!(d.mark(0, Tick(2)));
        assert!(!d.mark(9, Tick(2))); // out of range: never schedules
    }
}
