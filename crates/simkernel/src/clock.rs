//! Simulation time: the [`Tick`] unit and the time-stepped [`Clock`].
//!
//! All simulators in the workspace advance in discrete ticks. What a
//! tick *means* is domain-specific (a scheduling quantum in
//! `multicore`, a frame in `camnet`, a dispatch round in `cloudsim`),
//! but the newtype keeps tick arithmetic from being confused with other
//! integers (counts, ids, ...) at compile time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::{Duration, Instant};

/// A point (or span) in discrete simulation time.
///
/// `Tick` is ordered, hashable and cheaply copyable. Subtraction
/// saturates at zero so durations never underflow.
///
/// # Example
///
/// ```
/// use simkernel::Tick;
/// let t = Tick(10) + Tick(5);
/// assert_eq!(t, Tick(15));
/// assert_eq!(Tick(3) - Tick(8), Tick(0)); // saturating
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Tick(pub u64);

impl Tick {
    /// Time zero.
    pub const ZERO: Tick = Tick(0);

    /// Returns the underlying integer value.
    #[must_use]
    pub fn value(self) -> u64 {
        self.0
    }

    /// Returns this time as `f64`, for use in continuous-valued models.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Saturating decrement by `n`.
    #[must_use]
    pub fn saturating_sub(self, n: u64) -> Tick {
        Tick(self.0.saturating_sub(n))
    }
}

impl Add for Tick {
    type Output = Tick;
    fn add(self, rhs: Tick) -> Tick {
        Tick(self.0 + rhs.0)
    }
}

impl AddAssign for Tick {
    fn add_assign(&mut self, rhs: Tick) {
        self.0 += rhs.0;
    }
}

impl Sub for Tick {
    type Output = Tick;
    fn sub(self, rhs: Tick) -> Tick {
        Tick(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for Tick {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<u64> for Tick {
    fn from(v: u64) -> Self {
        Tick(v)
    }
}

/// A time-stepped simulation clock.
///
/// The clock owns "now" and hands out monotonically increasing ticks.
/// Simulators call [`Clock::advance`] once per step; components read
/// [`Clock::now`].
///
/// # Example
///
/// ```
/// use simkernel::{Clock, Tick};
/// let mut clock = Clock::new();
/// assert_eq!(clock.now(), Tick::ZERO);
/// clock.advance();
/// assert_eq!(clock.now(), Tick(1));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Clock {
    now: Tick,
}

impl Clock {
    /// Creates a clock at time zero.
    #[must_use]
    pub fn new() -> Self {
        Self { now: Tick::ZERO }
    }

    /// Creates a clock at an arbitrary start time.
    #[must_use]
    pub fn starting_at(t: Tick) -> Self {
        Self { now: t }
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> Tick {
        self.now
    }

    /// Advances by one tick and returns the new time.
    pub fn advance(&mut self) -> Tick {
        self.now += Tick(1);
        self.now
    }

    /// Advances by `n` ticks and returns the new time.
    pub fn advance_by(&mut self, n: u64) -> Tick {
        self.now += Tick(n);
        self.now
    }
}

/// Where "now" comes from: simulated ticks or real elapsed time.
///
/// Control loops written against `ClockSource` run unchanged in both
/// worlds. Under the simulated [`Clock`], `wait_until` jumps time
/// forward instantly and runs stay bit-identical to the hand-advanced
/// loops they replaced; under [`WallClock`], each tick is a fixed
/// wall-time quantum and `wait_until` sleeps the calling thread until
/// that quantum has really elapsed.
///
/// # Example
///
/// ```
/// use simkernel::clock::{Clock, ClockSource, Tick};
/// fn drive<K: ClockSource>(clock: &mut K, steps: u64) -> Tick {
///     let end = clock.now() + Tick(steps);
///     while clock.now() < end {
///         let now = clock.now();
///         // ... sense / decide / act at `now` ...
///         clock.wait_until(now + Tick(1));
///     }
///     clock.now()
/// }
/// let mut sim = Clock::new();
/// assert_eq!(drive(&mut sim, 5), Tick(5));
/// ```
pub trait ClockSource {
    /// Current time in ticks.
    fn now(&self) -> Tick;

    /// Blocks (wall clock) or jumps (sim clock) until `now() >= t`.
    ///
    /// Calling with a time in the past is a no-op.
    fn wait_until(&mut self, t: Tick);

    /// True when ticks correspond to real elapsed time.
    ///
    /// Lets shared code pick side-effect policy (e.g. whether a
    /// "stalled controller" deadline is a latency guarantee or just a
    /// step count) without knowing the concrete clock type.
    fn is_wall(&self) -> bool {
        false
    }
}

impl ClockSource for Clock {
    fn now(&self) -> Tick {
        Clock::now(self)
    }

    fn wait_until(&mut self, t: Tick) {
        if t > self.now {
            self.now = t;
        }
    }
}

/// A wall-clock [`ClockSource`]: real elapsed time quantised to ticks.
///
/// Tick `n` begins `n * quantum` after the epoch (the instant the
/// clock was created). `now()` is the number of whole quanta elapsed;
/// `wait_until(t)` sleeps the calling thread until tick `t` starts.
/// Ticks are monotone because [`Instant`] is monotone.
///
/// # Example
///
/// ```
/// use simkernel::clock::{ClockSource, Tick, WallClock};
/// use std::time::Duration;
/// let mut wc = WallClock::new(Duration::from_millis(1));
/// wc.wait_until(Tick(3));
/// assert!(wc.now() >= Tick(3));
/// assert!(wc.is_wall());
/// ```
#[derive(Debug, Clone)]
pub struct WallClock {
    epoch: Instant,
    quantum: Duration,
}

impl WallClock {
    /// Creates a wall clock whose tick length is `quantum`.
    ///
    /// A zero quantum is clamped to 1µs so `now()` stays finite.
    #[must_use]
    pub fn new(quantum: Duration) -> Self {
        let quantum = if quantum.is_zero() {
            Duration::from_micros(1)
        } else {
            quantum
        };
        Self {
            epoch: Instant::now(),
            quantum,
        }
    }

    /// The tick length this clock was created with.
    #[must_use]
    pub fn quantum(&self) -> Duration {
        self.quantum
    }

    /// Real time elapsed since the clock's epoch.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.epoch.elapsed()
    }
}

impl ClockSource for WallClock {
    fn now(&self) -> Tick {
        let q = self.quantum.as_nanos().max(1);
        Tick((self.epoch.elapsed().as_nanos() / q) as u64)
    }

    fn wait_until(&mut self, t: Tick) {
        let deadline_ns = (t.0 as u128).saturating_mul(self.quantum.as_nanos());
        loop {
            let elapsed = self.epoch.elapsed().as_nanos();
            if elapsed >= deadline_ns {
                return;
            }
            let remain = deadline_ns - elapsed;
            let remain = Duration::new(
                (remain / 1_000_000_000) as u64,
                (remain % 1_000_000_000) as u32,
            );
            std::thread::sleep(remain);
        }
    }

    fn is_wall(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_arithmetic() {
        assert_eq!(Tick(2) + Tick(3), Tick(5));
        assert_eq!(Tick(5) - Tick(3), Tick(2));
        assert_eq!(Tick(3) - Tick(5), Tick(0));
        let mut t = Tick(1);
        t += Tick(4);
        assert_eq!(t, Tick(5));
    }

    #[test]
    fn tick_display_and_conversion() {
        assert_eq!(Tick(7).to_string(), "t7");
        assert_eq!(Tick::from(9u64).value(), 9);
        assert!((Tick(2).as_f64() - 2.0).abs() < f64::EPSILON);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c = Clock::new();
        let mut prev = c.now();
        for _ in 0..10 {
            let t = c.advance();
            assert!(t > prev);
            prev = t;
        }
        assert_eq!(c.now(), Tick(10));
    }

    #[test]
    fn clock_advance_by_bulk() {
        let mut c = Clock::starting_at(Tick(5));
        assert_eq!(c.advance_by(10), Tick(15));
    }

    #[test]
    fn tick_ordering() {
        assert!(Tick(1) < Tick(2));
        assert_eq!(Tick(3).saturating_sub(5), Tick(0));
    }

    /// The generic drive loop over `Clock` matches a hand-advanced loop
    /// step for step (the seq-vs-par parity suites exercise the real
    /// simulators through this same path via `run_city_with_clock`).
    #[test]
    fn sim_clock_source_matches_manual_advance() {
        let mut via_trait = Vec::new();
        let mut clock = Clock::new();
        while ClockSource::now(&clock) < Tick(8) {
            let now = ClockSource::now(&clock);
            via_trait.push(now);
            clock.wait_until(now + Tick(1));
        }

        let mut manual = Vec::new();
        let mut c = Clock::new();
        for _ in 0..8 {
            manual.push(c.now());
            c.advance();
        }
        assert_eq!(via_trait, manual);
    }

    #[test]
    fn sim_clock_wait_until_past_is_noop() {
        let mut c = Clock::starting_at(Tick(10));
        c.wait_until(Tick(3));
        assert_eq!(c.now(), Tick(10));
        assert!(!ClockSource::is_wall(&c));
    }

    #[test]
    fn wall_clock_advances_and_waits() {
        let mut wc = WallClock::new(Duration::from_micros(200));
        let t0 = ClockSource::now(&wc);
        wc.wait_until(t0 + Tick(4));
        assert!(ClockSource::now(&wc) >= t0 + Tick(4));
        assert!(wc.is_wall());
        assert!(wc.elapsed() >= Duration::from_micros(800 - 200));
    }

    #[test]
    fn wall_clock_zero_quantum_clamped() {
        let wc = WallClock::new(Duration::ZERO);
        assert_eq!(wc.quantum(), Duration::from_micros(1));
    }
}
