//! Simulation time: the [`Tick`] unit and the time-stepped [`Clock`].
//!
//! All simulators in the workspace advance in discrete ticks. What a
//! tick *means* is domain-specific (a scheduling quantum in
//! `multicore`, a frame in `camnet`, a dispatch round in `cloudsim`),
//! but the newtype keeps tick arithmetic from being confused with other
//! integers (counts, ids, ...) at compile time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point (or span) in discrete simulation time.
///
/// `Tick` is ordered, hashable and cheaply copyable. Subtraction
/// saturates at zero so durations never underflow.
///
/// # Example
///
/// ```
/// use simkernel::Tick;
/// let t = Tick(10) + Tick(5);
/// assert_eq!(t, Tick(15));
/// assert_eq!(Tick(3) - Tick(8), Tick(0)); // saturating
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Tick(pub u64);

impl Tick {
    /// Time zero.
    pub const ZERO: Tick = Tick(0);

    /// Returns the underlying integer value.
    #[must_use]
    pub fn value(self) -> u64 {
        self.0
    }

    /// Returns this time as `f64`, for use in continuous-valued models.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Saturating decrement by `n`.
    #[must_use]
    pub fn saturating_sub(self, n: u64) -> Tick {
        Tick(self.0.saturating_sub(n))
    }
}

impl Add for Tick {
    type Output = Tick;
    fn add(self, rhs: Tick) -> Tick {
        Tick(self.0 + rhs.0)
    }
}

impl AddAssign for Tick {
    fn add_assign(&mut self, rhs: Tick) {
        self.0 += rhs.0;
    }
}

impl Sub for Tick {
    type Output = Tick;
    fn sub(self, rhs: Tick) -> Tick {
        Tick(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for Tick {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<u64> for Tick {
    fn from(v: u64) -> Self {
        Tick(v)
    }
}

/// A time-stepped simulation clock.
///
/// The clock owns "now" and hands out monotonically increasing ticks.
/// Simulators call [`Clock::advance`] once per step; components read
/// [`Clock::now`].
///
/// # Example
///
/// ```
/// use simkernel::{Clock, Tick};
/// let mut clock = Clock::new();
/// assert_eq!(clock.now(), Tick::ZERO);
/// clock.advance();
/// assert_eq!(clock.now(), Tick(1));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Clock {
    now: Tick,
}

impl Clock {
    /// Creates a clock at time zero.
    #[must_use]
    pub fn new() -> Self {
        Self { now: Tick::ZERO }
    }

    /// Creates a clock at an arbitrary start time.
    #[must_use]
    pub fn starting_at(t: Tick) -> Self {
        Self { now: t }
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> Tick {
        self.now
    }

    /// Advances by one tick and returns the new time.
    pub fn advance(&mut self) -> Tick {
        self.now += Tick(1);
        self.now
    }

    /// Advances by `n` ticks and returns the new time.
    pub fn advance_by(&mut self, n: u64) -> Tick {
        self.now += Tick(n);
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_arithmetic() {
        assert_eq!(Tick(2) + Tick(3), Tick(5));
        assert_eq!(Tick(5) - Tick(3), Tick(2));
        assert_eq!(Tick(3) - Tick(5), Tick(0));
        let mut t = Tick(1);
        t += Tick(4);
        assert_eq!(t, Tick(5));
    }

    #[test]
    fn tick_display_and_conversion() {
        assert_eq!(Tick(7).to_string(), "t7");
        assert_eq!(Tick::from(9u64).value(), 9);
        assert!((Tick(2).as_f64() - 2.0).abs() < f64::EPSILON);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c = Clock::new();
        let mut prev = c.now();
        for _ in 0..10 {
            let t = c.advance();
            assert!(t > prev);
            prev = t;
        }
        assert_eq!(c.now(), Tick(10));
    }

    #[test]
    fn clock_advance_by_bulk() {
        let mut c = Clock::starting_at(Tick(5));
        assert_eq!(c.advance_by(10), Tick(15));
    }

    #[test]
    fn tick_ordering() {
        assert!(Tick(1) < Tick(2));
        assert_eq!(Tick(3).saturating_sub(5), Tick(0));
    }
}
