//! Hierarchical, label-addressed random number generation.
//!
//! Experiments in this workspace involve many independent stochastic
//! components (workload generators, node failure processes, learner
//! exploration, ...). Seeding them all from one `u64` while keeping them
//! *statistically independent* and *stable under refactoring* requires a
//! seed tree: each component asks for a stream by `label`, and the label
//! (not call order) determines the stream. Adding a new component
//! therefore never perturbs the random streams of existing ones.
//!
//! The generator is ChaCha8: portable, seekable, and specified — unlike
//! `rand::rngs::StdRng`, whose algorithm is documented to be unstable
//! across `rand` versions.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The RNG type used across the workspace.
pub type Rng = ChaCha8Rng;

/// SplitMix64 finalizer: mixes a 64-bit value into an avalanche hash.
///
/// Used to combine the root seed with label hashes. Public because
/// substrate crates occasionally need a cheap deterministic hash for
/// e.g. jittering per-entity parameters.
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a hash of a byte string; stable across platforms and versions.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// A node in the deterministic seed tree.
///
/// A `SeedTree` is cheap to copy and clone; it is just a 64-bit state.
/// Children are derived by label ([`SeedTree::child`]) or by index
/// ([`SeedTree::child_idx`]), and RNG streams are leaves
/// ([`SeedTree::rng`]).
///
/// # Example
///
/// ```
/// use simkernel::rng::SeedTree;
/// use rand::Rng;
///
/// let root = SeedTree::new(7);
/// let a = root.child("workload").rng("arrivals");
/// let b = root.child("failures").rng("arrivals");
/// // Same label under different parents gives independent streams:
/// let (mut a, mut b) = (a, b);
/// assert_ne!(a.gen::<u64>(), b.gen::<u64>());
/// // And derivation is reproducible:
/// let mut a2 = SeedTree::new(7).child("workload").rng("arrivals");
/// assert_eq!(a2.gen::<u64>(), SeedTree::new(7).child("workload").rng("arrivals").gen::<u64>());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedTree {
    state: u64,
}

impl SeedTree {
    /// Creates a seed tree rooted at `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            state: splitmix64(seed),
        }
    }

    /// Derives a child node addressed by a string label.
    #[must_use]
    pub fn child(&self, label: &str) -> Self {
        Self {
            state: splitmix64(self.state ^ fnv1a(label.as_bytes())),
        }
    }

    /// Derives a child node addressed by an integer index (e.g. the id
    /// of a replicated entity such as a camera or a cloud node).
    #[must_use]
    pub fn child_idx(&self, index: u64) -> Self {
        Self {
            state: splitmix64(self.state ^ splitmix64(index ^ 0xA5A5_A5A5_5A5A_5A5A)),
        }
    }

    /// Produces the RNG stream for leaf `label` under this node.
    #[must_use]
    pub fn rng(&self, label: &str) -> Rng {
        let leaf = self.child(label);
        let mut key = [0u8; 32];
        let mut s = leaf.state;
        for chunk in key.chunks_mut(8) {
            s = splitmix64(s);
            chunk.copy_from_slice(&s.to_le_bytes());
        }
        ChaCha8Rng::from_seed(key)
    }

    /// Returns the raw 64-bit state (useful as a derived scalar seed).
    #[must_use]
    pub fn raw(&self) -> u64 {
        self.state
    }
}

impl Default for SeedTree {
    fn default() -> Self {
        Self::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng as _;

    #[test]
    fn splitmix_avalanche_differs_on_single_bit() {
        assert_ne!(splitmix64(1), splitmix64(2));
        assert_ne!(splitmix64(0), splitmix64(1 << 63));
    }

    #[test]
    fn fnv1a_known_vectors() {
        // Reference values for FNV-1a 64-bit.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn same_path_same_stream() {
        let mut a = SeedTree::new(1).child("x").rng("y");
        let mut b = SeedTree::new(1).child("x").rng("y");
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_labels_different_streams() {
        let mut a = SeedTree::new(1).rng("a");
        let mut b = SeedTree::new(1).rng("b");
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn different_roots_different_streams() {
        let mut a = SeedTree::new(1).rng("a");
        let mut b = SeedTree::new(2).rng("a");
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn child_idx_distinguishes_entities() {
        let root = SeedTree::new(9);
        let mut seen = std::collections::HashSet::new();
        for i in 0..100 {
            assert!(seen.insert(root.child_idx(i).raw()));
        }
    }

    #[test]
    fn label_order_independence() {
        // Deriving "b" is unaffected by whether "a" was derived first.
        let root = SeedTree::new(3);
        let b1 = root.child("b");
        let _a = root.child("a");
        let b2 = root.child("b");
        assert_eq!(b1, b2);
    }
}
