//! Determinism parity for the parallel replication engine.
//!
//! The contract: `run_par`, `run_par_threads`, and `run_matrix` are
//! **bit-identical** to sequential `run` — same means, same CI
//! half-widths, down to the last mantissa bit — at every thread
//! count. Randomness flows from replicate index, never execution
//! order, and aggregates absorb results in replicate order.

use proptest::prelude::*;
use rand::Rng as _;
use simkernel::{Aggregate, MetricSet, Replications, SeedTree};

/// A deliberately messy scenario: variable-length random walk, a
/// metric count that depends on the draw, and one run-time-built key.
fn noisy_scenario(seeds: SeedTree) -> MetricSet {
    let mut rng = seeds.rng("noise");
    let n: usize = rng.gen_range(1..64);
    let mut acc = 0.0;
    for _ in 0..n {
        acc += rng.gen_range(-1.0..1.0);
    }
    let mut m = MetricSet::new();
    m.set("walk", acc);
    m.set("len", n as f64);
    m.add("tail", rng.gen_range(0.0..1.0));
    m.set(format!("bucket_{}", n % 4), acc.abs());
    m
}

/// Exact per-metric comparison through the public accessors: every
/// mean and ci95 must match to the bit.
fn assert_bitwise_equal(a: &Aggregate, b: &Aggregate) {
    assert_eq!(a, b);
    for (name, _) in a.iter() {
        assert_eq!(
            a.mean(name).to_bits(),
            b.mean(name).to_bits(),
            "mean({name}) diverged"
        );
        assert_eq!(
            a.ci95(name).to_bits(),
            b.ci95(name).to_bits(),
            "ci95({name}) diverged"
        );
    }
}

#[test]
fn run_par_is_bitwise_identical_at_every_thread_count() {
    let reps = Replications::new(0xDEAD_BEEF, 13);
    let seq = reps.run(noisy_scenario);
    for threads in [1, 2, 3, 4, 8, 32] {
        let par = reps.run_par_threads(threads, noisy_scenario);
        assert_bitwise_equal(&par, &seq);
    }
    assert_bitwise_equal(&reps.run_par(noisy_scenario), &seq);
}

#[test]
fn run_matrix_is_bitwise_identical_to_per_arm_runs() {
    let arms: Vec<f64> = vec![0.5, 1.0, 2.0, 4.0, 8.0];
    let reps = Replications::new(0x5EED_CAFE, 7);
    let scenario = |&scale: &f64, seeds: SeedTree| {
        let mut m = noisy_scenario(seeds);
        let walk = m.get("walk").unwrap();
        m.set("scaled", walk * scale);
        m
    };
    for threads in [1, 2, 3, 5, 16] {
        let par = reps.run_matrix_threads(threads, &arms, scenario);
        assert_eq!(par.len(), arms.len());
        for (arm, agg) in arms.iter().zip(&par) {
            let seq = reps.run(|seeds| scenario(arm, seeds));
            assert_bitwise_equal(agg, &seq);
        }
    }
}

#[test]
fn matrix_arms_share_replicate_seeds() {
    // Common random numbers: metrics that ignore the arm must be
    // identical across arms.
    let arms = [1u8, 2, 3];
    let reps = Replications::new(0xC0FFEE, 5);
    let aggs = reps.run_matrix(&arms, |_, seeds| noisy_scenario(seeds));
    for pair in aggs.windows(2) {
        assert_bitwise_equal(&pair[0], &pair[1]);
    }
}

proptest! {
    #[test]
    fn prop_parallel_equals_sequential_for_random_scenarios(
        base_seed in any::<u64>(),
        count in 1u32..12,
        threads in 1usize..9,
        walk_cap in 2usize..40,
        spread in 0.01f64..100.0,
    ) {
        let scenario = |seeds: SeedTree| {
            let mut rng = seeds.rng("w");
            let n: usize = rng.gen_range(1..walk_cap.max(2));
            let mut m = MetricSet::new();
            for i in 0..n {
                m.add("sum", rng.gen_range(-spread..spread));
                if i % 3 == 0 {
                    m.set(format!("k{}", i % 5), rng.gen_range(0.0..spread));
                }
            }
            m.set("n", n as f64);
            m
        };
        let reps = Replications::new(base_seed, count);
        let seq = reps.run(scenario);
        let par = reps.run_par_threads(threads, scenario);
        prop_assert_eq!(par.aggregate(), &seq);
        prop_assert_eq!(par.completed(), count);
        prop_assert_eq!(par.excluded(), 0);
        for (name, _) in seq.iter() {
            prop_assert_eq!(par.mean(name).to_bits(), seq.mean(name).to_bits());
            prop_assert_eq!(par.ci95(name).to_bits(), seq.ci95(name).to_bits());
        }
    }

    #[test]
    fn prop_matrix_equals_sequential_for_random_arm_counts(
        base_seed in any::<u64>(),
        count in 1u32..8,
        n_arms in 1usize..7,
        threads in 1usize..7,
    ) {
        let arms: Vec<u64> = (0..n_arms as u64).collect();
        let scenario = |&arm: &u64, seeds: SeedTree| {
            let mut rng = seeds.rng("w");
            let mut m = MetricSet::new();
            m.set("x", rng.gen_range(0.0..1.0) + arm as f64);
            m.set("arm", arm as f64);
            m
        };
        let reps = Replications::new(base_seed, count);
        let par = reps.run_matrix_threads(threads, &arms, scenario);
        prop_assert_eq!(par.len(), arms.len());
        for (arm, report) in arms.iter().zip(&par) {
            let seq = reps.run(|seeds| scenario(arm, seeds));
            prop_assert_eq!(report.aggregate(), &seq);
        }
    }

    // Panic-isolation parity: poison a random subset of replicates
    // (both attempts, so they are quarantined, not recovered). The
    // survivor aggregate must stay bit-identical to a sequential run
    // over the survivors alone, at any thread count, and the poisoned
    // replicates must be reported exactly.
    #[test]
    fn prop_poisoned_replicates_quarantine_identically(
        base_seed in any::<u64>(),
        count in 2u32..10,
        threads in 1usize..9,
        poison_mask in any::<u16>(),
    ) {
        let reps = Replications::new(base_seed, count);
        let poisoned: Vec<u32> =
            (0..count).filter(|k| poison_mask & (1 << k) != 0).collect();
        let bad_seeds: Vec<u64> = poisoned
            .iter()
            .flat_map(|&k| [reps.seeds_for(k).raw(), reps.retry_seeds_for(k).raw()])
            .collect();
        let scenario = |seeds: SeedTree| {
            assert!(!bad_seeds.contains(&seeds.raw()), "poisoned");
            let mut rng = seeds.rng("w");
            let mut m = MetricSet::new();
            m.set("x", rng.gen_range(0.0..1.0));
            m
        };
        let mut survivors = Aggregate::default();
        for k in 0..count {
            if !poisoned.contains(&k) {
                survivors.absorb(&{
                    let mut rng = reps.seeds_for(k).rng("w");
                    let mut m = MetricSet::new();
                    m.set("x", rng.gen_range(0.0..1.0));
                    m
                });
            }
        }
        let par = reps.run_par_threads(threads, scenario);
        prop_assert_eq!(par.aggregate(), &survivors);
        prop_assert_eq!(par.completed(), count - poisoned.len() as u32);
        prop_assert_eq!(par.excluded(), poisoned.len() as u32);
        let reported: Vec<u32> = par.errors().iter().map(|e| e.replicate).collect();
        prop_assert_eq!(reported, poisoned);
        // And the sequential guarded runner agrees exactly.
        prop_assert_eq!(&reps.run_try(scenario), &par);
    }
}

#[test]
fn poisoned_matrix_completes_all_other_cells_at_any_thread_count() {
    // The acceptance scenario: one arm of a matrix panics on one
    // replicate (both attempts); everything else completes and the
    // survivor aggregates are bit-identical sequential vs parallel.
    let reps = Replications::new(0xBAD_5EED, 9);
    let arms = [0u8, 1, 2];
    let bad = [reps.seeds_for(4).raw(), reps.retry_seeds_for(4).raw()];
    let scenario = |&arm: &u8, seeds: SeedTree| {
        assert!(
            !(arm == 1 && bad.contains(&seeds.raw())),
            "deliberate panic in arm 1 replicate 4"
        );
        noisy_scenario(seeds)
    };
    let reference = reps.run_matrix_threads(1, &arms, scenario);
    for threads in [2, 3, 4, 8, 32] {
        let par = reps.run_matrix_threads(threads, &arms, scenario);
        assert_eq!(par, reference, "threads={threads}");
    }
    assert_eq!(reference[0].completed(), 9);
    assert_eq!(reference[1].completed(), 8);
    assert_eq!(reference[1].excluded(), 1);
    let err = &reference[1].errors()[0];
    assert_eq!(err.replicate, 4);
    assert!(err.panic.contains("deliberate panic"));
    assert_eq!(reference[2].completed(), 9);
    // Unpoisoned arms match a plain sequential run bit-for-bit.
    let seq0 = reps.run(noisy_scenario);
    assert_bitwise_equal(&reference[0], &seq0);
    assert_bitwise_equal(&reference[2], &seq0);
}
