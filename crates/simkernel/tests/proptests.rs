//! Property-based tests for the simulation kernel.

use proptest::prelude::*;
use simkernel::rng::SeedTree;
use simkernel::stats::Percentiles;
use simkernel::{EventQueue, Tick, TimeSeries};

proptest! {
    #[test]
    fn event_queue_pops_sorted_stable(
        events in proptest::collection::vec((0u64..100, 0u32..1000), 0..200),
    ) {
        let mut q = EventQueue::new();
        for &(t, payload) in &events {
            q.schedule(Tick(t), payload);
        }
        let mut popped = Vec::new();
        while let Some((t, p)) = q.pop() {
            popped.push((t, p));
        }
        prop_assert_eq!(popped.len(), events.len());
        // Time-sorted.
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
        }
        // Stable among equal times: relative order of payloads with the
        // same tick must match insertion order.
        for t in popped.iter().map(|&(t, _)| t).collect::<std::collections::BTreeSet<_>>() {
            let inserted: Vec<u32> = events
                .iter()
                .filter(|&&(et, _)| Tick(et) == t)
                .map(|&(_, p)| p)
                .collect();
            let got: Vec<u32> = popped
                .iter()
                .filter(|&&(pt, _)| pt == t)
                .map(|&(_, p)| p)
                .collect();
            prop_assert_eq!(inserted, got);
        }
    }

    #[test]
    fn percentiles_are_order_statistics(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut p: Percentiles = xs.iter().copied().collect();
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(p.quantile(0.0).unwrap(), sorted[0]);
        prop_assert_eq!(p.quantile(1.0).unwrap(), *sorted.last().unwrap());
        let med = p.median().unwrap();
        prop_assert!(med >= sorted[0] && med <= *sorted.last().unwrap());
    }

    #[test]
    fn quantiles_are_monotone(
        xs in proptest::collection::vec(-1e3f64..1e3, 2..100),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let mut p: Percentiles = xs.iter().copied().collect();
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(p.quantile(lo).unwrap() <= p.quantile(hi).unwrap());
    }

    #[test]
    fn bucketed_series_means_stay_in_range(
        points in proptest::collection::vec((0u64..10_000, -1e3f64..1e3), 1..300),
        buckets in 1usize..40,
    ) {
        let mut s = TimeSeries::new("p");
        for &(t, v) in &points {
            s.push(Tick(t), v);
        }
        let lo = points.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        let hi = points.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
        let b = s.bucketed(buckets);
        prop_assert!(!b.is_empty());
        prop_assert!(b.len() <= buckets);
        for &(_, mean) in &b {
            prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9);
        }
    }

    #[test]
    fn seed_tree_children_differ_from_parent(seed in any::<u64>(), idx in 0u64..1000) {
        let parent = SeedTree::new(seed);
        prop_assert_ne!(parent.raw(), parent.child_idx(idx).raw());
        prop_assert_ne!(parent.raw(), parent.child("x").raw());
    }

    #[test]
    fn distinct_indices_distinct_children(seed in any::<u64>(), a in 0u64..5000, b in 0u64..5000) {
        prop_assume!(a != b);
        let t = SeedTree::new(seed);
        prop_assert_ne!(t.child_idx(a).raw(), t.child_idx(b).raw());
    }
}
