//! # compose — the composed smart-city world
//!
//! The paper's collective-self-awareness claim (Section IV) says
//! awareness spans a *collective*, not a single node: "the network
//! of [systems] as a whole can be described as having a collective
//! form of self-awareness, even though this is not the case for any
//! individual node." The four substrate simulators (camnet, cpn,
//! cloudsim, multicore) each exercise one self-awareness level in
//! isolation; this crate runs them as one deterministic world so a
//! fault in one substrate *cascades* into the others and graceful
//! degradation becomes an end-to-end, measurable property.
//!
//! The composition (see DESIGN.md § Composition):
//!
//! * **Cameras** ([`camnet::Camera`]) track wanderers over the unit
//!   square and emit detections — the sensing substrate.
//! * Detections travel as packets over a **cognitive packet network**
//!   ([`cpn::Graph`] + [`cpn::routing::Router`]) from each camera's
//!   ingress node to the gateway of the wanderer's city zone — the
//!   transport substrate.
//! * Each zone gateway feeds a backend of **multicore machines**
//!   ([`multicore::Core`]) that service the detections against an
//!   SLA deadline — the compute substrate.
//! * A **zoned command plane** ([`selfaware::comms::CommsNetwork`]
//!   over the campaign's [`workloads::ChannelPlan`]) carries typed
//!   [`CityEvent`]s between zone agents, the controller, and the
//!   camera cluster head — the cloudsim-style coordination substrate.
//!
//! All of it shares a single [`simkernel::Tick`], consumes randomness
//! only from named [`simkernel::SeedTree`] streams, and preserves the
//! repo-wide seq-vs-parallel bit-identity contract under any
//! [`workloads::FaultCampaign`].
//!
//! The *degradation ladder* — shed camera quality → re-home zones →
//! throttle admission — is what the fully self-aware stack buys:
//! each rung trades a little fidelity for continued service, so
//! compound failures bend the utility curve instead of breaking it.

#![forbid(unsafe_code)]
#![deny(clippy::unwrap_used, clippy::panic)]
#![warn(missing_docs)]

pub mod city;
pub mod world;

pub use city::{city_goal, run_city, CityResult};
pub use world::{CityConfig, CityEvent, CityPolicy};
