//! World configuration: city topology, per-layer awareness policy,
//! and the typed events the substrates exchange over the command
//! plane.

use cpn::RoutingStrategy;
use selfaware::comms::CommsPolicy;
use simkernel::rng::SeedTree;
use workloads::FaultCampaign;

/// Typed cross-substrate events carried over the command plane's
/// [`selfaware::comms::CommsNetwork`]. Addressing: comms ids
/// `0..zones` are the zone agents, `zones` is the city controller,
/// `zones + 1` is the camera cluster head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CityEvent {
    /// Zone agent → controller: the zone's backend backlog (queued
    /// tasks across its cores) and the packet pressure on the links
    /// into its gateway, both as observed by the agent this tick.
    Report {
        /// Tasks queued across the zone's cores.
        backlog: u64,
        /// Packets queued on links into the zone's gateway node.
        gateway_pressure: u64,
    },
    /// Controller → camera cluster head: the current rung of the
    /// degradation ladder. `shed` levels: 0 = full quality, 1 = halve
    /// the detection rate, 2 = quarter the rate and reduce
    /// resolution. `rehome[z] = Some(z')` redirects detections bound
    /// for zone `z` to zone `z'`'s gateway while `z` is believed
    /// unreachable.
    Directive {
        /// Camera shed level (0, 1 or 2).
        shed: u8,
        /// Per-zone re-home targets (`None` = deliver normally).
        rehome: Vec<Option<u8>>,
    },
    /// Controller → zone agent: admission throttle command, decided
    /// by hysteresis over the controller's *believed* backlog for the
    /// zone (so a stale belief throttles late — the cost the naive
    /// comms ablation pays). Refreshed periodically, which keeps
    /// command traffic flowing into a zone even while it is dark and
    /// makes retry-budget burn on dead links observable.
    Throttle {
        /// Whether the zone should stop admitting new detections.
        on: bool,
    },
}

/// Which layers of the stack run self-aware and which run naive —
/// the ablation surface of experiment F9.
#[derive(Debug, Clone, PartialEq)]
pub struct CityPolicy {
    /// Detection transport routing: learned CPN (optionally under a
    /// supervisor) or a periodically recomputed table.
    pub router: RoutingStrategy,
    /// Command-plane discipline: reliable + staleness-tracking, or
    /// fire-and-forget.
    pub comms: CommsPolicy,
    /// Whether camera quality readings pass through the
    /// [`selfaware::health::SensorHealth`] quarantine layer.
    pub health: bool,
    /// Whether the cross-layer degradation ladder (shed → re-home →
    /// throttle) is active.
    pub ladder: bool,
}

impl CityPolicy {
    /// The fully supervised, staleness-aware stack: every layer on.
    #[must_use]
    pub fn supervised() -> Self {
        Self {
            router: RoutingStrategy::supervised_cpn_default(),
            comms: CommsPolicy::default(),
            health: true,
            ladder: true,
        }
    }

    /// Ablation: fire-and-forget command plane (no acks, no
    /// staleness model — the controller trusts every stale report).
    #[must_use]
    pub fn naive_comms() -> Self {
        Self {
            comms: CommsPolicy::Naive,
            ..Self::supervised()
        }
    }

    /// Ablation: periodic table routing — no smart packets, no
    /// reinforcement learning, no routing supervisor.
    #[must_use]
    pub fn naive_router() -> Self {
        Self {
            router: RoutingStrategy::Periodic { period: 25 },
            ..Self::supervised()
        }
    }

    /// Ablation: raw camera readings — no sensor-health quarantine,
    /// corrupted qualities flow straight downstream.
    #[must_use]
    pub fn naive_cameras() -> Self {
        Self {
            health: false,
            ..Self::supervised()
        }
    }

    /// Every layer naive: table routing, fire-and-forget comms, raw
    /// sensors, no degradation ladder.
    #[must_use]
    pub fn all_naive() -> Self {
        Self {
            router: RoutingStrategy::Periodic { period: 25 },
            comms: CommsPolicy::Naive,
            health: false,
            ladder: false,
        }
    }

    /// Table label.
    #[must_use]
    pub fn label(&self) -> String {
        if *self == Self::supervised() {
            return "supervised".into();
        }
        if *self == Self::all_naive() {
            return "all-naive".into();
        }
        if *self == Self::naive_comms() {
            return "naive-comms".into();
        }
        if *self == Self::naive_router() {
            return "naive-router".into();
        }
        if *self == Self::naive_cameras() {
            return "naive-cameras".into();
        }
        format!(
            "custom({},{},health={},ladder={})",
            self.router.label(),
            self.comms.label(),
            self.health,
            self.ladder
        )
    }
}

/// Configuration of one composed smart-city run.
#[derive(Debug, Clone)]
pub struct CityConfig {
    /// Simulation length in ticks.
    pub steps: u64,
    /// City zones (vertical strips of the unit square), each with a
    /// gateway node and a backend.
    pub zones: usize,
    /// Multicore machines per zone backend (machine `z *
    /// cores_per_zone + k` is zone `z`'s k-th core — the index space
    /// [`workloads::FaultPlan`] `ZoneOutage` events address).
    pub cores_per_zone: usize,
    /// Cameras watching the square.
    pub cameras: usize,
    /// Baseline wanderer population; diurnal modulation activates a
    /// time-varying subset.
    pub wanderers: usize,
    /// Extra wanderers active during the flash-crowd window.
    pub crowd_extra: usize,
    /// Flash-crowd window `[start, end)` in ticks.
    pub crowd_window: (u64, u64),
    /// CPN grid rows.
    pub rows: usize,
    /// CPN grid columns.
    pub cols: usize,
    /// Mean service demand per detection (work units, exponential).
    pub mean_work: f64,
    /// End-to-end SLA deadline in ticks (camera shutter to backend
    /// completion).
    pub deadline: u64,
    /// The composed fault scenario: component faults + channel model
    /// + model corruption, one builder.
    pub campaign: FaultCampaign,
    /// Which layers run self-aware.
    pub policy: CityPolicy,
}

impl CityConfig {
    /// The standard F9 world: 3 zones × 3 cores, 8 cameras over a
    /// 4×6 CPN grid, 8 + 6 wanderers with a late flash crowd, and a
    /// benign (ideal-channel, fault-free) campaign — experiments
    /// replace [`CityConfig::campaign`] with real scenarios.
    #[must_use]
    pub fn standard(policy: CityPolicy, steps: u64, seeds: &SeedTree) -> Self {
        Self {
            steps,
            zones: 3,
            cores_per_zone: 3,
            cameras: 8,
            wanderers: 8,
            crowd_extra: 6,
            crowd_window: (steps * 3 / 5, steps * 3 / 5 + steps / 6),
            rows: 4,
            cols: 6,
            mean_work: 1.2,
            deadline: 30,
            campaign: FaultCampaign::new("benign", seeds),
            policy,
        }
    }

    /// The zone of a point with horizontal coordinate `x ∈ [0, 1]`.
    #[must_use]
    pub fn zone_of(&self, x: f64) -> usize {
        ((x * self.zones as f64) as usize).min(self.zones - 1)
    }

    /// The CPN gateway node of zone `z`: bottom row, centre column of
    /// the zone's strip.
    #[must_use]
    pub fn gateway(&self, z: usize) -> usize {
        let col = (z * self.cols / self.zones + self.cols / (2 * self.zones)).min(self.cols - 1);
        (self.rows - 1) * self.cols + col
    }

    /// The CPN ingress node of a camera at horizontal coordinate
    /// `x`: top row, nearest column.
    #[must_use]
    pub fn ingress(&self, x: f64) -> usize {
        ((x * self.cols as f64) as usize).min(self.cols - 1)
    }

    /// Machine-index range of zone `z`'s backend in the fault plan's
    /// node space.
    #[must_use]
    pub fn machine_range(&self, z: usize) -> std::ops::Range<usize> {
        z * self.cores_per_zone..(z + 1) * self.cores_per_zone
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::rng::SeedTree;

    #[test]
    fn topology_maps_are_in_bounds() {
        let cfg = CityConfig::standard(CityPolicy::supervised(), 100, &SeedTree::new(1));
        let n = cfg.rows * cfg.cols;
        for z in 0..cfg.zones {
            let gw = cfg.gateway(z);
            assert!(gw < n, "gateway {gw} out of grid");
            assert!(
                gw >= (cfg.rows - 1) * cfg.cols,
                "gateway must sit on the bottom row"
            );
        }
        for x in [0.0, 0.3, 0.5, 0.99, 1.0] {
            assert!(cfg.ingress(x) < cfg.cols);
            assert!(cfg.zone_of(x) < cfg.zones);
        }
        // Distinct zones get distinct gateways.
        let gws: Vec<usize> = (0..cfg.zones).map(|z| cfg.gateway(z)).collect();
        let mut dedup = gws.clone();
        dedup.dedup();
        assert_eq!(gws, dedup);
    }

    #[test]
    fn policy_labels_are_distinct() {
        let labels: Vec<String> = [
            CityPolicy::supervised(),
            CityPolicy::naive_comms(),
            CityPolicy::naive_router(),
            CityPolicy::naive_cameras(),
            CityPolicy::all_naive(),
        ]
        .iter()
        .map(CityPolicy::label)
        .collect();
        let mut sorted = labels.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), labels.len(), "labels collide: {labels:?}");
    }
}
