//! The composed smart-city run loop: cameras → CPN → zoned multicore
//! backend, coordinated over one command plane, under one
//! [`workloads::FaultCampaign`].
//!
//! Cascade semantics (the headline F9 scenario): a `ZoneOutage` kills
//! a zone's backend machines *and* silences its zone agent. A naive
//! stack keeps streaming detections at the dead zone's gateway, where
//! they are rejected after consuming path bandwidth — the network
//! congests, queues upstream fill, and camera traffic for *live*
//! zones starves. The self-aware stack climbs the degradation ladder
//! instead: the controller notices the agent's silence through comms
//! staleness and re-homes the zone's detections; believed gateway
//! pressure sheds camera quality; zone agents throttle admission
//! before their backlog breaches the SLA.

use crate::world::{CityConfig, CityEvent};
use camnet::Camera;
use cpn::graph::Graph;
use cpn::routing::{Router, RoutingStrategy};
use multicore::{Core, CoreSpec};
use rand::Rng as _;
use selfaware::comms::{Channel, ChannelOutcome, CommsNetwork, CommsStats, Delivered};
use selfaware::explain::{Explanation, ExplanationLog};
use selfaware::goals::{Direction, Goal, Objective};
use selfaware::health::SensorHealth;
use selfaware::pressure::{HysteresisGate, HysteresisGateConfig};
use selfaware::replay::InterventionClass;
use selfaware::supervision::{Evidence, Supervisor, Verdict};
use simkernel::obs;
use simkernel::rng::SeedTree;
use simkernel::{Clock, ClockSource, MetricSet, Tick};
use std::collections::{BTreeMap, VecDeque};
use workloads::faults::{ChannelPlan, FaultKind, ModelCorruptionKind};
use workloads::rates::{DiurnalRate, RateFn};
use workloads::tasks::{Task, TaskClass};
use workloads::trajectories::{Point, Wanderer};

/// Per-link packet queue capacity.
const QUEUE_CAP: usize = 60;
/// Packets a link moves per tick.
const BANDWIDTH: usize = 3;
/// Hop budget per packet.
const TTL: u32 = 48;
/// Believed gateway pressure at which the controller sheds camera
/// rate (level 1) and additionally resolution (level 2).
const SHED1: u64 = 18;
const SHED2: u64 = 40;
/// Zone-agent admission throttle watermarks (backend backlog).
const THR_HI: u64 = 14;
const THR_LO: u64 = 6;
/// Hard backend buffer: a zone never queues more than this.
const ADMIT_CAP: u64 = 24;
/// Controller freshness below which a zone is believed unreachable.
const REHOME_FRESH: f64 = 0.5;
/// Consecutive failed one-shot control-plane probes required before a
/// silent zone may be declared dark (re-home corroboration, link 1).
const PROBE_CONFIRM: u64 = 3;
/// Data-plane dark evidence — an EWMA of packets bounced by the
/// zone's gateway — required to corroborate a re-home (link 2). A
/// partitioned-but-alive zone keeps consuming its packets, so pure
/// message loss never accumulates bounce evidence; only a backend
/// with nobody home does.
const DARK_EVIDENCE_MIN: f64 = 1.5;
/// Per-tick decay of the bounce-evidence EWMA.
const DARK_DECAY: f64 = 0.8;
/// Period (ticks) of the controller's throttle-command refresh to
/// each zone agent.
const THROTTLE_REFRESH: u64 = 8;
/// Slope weighting for the pressure-proportional throttle band: one
/// believed-backlog unit per tick of slope tilts the engage/release
/// thresholds by this many units (clamped to `THROTTLE_MAX_TILT`).
const THROTTLE_SLOPE_GAIN: f64 = 2.0;
const THROTTLE_SLOPE_ALPHA: f64 = 0.3;
const THROTTLE_MAX_TILT: f64 = 3.5;

/// Result of one composed run.
#[derive(Debug, Clone)]
pub struct CityResult {
    /// Scalar metrics (see [`run_city`] docs for keys).
    pub metrics: MetricSet,
    /// Command-plane comms statistics, including the per-link expiry
    /// and retry-budget-exhaustion maps for the degradation report.
    pub comms_stats: CommsStats,
    /// Explanation log of command-plane and supervision decisions.
    pub log: ExplanationLog,
}

/// The city's multi-objective goal: get detections processed *on
/// time*, keep reported qualities honest, keep the square covered.
///
/// The service objective is `on_time_ratio` — detections serviced
/// within the SLA deadline over detections emitted — so a lost
/// detection and a late one cost the same. (Scoring `violation_rate`
/// over *serviced* work instead would reward an arm for dropping
/// traffic it cannot serve on time.)
#[must_use]
pub fn city_goal() -> Goal {
    Goal::new("city-service-vs-fidelity")
        .objective(Objective::new(
            "on_time_ratio",
            Direction::Maximize,
            1.0,
            2.5,
        ))
        .objective(Objective::new(
            "tracking_error",
            Direction::Minimize,
            0.25,
            1.0,
        ))
        .objective(Objective::new("coverage", Direction::Maximize, 1.0, 0.5))
}

/// A detection in flight over the CPN.
struct Pkt {
    /// Destination gateway node.
    dst: usize,
    /// Destination zone (after any re-homing at emission).
    zone: usize,
    /// Reported quality (post sensor fault / health substitution /
    /// shed resolution).
    quality: f64,
    /// Ground-truth quality at the owning camera.
    q_true: f64,
    created: Tick,
    smart: bool,
    prev: Option<usize>,
    ttl: u32,
    /// `(node, tick entered that node's queue)` per hop, for
    /// delivery reinforcement.
    hop_log: Vec<(usize, Tick)>,
}

/// Channel adapter silencing dead zone agents (same restore-ordering
/// contract as cloudsim's zoned plane: a partition healing inside a
/// `ZoneOutage` must not resurrect delivery to a zone with nobody
/// home). Ids `>= dead.len()` (controller, camera head) never die.
struct AgentLiveChannel<'a> {
    inner: &'a ChannelPlan,
    dead: &'a [bool],
}

impl Channel for AgentLiveChannel<'_> {
    fn transmit(&self, src: usize, dst: usize, seq: u64, now: Tick) -> ChannelOutcome {
        let gone = |id: usize| self.dead.get(id).copied().unwrap_or(false);
        if gone(src) || gone(dst) {
            return ChannelOutcome::lost();
        }
        self.inner.transmit(src, dst, seq, now)
    }
}

/// Meta-self-awareness over the detection-transport router, mirroring
/// `cpn::sim`: the supervisor checkpoints the learned router, scores
/// its route-delay estimates against realized transit delays, and
/// benches it onto a periodic table when it misbehaves.
struct CitySupervision {
    sup: Supervisor<Router>,
    baseline: Router,
    realized: Option<f64>,
}

/// Runs one composed city scenario. Metric keys:
///
/// * `detections`, `serviced`, `service_ratio` — end-to-end outcome;
/// * `coverage` — emitted detections / active wanderer-ticks (camera
///   starvation shows up here);
/// * `violation_rate`, `mean_latency` — SLA health of serviced
///   detections (camera shutter → backend completion);
/// * `tracking_quality`, `tracking_error` — mean delivered quality
///   and mean |reported − true| fidelity loss;
/// * `net_dropped`, `rejected`, `tasks_lost` — where detections die
///   (network, admission, backend outage);
/// * `rehomed`, `shed_ticks`, `throttled_ticks` — ladder activity;
/// * `comms_sent`, `comms_retries`, `comms_expired`,
///   `comms_budget_exhausted`, `comms_partition_hits`,
///   `comms_dead_zone_expired` — command-plane health;
/// * `model_rollbacks`, `model_fallbacks`, `quarantines` —
///   supervision and sensor-health interventions;
/// * `energy` — backend energy;
/// * `utility` — [`city_goal`] scalarisation.
#[must_use]
pub fn run_city(cfg: &CityConfig, seeds: &SeedTree) -> CityResult {
    run_city_with_clock(cfg, seeds, &mut Clock::new())
}

/// [`run_city`] against an explicit [`ClockSource`].
///
/// With the simulated [`Clock`] this is bit-identical to the
/// `for t in 0..steps` loop it replaced (every parity suite runs
/// through this path); with a [`simkernel::WallClock`] each tick is
/// pinned to a real-time quantum and overrun ticks are skipped rather
/// than replayed, so the same composed world can be driven in live
/// time.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn run_city_with_clock<K: ClockSource>(
    cfg: &CityConfig,
    seeds: &SeedTree,
    clock: &mut K,
) -> CityResult {
    assert!(cfg.zones >= 2, "need at least two zones to re-home");
    assert!(cfg.rows >= 2 && cfg.cols >= cfg.zones, "grid too small");
    let mut graph = Graph::grid(cfg.rows, cfg.cols);
    let n = graph.len();
    let mask = cfg.campaign.mask();
    let mut router = cfg.policy.router.build(&graph);
    let mut supervision =
        matches!(cfg.policy.router, RoutingStrategy::SupervisedCpn { .. }).then(|| {
            Box::new(CitySupervision {
                sup: Supervisor::new("city-routing", router.clone()).with_mask(mask),
                baseline: RoutingStrategy::Periodic { period: 25 }.build(&graph),
                realized: None,
            })
        });
    let mut frozen_until: Option<Tick> = None;

    let mut wander_rng = seeds.rng("wander");
    let mut work_rng = seeds.rng("work");
    let mut sensor_rng = seeds.rng("sensor");
    let mut route_rng = seeds.rng("route");
    let mut log = ExplanationLog::new(1024);

    // Cameras in two rows over the square, overlapping fields of view.
    let cam_cols = cfg.cameras.div_ceil(2);
    let cameras: Vec<Camera> = (0..cfg.cameras)
        .map(|c| {
            let gx = c % cam_cols;
            let gy = c / cam_cols;
            let pos = Point::new(
                (gx as f64 + 0.5) / cam_cols as f64,
                if gy == 0 { 0.28 } else { 0.72 },
            );
            Camera::new(c, pos, 0.4, cfg.cameras)
        })
        .collect();
    let ingress: Vec<usize> = cameras
        .iter()
        .map(|c| cfg.ingress(c.position().x))
        .collect();
    let mut camera_down = vec![false; cfg.cameras];
    let mut held = vec![0.5f64; cfg.cameras];
    let mut cam_degraded = vec![false; cfg.cameras];
    let mut health = cfg
        .policy
        .health
        .then(|| SensorHealth::default().with_mask(mask));

    // Wanderer population: diurnal subset of the base plus the flash
    // crowd. All of them step every tick so the trajectory stream is
    // identical whatever subset is active. The crowd gathers in the
    // middle zone — the F9 headline points the surge at the zone the
    // cascade campaign takes down.
    let total_pop = cfg.wanderers + cfg.crowd_extra;
    let crowd_home = Point::new(0.5, 0.5);
    let mut wanderers: Vec<Wanderer> = (0..total_pop)
        .map(|i| {
            let w = Wanderer::new(0.02, &mut wander_rng);
            if i >= cfg.wanderers {
                w.with_home(crowd_home, 0.15)
            } else {
                w
            }
        })
        .collect();
    let mut diurnal = DiurnalRate::new(
        cfg.wanderers as f64 * 0.65,
        cfg.wanderers as f64 * 0.35,
        (cfg.steps / 2).max(1) as f64,
    );

    // Zone backends: big + little cores per zone.
    let mut cores: Vec<Vec<Core>> = (0..cfg.zones)
        .map(|_| {
            (0..cfg.cores_per_zone)
                .map(|k| {
                    Core::new(if k == 0 {
                        CoreSpec::big()
                    } else {
                        CoreSpec::little()
                    })
                })
                .collect()
        })
        .collect();
    let mut machine_down = vec![false; cfg.zones * cfg.cores_per_zone];
    let mut zone_dead = vec![false; cfg.zones];
    let mut throttled = vec![false; cfg.zones];

    // Per-link queues: queues[u][k] feeds u's k-th neighbour.
    let mut queues: Vec<Vec<VecDeque<Pkt>>> = (0..n)
        .map(|u| {
            (0..graph.neighbours(u).len())
                .map(|_| VecDeque::new())
                .collect()
        })
        .collect();

    // Command plane: agents 0..zones, controller, camera head.
    let ctrl = cfg.zones;
    let cam_head = cfg.zones + 1;
    let mut comms: CommsNetwork<CityEvent> = CommsNetwork::new(cfg.policy.comms).with_mask(mask);
    let mut comms_inbox: Vec<Delivered<CityEvent>> = Vec::new();
    let mut believed_backlog = vec![0u64; cfg.zones];
    let mut believed_pressure = vec![0u64; cfg.zones];
    let mut last_report_seq: Vec<Option<u64>> = vec![None; cfg.zones];
    let mut last_throttle_seq: Vec<Option<u64>> = vec![None; cfg.zones];
    let mut ctrl_throttle = vec![false; cfg.zones];
    let mut last_directive_seq: Option<u64> = None;
    let mut sent_directive: Option<(u8, Vec<Option<u8>>)> = None;
    let mut head_shed: u8 = 0;
    let mut head_rehome: Vec<Option<u8>> = vec![None; cfg.zones];

    // In-flight detections' qualities, keyed by task id.
    let mut task_quality: BTreeMap<u64, (f64, f64)> = BTreeMap::new();
    let mut next_task_id: u64 = 0;

    // Counters.
    let (mut detections, mut serviced, mut violations) = (0u64, 0u64, 0u64);
    let (mut net_dropped, mut rejected, mut tasks_lost) = (0u64, 0u64, 0u64);
    let (mut rehomed, mut shed_ticks, mut throttled_ticks) = (0u64, 0u64, 0u64);
    let (mut active_ticks, mut quarantine_subs) = (0u64, 0u64);
    let (mut lat_sum, mut qual_sum, mut err_sum) = (0.0f64, 0.0f64, 0.0f64);
    let mut injected_net = 0u64;
    let mut delivered_net = 0u64;

    // Re-home corroboration and pressure-proportional throttle state.
    let mut bounce_now = vec![0u64; cfg.zones];
    let mut dark_evidence = vec![0.0f64; cfg.zones];
    let mut probe_fail_streak = vec![0u64; cfg.zones];
    let mut rehome_latched = vec![false; cfg.zones];
    let mut throttle_gates: Vec<HysteresisGate> = (0..cfg.zones)
        .map(|_| {
            HysteresisGate::new(HysteresisGateConfig {
                engage: THR_HI as f64,
                release: THR_LO as f64,
                slope_gain: THROTTLE_SLOPE_GAIN,
                slope_alpha: THROTTLE_SLOPE_ALPHA,
                max_tilt: THROTTLE_MAX_TILT,
            })
        })
        .collect();

    let faults = cfg.campaign.faults().clone();
    let channel = cfg.campaign.channel().clone();

    loop {
        let now = clock.now();
        if now.value() >= cfg.steps {
            break;
        }
        let t = now.value();
        let sense_span = obs::span("city:sense");

        // --- Faults: machines, cameras, links, models. -------------
        for z in 0..cfg.zones {
            let mut all_down = true;
            for m in cfg.machine_range(z) {
                let down = faults.zone_down_at(m, now);
                let k = m - z * cfg.cores_per_zone;
                if down && !machine_down[m] {
                    let orphans = cores[z][k].fail();
                    for task in &orphans {
                        task_quality.remove(&task.id);
                        tasks_lost += 1;
                    }
                } else if !down && machine_down[m] {
                    cores[z][k].recover();
                }
                machine_down[m] = down;
                all_down &= down;
            }
            zone_dead[z] = all_down;
        }
        for ev in faults.events_at(now) {
            match ev.kind {
                FaultKind::CameraFail { camera } if camera < cfg.cameras => {
                    camera_down[camera] = true;
                }
                FaultKind::CameraRecover { camera } if camera < cfg.cameras => {
                    camera_down[camera] = false;
                }
                FaultKind::LinkCut { a, b } => {
                    graph.remove_edge(a, b);
                }
                FaultKind::LinkRestore { a, b } => {
                    graph.restore_edge(a, b);
                }
                FaultKind::ModelCorruption { kind, .. } => match kind {
                    ModelCorruptionKind::NanPoison => router.poison_model(),
                    ModelCorruptionKind::WeightScramble { gain } => router.scramble_model(gain),
                    ModelCorruptionKind::StateFreeze { duration } => {
                        frozen_until = Some(Tick(t + duration));
                    }
                },
                _ => {}
            }
        }
        let frozen = frozen_until.is_some_and(|until| now.value() < until.value());
        let benched = supervision.as_ref().is_some_and(|s| s.sup.is_fallback());

        // --- Population: diurnal activity plus the flash crowd. ----
        let in_crowd = t >= cfg.crowd_window.0 && t < cfg.crowd_window.1;
        let n_active = (diurnal.rate(now).round() as usize).clamp(1, cfg.wanderers);
        let mut positions: Vec<Point> = Vec::with_capacity(total_pop);
        for w in &mut wanderers {
            positions.push(w.step(&mut wander_rng));
        }
        let active = |i: usize| i < n_active || (in_crowd && i >= cfg.wanderers);
        drop(sense_span);

        // --- Routing decisions from live local queue sensing. ------
        let decide_span = obs::span("city:decide");
        let qlen = |u: usize, v: usize| {
            graph
                .neighbours(u)
                .iter()
                .position(|&x| x == v)
                .map_or(0, |k| queues[u][k].len())
        };
        if !frozen {
            router.maintain(&graph, now, qlen);
        }
        if let Some(s) = &mut supervision {
            s.baseline.maintain(&graph, now, qlen);
        }
        let cutoff = QUEUE_CAP / 2;
        let congestion: Vec<f64> = (0..n)
            .map(|u| queues[u].iter().map(VecDeque::len).max().unwrap_or(0))
            .map(|c| if c >= cutoff { c as f64 } else { 0.0 })
            .collect();
        router.set_congestion(&congestion);
        if let Some(s) = &mut supervision {
            s.baseline.set_congestion(&congestion);
        }
        drop(decide_span);

        // --- Cameras: own, corrupt, heal, shed, emit. --------------
        let act_span = obs::span("city:act");
        if head_shed > 0 {
            shed_ticks += 1;
        }
        let shutter = |c: usize| match head_shed {
            0 => true,
            1 => (t + c as u64).is_multiple_of(2),
            _ => (t + c as u64).is_multiple_of(4),
        };
        let qmul = if head_shed >= 2 { 0.8 } else { 1.0 };
        // Ownership: each active wanderer is owned by the best-quality
        // live, shuttered camera that sees it.
        let mut owned: Vec<Vec<(usize, f64)>> = vec![Vec::new(); cfg.cameras];
        for (i, &pos) in positions.iter().enumerate() {
            if !active(i) {
                continue;
            }
            active_ticks += 1;
            let mut best: Option<(usize, f64)> = None;
            for (c, cam) in cameras.iter().enumerate() {
                if camera_down[c] || !shutter(c) || !cam.sees(pos) {
                    continue;
                }
                let q = cam.quality(pos);
                if best.is_none_or(|(_, b)| q > b) {
                    best = Some((c, q));
                }
            }
            if let Some((c, q)) = best {
                owned[c].push((i, q));
            }
        }
        let mut tick_transit_sum = 0.0f64;
        let mut tick_transit_n = 0u32;
        // Pass 1 — per-camera mean quality readings, with any sensor
        // fault applied. `held` is the last clean mean (StuckAt holds
        // it; it also stands in when a naive stack gets a dropout).
        let mut cam_readings: Vec<Option<(f64, Option<f64>)>> = vec![None; cfg.cameras];
        for (c, dets) in owned.iter().enumerate() {
            if dets.is_empty() {
                continue;
            }
            let raw_mean = dets.iter().map(|&(_, q)| q).sum::<f64>() / dets.len() as f64;
            let corrupted = match faults.sensor_fault_at(c, now) {
                None => {
                    held[c] = raw_mean;
                    Some(raw_mean)
                }
                Some(kind) => kind.corrupt(raw_mean, held[c], &mut sensor_rng),
            };
            cam_readings[c] = Some((raw_mean, corrupted));
        }
        // Cluster consensus over cameras trusted as of last tick —
        // the collective reference a quarantined camera is checked
        // against and substituted with (a frozen per-camera model
        // drifts over a long quarantine; the cluster does not).
        let (cons_sum, cons_n) = (0..cfg.cameras)
            .filter(|&c| !cam_degraded[c])
            .filter_map(|c| cam_readings[c].and_then(|(_, cor)| cor.map(|v| (c, v))))
            .fold((0.0f64, 0u32), |(s, k), (_, v)| (s + v, k + 1));
        let consensus: Vec<Option<f64>> = (0..cfg.cameras)
            .map(|c| {
                let own = (!cam_degraded[c])
                    .then(|| cam_readings[c].and_then(|(_, cor)| cor))
                    .flatten();
                let (s, k) = match own {
                    Some(v) => (cons_sum - v, cons_n - 1),
                    None => (cons_sum, cons_n),
                };
                (k > 0).then(|| s / f64::from(k))
            })
            .collect();
        // Pass 2 — health monitoring and detection emission. The
        // camera-level mean is the monitored signal; a quarantined or
        // dropped-out camera's detections carry the consensus (else
        // the model substitute) instead of the raw reading.
        for (c, dets) in owned.iter().enumerate() {
            let Some((raw_mean, corrupted)) = cam_readings[c] else {
                continue;
            };
            let used_mean = match &mut health {
                Some(h) => {
                    let reference = consensus[c];
                    let reading = h.observe_with_reference(
                        &format!("cam{c}"),
                        corrupted,
                        reference,
                        now,
                        &mut log,
                    );
                    cam_degraded[c] = reading.degraded;
                    if reading.substituted {
                        quarantine_subs += 1;
                        reference.unwrap_or(reading.value).clamp(0.0, 1.0)
                    } else {
                        reading.value.clamp(0.0, 1.0)
                    }
                }
                None => corrupted.unwrap_or(held[c]),
            };
            for &(i, q_true) in dets {
                detections += 1;
                let q_used = ((q_true + (used_mean - raw_mean)) * qmul).clamp(0.0, 1.0);
                let q_true_shed = q_true * qmul;
                let mut zone = cfg.zone_of(positions[i].x);
                if let Some(to) = head_rehome[zone] {
                    zone = (to as usize).min(cfg.zones - 1);
                    rehomed += 1;
                }
                let dst = cfg.gateway(zone);
                let src = ingress[c];
                injected_net += 1;
                if src == dst {
                    // Camera co-located with the gateway: no transit.
                    delivered_net += 1;
                    admit(
                        cfg,
                        &mut cores,
                        &zone_dead,
                        &throttled,
                        zone,
                        q_used,
                        q_true_shed,
                        now,
                        &mut work_rng,
                        &mut next_task_id,
                        &mut task_quality,
                        &mut rejected,
                        i,
                    );
                    continue;
                }
                let smart = !benched && router.is_smart(&mut route_rng);
                let hop = if benched {
                    supervision
                        .as_ref()
                        .expect("benched implies supervised")
                        .baseline
                        .next_hop(&graph, src, dst, None, false, &mut route_rng)
                } else {
                    router.next_hop(&graph, src, dst, None, smart, &mut route_rng)
                };
                let Some(v) = hop else {
                    net_dropped += 1;
                    continue;
                };
                let Some(k) = graph.neighbours(src).iter().position(|&x| x == v) else {
                    net_dropped += 1;
                    continue;
                };
                if queues[src][k].len() >= QUEUE_CAP {
                    net_dropped += 1;
                    if !frozen {
                        router.reinforce_drop(&graph, src, v, dst);
                    }
                    continue;
                }
                queues[src][k].push_back(Pkt {
                    dst,
                    zone,
                    quality: q_used,
                    q_true: q_true_shed,
                    created: now,
                    smart,
                    prev: None,
                    ttl: TTL,
                    hop_log: vec![(src, now)],
                });
            }
        }

        // --- CPN: move packets, deliver at gateways. ---------------
        let mut arrivals: Vec<(usize, usize, Pkt)> = Vec::new();
        for (u, links) in queues.iter_mut().enumerate() {
            for (k, q) in links.iter_mut().enumerate() {
                let v = graph.neighbours(u)[k];
                if graph.link_down(u, v) {
                    continue;
                }
                for _ in 0..BANDWIDTH {
                    match q.pop_front() {
                        Some(p) => arrivals.push((u, v, p)),
                        None => break,
                    }
                }
            }
        }
        for (u, v, mut pkt) in arrivals {
            let entered = pkt.hop_log.last().map_or(now, |&(_, at)| at);
            let hop_delay = (now.value().saturating_sub(entered.value())).max(1) as f64;
            if !frozen {
                router.reinforce_hop(&graph, u, v, pkt.dst, hop_delay);
            }
            if v == pkt.dst && zone_dead[pkt.zone] {
                // Nobody home: a dead backend cannot consume the
                // packet, so it bounces back into the mesh and
                // wanders until its TTL burns out. Undeliverable
                // traffic clogging the links around a dead gateway is
                // the heart of the F9 cascade — the aware stack
                // avoids creating it by re-homing at emission. The
                // bounce itself is observable mesh telemetry (like the
                // queue lengths the router senses) and feeds the
                // controller's dark-zone evidence.
                bounce_now[pkt.zone] += 1;
                pkt.ttl = pkt.ttl.saturating_sub(1);
                if pkt.ttl == 0 {
                    net_dropped += 1;
                    if !frozen {
                        router.reinforce_drop(&graph, u, v, pkt.dst);
                    }
                    continue;
                }
                let back = (0..queues[v].len()).min_by_key(|&k| (queues[v][k].len(), k));
                match back {
                    Some(k) if queues[v][k].len() < QUEUE_CAP => {
                        pkt.prev = Some(u);
                        pkt.hop_log.push((v, now));
                        queues[v][k].push_back(pkt);
                    }
                    _ => {
                        net_dropped += 1;
                    }
                }
                continue;
            }
            if v == pkt.dst {
                delivered_net += 1;
                tick_transit_sum += now.value().saturating_sub(pkt.created.value()) as f64;
                tick_transit_n += 1;
                if !frozen {
                    router.reinforce_delivery(&graph, pkt.dst, &pkt.hop_log);
                }
                admit(
                    cfg,
                    &mut cores,
                    &zone_dead,
                    &throttled,
                    pkt.zone,
                    pkt.quality,
                    pkt.q_true,
                    pkt.created,
                    &mut work_rng,
                    &mut next_task_id,
                    &mut task_quality,
                    &mut rejected,
                    pkt.ttl as usize,
                );
                continue;
            }
            pkt.ttl -= 1;
            if pkt.ttl == 0 {
                net_dropped += 1;
                if !frozen {
                    router.reinforce_drop(&graph, u, v, pkt.dst);
                }
                continue;
            }
            let hop = if benched {
                supervision
                    .as_ref()
                    .expect("benched implies supervised")
                    .baseline
                    .next_hop(&graph, v, pkt.dst, Some(u), false, &mut route_rng)
            } else {
                router.next_hop(&graph, v, pkt.dst, Some(u), pkt.smart, &mut route_rng)
            };
            let Some(w) = hop else {
                net_dropped += 1;
                if !frozen {
                    router.reinforce_drop(&graph, u, v, pkt.dst);
                }
                continue;
            };
            let Some(k) = graph.neighbours(v).iter().position(|&x| x == w) else {
                net_dropped += 1;
                continue;
            };
            if queues[v][k].len() >= QUEUE_CAP {
                net_dropped += 1;
                if !frozen {
                    router.reinforce_drop(&graph, v, w, pkt.dst);
                }
                continue;
            }
            pkt.prev = Some(u);
            pkt.hop_log.push((v, now));
            queues[v][k].push_back(pkt);
        }

        // --- Backend: service detections. --------------------------
        for zone_cores in cores.iter_mut() {
            for core in zone_cores.iter_mut() {
                for (task, latency) in core.step(now) {
                    let Some((q_used, q_true)) = task_quality.remove(&task.id) else {
                        continue;
                    };
                    serviced += 1;
                    lat_sum += latency as f64;
                    qual_sum += q_true;
                    err_sum += (q_used - q_true).abs();
                    if latency > cfg.deadline {
                        violations += 1;
                    }
                }
            }
        }

        // --- Command plane: reports, directives, delivery. ---------
        let comms_span = obs::span("city:comms");
        // The outage-aware channel view is only substituted when a
        // zone is actually dark, so fault-free runs transmit over the
        // campaign's channel byte-for-byte.
        let any_dead = zone_dead.iter().any(|&d| d);
        let live = AgentLiveChannel {
            inner: &channel,
            dead: &zone_dead,
        };
        let plane: &dyn Channel = if any_dead { &live } else { &channel };
        for z in 0..cfg.zones {
            if throttled[z] && !zone_dead[z] {
                throttled_ticks += 1;
            }
            if zone_dead[z] {
                continue;
            }
            let backlog: u64 = cores[z].iter().map(|c| c.queue_len() as u64).sum();
            let gw = cfg.gateway(z);
            let pressure: u64 = (0..n)
                .map(|u| {
                    graph
                        .neighbours(u)
                        .iter()
                        .position(|&x| x == gw)
                        .map_or(0, |k| queues[u][k].len() as u64)
                })
                .sum();
            let event = CityEvent::Report {
                backlog,
                gateway_pressure: pressure,
            };
            comms.send(plane, z, ctrl, event, now, &mut log);
        }
        // Decay the per-zone dark evidence with this tick's bounces.
        for z in 0..cfg.zones {
            dark_evidence[z] = DARK_DECAY * dark_evidence[z] + bounce_now[z] as f64;
            bounce_now[z] = 0;
        }
        if cfg.policy.ladder {
            let pressure_total: u64 = believed_pressure.iter().sum();
            // Counterfactual masking forces a rung off *after* the
            // believed state is computed, so the suppressed rung's
            // inputs (and every RNG stream) evolve exactly as in the
            // factual run.
            let shed = if mask.suppresses(InterventionClass::ComposeShed) {
                0
            } else if pressure_total >= SHED2 {
                2
            } else {
                u8::from(pressure_total >= SHED1)
            };
            let aware = !cfg.policy.comms.is_naive();
            // Re-homing needs corroboration beyond command-plane
            // staleness (F10 measured −0.041 on-time when loss alone
            // tripped the freshness gate with every zone alive): a
            // streak of failed one-shot probes *and* data-plane
            // evidence that the zone's gateway is bouncing packets.
            // Once latched, a re-home holds until the agent is heard
            // from again, so decaying bounce telemetry (traffic has
            // been re-homed away) cannot flap the directive.
            let mut rehome: Vec<Option<u8>> = vec![None; cfg.zones];
            if aware && !mask.suppresses(InterventionClass::ComposeRehome) {
                for z in 0..cfg.zones {
                    if comms.freshness(ctrl, z, now) >= REHOME_FRESH {
                        rehome_latched[z] = false;
                        probe_fail_streak[z] = 0;
                        continue;
                    }
                    if !rehome_latched[z] {
                        if comms.fire_once(plane, ctrl, z, now, &mut log) {
                            probe_fail_streak[z] = 0;
                        } else {
                            probe_fail_streak[z] += 1;
                        }
                        let dark = probe_fail_streak[z] >= PROBE_CONFIRM
                            && dark_evidence[z] >= DARK_EVIDENCE_MIN;
                        if !dark {
                            continue;
                        }
                        log.record_with(|| {
                            Explanation::new(now, "ladder:zone-dark")
                                .because("zone", z as f64)
                                .because("probe_failures", probe_fail_streak[z] as f64)
                                .because("bounce_evidence", dark_evidence[z])
                        });
                        rehome_latched[z] = true;
                    }
                    // Nearest zone the controller still hears from.
                    rehome[z] = (0..cfg.zones)
                        .filter(|&o| o != z && comms.freshness(ctrl, o, now) >= REHOME_FRESH)
                        .min_by_key(|&o| (z.abs_diff(o), o))
                        .map(|o| o as u8);
                }
            }
            let directive = (shed, rehome.clone());
            if sent_directive.as_ref() != Some(&directive) {
                // Anchor the ladder transitions so counterfactual
                // deltas can point at the tick a rung engaged.
                let prev = sent_directive.as_ref();
                if prev.map_or(shed > 0, |(s, _)| *s != shed) {
                    log.record_with(|| {
                        Explanation::new(now, "ladder:shed")
                            .because("level", f64::from(shed))
                            .because("pressure", pressure_total as f64)
                    });
                }
                if prev.map_or(rehome.iter().any(Option::is_some), |(_, r)| *r != rehome) {
                    log.record_with(|| {
                        Explanation::new(now, "ladder:rehome")
                            .because("zones", rehome.iter().flatten().count() as f64)
                    });
                }
                let event = CityEvent::Directive { shed, rehome };
                comms.send(plane, ctrl, cam_head, event, now, &mut log);
                sent_directive = Some(directive);
            }
            // Admission throttling is controller-commanded from the
            // *believed* backlog through a pressure-proportional
            // hysteresis band (the F10 fix for throttle's small
            // negative deltas: a fast-rising backlog engages before
            // the static watermark, a collapsing one releases inside
            // it), refreshed periodically so command traffic keeps
            // probing every zone — including one that has gone dark,
            // where the retries burn the reliable plane's budget and
            // show up in the per-link expiry counters.
            for z in 0..cfg.zones {
                // The gate observes the believed signal every tick —
                // masked runs included — so its slope state never
                // depends on whether the intervention is suppressed.
                let gate_on = throttle_gates[z].observe(believed_backlog[z] as f64);
                let want = !mask.suppresses(InterventionClass::ComposeThrottle) && gate_on;
                // The periodic refresh is the command plane's re-issue
                // mechanism; masking `CommsReissue` leaves only
                // change-triggered sends.
                let refresh = mask.allows(InterventionClass::CommsReissue)
                    && t % THROTTLE_REFRESH == z as u64 % THROTTLE_REFRESH;
                if want != ctrl_throttle[z] {
                    log.record_with(|| {
                        Explanation::new(now, "ladder:throttle")
                            .because("zone", z as f64)
                            .because("on", f64::from(u8::from(want)))
                            .because("believed_backlog", believed_backlog[z] as f64)
                            .because("backlog_slope", throttle_gates[z].slope())
                    });
                } else if refresh && want {
                    // Anchor only the re-issues that keep an *active*
                    // throttle alive — the consequential ones — so the
                    // shared ring is not flooded in benign stretches.
                    log.record_with(|| {
                        Explanation::new(now, format!("comms:reissue:{ctrl}->{z}"))
                            .because("on", 1.0)
                    });
                }
                if want != ctrl_throttle[z] || refresh {
                    ctrl_throttle[z] = want;
                    comms.send(
                        plane,
                        ctrl,
                        z,
                        CityEvent::Throttle { on: want },
                        now,
                        &mut log,
                    );
                }
            }
        }
        comms_inbox.clear();
        comms.step_into(plane, now, &mut log, &mut comms_inbox);
        for d in comms_inbox.drain(..) {
            match d.payload {
                CityEvent::Report {
                    backlog,
                    gateway_pressure,
                } if d.dst == ctrl => {
                    let src = d.src.min(cfg.zones - 1);
                    if last_report_seq[src].is_none_or(|s| d.seq > s) {
                        last_report_seq[src] = Some(d.seq);
                        believed_backlog[src] = backlog;
                        believed_pressure[src] = gateway_pressure;
                    }
                }
                CityEvent::Directive { shed, rehome }
                    if d.dst == cam_head && last_directive_seq.is_none_or(|s| d.seq > s) =>
                {
                    last_directive_seq = Some(d.seq);
                    head_shed = shed;
                    head_rehome = rehome;
                    head_rehome.resize(cfg.zones, None);
                }
                CityEvent::Throttle { on }
                    if d.dst < cfg.zones && last_throttle_seq[d.dst].is_none_or(|s| d.seq > s) =>
                {
                    last_throttle_seq[d.dst] = Some(d.seq);
                    throttled[d.dst] = on;
                }
                _ => {}
            }
        }
        drop(comms_span);
        drop(act_span);

        // --- Meta-self-awareness over the router. ------------------
        if let Some(s) = &mut supervision {
            if tick_transit_n > 0 {
                let mean = tick_transit_sum / f64::from(tick_transit_n);
                s.realized = Some(match s.realized {
                    Some(r) => 0.9 * r + 0.1 * mean,
                    None => mean,
                });
            }
            let realized = s.realized.unwrap_or(0.0);
            let mut est_sum = 0.0;
            let mut est_n = 0u32;
            for (c, cam) in cameras.iter().enumerate() {
                let home = cfg.zone_of(cam.position().x);
                if let Some(e) = router.route_estimate(ingress[c], cfg.gateway(home)) {
                    est_sum += e;
                    est_n += 1;
                }
            }
            let estimate = if est_n > 0 {
                est_sum / f64::from(est_n)
            } else {
                realized
            };
            let error = (estimate - realized).abs();
            s.sup.set_model(router.clone());
            let verdict = s.sup.observe(
                now,
                Evidence::scored(estimate, error).with_input(realized),
                &mut log,
            );
            if matches!(verdict, Verdict::RolledBack(_) | Verdict::FellBack(_)) {
                router = s.sup.model().clone();
            }
        }

        clock.wait_until(now + Tick(1));
    }

    // --- Metrics. ----------------------------------------------------
    let stats = comms.stats();
    let mut metrics = MetricSet::new();
    let det_f = detections.max(1) as f64;
    let srv_f = serviced.max(1) as f64;
    metrics.set("detections", detections as f64);
    metrics.set("serviced", serviced as f64);
    metrics.set("service_ratio", serviced as f64 / det_f);
    metrics.set(
        "on_time_ratio",
        serviced.saturating_sub(violations) as f64 / det_f,
    );
    metrics.set("coverage", detections as f64 / active_ticks.max(1) as f64);
    metrics.set("violation_rate", violations as f64 / srv_f);
    metrics.set("mean_latency", lat_sum / srv_f);
    metrics.set("tracking_quality", qual_sum / srv_f);
    metrics.set("tracking_error", err_sum / srv_f);
    metrics.set("net_dropped", net_dropped as f64);
    metrics.set("rejected", rejected as f64);
    metrics.set("tasks_lost", tasks_lost as f64);
    metrics.set("rehomed", rehomed as f64);
    metrics.set("shed_ticks", shed_ticks as f64);
    metrics.set("throttled_ticks", throttled_ticks as f64);
    metrics.set("cpn_injected", injected_net as f64);
    metrics.set("cpn_delivered", delivered_net as f64);
    metrics.set(
        "cpn_delivery_ratio",
        delivered_net as f64 / injected_net.max(1) as f64,
    );
    metrics.set("comms_sent", stats.sent as f64);
    metrics.set("comms_retries", stats.retries as f64);
    metrics.set("comms_expired", stats.expired as f64);
    metrics.set("comms_budget_exhausted", stats.budget_exhausted as f64);
    metrics.set("comms_partition_hits", stats.partition_hits as f64);
    let dead_zone_expired: u64 = (0..cfg.zones)
        .map(|z| stats.link_expired(ctrl, z) + stats.link_expired(z, ctrl))
        .sum();
    metrics.set("comms_dead_zone_expired", dead_zone_expired as f64);
    let sup_stats = supervision
        .as_ref()
        .map(|s| s.sup.stats())
        .unwrap_or_default();
    metrics.set("model_rollbacks", f64::from(sup_stats.rollbacks));
    metrics.set("model_fallbacks", f64::from(sup_stats.fallbacks));
    metrics.set(
        "quarantines",
        health
            .as_ref()
            .map_or(0.0, |h| h.quarantine_events() as f64),
    );
    metrics.set("quarantine_substitutions", quarantine_subs as f64);
    metrics.set(
        "energy",
        cores.iter().flatten().map(Core::energy).sum::<f64>(),
    );
    let utility = city_goal().utility(|k| metrics.get(k));
    metrics.set("utility", utility);

    CityResult {
        metrics,
        comms_stats: stats,
        log,
    }
}

/// Gateway admission: a detection becomes a backend task if the zone
/// is alive, not throttled, and under its buffer cap; otherwise it is
/// rejected after having consumed its path's bandwidth — the
/// mechanism by which a dead or saturated zone congests the network.
#[allow(clippy::too_many_arguments)]
fn admit(
    cfg: &CityConfig,
    cores: &mut [Vec<Core>],
    zone_dead: &[bool],
    throttled: &[bool],
    zone: usize,
    q_used: f64,
    q_true: f64,
    created: Tick,
    work_rng: &mut simkernel::rng::Rng,
    next_task_id: &mut u64,
    task_quality: &mut BTreeMap<u64, (f64, f64)>,
    rejected: &mut u64,
    class_salt: usize,
) {
    let backlog: u64 = cores[zone].iter().map(|c| c.queue_len() as u64).sum();
    let open = !zone_dead[zone] && !throttled[zone] && backlog < ADMIT_CAP;
    // The work draw happens whether or not the detection is admitted,
    // so every arm at the same seed sees the same demand stream.
    let u: f64 = work_rng.gen::<f64>();
    if !open {
        *rejected += 1;
        return;
    }
    let target = cores[zone]
        .iter()
        .enumerate()
        .filter(|(_, c)| c.is_online())
        .min_by(|(_, a), (_, b)| {
            a.backlog()
                .partial_cmp(&b.backlog())
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|(k, _)| k);
    let Some(k) = target else {
        *rejected += 1;
        return;
    };
    let class = match class_salt % 3 {
        0 => TaskClass::Compute,
        1 => TaskClass::Memory,
        _ => TaskClass::Interactive,
    };
    let id = *next_task_id;
    *next_task_id += 1;
    let work = cfg.mean_work * -(u.max(1e-12)).ln();
    task_quality.insert(id, (q_used, q_true));
    cores[zone][k].enqueue(Task {
        id,
        class,
        work,
        arrived: created,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::CityPolicy;
    use simkernel::Tick;
    use workloads::faults::SensorFaultKind;
    use workloads::FaultCampaign;

    fn run(policy: CityPolicy, steps: u64, seed: u64) -> CityResult {
        let seeds = SeedTree::new(seed);
        let cfg = CityConfig::standard(policy, steps, &seeds);
        run_city(&cfg, &seeds)
    }

    #[test]
    fn benign_run_services_most_detections() {
        let r = run(CityPolicy::supervised(), 800, 1);
        let m = &r.metrics;
        assert!(m.get("detections").unwrap() > 500.0, "{m:?}");
        let sr = m.get("service_ratio").unwrap();
        assert!(sr > 0.6, "benign service ratio too low: {m:?}");
        let cov = m.get("coverage").unwrap();
        assert!((0.0..=1.0).contains(&cov) && cov > 0.5, "{m:?}");
        assert!(m.get("tracking_quality").unwrap() > 0.2, "{m:?}");
        assert!(m.get("utility").is_some());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(CityPolicy::supervised(), 500, 9);
        let b = run(CityPolicy::supervised(), 500, 9);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.comms_stats, b.comms_stats);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run(CityPolicy::supervised(), 500, 1);
        let b = run(CityPolicy::supervised(), 500, 2);
        assert_ne!(a.metrics.get("serviced"), b.metrics.get("serviced"));
    }

    fn cascade_campaign(steps: u64, seeds: &SeedTree) -> FaultCampaign {
        // Zone 1's backend machines (one zone of three) go dark for
        // the middle of the run, overlapping the flash crowd; a net
        // partition on agent 1 heals *inside* the outage.
        FaultCampaign::new("cascade", seeds)
            .zone_outage(Tick(steps * 2 / 5), 3, 3, steps * 2 / 5)
            .net_partition(steps * 2 / 5 + 10, steps / 5, vec![1])
    }

    #[test]
    fn zone_outage_cascade_degrades_naive_more_than_supervised() {
        let steps = 1200;
        let arm = |policy: CityPolicy, seed: u64| {
            let seeds = SeedTree::new(seed);
            let mut cfg = CityConfig::standard(policy, steps, &seeds);
            cfg.campaign = cascade_campaign(steps, &seeds);
            run_city(&cfg, &seeds)
        };
        let mut aware_wins = 0;
        for seed in [3u64, 4, 5] {
            let sup = arm(CityPolicy::supervised(), seed);
            let naive = arm(CityPolicy::all_naive(), seed);
            if sup.metrics.get("utility") > naive.metrics.get("utility") {
                aware_wins += 1;
            }
            if seed == 3 {
                assert!(
                    sup.metrics.get("rehomed").unwrap() > 0.0,
                    "aware stack never re-homed: {:?}",
                    sup.metrics
                );
                assert_eq!(
                    naive.metrics.get("rehomed"),
                    Some(0.0),
                    "naive stack must not re-home"
                );
            }
        }
        assert!(aware_wins >= 2, "supervised won only {aware_wins}/3 seeds");
    }

    #[test]
    fn dead_zone_agent_burns_ctrl_link_budget() {
        let steps = 1000;
        let seeds = SeedTree::new(11);
        let mut cfg = CityConfig::standard(CityPolicy::supervised(), steps, &seeds);
        cfg.campaign = FaultCampaign::new("outage-only", &seeds).zone_outage(
            Tick(steps / 4),
            cfg.cores_per_zone,
            cfg.cores_per_zone,
            steps / 2,
        );
        let r = run_city(&cfg, &seeds);
        assert!(
            r.metrics.get("comms_dead_zone_expired").unwrap() > 0.0,
            "outage must expire command-plane traffic on the dead links: {:?}",
            r.metrics
        );
        assert!(
            r.comms_stats.link_expired(cfg.zones, 1) > 0,
            "per-link attribution missing: {:?}",
            r.comms_stats
        );
    }

    #[test]
    fn sensor_health_cuts_tracking_error_under_bias() {
        let steps = 1000;
        let arm = |health: bool| {
            let seeds = SeedTree::new(21);
            let mut policy = CityPolicy::supervised();
            policy.health = health;
            let mut cfg = CityConfig::standard(policy, steps, &seeds);
            cfg.campaign =
                FaultCampaign::new("bias", &seeds).fault(workloads::FaultEvent::sensor_fault(
                    Tick(steps / 4),
                    2,
                    SensorFaultKind::Bias { offset: 0.9 },
                    steps / 2,
                ));
            run_city(&cfg, &seeds)
        };
        let healed = arm(true);
        let raw = arm(false);
        assert!(
            healed.metrics.get("tracking_error").unwrap()
                < raw.metrics.get("tracking_error").unwrap(),
            "health layer must cut fidelity error: {:?} vs {:?}",
            healed.metrics,
            raw.metrics
        );
    }
}
