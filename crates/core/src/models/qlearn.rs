//! Tabular Q-learning: state-contingent action values, one step up
//! from bandits — used where the right action depends on an observed
//! regime (e.g. the multicore scheduler's task-class × thermal-state
//! mapping).

use serde::{Deserialize, Serialize};
use simkernel::rng::Rng;

/// Tabular Q-learning agent over `n_states × n_actions`.
///
/// Off-policy one-step Q-learning with ε-greedy behaviour:
///
/// ```text
/// Q(s,a) ← Q(s,a) + α [ r + γ max_a' Q(s',a') − Q(s,a) ]
/// ```
///
/// # Example
///
/// ```
/// use selfaware::models::qlearn::QLearner;
/// use simkernel::SeedTree;
///
/// // Two states; the rewarding action differs per state.
/// let mut q = QLearner::new(2, 2, 0.3, 0.0, 0.2);
/// let mut rng = SeedTree::new(1).rng("q");
/// for t in 0..2000u64 {
///     let s = (t % 2) as usize;
///     let a = q.select(s, &mut rng);
///     let r = if a == s { 1.0 } else { 0.0 };
///     q.update(s, a, r, (t as usize + 1) % 2);
/// }
/// assert_eq!(q.greedy(0), 0);
/// assert_eq!(q.greedy(1), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QLearner {
    n_states: usize,
    n_actions: usize,
    q: Vec<f64>,
    alpha: f64,
    gamma: f64,
    epsilon: f64,
    updates: u64,
}

impl QLearner {
    /// Creates a learner with learning rate `alpha`, discount `gamma`
    /// and exploration rate `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero, `alpha ∉ (0,1]`,
    /// `gamma ∉ [0,1)`, or `epsilon ∉ [0,1]`.
    #[must_use]
    pub fn new(n_states: usize, n_actions: usize, alpha: f64, gamma: f64, epsilon: f64) -> Self {
        assert!(n_states > 0 && n_actions > 0, "dimensions must be positive");
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        assert!((0.0..1.0).contains(&gamma), "gamma must be in [0,1)");
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0,1]");
        Self {
            n_states,
            n_actions,
            q: vec![0.0; n_states * n_actions],
            alpha,
            gamma,
            epsilon,
            updates: 0,
        }
    }

    fn idx(&self, s: usize, a: usize) -> usize {
        assert!(s < self.n_states, "state out of range");
        assert!(a < self.n_actions, "action out of range");
        s * self.n_actions + a
    }

    /// Q-value of `(state, action)`.
    ///
    /// # Panics
    ///
    /// Panics if `state` or `action` is out of range.
    #[must_use]
    pub fn q_value(&self, state: usize, action: usize) -> f64 {
        self.q[self.idx(state, action)]
    }

    /// Greedy action in `state` (ties to the lowest index).
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    #[must_use]
    pub fn greedy(&self, state: usize) -> usize {
        let base = self.idx(state, 0);
        let row = &self.q[base..base + self.n_actions];
        let mut best = 0;
        for (a, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = a;
            }
        }
        best
    }

    /// Maximum Q-value in `state`.
    #[must_use]
    pub fn max_q(&self, state: usize) -> f64 {
        self.q_value(state, self.greedy(state))
    }

    /// ε-greedy action selection.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn select(&mut self, state: usize, rng: &mut Rng) -> usize {
        use rand::Rng as _;
        if rng.gen::<f64>() < self.epsilon {
            rng.gen_range(0..self.n_actions)
        } else {
            self.greedy(state)
        }
    }

    /// One-step Q-learning backup for transition
    /// `(state, action) → reward, next_state`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn update(&mut self, state: usize, action: usize, reward: f64, next_state: usize) {
        let target = reward + self.gamma * self.max_q(next_state);
        let i = self.idx(state, action);
        self.q[i] += self.alpha * (target - self.q[i]);
        self.updates += 1;
    }

    /// Number of backups applied.
    #[must_use]
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Current exploration rate.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Replaces the exploration rate (meta-adaptation hook).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon ∉ [0, 1]`.
    pub fn set_epsilon(&mut self, epsilon: f64) {
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0,1]");
        self.epsilon = epsilon;
    }

    /// Number of states.
    #[must_use]
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// Number of actions.
    #[must_use]
    pub fn n_actions(&self) -> usize {
        self.n_actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_state_contingent_policy() {
        let mut q = QLearner::new(3, 3, 0.2, 0.0, 0.2);
        let mut rng = simkernel::SeedTree::new(11).rng("q");
        for t in 0..6000u64 {
            let s = (t % 3) as usize;
            let a = q.select(s, &mut rng);
            // Best action in state s is (s+1) mod 3.
            let r = if a == (s + 1) % 3 { 1.0 } else { 0.0 };
            q.update(s, a, r, ((t + 1) % 3) as usize);
        }
        for s in 0..3 {
            assert_eq!(q.greedy(s), (s + 1) % 3, "state {s}");
        }
    }

    #[test]
    fn discounting_propagates_value() {
        // Chain MDP: s0 -a0-> s1 -a0-> s2(terminal reward 1).
        let mut q = QLearner::new(3, 1, 0.5, 0.9, 0.0);
        for _ in 0..200 {
            q.update(0, 0, 0.0, 1);
            q.update(1, 0, 1.0, 2);
            q.update(2, 0, 0.0, 2);
        }
        assert!(q.q_value(1, 0) > q.q_value(0, 0));
        assert!(q.q_value(0, 0) > 0.1, "value should propagate back");
    }

    #[test]
    fn zero_epsilon_is_greedy() {
        let mut q = QLearner::new(1, 2, 0.5, 0.0, 0.0);
        q.update(0, 1, 1.0, 0);
        let mut rng = simkernel::SeedTree::new(2).rng("g");
        for _ in 0..20 {
            assert_eq!(q.select(0, &mut rng), 1);
        }
    }

    #[test]
    fn counters_and_accessors() {
        let mut q = QLearner::new(2, 2, 0.1, 0.5, 0.3);
        assert_eq!(q.n_states(), 2);
        assert_eq!(q.n_actions(), 2);
        assert_eq!(q.updates(), 0);
        q.update(0, 0, 1.0, 1);
        assert_eq!(q.updates(), 1);
        q.set_epsilon(0.0);
        assert_eq!(q.epsilon(), 0.0);
    }

    #[test]
    #[should_panic(expected = "state out of range")]
    fn bad_state_panics() {
        let q = QLearner::new(2, 2, 0.1, 0.5, 0.3);
        let _ = q.q_value(5, 0);
    }

    #[test]
    #[should_panic(expected = "gamma must be in [0,1)")]
    fn gamma_one_panics() {
        let _ = QLearner::new(2, 2, 0.1, 1.0, 0.3);
    }
}
