//! Holt–Winters additive seasonal forecasting: level + trend +
//! seasonal components.
//!
//! The cloud case study's demand is diurnal (paper Section II:
//! workloads "change in their characteristics over time" — but often
//! *cyclically*). A forecaster that knows the season can anticipate
//! the evening peak hours ahead, where level/trend models only
//! extrapolate the last slope. [`HoltWinters`] is the classic additive
//! triple-exponential smoother; it needs the period as prior
//! knowledge, which is exactly the kind of coarse design-time hint
//! (24 h cycles exist) the paper's run-time philosophy still permits.

use super::{Forecaster, OnlineModel};
use serde::{Deserialize, Serialize};

/// Additive Holt–Winters forecaster with period `m`.
///
/// ```text
/// level_t  = α (x_t − season_{t−m}) + (1−α)(level_{t−1} + trend_{t−1})
/// trend_t  = β (level_t − level_{t−1}) + (1−β) trend_{t−1}
/// season_t = γ (x_t − level_t) + (1−γ) season_{t−m}
/// forecast(h) = level + h·trend + season_{t−m+h mod m}
/// ```
///
/// The first `m` observations initialise the seasonal profile (level =
/// their mean, season = deviation from it); forecasts are available
/// from observation `m + 1`.
///
/// # Example
///
/// ```
/// use selfaware::models::seasonal::HoltWinters;
/// use selfaware::models::{Forecaster, OnlineModel};
///
/// // Pure seasonal signal, period 8.
/// let mut hw = HoltWinters::new(0.2, 0.05, 0.3, 8);
/// let wave = |t: u64| (t % 8) as f64;
/// for t in 0..80 {
///     hw.observe(wave(t));
/// }
/// let pred = hw.forecast().unwrap();
/// assert!((pred - wave(80)).abs() < 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HoltWinters {
    alpha: f64,
    beta: f64,
    gamma: f64,
    period: usize,
    level: f64,
    trend: f64,
    season: Vec<f64>,
    warmup: Vec<f64>,
    n: u64,
}

impl HoltWinters {
    /// Creates a forecaster with level/trend/season smoothing factors
    /// and seasonal period `period`.
    ///
    /// # Panics
    ///
    /// Panics if any smoothing factor is outside `(0, 1]` or
    /// `period < 2`.
    #[must_use]
    pub fn new(alpha: f64, beta: f64, gamma: f64, period: usize) -> Self {
        for (name, v) in [("alpha", alpha), ("beta", beta), ("gamma", gamma)] {
            assert!(v > 0.0 && v <= 1.0, "{name} must be in (0,1]");
        }
        assert!(period >= 2, "period must be at least 2");
        Self {
            alpha,
            beta,
            gamma,
            period,
            level: 0.0,
            trend: 0.0,
            season: vec![0.0; period],
            warmup: Vec::with_capacity(period),
            n: 0,
        }
    }

    /// The seasonal period.
    #[must_use]
    pub fn period(&self) -> usize {
        self.period
    }

    /// Current level estimate (0 while warming up).
    #[must_use]
    pub fn level(&self) -> f64 {
        self.level
    }

    /// Current per-step trend estimate.
    #[must_use]
    pub fn trend(&self) -> f64 {
        self.trend
    }

    /// The learned seasonal profile (deviations from level), indexed
    /// by phase.
    #[must_use]
    pub fn seasonal_profile(&self) -> &[f64] {
        &self.season
    }

    fn phase(&self) -> usize {
        (self.n as usize) % self.period
    }

    fn is_warm(&self) -> bool {
        self.n as usize > self.period
    }
}

impl OnlineModel for HoltWinters {
    fn observe(&mut self, x: f64) {
        let m = self.period;
        if (self.n as usize) < m {
            // Collect one full cycle to initialise.
            self.warmup.push(x);
            self.n += 1;
            if self.n as usize == m {
                let mean = self.warmup.iter().sum::<f64>() / m as f64;
                self.level = mean;
                self.trend = 0.0;
                for (i, &v) in self.warmup.iter().enumerate() {
                    self.season[i] = v - mean;
                }
            }
            return;
        }
        let phase = self.phase();
        let prev_level = self.level;
        let s_old = self.season[phase];
        self.level = self.alpha * (x - s_old) + (1.0 - self.alpha) * (self.level + self.trend);
        self.trend = self.beta * (self.level - prev_level) + (1.0 - self.beta) * self.trend;
        self.season[phase] = self.gamma * (x - self.level) + (1.0 - self.gamma) * s_old;
        self.n += 1;
    }

    fn observations(&self) -> u64 {
        self.n
    }
}

impl Forecaster for HoltWinters {
    fn forecast(&self) -> Option<f64> {
        self.forecast_h(1)
    }

    fn forecast_h(&self, h: u32) -> Option<f64> {
        if !self.is_warm() {
            return None;
        }
        let h = h.max(1) as usize;
        let phase = (self.n as usize + h - 1) % self.period;
        Some(self.level + h as f64 * self.trend + self.season[phase])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::holt::Holt;

    fn seasonal_signal(t: u64) -> f64 {
        10.0 + [0.0, 3.0, 6.0, 4.0, 1.0, -2.0, -5.0, -3.0][(t % 8) as usize]
    }

    #[test]
    fn cold_until_one_full_cycle() {
        let mut hw = HoltWinters::new(0.3, 0.1, 0.3, 8);
        for t in 0..=8u64 {
            assert_eq!(hw.forecast(), None, "still cold at t={t}");
            hw.observe(seasonal_signal(t));
        }
        assert!(hw.forecast().is_some());
    }

    #[test]
    fn learns_pure_seasonal_pattern() {
        let mut hw = HoltWinters::new(0.2, 0.05, 0.4, 8);
        let mut err = 0.0;
        let mut count = 0;
        for t in 0..160u64 {
            if t > 80 {
                if let Some(p) = hw.forecast() {
                    err += (p - seasonal_signal(t)).abs();
                    count += 1;
                }
            }
            hw.observe(seasonal_signal(t));
        }
        assert!(count > 0);
        assert!(
            err / f64::from(count) < 0.2,
            "mae {}",
            err / f64::from(count)
        );
    }

    #[test]
    fn beats_holt_on_seasonal_data() {
        let mut hw = HoltWinters::new(0.2, 0.05, 0.4, 8);
        let mut holt = Holt::new(0.5, 0.2);
        let (mut err_hw, mut err_holt) = (0.0, 0.0);
        for t in 0..400u64 {
            let x = seasonal_signal(t);
            if t > 100 {
                err_hw += (hw.forecast().unwrap() - x).abs();
                err_holt += (holt.forecast().unwrap() - x).abs();
            }
            hw.observe(x);
            holt.observe(x);
        }
        assert!(
            err_hw < err_holt / 3.0,
            "holt-winters {err_hw} vs holt {err_holt}"
        );
    }

    #[test]
    fn tracks_season_plus_trend() {
        let mut hw = HoltWinters::new(0.3, 0.1, 0.4, 4);
        let signal = |t: u64| 0.5 * t as f64 + [0.0, 2.0, 0.0, -2.0][(t % 4) as usize];
        for t in 0..200u64 {
            hw.observe(signal(t));
        }
        let pred = hw.forecast().unwrap();
        assert!(
            (pred - signal(200)).abs() < 0.5,
            "pred {pred} truth {}",
            signal(200)
        );
        assert!((hw.trend() - 0.5).abs() < 0.1);
    }

    #[test]
    fn multi_step_forecast_respects_phase() {
        let mut hw = HoltWinters::new(0.2, 0.05, 0.4, 8);
        for t in 0..120u64 {
            hw.observe(seasonal_signal(t));
        }
        for h in 1..=8u32 {
            let pred = hw.forecast_h(h).unwrap();
            let truth = seasonal_signal(120 + u64::from(h) - 1);
            assert!(
                (pred - truth).abs() < 0.5,
                "h={h}: pred {pred}, truth {truth}"
            );
        }
    }

    #[test]
    fn seasonal_profile_shape() {
        let mut hw = HoltWinters::new(0.2, 0.05, 0.4, 8);
        for t in 0..160u64 {
            hw.observe(seasonal_signal(t));
        }
        let profile = hw.seasonal_profile();
        assert_eq!(profile.len(), 8);
        // Phase 2 is the peak (+6), phase 6 the trough (−5).
        let max_phase = (0..8).max_by(|&a, &b| profile[a].partial_cmp(&profile[b]).unwrap());
        let min_phase = (0..8).min_by(|&a, &b| profile[a].partial_cmp(&profile[b]).unwrap());
        assert_eq!(max_phase, Some(2));
        assert_eq!(min_phase, Some(6));
        assert_eq!(hw.period(), 8);
    }

    #[test]
    #[should_panic(expected = "period must be at least 2")]
    fn tiny_period_panics() {
        let _ = HoltWinters::new(0.2, 0.1, 0.2, 1);
    }

    #[test]
    #[should_panic(expected = "gamma must be in (0,1]")]
    fn bad_gamma_panics() {
        let _ = HoltWinters::new(0.2, 0.1, 0.0, 4);
    }
}
