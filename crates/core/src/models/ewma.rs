//! Exponentially weighted moving average: the minimal time-awareness
//! model.

use super::{Forecaster, OnlineModel};
use serde::{Deserialize, Serialize};

/// EWMA level estimator / one-step forecaster.
///
/// `level ← level + α (x − level)`. Small `α` = long memory.
///
/// # Example
///
/// ```
/// use selfaware::models::ewma::Ewma;
/// use selfaware::models::{Forecaster, OnlineModel};
///
/// let mut m = Ewma::new(0.5);
/// assert_eq!(m.forecast(), None); // cold
/// m.observe(10.0);
/// m.observe(20.0);
/// assert_eq!(m.forecast(), Some(15.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    level: f64,
    n: u64,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not in `(0, 1]`.
    #[must_use]
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0,1], got {alpha}"
        );
        Self {
            alpha,
            level: 0.0,
            n: 0,
        }
    }

    /// The smoothing factor.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Current smoothed level (0 while cold).
    #[must_use]
    pub fn level(&self) -> f64 {
        self.level
    }
}

impl OnlineModel for Ewma {
    fn observe(&mut self, x: f64) {
        if self.n == 0 {
            self.level = x;
        } else {
            self.level += self.alpha * (x - self.level);
        }
        self.n += 1;
    }

    fn observations(&self) -> u64 {
        self.n
    }
}

impl Forecaster for Ewma {
    fn forecast(&self) -> Option<f64> {
        (self.n > 0).then_some(self.level)
    }
}

/// EWMA of the *variance* of a signal, useful for volatility-aware
/// attention and anomaly scoring.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EwmaVariance {
    mean: Ewma,
    var: f64,
    alpha: f64,
    n: u64,
}

impl EwmaVariance {
    /// Creates an EWMA variance tracker with smoothing factor `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not in `(0, 1]`.
    #[must_use]
    pub fn new(alpha: f64) -> Self {
        Self {
            mean: Ewma::new(alpha),
            var: 0.0,
            alpha,
            n: 0,
        }
    }

    /// Feeds one observation.
    pub fn observe(&mut self, x: f64) {
        let prev_mean = self.mean.level();
        self.mean.observe(x);
        if self.n > 0 {
            let dev = (x - prev_mean) * (x - self.mean.level());
            self.var = (1.0 - self.alpha) * self.var + self.alpha * dev;
        }
        self.n += 1;
    }

    /// Smoothed variance estimate (0 while cold).
    #[must_use]
    pub fn variance(&self) -> f64 {
        self.var.max(0.0)
    }

    /// Smoothed standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smoothed mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean.level()
    }

    /// Standardised distance of `x` from the smoothed mean (0 when no
    /// variance has accumulated).
    #[must_use]
    pub fn z_score(&self, x: f64) -> f64 {
        let sd = self.std_dev();
        if sd < 1e-12 {
            0.0
        } else {
            (x - self.mean.level()) / sd
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_sets_level() {
        let mut m = Ewma::new(0.1);
        m.observe(42.0);
        assert_eq!(m.forecast(), Some(42.0));
        assert_eq!(m.observations(), 1);
    }

    #[test]
    fn converges_to_constant_signal() {
        let mut m = Ewma::new(0.3);
        for _ in 0..200 {
            m.observe(7.0);
        }
        assert!((m.level() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn tracks_step_change() {
        let mut m = Ewma::new(0.5);
        for _ in 0..50 {
            m.observe(0.0);
        }
        for _ in 0..50 {
            m.observe(10.0);
        }
        assert!((m.level() - 10.0).abs() < 0.01);
    }

    #[test]
    fn small_alpha_is_smoother() {
        let mut fast = Ewma::new(0.9);
        let mut slow = Ewma::new(0.1);
        for x in [0.0, 0.0, 0.0, 10.0] {
            fast.observe(x);
            slow.observe(x);
        }
        assert!(fast.level() > slow.level());
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0,1]")]
    fn invalid_alpha_panics() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0,1]")]
    fn alpha_above_one_panics() {
        let _ = Ewma::new(1.5);
    }

    #[test]
    fn variance_tracker_on_noise() {
        use rand::Rng as _;
        let mut v = EwmaVariance::new(0.05);
        let mut rng = simkernel::SeedTree::new(1).rng("noise");
        for _ in 0..5000 {
            v.observe(5.0 + rng.gen_range(-1.0..1.0));
        }
        // Uniform(-1,1) has variance 1/3.
        assert!((v.mean() - 5.0).abs() < 0.2);
        assert!((v.variance() - 1.0 / 3.0).abs() < 0.15);
        assert!(v.z_score(5.0).abs() < 0.5);
        assert!(v.z_score(10.0) > 3.0);
    }

    #[test]
    fn variance_zero_for_constant() {
        let mut v = EwmaVariance::new(0.2);
        for _ in 0..100 {
            v.observe(3.0);
        }
        assert!(v.variance() < 1e-9);
        assert_eq!(v.z_score(99.0), 0.0);
    }
}
