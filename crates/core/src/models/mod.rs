//! Self-models: the learning and prediction machinery of
//! computational self-awareness.
//!
//! Section VI of the paper: self-aware systems "learn and adapt during
//! their lifetime on an ongoing basis, based on their sensed
//! experiences and the internal models that they build". This module
//! collects the *common techniques for self-awareness* catalogued by
//! Wang et al. \[61\] and Minku et al. \[60\] in the Lewis et al. book:
//!
//! * time-series forecasters — [`ewma::Ewma`], [`holt::Holt`],
//!   [`seasonal::HoltWinters`], [`ar::ArModel`], [`kalman::Kalman1d`] —
//!   for **time-awareness**;
//! * state predictors — [`markov::MarkovChain`] — for discrete regime
//!   tracking;
//! * action-value learners — [`bandit`] (ε-greedy, UCB1, Exp3,
//!   softmax) and [`qlearn::QLearner`] — the workhorses of
//!   **self-expression** (acting on self-knowledge);
//! * change detectors — [`drift::PageHinkley`], [`drift::Cusum`],
//!   [`drift::WindowDrift`] — the triggers of **meta-self-awareness**
//!   (noticing that one's own models have gone stale);
//! * online regression — [`rls::Rls`] — for learned input→output
//!   self-models (self-prediction in Kounev's sense).
//!
//! All models are incremental (O(1) or O(window) per observation), as
//! required for the resource-constrained settings of paper Section V.

pub mod ar;
pub mod bandit;
pub mod drift;
pub mod ewma;
pub mod holt;
pub mod kalman;
pub mod markov;
pub mod qlearn;
pub mod rls;
pub mod seasonal;

/// An incrementally trained model over a scalar signal.
pub trait OnlineModel {
    /// Feeds one observation.
    fn observe(&mut self, x: f64);
    /// Number of observations seen so far.
    fn observations(&self) -> u64;
}

/// A model that can predict the next value of its signal.
///
/// `forecast` returns `None` while the model is *cold* (insufficient
/// data) — callers must handle the warm-up phase explicitly rather
/// than receive silent zeros.
pub trait Forecaster: OnlineModel {
    /// Predicts the next observation.
    fn forecast(&self) -> Option<f64>;

    /// Predicts `h` steps ahead. The default repeats the one-step
    /// forecast (appropriate for level-only models); trend-aware
    /// models override it.
    fn forecast_h(&self, h: u32) -> Option<f64> {
        let _ = h;
        self.forecast()
    }
}

#[cfg(test)]
mod tests {
    use super::ewma::Ewma;
    use super::*;

    #[test]
    fn forecaster_default_horizon_repeats() {
        let mut m = Ewma::new(0.5);
        m.observe(10.0);
        assert_eq!(m.forecast_h(5), m.forecast());
    }

    #[test]
    fn trait_objects_work() {
        // Forecaster must stay object-safe: heterogeneous model pools
        // (see `crate::meta`) rely on `Box<dyn Forecaster>`.
        let mut models: Vec<Box<dyn Forecaster>> = vec![
            Box::new(Ewma::new(0.2)),
            Box::new(super::holt::Holt::new(0.3, 0.1)),
        ];
        for m in &mut models {
            m.observe(1.0);
            m.observe(2.0);
            assert!(m.forecast().is_some());
            assert_eq!(m.observations(), 2);
        }
    }
}
