//! Scalar (1-D) Kalman filter: optimal linear state estimation for a
//! noisy level signal, with explicit uncertainty — the filter knows
//! *how sure it is*, which feeds meta-self-awareness and attention.

use super::{Forecaster, OnlineModel};
use serde::{Deserialize, Serialize};

/// 1-D Kalman filter with a random-walk state model.
///
/// ```text
/// state:       x_t = x_{t-1} + w,  w ~ N(0, q)
/// measurement: z_t = x_t + v,      v ~ N(0, r)
/// ```
///
/// # Example
///
/// ```
/// use selfaware::models::kalman::Kalman1d;
/// use selfaware::models::{Forecaster, OnlineModel};
///
/// let mut k = Kalman1d::new(0.01, 1.0);
/// for _ in 0..100 {
///     k.observe(5.0);
/// }
/// assert!((k.forecast().unwrap() - 5.0).abs() < 0.01);
/// assert!(k.variance() < 0.2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kalman1d {
    q: f64,
    r: f64,
    x: f64,
    p: f64,
    n: u64,
}

impl Kalman1d {
    /// Creates a filter with process noise `q` and measurement noise
    /// `r` (both variances).
    ///
    /// # Panics
    ///
    /// Panics if `q < 0` or `r <= 0`.
    #[must_use]
    pub fn new(q: f64, r: f64) -> Self {
        assert!(q >= 0.0, "process noise must be non-negative");
        assert!(r > 0.0, "measurement noise must be positive");
        Self {
            q,
            r,
            x: 0.0,
            p: 1e6, // diffuse prior
            n: 0,
        }
    }

    /// Current state estimate variance (uncertainty).
    #[must_use]
    pub fn variance(&self) -> f64 {
        self.p
    }

    /// Current Kalman gain (how much the last measurement moved the
    /// estimate); in `[0, 1]`.
    #[must_use]
    pub fn gain(&self) -> f64 {
        (self.p + self.q) / (self.p + self.q + self.r)
    }

    /// Normalised innovation of a hypothetical measurement `z`
    /// (distance from prediction in standard deviations).
    #[must_use]
    pub fn innovation_sigma(&self, z: f64) -> f64 {
        let s = (self.p + self.q + self.r).sqrt();
        if s < 1e-12 {
            0.0
        } else {
            (z - self.x) / s
        }
    }
}

impl OnlineModel for Kalman1d {
    fn observe(&mut self, z: f64) {
        // Predict.
        let p_pred = self.p + self.q;
        // Update.
        let k = p_pred / (p_pred + self.r);
        self.x += k * (z - self.x);
        self.p = (1.0 - k) * p_pred;
        self.n += 1;
    }

    fn observations(&self) -> u64 {
        self.n
    }
}

impl Forecaster for Kalman1d {
    fn forecast(&self) -> Option<f64> {
        (self.n > 0).then_some(self.x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng as _;

    #[test]
    fn converges_and_uncertainty_shrinks() {
        let mut k = Kalman1d::new(0.0, 1.0);
        let p0 = k.variance();
        for _ in 0..50 {
            k.observe(3.0);
        }
        assert!((k.forecast().unwrap() - 3.0).abs() < 1e-6);
        assert!(k.variance() < p0 / 1000.0);
    }

    #[test]
    fn filters_noise_better_than_raw() {
        let mut rng = simkernel::SeedTree::new(5).rng("kal");
        let mut k = Kalman1d::new(0.001, 1.0);
        let truth = 10.0;
        let mut raw_err = 0.0;
        let mut kal_err = 0.0;
        let mut count = 0.0;
        for _ in 0..2000 {
            let z = truth + rng.gen_range(-1.0..1.0);
            k.observe(z);
            if k.observations() > 100 {
                raw_err += (z - truth).abs();
                kal_err += (k.forecast().unwrap() - truth).abs();
                count += 1.0;
            }
        }
        assert!(kal_err / count < 0.2 * (raw_err / count));
    }

    #[test]
    fn tracks_random_walk() {
        let mut rng = simkernel::SeedTree::new(6).rng("walk");
        let mut k = Kalman1d::new(0.5, 0.5);
        let mut truth = 0.0;
        for _ in 0..500 {
            truth += rng.gen_range(-0.5..0.5);
            k.observe(truth + rng.gen_range(-0.5..0.5));
        }
        assert!((k.forecast().unwrap() - truth).abs() < 1.5);
    }

    #[test]
    fn gain_reflects_noise_ratio() {
        // Trust measurements when r is small relative to q.
        let mut trusting = Kalman1d::new(1.0, 0.01);
        let mut sceptical = Kalman1d::new(0.01, 10.0);
        for _ in 0..100 {
            trusting.observe(1.0);
            sceptical.observe(1.0);
        }
        assert!(trusting.gain() > sceptical.gain());
    }

    #[test]
    fn innovation_sigma_flags_surprise() {
        let mut k = Kalman1d::new(0.001, 0.1);
        for _ in 0..100 {
            k.observe(2.0);
        }
        assert!(k.innovation_sigma(2.0).abs() < 0.5);
        assert!(k.innovation_sigma(20.0) > 3.0);
    }

    #[test]
    #[should_panic(expected = "measurement noise must be positive")]
    fn zero_r_panics() {
        let _ = Kalman1d::new(0.1, 0.0);
    }

    #[test]
    fn cold_forecast_is_none() {
        let k = Kalman1d::new(0.1, 1.0);
        assert_eq!(k.forecast(), None);
    }
}
