//! Multi-armed bandits: the paper's archetypal "simple learning
//! scheme" for self-expression (cf. the cognitive packet network's
//! route learning, Section III, and the camera-network handover
//! strategies of ref \[13\]).
//!
//! All bandits implement the object-safe [`Bandit`] trait so substrate
//! crates can swap exploration strategies behind one interface.

use serde::{Deserialize, Serialize};
use simkernel::rng::Rng;

/// An action-value learner over a fixed arm set.
pub trait Bandit {
    /// Number of arms.
    fn arms(&self) -> usize;
    /// Chooses an arm.
    fn select(&mut self, rng: &mut Rng) -> usize;
    /// Reports the reward obtained by pulling `arm`.
    fn update(&mut self, arm: usize, reward: f64);
    /// Current value estimate of `arm`.
    fn expected(&self, arm: usize) -> f64;
    /// Total pulls so far.
    fn pulls(&self) -> u64;

    /// The arm with the highest current estimate (exploitation-only
    /// view; ties to the lowest index).
    fn best_arm(&self) -> usize {
        (0..self.arms())
            .max_by(|&a, &b| {
                self.expected(a)
                    .partial_cmp(&self.expected(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(0)
    }

    /// Normalised probability-like preference vector over arms (from
    /// the value estimates, softmax with unit temperature). Used by
    /// diversity metrics in the camera-network experiments.
    fn preference(&self) -> Vec<f64> {
        let vals: Vec<f64> = (0..self.arms()).map(|a| self.expected(a)).collect();
        softmax(&vals, 1.0)
    }
}

/// Numerically stable softmax with temperature `tau`.
#[must_use]
pub fn softmax(values: &[f64], tau: f64) -> Vec<f64> {
    if values.is_empty() {
        return Vec::new();
    }
    let t = tau.max(1e-9);
    let m = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = values.iter().map(|v| ((v - m) / t).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

fn sample_discrete(probs: &[f64], rng: &mut Rng) -> usize {
    use rand::Rng as _;
    let mut u: f64 = rng.gen::<f64>();
    for (i, &p) in probs.iter().enumerate() {
        if u < p {
            return i;
        }
        u -= p;
    }
    probs.len().saturating_sub(1)
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ArmStats {
    pulls: u64,
    value: f64,
}

/// ε-greedy bandit with incremental (optionally recency-weighted)
/// value estimates.
///
/// With `step_size = None` the estimate is the sample mean (stationary
/// rewards); with `Some(α)` it is an exponential recency-weighted
/// average, appropriate for the *non-stationary* environments the
/// paper emphasises.
///
/// # Example
///
/// ```
/// use selfaware::models::bandit::{Bandit, EpsilonGreedy};
/// use simkernel::SeedTree;
///
/// let mut b = EpsilonGreedy::new(3, 0.1, None);
/// let mut rng = SeedTree::new(1).rng("bandit");
/// for _ in 0..300 {
///     let arm = b.select(&mut rng);
///     let reward = if arm == 2 { 1.0 } else { 0.0 };
///     b.update(arm, reward);
/// }
/// assert_eq!(b.best_arm(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpsilonGreedy {
    arms: Vec<ArmStats>,
    epsilon: f64,
    step_size: Option<f64>,
    total_pulls: u64,
}

impl EpsilonGreedy {
    /// Creates an ε-greedy bandit.
    ///
    /// # Panics
    ///
    /// Panics if `n_arms == 0`, `epsilon ∉ [0, 1]`, or
    /// `step_size ∉ (0, 1]` when provided.
    #[must_use]
    pub fn new(n_arms: usize, epsilon: f64, step_size: Option<f64>) -> Self {
        assert!(n_arms > 0, "need at least one arm");
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0,1]");
        if let Some(a) = step_size {
            assert!(a > 0.0 && a <= 1.0, "step size must be in (0,1]");
        }
        Self {
            arms: vec![
                ArmStats {
                    pulls: 0,
                    value: 0.0
                };
                n_arms
            ],
            epsilon,
            step_size,
            total_pulls: 0,
        }
    }

    /// Current exploration rate.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Replaces the exploration rate (used by meta-level parameter
    /// self-adaptation).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon ∉ [0, 1]`.
    pub fn set_epsilon(&mut self, epsilon: f64) {
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0,1]");
        self.epsilon = epsilon;
    }
}

impl Bandit for EpsilonGreedy {
    fn arms(&self) -> usize {
        self.arms.len()
    }

    fn select(&mut self, rng: &mut Rng) -> usize {
        use rand::Rng as _;
        if rng.gen::<f64>() < self.epsilon {
            rng.gen_range(0..self.arms.len())
        } else {
            self.best_arm()
        }
    }

    fn update(&mut self, arm: usize, reward: f64) {
        let a = &mut self.arms[arm];
        a.pulls += 1;
        self.total_pulls += 1;
        let step = self.step_size.unwrap_or(1.0 / a.pulls as f64);
        a.value += step * (reward - a.value);
    }

    fn expected(&self, arm: usize) -> f64 {
        self.arms[arm].value
    }

    fn pulls(&self) -> u64 {
        self.total_pulls
    }
}

/// UCB1 bandit (Auer et al.): deterministic optimism in the face of
/// uncertainty; strong on stationary rewards.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ucb1 {
    arms: Vec<ArmStats>,
    c: f64,
    total_pulls: u64,
}

impl Ucb1 {
    /// Creates a UCB1 bandit with exploration constant `c`
    /// (the classic value is √2).
    ///
    /// # Panics
    ///
    /// Panics if `n_arms == 0` or `c < 0`.
    #[must_use]
    pub fn new(n_arms: usize, c: f64) -> Self {
        assert!(n_arms > 0, "need at least one arm");
        assert!(c >= 0.0, "exploration constant must be non-negative");
        Self {
            arms: vec![
                ArmStats {
                    pulls: 0,
                    value: 0.0
                };
                n_arms
            ],
            c,
            total_pulls: 0,
        }
    }

    /// Upper confidence bound of `arm` at the current pull count.
    #[must_use]
    pub fn ucb(&self, arm: usize) -> f64 {
        let a = &self.arms[arm];
        if a.pulls == 0 {
            return f64::INFINITY;
        }
        let t = (self.total_pulls.max(1)) as f64;
        a.value + self.c * (t.ln() / a.pulls as f64).sqrt()
    }
}

impl Bandit for Ucb1 {
    fn arms(&self) -> usize {
        self.arms.len()
    }

    fn select(&mut self, _rng: &mut Rng) -> usize {
        (0..self.arms.len())
            .max_by(|&a, &b| {
                self.ucb(a)
                    .partial_cmp(&self.ucb(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(0)
    }

    fn update(&mut self, arm: usize, reward: f64) {
        let a = &mut self.arms[arm];
        a.pulls += 1;
        self.total_pulls += 1;
        a.value += (reward - a.value) / a.pulls as f64;
    }

    fn expected(&self, arm: usize) -> f64 {
        self.arms[arm].value
    }

    fn pulls(&self) -> u64 {
        self.total_pulls
    }
}

/// Exp3 (exponential-weight) bandit: designed for adversarial /
/// non-stationary rewards — the regime the paper's environments live
/// in. Rewards must lie in `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Exp3 {
    weights: Vec<f64>,
    gamma: f64,
    last_probs: Vec<f64>,
    total_pulls: u64,
}

impl Exp3 {
    /// Creates an Exp3 bandit with exploration mix `gamma ∈ (0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `n_arms == 0` or `gamma ∉ (0, 1]`.
    #[must_use]
    pub fn new(n_arms: usize, gamma: f64) -> Self {
        assert!(n_arms > 0, "need at least one arm");
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0,1]");
        Self {
            weights: vec![1.0; n_arms],
            gamma,
            last_probs: vec![1.0 / n_arms as f64; n_arms],
            total_pulls: 0,
        }
    }

    fn probs(&self) -> Vec<f64> {
        let k = self.weights.len() as f64;
        let wsum: f64 = self.weights.iter().sum();
        self.weights
            .iter()
            .map(|w| (1.0 - self.gamma) * (w / wsum) + self.gamma / k)
            .collect()
    }
}

impl Bandit for Exp3 {
    fn arms(&self) -> usize {
        self.weights.len()
    }

    fn select(&mut self, rng: &mut Rng) -> usize {
        let p = self.probs();
        self.last_probs = p.clone();
        sample_discrete(&p, rng)
    }

    fn update(&mut self, arm: usize, reward: f64) {
        let reward = reward.clamp(0.0, 1.0);
        let p = self.last_probs[arm].max(1e-9);
        let est = reward / p;
        let k = self.weights.len() as f64;
        self.weights[arm] *= (self.gamma * est / k).exp();
        // Renormalise to avoid overflow in long runs.
        let max_w = self.weights.iter().cloned().fold(f64::MIN, f64::max);
        if max_w > 1e100 {
            for w in &mut self.weights {
                *w /= max_w;
            }
        }
        self.total_pulls += 1;
    }

    fn expected(&self, arm: usize) -> f64 {
        // Exp3 maintains weights, not value estimates; expose the
        // normalised weight as the preference proxy.
        let wsum: f64 = self.weights.iter().sum();
        self.weights[arm] / wsum
    }

    fn pulls(&self) -> u64 {
        self.total_pulls
    }
}

/// Boltzmann (softmax) bandit with recency-weighted values: smooth
/// stochastic preference, tunable temperature.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoftmaxBandit {
    arms: Vec<ArmStats>,
    tau: f64,
    step_size: f64,
    total_pulls: u64,
}

impl SoftmaxBandit {
    /// Creates a softmax bandit with temperature `tau` and value step
    /// size `step_size`.
    ///
    /// # Panics
    ///
    /// Panics if `n_arms == 0`, `tau <= 0`, or `step_size ∉ (0, 1]`.
    #[must_use]
    pub fn new(n_arms: usize, tau: f64, step_size: f64) -> Self {
        assert!(n_arms > 0, "need at least one arm");
        assert!(tau > 0.0, "temperature must be positive");
        assert!(
            step_size > 0.0 && step_size <= 1.0,
            "step size must be in (0,1]"
        );
        Self {
            arms: vec![
                ArmStats {
                    pulls: 0,
                    value: 0.0
                };
                n_arms
            ],
            tau,
            step_size,
            total_pulls: 0,
        }
    }

    /// Current temperature.
    #[must_use]
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// Replaces the temperature (meta-level self-adaptation hook).
    ///
    /// # Panics
    ///
    /// Panics if `tau <= 0`.
    pub fn set_tau(&mut self, tau: f64) {
        assert!(tau > 0.0, "temperature must be positive");
        self.tau = tau;
    }
}

impl Bandit for SoftmaxBandit {
    fn arms(&self) -> usize {
        self.arms.len()
    }

    fn select(&mut self, rng: &mut Rng) -> usize {
        let vals: Vec<f64> = self.arms.iter().map(|a| a.value).collect();
        let p = softmax(&vals, self.tau);
        sample_discrete(&p, rng)
    }

    fn update(&mut self, arm: usize, reward: f64) {
        let a = &mut self.arms[arm];
        a.pulls += 1;
        self.total_pulls += 1;
        a.value += self.step_size * (reward - a.value);
    }

    fn expected(&self, arm: usize) -> f64 {
        self.arms[arm].value
    }

    fn pulls(&self) -> u64 {
        self.total_pulls
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng as _;

    fn run_bernoulli<B: Bandit>(b: &mut B, probs: &[f64], steps: u32, seed: u64) -> f64 {
        let mut rng = simkernel::SeedTree::new(seed).rng("bandit-test");
        let mut total = 0.0;
        for _ in 0..steps {
            let arm = b.select(&mut rng);
            let r = if rng.gen::<f64>() < probs[arm] {
                1.0
            } else {
                0.0
            };
            b.update(arm, r);
            total += r;
        }
        total / f64::from(steps)
    }

    #[test]
    fn epsilon_greedy_finds_best_arm() {
        let mut b = EpsilonGreedy::new(4, 0.1, None);
        let avg = run_bernoulli(&mut b, &[0.1, 0.2, 0.8, 0.3], 3000, 1);
        assert_eq!(b.best_arm(), 2);
        assert!(avg > 0.6, "average reward {avg} should approach 0.8");
    }

    #[test]
    fn ucb1_finds_best_arm() {
        let mut b = Ucb1::new(4, std::f64::consts::SQRT_2);
        run_bernoulli(&mut b, &[0.1, 0.2, 0.8, 0.3], 3000, 2);
        assert_eq!(b.best_arm(), 2);
        assert!((b.expected(2) - 0.8).abs() < 0.1);
    }

    #[test]
    fn ucb1_tries_every_arm_first() {
        let mut b = Ucb1::new(5, 1.0);
        let mut rng = simkernel::SeedTree::new(3).rng("x");
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5 {
            let arm = b.select(&mut rng);
            b.update(arm, 0.5);
            seen.insert(arm);
        }
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn exp3_finds_best_arm() {
        let mut b = Exp3::new(3, 0.1);
        run_bernoulli(&mut b, &[0.2, 0.9, 0.3], 5000, 4);
        assert_eq!(b.best_arm(), 1);
    }

    #[test]
    fn softmax_finds_best_arm() {
        let mut b = SoftmaxBandit::new(3, 0.1, 0.1);
        run_bernoulli(&mut b, &[0.2, 0.3, 0.9], 4000, 5);
        assert_eq!(b.best_arm(), 2);
    }

    #[test]
    fn recency_weighted_adapts_to_switch() {
        // Arm 0 good for the first half, arm 1 for the second; the
        // recency-weighted learner must follow the switch.
        let mut b = EpsilonGreedy::new(2, 0.1, Some(0.1));
        let mut rng = simkernel::SeedTree::new(6).rng("switch");
        for t in 0..4000 {
            let arm = b.select(&mut rng);
            let good = if t < 2000 { 0 } else { 1 };
            let p = if arm == good { 0.9 } else { 0.1 };
            let r = if rng.gen::<f64>() < p { 1.0 } else { 0.0 };
            b.update(arm, r);
        }
        assert_eq!(b.best_arm(), 1);
    }

    #[test]
    fn sample_mean_slower_to_adapt_than_recency() {
        let run = |step: Option<f64>| {
            let mut b = EpsilonGreedy::new(2, 0.1, step);
            let mut rng = simkernel::SeedTree::new(7).rng("cmp");
            let mut second_half = 0.0;
            for t in 0..4000 {
                let arm = b.select(&mut rng);
                let good = if t < 2000 { 0 } else { 1 };
                let p = if arm == good { 0.9 } else { 0.1 };
                let r = if rng.gen::<f64>() < p { 1.0 } else { 0.0 };
                b.update(arm, r);
                if t >= 2000 {
                    second_half += r;
                }
            }
            second_half
        };
        assert!(run(Some(0.1)) > run(None));
    }

    #[test]
    fn softmax_helper_properties() {
        let p = softmax(&[1.0, 2.0, 3.0], 1.0);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p[2] > p[1] && p[1] > p[0]);
        // Low temperature sharpens.
        let sharp = softmax(&[1.0, 2.0, 3.0], 0.1);
        assert!(sharp[2] > p[2]);
        assert!(softmax(&[], 1.0).is_empty());
    }

    #[test]
    fn preference_vector_is_distribution() {
        let mut b = EpsilonGreedy::new(3, 0.1, None);
        b.update(0, 1.0);
        b.update(1, 0.0);
        let pref = b.preference();
        assert_eq!(pref.len(), 3);
        assert!((pref.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(pref[0] > pref[1]);
    }

    #[test]
    fn exp3_rewards_clamped_and_stable() {
        let mut b = Exp3::new(2, 0.3);
        let mut rng = simkernel::SeedTree::new(8).rng("clamp");
        for _ in 0..10_000 {
            let arm = b.select(&mut rng);
            b.update(arm, 100.0); // out-of-range reward gets clamped
        }
        assert!(b.expected(0).is_finite());
        assert!(b.expected(1).is_finite());
    }

    #[test]
    #[should_panic(expected = "epsilon must be in [0,1]")]
    fn bad_epsilon_panics() {
        let _ = EpsilonGreedy::new(2, 1.5, None);
    }

    #[test]
    #[should_panic(expected = "need at least one arm")]
    fn zero_arms_panics() {
        let _ = Ucb1::new(0, 1.0);
    }

    #[test]
    fn set_epsilon_and_tau() {
        let mut e = EpsilonGreedy::new(2, 0.5, None);
        e.set_epsilon(0.01);
        assert_eq!(e.epsilon(), 0.01);
        let mut s = SoftmaxBandit::new(2, 1.0, 0.5);
        s.set_tau(0.2);
        assert_eq!(s.tau(), 0.2);
    }
}
