//! Concept-drift / change detection: the *trigger* of
//! meta-self-awareness.
//!
//! A self-aware system must notice when the world has changed enough
//! that its own models are stale (paper Sections II and IV; Minku's
//! DDD ensemble work \[9\] is the cited exemplar of drift handling).
//! Three detectors with different trade-offs are provided:
//!
//! * [`PageHinkley`] — classic sequential test for mean shifts;
//! * [`Cusum`] — two-sided cumulative-sum detector;
//! * [`WindowDrift`] — a lightweight ADWIN-style comparison of the
//!   recent window against the older reference window.

use serde::{Deserialize, Serialize};

/// A sequential change detector over a scalar stream.
pub trait DriftDetector {
    /// Feeds one observation; returns `true` if a change is detected
    /// at this sample (the detector resets itself on detection).
    fn observe(&mut self, x: f64) -> bool;
    /// Number of changes detected so far.
    fn detections(&self) -> u32;
    /// Resets internal state (keeps the detection counter).
    fn reset(&mut self);
}

/// Page–Hinkley test for (two-sided) mean shift.
///
/// # Example
///
/// ```
/// use selfaware::models::drift::{DriftDetector, PageHinkley};
///
/// let mut d = PageHinkley::new(0.05, 5.0);
/// for _ in 0..200 {
///     assert!(!d.observe(0.0));
/// }
/// let mut fired = false;
/// for _ in 0..50 {
///     fired |= d.observe(3.0); // mean shift
/// }
/// assert!(fired);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PageHinkley {
    delta: f64,
    lambda: f64,
    mean: f64,
    n: u64,
    m_up: f64,
    min_up: f64,
    m_dn: f64,
    max_dn: f64,
    detections: u32,
}

impl PageHinkley {
    /// Creates a detector with tolerance `delta` (magnitude of drift
    /// considered insignificant) and threshold `lambda`.
    ///
    /// # Panics
    ///
    /// Panics if `delta < 0` or `lambda <= 0`.
    #[must_use]
    pub fn new(delta: f64, lambda: f64) -> Self {
        assert!(delta >= 0.0, "delta must be non-negative");
        assert!(lambda > 0.0, "lambda must be positive");
        Self {
            delta,
            lambda,
            mean: 0.0,
            n: 0,
            m_up: 0.0,
            min_up: 0.0,
            m_dn: 0.0,
            max_dn: 0.0,
            detections: 0,
        }
    }
}

impl DriftDetector for PageHinkley {
    fn observe(&mut self, x: f64) -> bool {
        self.n += 1;
        self.mean += (x - self.mean) / self.n as f64;
        // Upward shift statistic.
        self.m_up += x - self.mean - self.delta;
        self.min_up = self.min_up.min(self.m_up);
        // Downward shift statistic.
        self.m_dn += x - self.mean + self.delta;
        self.max_dn = self.max_dn.max(self.m_dn);
        let up = self.m_up - self.min_up > self.lambda;
        let dn = self.max_dn - self.m_dn > self.lambda;
        if up || dn {
            self.detections += 1;
            self.reset();
            true
        } else {
            false
        }
    }

    fn detections(&self) -> u32 {
        self.detections
    }

    fn reset(&mut self) {
        self.mean = 0.0;
        self.n = 0;
        self.m_up = 0.0;
        self.min_up = 0.0;
        self.m_dn = 0.0;
        self.max_dn = 0.0;
    }
}

/// Two-sided CUSUM detector around a fixed or learned reference level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cusum {
    k: f64,
    h: f64,
    target: Option<f64>,
    learned: f64,
    n: u64,
    s_hi: f64,
    s_lo: f64,
    detections: u32,
}

impl Cusum {
    /// Creates a CUSUM with slack `k` and decision threshold `h`,
    /// learning the reference level from the stream itself.
    ///
    /// # Panics
    ///
    /// Panics if `k < 0` or `h <= 0`.
    #[must_use]
    pub fn new(k: f64, h: f64) -> Self {
        assert!(k >= 0.0, "slack must be non-negative");
        assert!(h > 0.0, "threshold must be positive");
        Self {
            k,
            h,
            target: None,
            learned: 0.0,
            n: 0,
            s_hi: 0.0,
            s_lo: 0.0,
            detections: 0,
        }
    }

    /// Uses a fixed reference level instead of learning one.
    #[must_use]
    pub fn with_target(mut self, target: f64) -> Self {
        self.target = Some(target);
        self
    }

    fn reference(&self) -> f64 {
        self.target.unwrap_or(self.learned)
    }
}

impl DriftDetector for Cusum {
    fn observe(&mut self, x: f64) -> bool {
        if self.target.is_none() {
            self.n += 1;
            self.learned += (x - self.learned) / self.n as f64;
        }
        let dev = x - self.reference();
        self.s_hi = (self.s_hi + dev - self.k).max(0.0);
        self.s_lo = (self.s_lo - dev - self.k).max(0.0);
        if self.s_hi > self.h || self.s_lo > self.h {
            self.detections += 1;
            self.reset();
            true
        } else {
            false
        }
    }

    fn detections(&self) -> u32 {
        self.detections
    }

    fn reset(&mut self) {
        self.s_hi = 0.0;
        self.s_lo = 0.0;
        self.n = 0;
        self.learned = 0.0;
    }
}

/// ADWIN-style two-window mean comparison: a reference window of the
/// older past versus a head window of the recent past; drift is flagged
/// when their means differ by more than `threshold` standard errors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowDrift {
    window: usize,
    threshold: f64,
    buf: Vec<f64>,
    detections: u32,
}

impl WindowDrift {
    /// Creates a detector with half-window size `window` and z-score
    /// `threshold`.
    ///
    /// # Panics
    ///
    /// Panics if `window < 4` or `threshold <= 0`.
    #[must_use]
    pub fn new(window: usize, threshold: f64) -> Self {
        assert!(window >= 4, "window must be at least 4");
        assert!(threshold > 0.0, "threshold must be positive");
        Self {
            window,
            threshold,
            buf: Vec::new(),
            detections: 0,
        }
    }

    fn mean_var(slice: &[f64]) -> (f64, f64) {
        let n = slice.len() as f64;
        let mean = slice.iter().sum::<f64>() / n;
        let var = slice.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n.max(1.0);
        (mean, var)
    }
}

impl DriftDetector for WindowDrift {
    fn observe(&mut self, x: f64) -> bool {
        self.buf.push(x);
        if self.buf.len() > 2 * self.window {
            self.buf.remove(0);
        }
        if self.buf.len() < 2 * self.window {
            return false;
        }
        let (old, new) = self.buf.split_at(self.window);
        let (m0, v0) = Self::mean_var(old);
        let (m1, v1) = Self::mean_var(new);
        let se = ((v0 + v1) / self.window as f64).sqrt().max(1e-9);
        if ((m1 - m0) / se).abs() > self.threshold {
            self.detections += 1;
            self.reset();
            true
        } else {
            false
        }
    }

    fn detections(&self) -> u32 {
        self.detections
    }

    fn reset(&mut self) {
        self.buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng as _;

    fn noisy_step_stream(seed: u64, pre: usize, post: usize, shift: f64) -> Vec<f64> {
        let mut rng = simkernel::SeedTree::new(seed).rng("drift");
        let mut v = Vec::new();
        for _ in 0..pre {
            v.push(rng.gen_range(-0.5..0.5));
        }
        for _ in 0..post {
            v.push(shift + rng.gen_range(-0.5..0.5));
        }
        v
    }

    fn detects_after_change<D: DriftDetector>(d: &mut D, stream: &[f64], change_at: usize) -> bool {
        for (i, &x) in stream.iter().enumerate() {
            if d.observe(x) {
                assert!(
                    i >= change_at,
                    "false alarm at sample {i} before the change at {change_at}"
                );
                return true;
            }
        }
        false
    }

    #[test]
    fn page_hinkley_detects_step() {
        let s = noisy_step_stream(1, 300, 100, 3.0);
        let mut d = PageHinkley::new(0.1, 20.0);
        assert!(detects_after_change(&mut d, &s, 300));
        assert_eq!(d.detections(), 1);
    }

    #[test]
    fn page_hinkley_detects_downward_step() {
        let s = noisy_step_stream(2, 300, 100, -3.0);
        let mut d = PageHinkley::new(0.1, 20.0);
        assert!(detects_after_change(&mut d, &s, 300));
    }

    #[test]
    fn page_hinkley_quiet_on_stationary() {
        let s = noisy_step_stream(3, 2000, 0, 0.0);
        let mut d = PageHinkley::new(0.1, 50.0);
        for x in s {
            assert!(!d.observe(x));
        }
        assert_eq!(d.detections(), 0);
    }

    #[test]
    fn cusum_detects_step() {
        let s = noisy_step_stream(4, 300, 100, 2.0);
        let mut d = Cusum::new(0.25, 8.0);
        assert!(detects_after_change(&mut d, &s, 300));
    }

    #[test]
    fn cusum_with_fixed_target() {
        let mut d = Cusum::new(0.25, 4.0).with_target(0.0);
        let mut fired = false;
        for _ in 0..50 {
            fired |= d.observe(1.5);
        }
        assert!(fired);
    }

    #[test]
    fn window_drift_detects_step() {
        let s = noisy_step_stream(5, 300, 100, 2.0);
        let mut d = WindowDrift::new(30, 4.0);
        assert!(detects_after_change(&mut d, &s, 300));
    }

    #[test]
    fn window_drift_quiet_on_stationary() {
        let s = noisy_step_stream(6, 3000, 0, 0.0);
        let mut d = WindowDrift::new(30, 6.0);
        let mut fired = 0;
        for x in s {
            if d.observe(x) {
                fired += 1;
            }
        }
        assert_eq!(fired, 0);
    }

    #[test]
    fn detectors_rearm_after_detection() {
        let mut d = PageHinkley::new(0.05, 10.0);
        let mut stream = noisy_step_stream(7, 200, 200, 3.0);
        stream.extend(noisy_step_stream(8, 0, 200, -3.0));
        let mut count = 0;
        for x in stream {
            if d.observe(x) {
                count += 1;
            }
        }
        assert!(count >= 2, "should detect both shifts, got {count}");
        assert_eq!(d.detections(), count);
    }

    #[test]
    #[should_panic(expected = "lambda must be positive")]
    fn bad_lambda_panics() {
        let _ = PageHinkley::new(0.1, 0.0);
    }

    #[test]
    #[should_panic(expected = "window must be at least 4")]
    fn tiny_window_panics() {
        let _ = WindowDrift::new(2, 3.0);
    }
}
