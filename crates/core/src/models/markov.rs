//! Empirical discrete-state Markov chain: regime tracking and
//! next-state prediction for signals that move between qualitative
//! modes (idle/busy/overloaded, attack/no-attack, ...).

use serde::{Deserialize, Serialize};
use simkernel::rng::Rng;

/// First-order Markov chain learned from observed state transitions.
///
/// States are `usize` indices in `0..n_states`. Transition counts use
/// Laplace smoothing so unseen transitions retain small probability.
///
/// # Example
///
/// ```
/// use selfaware::models::markov::MarkovChain;
///
/// let mut m = MarkovChain::new(2);
/// // Strongly alternating process: 0→1→0→1 ...
/// for t in 0..100 {
///     m.record(t % 2, (t + 1) % 2);
/// }
/// assert_eq!(m.most_likely_next(0), 1);
/// assert!(m.transition_prob(0, 1) > 0.9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarkovChain {
    n_states: usize,
    counts: Vec<Vec<f64>>,
    last_state: Option<usize>,
    transitions: u64,
}

impl MarkovChain {
    /// Creates a chain over `n_states` states.
    ///
    /// # Panics
    ///
    /// Panics if `n_states < 2`.
    #[must_use]
    pub fn new(n_states: usize) -> Self {
        assert!(n_states >= 2, "need at least two states");
        Self {
            n_states,
            counts: vec![vec![0.0; n_states]; n_states],
            last_state: None,
            transitions: 0,
        }
    }

    /// Number of states.
    #[must_use]
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// Records an explicit transition `from → to`.
    ///
    /// # Panics
    ///
    /// Panics if either state is out of range.
    pub fn record(&mut self, from: usize, to: usize) {
        assert!(
            from < self.n_states && to < self.n_states,
            "state out of range"
        );
        self.counts[from][to] += 1.0;
        self.transitions += 1;
        self.last_state = Some(to);
    }

    /// Feeds a state observation; transitions are inferred from
    /// consecutive observations.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn observe_state(&mut self, state: usize) {
        assert!(state < self.n_states, "state out of range");
        if let Some(prev) = self.last_state {
            self.counts[prev][state] += 1.0;
            self.transitions += 1;
        }
        self.last_state = Some(state);
    }

    /// Laplace-smoothed transition probability `from → to`.
    ///
    /// # Panics
    ///
    /// Panics if either state is out of range.
    #[must_use]
    pub fn transition_prob(&self, from: usize, to: usize) -> f64 {
        assert!(
            from < self.n_states && to < self.n_states,
            "state out of range"
        );
        let row_sum: f64 = self.counts[from].iter().sum();
        (self.counts[from][to] + 1.0) / (row_sum + self.n_states as f64)
    }

    /// Most likely successor of `from` (ties broken by lowest index).
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of range.
    #[must_use]
    pub fn most_likely_next(&self, from: usize) -> usize {
        assert!(from < self.n_states, "state out of range");
        let row = &self.counts[from];
        let mut best = 0;
        for (i, &c) in row.iter().enumerate() {
            if c > row[best] {
                best = i;
            }
        }
        best
    }

    /// Samples a successor of `from` from the smoothed distribution.
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of range.
    pub fn sample_next(&self, from: usize, rng: &mut Rng) -> usize {
        use rand::Rng as _;
        let probs: Vec<f64> = (0..self.n_states)
            .map(|to| self.transition_prob(from, to))
            .collect();
        let mut u: f64 = rng.gen::<f64>();
        for (i, &p) in probs.iter().enumerate() {
            if u < p {
                return i;
            }
            u -= p;
        }
        self.n_states - 1
    }

    /// Stationary distribution estimate via 64 power iterations from
    /// uniform. Returns a probability vector over states.
    #[must_use]
    pub fn stationary(&self) -> Vec<f64> {
        let n = self.n_states;
        let mut pi = vec![1.0 / n as f64; n];
        for _ in 0..64 {
            let mut next = vec![0.0; n];
            for (from, &pf) in pi.iter().enumerate() {
                for (to, slot) in next.iter_mut().enumerate() {
                    *slot += pf * self.transition_prob(from, to);
                }
            }
            pi = next;
        }
        pi
    }

    /// Number of recorded transitions.
    #[must_use]
    pub fn transitions(&self) -> u64 {
        self.transitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laplace_prior_is_uniform() {
        let m = MarkovChain::new(3);
        for to in 0..3 {
            assert!((m.transition_prob(0, to) - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn observe_state_infers_transitions() {
        let mut m = MarkovChain::new(2);
        for s in [0, 1, 0, 1, 0, 1] {
            m.observe_state(s);
        }
        assert_eq!(m.transitions(), 5);
        assert!(m.transition_prob(0, 1) > 0.7);
        assert!(m.transition_prob(1, 0) > 0.6);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let mut m = MarkovChain::new(4);
        for t in 0..50usize {
            m.record(t % 4, (t * 3 + 1) % 4);
        }
        for from in 0..4 {
            let s: f64 = (0..4).map(|to| m.transition_prob(from, to)).sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn stationary_of_symmetric_chain_is_uniform() {
        let mut m = MarkovChain::new(2);
        for _ in 0..100 {
            m.record(0, 1);
            m.record(1, 0);
        }
        let pi = m.stationary();
        assert!((pi[0] - 0.5).abs() < 0.01);
        assert!((pi[1] - 0.5).abs() < 0.01);
    }

    #[test]
    fn stationary_favours_sticky_state() {
        let mut m = MarkovChain::new(2);
        // state 0 very sticky, state 1 flees immediately
        for _ in 0..90 {
            m.record(0, 0);
        }
        for _ in 0..10 {
            m.record(0, 1);
        }
        for _ in 0..100 {
            m.record(1, 0);
        }
        let pi = m.stationary();
        assert!(pi[0] > 0.8);
    }

    #[test]
    fn sampling_respects_distribution() {
        let mut m = MarkovChain::new(2);
        for _ in 0..1000 {
            m.record(0, 1);
        }
        let mut rng = simkernel::SeedTree::new(3).rng("mc");
        let ones = (0..500).filter(|_| m.sample_next(0, &mut rng) == 1).count();
        assert!(ones > 450, "got {ones}/500 ones");
    }

    #[test]
    #[should_panic(expected = "state out of range")]
    fn out_of_range_state_panics() {
        let mut m = MarkovChain::new(2);
        m.record(0, 5);
    }

    #[test]
    #[should_panic(expected = "need at least two states")]
    fn single_state_panics() {
        let _ = MarkovChain::new(1);
    }
}
