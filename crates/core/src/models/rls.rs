//! Recursive least squares: online multi-feature linear self-models.
//!
//! Kounev's *self-prediction* (paper Section III) — "the ability to
//! predict the effects of environmental changes and of actions" —
//! needs an input→output model of the system itself, learned at run
//! time. [`Rls`] fits `y ≈ wᵀx` incrementally with exponential
//! forgetting, so the self-model tracks a drifting system.

// Textbook index-form linear algebra reads clearer than iterator chains here.
#![allow(clippy::needless_range_loop)]
use serde::{Deserialize, Serialize};

/// Recursive least squares with forgetting factor.
///
/// # Example
///
/// ```
/// use selfaware::models::rls::Rls;
///
/// // Learn y = 2 x0 - 3 x1 + 1 (use a bias feature of 1.0).
/// let mut m = Rls::new(3, 1.0, 1000.0);
/// for i in 0..200 {
///     let x0 = (i % 7) as f64;
///     let x1 = (i % 5) as f64;
///     m.observe(&[x0, x1, 1.0], 2.0 * x0 - 3.0 * x1 + 1.0);
/// }
/// let w = m.weights();
/// assert!((w[0] - 2.0).abs() < 1e-2);
/// assert!((w[1] + 3.0).abs() < 1e-2);
/// assert!((w[2] - 1.0).abs() < 1e-2);
/// assert!((m.predict(&[1.0, 1.0, 1.0]) - 0.0).abs() < 1e-2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rls {
    dim: usize,
    weights: Vec<f64>,
    /// Inverse covariance matrix, row-major `dim × dim`.
    p: Vec<f64>,
    lambda: f64,
    p_cap: f64,
    n: u64,
}

impl Rls {
    /// Creates an RLS estimator over `dim` features with forgetting
    /// factor `lambda` (1.0 = no forgetting) and prior covariance
    /// scale `p0` (large = weak prior).
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`, `lambda ∉ (0, 1]`, or `p0 <= 0`.
    #[must_use]
    pub fn new(dim: usize, lambda: f64, p0: f64) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(lambda > 0.0 && lambda <= 1.0, "lambda must be in (0,1]");
        assert!(p0 > 0.0, "prior covariance must be positive");
        let mut p = vec![0.0; dim * dim];
        for i in 0..dim {
            p[i * dim + i] = p0;
        }
        Self {
            dim,
            weights: vec![0.0; dim],
            p,
            lambda,
            p_cap: p0,
            n: 0,
        }
    }

    /// Feature dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Current weight vector.
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of observations absorbed.
    #[must_use]
    pub fn observations(&self) -> u64 {
        self.n
    }

    /// Predicts `y` for feature vector `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim`.
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim, "feature dimension mismatch");
        self.weights.iter().zip(x).map(|(w, xi)| w * xi).sum()
    }

    /// Absorbs one `(x, y)` pair.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim`.
    pub fn observe(&mut self, x: &[f64], y: f64) {
        assert_eq!(x.len(), self.dim, "feature dimension mismatch");
        let d = self.dim;
        // px = P x
        let mut px = vec![0.0; d];
        for i in 0..d {
            for j in 0..d {
                px[i] += self.p[i * d + j] * x[j];
            }
        }
        // g = px / (λ + xᵀ px)
        let denom = self.lambda + x.iter().zip(&px).map(|(xi, pi)| xi * pi).sum::<f64>();
        let g: Vec<f64> = px.iter().map(|v| v / denom).collect();
        // w += g (y − wᵀx)
        let err = y - self.predict(x);
        for i in 0..d {
            self.weights[i] += g[i] * err;
        }
        // P = (P − g pxᵀ) / λ
        for i in 0..d {
            for j in 0..d {
                self.p[i * d + j] = (self.p[i * d + j] - g[i] * px[j]) / self.lambda;
            }
        }
        // Numerical hygiene: with λ < 1 over long runs, floating-point
        // asymmetry in P compounds until the filter diverges
        // (covariance wind-up). Re-symmetrise every step and cap the
        // diagonal at the prior scale.
        for i in 0..d {
            for j in (i + 1)..d {
                let s = 0.5 * (self.p[i * d + j] + self.p[j * d + i]);
                self.p[i * d + j] = s;
                self.p[j * d + i] = s;
            }
            let diag = &mut self.p[i * d + i];
            *diag = diag.clamp(1e-12, self.p_cap);
        }
        self.n += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng as _;

    #[test]
    fn learns_exact_linear_map() {
        let mut m = Rls::new(2, 1.0, 1e4);
        for i in 0..100 {
            let x = [(i % 11) as f64, 1.0];
            m.observe(&x, 5.0 * x[0] - 2.0);
        }
        assert!((m.weights()[0] - 5.0).abs() < 1e-3);
        assert!((m.weights()[1] + 2.0).abs() < 1e-3);
    }

    #[test]
    fn robust_to_noise() {
        let mut rng = simkernel::SeedTree::new(1).rng("rls");
        let mut m = Rls::new(2, 1.0, 1e4);
        for _ in 0..5000 {
            let x = [rng.gen_range(-1.0..1.0), 1.0];
            let y = 3.0 * x[0] + 0.5 + rng.gen_range(-0.1..0.1);
            m.observe(&x, y);
        }
        assert!((m.weights()[0] - 3.0).abs() < 0.05);
        assert!((m.weights()[1] - 0.5).abs() < 0.05);
    }

    #[test]
    fn forgetting_tracks_weight_drift() {
        let mut rng = simkernel::SeedTree::new(2).rng("rls2");
        let mut forgetting = Rls::new(2, 0.98, 1e4);
        let mut rigid = Rls::new(2, 1.0, 1e4);
        // First regime: y = x0; second regime: y = -x0.
        for phase in 0..2 {
            let w = if phase == 0 { 1.0 } else { -1.0 };
            for _ in 0..2000 {
                let x = [rng.gen_range(-1.0..1.0), 1.0];
                let y = w * x[0];
                forgetting.observe(&x, y);
                rigid.observe(&x, y);
            }
        }
        assert!(
            (forgetting.weights()[0] + 1.0).abs() < 0.1,
            "forgetting RLS should track the new regime, got {}",
            forgetting.weights()[0]
        );
        assert!(
            (rigid.weights()[0] + 1.0).abs() > (forgetting.weights()[0] + 1.0).abs(),
            "non-forgetting RLS should lag"
        );
    }

    #[test]
    fn prediction_before_training_is_zero() {
        let m = Rls::new(3, 1.0, 100.0);
        assert_eq!(m.predict(&[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(m.observations(), 0);
        assert_eq!(m.dim(), 3);
    }

    #[test]
    #[should_panic(expected = "feature dimension mismatch")]
    fn wrong_dim_panics() {
        let m = Rls::new(2, 1.0, 100.0);
        let _ = m.predict(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "lambda must be in (0,1]")]
    fn bad_lambda_panics() {
        let _ = Rls::new(2, 1.2, 100.0);
    }
}
