//! Windowed autoregressive model AR(p), fitted by ordinary least
//! squares over a sliding window. Captures oscillatory / mean-reverting
//! structure that level-trend smoothers miss (e.g. diurnal load).

// Textbook index-form linear algebra reads clearer than iterator chains here.
#![allow(clippy::needless_range_loop)]
use super::{Forecaster, OnlineModel};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// AR(p) forecaster over a sliding window.
///
/// Coefficients are refitted lazily (at most once per observation) by
/// solving the normal equations with Gaussian elimination; `p` is small
/// (≤ 8 in practice) so the refit is O(window · p²).
///
/// # Example
///
/// ```
/// use selfaware::models::ar::ArModel;
/// use selfaware::models::{Forecaster, OnlineModel};
///
/// // AR(2) can represent a pure oscillation; EWMA cannot.
/// let mut m = ArModel::new(2, 64);
/// for t in 0..64 {
///     m.observe((t as f64 * 0.7).sin());
/// }
/// let pred = m.forecast().unwrap();
/// let truth = (64.0_f64 * 0.7).sin();
/// assert!((pred - truth).abs() < 0.1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArModel {
    order: usize,
    window: VecDeque<f64>,
    capacity: usize,
    coeffs: Vec<f64>,
    intercept: f64,
    fitted: bool,
    n: u64,
}

impl ArModel {
    /// Creates an AR model of order `order` fitted over the most
    /// recent `window` samples.
    ///
    /// # Panics
    ///
    /// Panics if `order == 0` or `window < 4 * order`.
    #[must_use]
    pub fn new(order: usize, window: usize) -> Self {
        assert!(order > 0, "order must be positive");
        assert!(
            window >= 4 * order,
            "window must be at least 4x the order for a stable fit"
        );
        Self {
            order,
            window: VecDeque::with_capacity(window),
            capacity: window,
            coeffs: vec![0.0; order],
            intercept: 0.0,
            fitted: false,
            n: 0,
        }
    }

    /// Model order p.
    #[must_use]
    pub fn order(&self) -> usize {
        self.order
    }

    /// Fitted coefficients (most-recent-lag first); zeros until warm.
    #[must_use]
    pub fn coefficients(&self) -> &[f64] {
        &self.coeffs
    }

    fn refit(&mut self) {
        let p = self.order;
        let data: Vec<f64> = self.window.iter().copied().collect();
        if data.len() < 2 * p + 2 {
            return;
        }
        // Design: rows t = p..n, features [1, x_{t-1}, ..., x_{t-p}].
        let dim = p + 1;
        let mut ata = vec![vec![0.0; dim]; dim];
        let mut atb = vec![0.0; dim];
        for t in p..data.len() {
            let mut row = Vec::with_capacity(dim);
            row.push(1.0);
            for lag in 1..=p {
                row.push(data[t - lag]);
            }
            for i in 0..dim {
                for j in 0..dim {
                    ata[i][j] += row[i] * row[j];
                }
                atb[i] += row[i] * data[t];
            }
        }
        // Ridge regularisation for numerical safety.
        for (i, row) in ata.iter_mut().enumerate() {
            row[i] += 1e-6;
        }
        if let Some(sol) = solve(ata, atb) {
            self.intercept = sol[0];
            self.coeffs.copy_from_slice(&sol[1..]);
            self.fitted = true;
        }
    }
}

/// Gaussian elimination with partial pivoting. Returns `None` for a
/// singular system.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in (col + 1)..n {
            let factor = a[row][col] / a[col][col];
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut sum = b[row];
        for col in (row + 1)..n {
            sum -= a[row][col] * x[col];
        }
        x[row] = sum / a[row][row];
    }
    Some(x)
}

impl OnlineModel for ArModel {
    fn observe(&mut self, x: f64) {
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(x);
        self.n += 1;
        self.refit();
    }

    fn observations(&self) -> u64 {
        self.n
    }
}

impl Forecaster for ArModel {
    fn forecast(&self) -> Option<f64> {
        if !self.fitted || self.window.len() < self.order {
            return None;
        }
        let mut pred = self.intercept;
        for (lag, &c) in self.coeffs.iter().enumerate() {
            let idx = self.window.len() - 1 - lag;
            pred += c * self.window[idx];
        }
        Some(pred)
    }

    fn forecast_h(&self, h: u32) -> Option<f64> {
        if !self.fitted || self.window.len() < self.order {
            return None;
        }
        // Roll the model forward h steps on a scratch buffer.
        let mut buf: Vec<f64> = self.window.iter().copied().collect();
        let mut last = 0.0;
        for _ in 0..h.max(1) {
            let mut pred = self.intercept;
            for (lag, &c) in self.coeffs.iter().enumerate() {
                pred += c * buf[buf.len() - 1 - lag];
            }
            buf.push(pred);
            last = pred;
        }
        Some(last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_identity() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = solve(a, vec![3.0, 4.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn solve_singular_returns_none() {
        let a = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        assert!(solve(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn cold_before_enough_data() {
        let mut m = ArModel::new(2, 16);
        for x in [1.0, 2.0, 3.0] {
            m.observe(x);
        }
        assert_eq!(m.forecast(), None);
    }

    #[test]
    fn learns_ar1_process() {
        // x_t = 0.8 x_{t-1} + 1.0 (deterministic), fixed point = 5.
        let mut m = ArModel::new(1, 64);
        let mut x = 0.0;
        for _ in 0..64 {
            m.observe(x);
            x = 0.8 * x + 1.0;
        }
        assert!((m.coefficients()[0] - 0.8).abs() < 0.05);
        let pred = m.forecast().unwrap();
        assert!((pred - x).abs() < 0.05);
    }

    #[test]
    fn learns_oscillation() {
        let mut m = ArModel::new(2, 128);
        for t in 0..128 {
            m.observe((t as f64 * 0.5).sin());
        }
        let pred = m.forecast().unwrap();
        let truth = (128.0_f64 * 0.5).sin();
        assert!((pred - truth).abs() < 0.05);
    }

    #[test]
    fn multi_step_rollout() {
        let mut m = ArModel::new(1, 64);
        let mut x = 0.0;
        for _ in 0..64 {
            m.observe(x);
            x = 0.5 * x + 1.0;
        }
        // 3-step truth from current x.
        let mut truth = x;
        for _ in 0..2 {
            truth = 0.5 * truth + 1.0;
        }
        let pred = m.forecast_h(3).unwrap();
        assert!((pred - truth).abs() < 0.05);
    }

    #[test]
    fn window_slides() {
        let mut m = ArModel::new(1, 8);
        for t in 0..100 {
            m.observe(t as f64);
        }
        assert_eq!(m.observations(), 100);
        assert_eq!(m.window.len(), 8);
    }

    #[test]
    #[should_panic(expected = "order must be positive")]
    fn zero_order_panics() {
        let _ = ArModel::new(0, 8);
    }

    #[test]
    #[should_panic(expected = "window must be at least")]
    fn tiny_window_panics() {
        let _ = ArModel::new(4, 8);
    }

    #[test]
    fn constant_signal_predicts_constant() {
        let mut m = ArModel::new(2, 32);
        for _ in 0..32 {
            m.observe(5.0);
        }
        assert!((m.forecast().unwrap() - 5.0).abs() < 1e-3);
    }
}
