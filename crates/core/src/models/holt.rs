//! Holt's linear (double-exponential) smoothing: level + trend
//! forecasting, the simplest model that can anticipate *where a signal
//! is going* rather than where it is.

use super::{Forecaster, OnlineModel};
use serde::{Deserialize, Serialize};

/// Holt linear-trend forecaster.
///
/// ```text
/// level_t = α x_t + (1-α)(level_{t-1} + trend_{t-1})
/// trend_t = β (level_t − level_{t-1}) + (1-β) trend_{t-1}
/// forecast(h) = level_t + h · trend_t
/// ```
///
/// # Example
///
/// ```
/// use selfaware::models::holt::Holt;
/// use selfaware::models::{Forecaster, OnlineModel};
///
/// let mut m = Holt::new(0.8, 0.8);
/// for t in 0..50 {
///     m.observe(2.0 * t as f64); // perfect ramp, slope 2
/// }
/// let f1 = m.forecast().unwrap();
/// let f5 = m.forecast_h(5).unwrap();
/// assert!((f5 - f1 - 8.0).abs() < 0.5); // 4 extra steps × slope 2
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Holt {
    alpha: f64,
    beta: f64,
    level: f64,
    trend: f64,
    n: u64,
}

impl Holt {
    /// Creates a Holt forecaster with level smoothing `alpha` and
    /// trend smoothing `beta`.
    ///
    /// # Panics
    ///
    /// Panics if either factor is outside `(0, 1]`.
    #[must_use]
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        assert!(beta > 0.0 && beta <= 1.0, "beta must be in (0,1]");
        Self {
            alpha,
            beta,
            level: 0.0,
            trend: 0.0,
            n: 0,
        }
    }

    /// Current level estimate.
    #[must_use]
    pub fn level(&self) -> f64 {
        self.level
    }

    /// Current per-step trend estimate.
    #[must_use]
    pub fn trend(&self) -> f64 {
        self.trend
    }

    /// Overwrites the smoothing state, marking the model warm (two or
    /// more observations) so forecasts reflect the injected state
    /// immediately. Hook for checkpoint restore and for fault
    /// injection into controller self-models.
    pub fn set_state(&mut self, level: f64, trend: f64) {
        self.level = level;
        self.trend = trend;
        self.n = self.n.max(2);
    }
}

impl OnlineModel for Holt {
    fn observe(&mut self, x: f64) {
        match self.n {
            0 => self.level = x,
            1 => {
                self.trend = x - self.level;
                self.level = x;
            }
            _ => {
                let prev_level = self.level;
                self.level = self.alpha * x + (1.0 - self.alpha) * (self.level + self.trend);
                self.trend = self.beta * (self.level - prev_level) + (1.0 - self.beta) * self.trend;
            }
        }
        self.n += 1;
    }

    fn observations(&self) -> u64 {
        self.n
    }
}

impl Forecaster for Holt {
    fn forecast(&self) -> Option<f64> {
        self.forecast_h(1)
    }

    fn forecast_h(&self, h: u32) -> Option<f64> {
        (self.n >= 2).then(|| self.level + f64::from(h) * self.trend)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_until_two_observations() {
        let mut m = Holt::new(0.5, 0.5);
        assert_eq!(m.forecast(), None);
        m.observe(1.0);
        assert_eq!(m.forecast(), None);
        m.observe(2.0);
        assert!(m.forecast().is_some());
    }

    #[test]
    fn learns_linear_trend_exactly() {
        let mut m = Holt::new(0.9, 0.9);
        for t in 0..100 {
            m.observe(3.0 * t as f64 + 5.0);
        }
        assert!((m.trend() - 3.0).abs() < 1e-6);
        let expected_next = 3.0 * 100.0 + 5.0;
        assert!((m.forecast().unwrap() - expected_next).abs() < 1e-3);
    }

    #[test]
    fn flat_signal_zero_trend() {
        let mut m = Holt::new(0.5, 0.5);
        for _ in 0..100 {
            m.observe(4.0);
        }
        assert!(m.trend().abs() < 1e-9);
        assert!((m.forecast().unwrap() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn horizon_extrapolates_linearly() {
        let mut m = Holt::new(0.8, 0.8);
        for t in 0..50 {
            m.observe(t as f64);
        }
        let f1 = m.forecast_h(1).unwrap();
        let f10 = m.forecast_h(10).unwrap();
        assert!((f10 - f1 - 9.0).abs() < 0.1);
    }

    #[test]
    fn beats_ewma_on_ramps() {
        use super::super::ewma::Ewma;
        let mut holt = Holt::new(0.5, 0.5);
        let mut ewma = Ewma::new(0.5);
        let mut err_holt = 0.0;
        let mut err_ewma = 0.0;
        for t in 0..200 {
            let x = t as f64;
            if let Some(f) = holt.forecast() {
                err_holt += (f - x).abs();
            }
            if let Some(f) = ewma.forecast() {
                err_ewma += (f - x).abs();
            }
            holt.observe(x);
            ewma.observe(x);
        }
        assert!(
            err_holt < err_ewma / 2.0,
            "holt {err_holt} should beat ewma {err_ewma} on a ramp"
        );
    }

    #[test]
    #[should_panic(expected = "beta must be in (0,1]")]
    fn invalid_beta_panics() {
        let _ = Holt::new(0.5, 0.0);
    }
}
