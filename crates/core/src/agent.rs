//! The self-aware agent: the observe → learn → reason → act →
//! explain loop.
//!
//! This is the "generic loop" at the heart of the paper — Cox's
//! metacognitive feedback loop (Section III: "being aware of oneself is
//! not merely about possessing information, but also about using that
//! information") realised as a composable Rust type. The
//! [`AgentBuilder`] wires together exactly the capabilities implied by
//! the chosen [`LevelSet`]:
//!
//! * **stimulus** — sensors are sampled into the knowledge base;
//! * **time** — per-signal forecasters publish `forecast.<key>`
//!   signals (and `forecast5.<key>` at horizon 5);
//! * **interaction** — percepts about *other entities* are absorbed
//!   via [`SelfAwareAgent::tell`] (the collective module builds on
//!   this);
//! * **goal** — a [`Goal`] is evaluated every step and published as
//!   the private `self.utility` signal;
//! * **meta** — forecasting is handled by a self-selecting
//!   [`ModelPool`] instead of a fixed model, and an
//!   [`ExplorationGovernor`] retunes the policy's exploration rate
//!   when the reward stream drifts.
//!
//! The ablation experiment T2 constructs one agent per level subset
//! and measures the utility each achieves in the same environment.

use crate::attention::AttentionAllocator;
use crate::error::{Result, SelfAwareError};
use crate::explain::{Explanation, ExplanationLog};
use crate::expression::{Decision, Policy};
use crate::goals::Goal;
use crate::knowledge::KnowledgeBase;
use crate::levels::{Level, LevelSet};
use crate::meta::{ExplorationGovernor, ModelPool};
use crate::models::ewma::Ewma;
use crate::models::holt::Holt;
use crate::models::{Forecaster, OnlineModel};
use crate::sensors::{Percept, Scope, SensorHub};
use simkernel::rng::Rng;
use simkernel::Tick;
use std::collections::BTreeMap;

/// Horizon used for the published medium-term forecast signal.
pub const FORECAST_HORIZON: u32 = 5;

enum Predictor {
    Fixed(Ewma),
    Pool(ModelPool),
}

impl Predictor {
    fn observe(&mut self, x: f64) {
        match self {
            Predictor::Fixed(m) => m.observe(x),
            Predictor::Pool(p) => p.observe(x),
        }
    }

    fn forecast(&self) -> Option<f64> {
        match self {
            Predictor::Fixed(m) => m.forecast(),
            Predictor::Pool(p) => p.forecast(),
        }
    }

    fn forecast_h(&self, h: u32) -> Option<f64> {
        match self {
            Predictor::Fixed(m) => m.forecast_h(h),
            Predictor::Pool(p) => p.forecast_h(h),
        }
    }
}

struct AttentionConfig {
    alloc: AttentionAllocator,
    budget: f64,
}

/// A self-aware agent over environment `E` with action type `A`.
///
/// Construct with [`SelfAwareAgent::builder`]. See the
/// [module docs](self) for the loop structure, and `examples/quickstart.rs`
/// for an end-to-end walkthrough.
pub struct SelfAwareAgent<E, A: Clone> {
    name: String,
    levels: LevelSet,
    hub: SensorHub<E>,
    kb: KnowledgeBase,
    predictors: BTreeMap<String, Predictor>,
    goal: Option<Goal>,
    policy: Box<dyn Policy<A>>,
    attention: Option<AttentionConfig>,
    governor: Option<ExplorationGovernor>,
    log: ExplanationLog,
    steps: u64,
}

impl<E, A: Clone> SelfAwareAgent<E, A> {
    /// Starts building an agent.
    #[must_use]
    pub fn builder(name: impl Into<String>) -> AgentBuilder<E, A> {
        AgentBuilder::new(name)
    }

    /// The agent's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The self-awareness levels this agent possesses.
    #[must_use]
    pub fn levels(&self) -> LevelSet {
        self.levels
    }

    /// Read access to the knowledge base.
    #[must_use]
    pub fn knowledge(&self) -> &KnowledgeBase {
        &self.kb
    }

    /// The explanation log (self-explanation output).
    #[must_use]
    pub fn explanations(&self) -> &ExplanationLog {
        &self.log
    }

    /// Number of loop iterations executed.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Current goal utility from the knowledge base, if the agent is
    /// goal-aware and a goal is set.
    #[must_use]
    pub fn utility(&self) -> Option<f64> {
        if !self.levels.contains(Level::Goal) {
            return None;
        }
        self.goal.as_ref().map(|g| g.utility(|k| self.kb.last(k)))
    }

    /// Injects a percept about another entity (interaction
    /// awareness). Ignored — deliberately — if the agent lacks
    /// [`Level::Interaction`]: a non-interaction-aware agent has no
    /// representation for others.
    pub fn tell(&mut self, percept: Percept) {
        if self.levels.contains(Level::Interaction) {
            self.kb.absorb(&percept);
        }
    }

    fn make_predictor(&self) -> Predictor {
        if self.levels.contains(Level::Meta) {
            let mut pool = ModelPool::new(0.1, 8);
            pool.add("ewma", Box::new(Ewma::new(0.3)));
            pool.add("holt", Box::new(Holt::new(0.5, 0.3)));
            Predictor::Pool(pool)
        } else {
            Predictor::Fixed(Ewma::new(0.3))
        }
    }

    /// Runs one iteration of the self-awareness loop and returns the
    /// decision.
    pub fn step(&mut self, env: &E, now: Tick, rng: &mut Rng) -> Decision<A> {
        self.steps += 1;

        // ---- observe (stimulus awareness) ----
        if self.levels.contains(Level::Stimulus) && !self.hub.is_empty() {
            let percepts = match &mut self.attention {
                Some(att) => {
                    let picked = att.alloc.select(att.budget, now, rng);
                    let ps = self.hub.sample_subset(&picked, env, now);
                    for (&i, p) in picked.iter().zip(&ps) {
                        att.alloc.feed(i, p.value, now);
                    }
                    ps
                }
                None => self.hub.sample_all(env, now),
            };
            for p in &percepts {
                self.kb.absorb(p);
            }

            // ---- learn & predict (time awareness) ----
            if self.levels.contains(Level::Time) {
                for p in &percepts {
                    let predictor = match self.predictors.get_mut(&p.key) {
                        Some(pr) => pr,
                        None => {
                            let pr = self.make_predictor();
                            self.predictors.entry(p.key.clone()).or_insert(pr)
                        }
                    };
                    predictor.observe(p.value);
                    if let Some(f) = predictor.forecast() {
                        self.kb.absorb(&Percept::new(
                            format!("forecast.{}", p.key),
                            f,
                            Scope::Private,
                            now,
                        ));
                    }
                    if let Some(f) = predictor.forecast_h(FORECAST_HORIZON) {
                        self.kb.absorb(&Percept::new(
                            format!("forecast{FORECAST_HORIZON}.{}", p.key),
                            f,
                            Scope::Private,
                            now,
                        ));
                    }
                }
            }
        }

        // ---- goal awareness: publish own utility ----
        if self.levels.contains(Level::Goal) {
            if let Some(goal) = &self.goal {
                let u = goal.utility(|k| self.kb.last(k));
                self.kb
                    .absorb(&Percept::new("self.utility", u, Scope::Private, now));
            }
        }

        // ---- decide & explain ----
        let decision = self.policy.decide(&self.kb, now, rng);
        if let Some(ex) = &decision.explanation {
            self.log.record(ex.clone());
        } else {
            self.log
                .record(Explanation::new(now, decision.label.clone()));
        }
        decision
    }

    /// Reports the realised reward of the last decision. With meta
    /// awareness, the reward stream also drives exploration
    /// self-adaptation.
    pub fn reward(&mut self, r: f64) {
        self.policy.feedback(r);
        if self.levels.contains(Level::Meta) {
            if let Some(gov) = &mut self.governor {
                gov.observe_reward(r);
                self.policy.set_exploration(gov.epsilon());
            }
        }
    }

    /// Number of reward-drift events the meta level has noticed.
    #[must_use]
    pub fn drift_events(&self) -> u32 {
        self.governor
            .as_ref()
            .map_or(0, ExplorationGovernor::drift_count)
    }

    /// Per-sensor attention sample counts, if attention is enabled.
    #[must_use]
    pub fn attention_counts(&self) -> Option<&[u64]> {
        self.attention.as_ref().map(|a| a.alloc.sample_counts())
    }
}

impl<E, A: Clone> std::fmt::Debug for SelfAwareAgent<E, A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SelfAwareAgent")
            .field("name", &self.name)
            .field("levels", &self.levels.to_string())
            .field("steps", &self.steps)
            .field("signals", &self.kb.signal_count())
            .finish_non_exhaustive()
    }
}

/// Builder for [`SelfAwareAgent`].
pub struct AgentBuilder<E, A: Clone> {
    name: String,
    levels: LevelSet,
    hub: SensorHub<E>,
    goal: Option<Goal>,
    policy: Option<Box<dyn Policy<A>>>,
    attention_budget: Option<f64>,
    history: usize,
    log_capacity: usize,
}

impl<E, A: Clone> AgentBuilder<E, A> {
    fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            levels: LevelSet::full(),
            hub: SensorHub::new(),
            goal: None,
            policy: None,
            attention_budget: None,
            history: 128,
            log_capacity: 256,
        }
    }

    /// Sets the possessed level set (default: full stack).
    #[must_use]
    pub fn levels(mut self, levels: LevelSet) -> Self {
        self.levels = levels;
        self
    }

    /// Adds a closure sensor.
    #[must_use]
    pub fn sensor(
        mut self,
        key: impl Into<String>,
        scope: Scope,
        f: impl FnMut(&E) -> f64 + 'static,
    ) -> Self
    where
        E: 'static,
    {
        self.hub.add_fn(key, scope, f);
        self
    }

    /// Adds a boxed sensor.
    #[must_use]
    pub fn boxed_sensor(mut self, sensor: Box<dyn crate::sensors::Sensor<E>>) -> Self {
        self.hub.add(sensor);
        self
    }

    /// Sets the goal (required for goal-level utility publication).
    #[must_use]
    pub fn goal(mut self, goal: Goal) -> Self {
        self.goal = Some(goal);
        self
    }

    /// Sets the decision policy (required).
    #[must_use]
    pub fn policy(mut self, policy: Box<dyn Policy<A>>) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Enables budgeted attention over the sensors.
    #[must_use]
    pub fn attention_budget(mut self, budget: f64) -> Self {
        self.attention_budget = Some(budget);
        self
    }

    /// Sets per-signal history depth (default 128).
    #[must_use]
    pub fn history(mut self, window: usize) -> Self {
        self.history = window;
        self
    }

    /// Sets explanation log capacity (default 256).
    #[must_use]
    pub fn log_capacity(mut self, capacity: usize) -> Self {
        self.log_capacity = capacity;
        self
    }

    /// Builds the agent.
    ///
    /// # Errors
    ///
    /// Returns [`SelfAwareError::MissingComponent`] if no policy was
    /// set, and [`SelfAwareError::InvalidParameter`] if an attention
    /// budget was configured without any sensors, or a non-positive
    /// history/budget was given.
    pub fn build(self) -> Result<SelfAwareAgent<E, A>> {
        let policy = self
            .policy
            .ok_or(SelfAwareError::MissingComponent("policy"))?;
        if self.history == 0 {
            return Err(SelfAwareError::InvalidParameter {
                name: "history",
                constraint: "must be positive",
            });
        }
        if self.log_capacity == 0 {
            return Err(SelfAwareError::InvalidParameter {
                name: "log_capacity",
                constraint: "must be positive",
            });
        }
        let attention = match self.attention_budget {
            Some(budget) => {
                if budget <= 0.0 {
                    return Err(SelfAwareError::InvalidParameter {
                        name: "attention_budget",
                        constraint: "must be positive",
                    });
                }
                if self.hub.is_empty() {
                    return Err(SelfAwareError::InvalidParameter {
                        name: "attention_budget",
                        constraint: "requires at least one sensor",
                    });
                }
                Some(AttentionConfig {
                    alloc: AttentionAllocator::new(self.hub.len(), 0.1, 0.2),
                    budget,
                })
            }
            None => None,
        };
        let governor = self
            .levels
            .contains(Level::Meta)
            .then(|| ExplorationGovernor::new(0.02, 0.3, 0.995, 0.2, 25.0));
        Ok(SelfAwareAgent {
            name: self.name,
            levels: self.levels,
            hub: self.hub,
            kb: KnowledgeBase::new(self.history),
            predictors: BTreeMap::new(),
            goal: self.goal,
            policy,
            attention,
            governor,
            log: ExplanationLog::new(self.log_capacity),
            steps: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expression::{ConstantPolicy, UtilityPolicy};
    use crate::goals::{Direction, Objective};

    struct World {
        load: f64,
    }

    fn rng() -> Rng {
        simkernel::SeedTree::new(21).rng("agent")
    }

    fn base_builder(levels: LevelSet) -> AgentBuilder<World, usize> {
        SelfAwareAgent::builder("test")
            .levels(levels)
            .sensor("load", Scope::Public, |w: &World| w.load)
            .policy(Box::new(ConstantPolicy::new(0usize, "hold")))
    }

    #[test]
    fn build_requires_policy() {
        let err = SelfAwareAgent::<World, usize>::builder("x")
            .build()
            .unwrap_err();
        assert_eq!(err, SelfAwareError::MissingComponent("policy"));
    }

    #[test]
    fn stimulus_agent_senses() {
        let mut a = base_builder(LevelSet::new().with(Level::Stimulus))
            .build()
            .unwrap();
        let mut r = rng();
        a.step(&World { load: 0.4 }, Tick(0), &mut r);
        assert_eq!(a.knowledge().last("load"), Some(0.4));
        assert_eq!(a.steps(), 1);
        // No time level → no forecast signal.
        assert!(a.knowledge().last("forecast.load").is_none());
    }

    #[test]
    fn pre_self_aware_agent_is_blind() {
        let mut a = base_builder(LevelSet::new()).build().unwrap();
        let mut r = rng();
        a.step(&World { load: 0.4 }, Tick(0), &mut r);
        assert!(a.knowledge().last("load").is_none());
    }

    #[test]
    fn time_agent_publishes_forecasts() {
        let levels = LevelSet::new().with(Level::Stimulus).with(Level::Time);
        let mut a = base_builder(levels).build().unwrap();
        let mut r = rng();
        for t in 0..10u64 {
            a.step(&World { load: 0.5 }, Tick(t), &mut r);
        }
        let f = a.knowledge().last("forecast.load").unwrap();
        assert!((f - 0.5).abs() < 1e-9);
        assert!(a.knowledge().last("forecast5.load").is_some());
    }

    #[test]
    fn goal_agent_publishes_utility() {
        let levels = LevelSet::new().with(Level::Stimulus).with(Level::Goal);
        let goal = Goal::new("g").objective(Objective::new("load", Direction::Minimize, 1.0, 1.0));
        let mut a = base_builder(levels).goal(goal).build().unwrap();
        let mut r = rng();
        a.step(&World { load: 0.25 }, Tick(0), &mut r);
        assert!((a.knowledge().last("self.utility").unwrap() - 0.75).abs() < 1e-9);
        assert!((a.utility().unwrap() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn utility_is_none_without_goal_level() {
        let goal = Goal::new("g").objective(Objective::new("load", Direction::Minimize, 1.0, 1.0));
        let mut a = base_builder(LevelSet::new().with(Level::Stimulus))
            .goal(goal)
            .build()
            .unwrap();
        let mut r = rng();
        a.step(&World { load: 0.25 }, Tick(0), &mut r);
        assert!(a.utility().is_none());
        assert!(a.knowledge().last("self.utility").is_none());
    }

    #[test]
    fn interaction_gates_tell() {
        let mut social = base_builder(
            LevelSet::new()
                .with(Level::Stimulus)
                .with(Level::Interaction),
        )
        .build()
        .unwrap();
        let mut loner = base_builder(LevelSet::new().with(Level::Stimulus))
            .build()
            .unwrap();
        let gossip = Percept::new("peer.load", 0.9, Scope::Public, Tick(0));
        social.tell(gossip.clone());
        loner.tell(gossip);
        assert_eq!(social.knowledge().last("peer.load"), Some(0.9));
        assert!(loner.knowledge().last("peer.load").is_none());
    }

    #[test]
    fn meta_agent_uses_model_pool_and_governor() {
        let mut a = base_builder(LevelSet::full()).build().unwrap();
        let mut r = rng();
        for t in 0..50u64 {
            a.step(&World { load: t as f64 }, Tick(t), &mut r);
            a.reward(1.0);
        }
        // Ramp signal: the pool's holt member should forecast ahead of
        // a plain EWMA — the published forecast tracks the ramp closely.
        let f = a.knowledge().last("forecast.load").unwrap();
        assert!(f > 45.0, "meta forecast should track the ramp, got {f}");
        assert_eq!(a.drift_events(), 0);
    }

    #[test]
    fn explanations_are_logged() {
        let mut a = base_builder(LevelSet::new().with(Level::Stimulus))
            .build()
            .unwrap();
        let mut r = rng();
        for t in 0..5u64 {
            a.step(&World { load: 0.1 }, Tick(t), &mut r);
        }
        assert_eq!(a.explanations().len(), 5);
        assert_eq!(a.explanations().latest().unwrap().action, "hold");
    }

    #[test]
    fn attention_limits_sampling() {
        let mut a = SelfAwareAgent::<World, usize>::builder("att")
            .levels(LevelSet::new().with(Level::Stimulus))
            .sensor("s0", Scope::Public, |w: &World| w.load)
            .sensor("s1", Scope::Public, |w: &World| w.load * 2.0)
            .sensor("s2", Scope::Public, |w: &World| w.load * 3.0)
            .attention_budget(1.0)
            .policy(Box::new(ConstantPolicy::new(0usize, "hold")))
            .build()
            .unwrap();
        let mut r = rng();
        for t in 0..30u64 {
            a.step(&World { load: 1.0 }, Tick(t), &mut r);
        }
        let counts = a.attention_counts().unwrap();
        assert_eq!(counts.iter().sum::<u64>(), 30, "one sample per tick");
    }

    #[test]
    fn attention_requires_sensors() {
        let err = SelfAwareAgent::<World, usize>::builder("x")
            .attention_budget(1.0)
            .policy(Box::new(ConstantPolicy::new(0usize, "hold")))
            .build()
            .unwrap_err();
        assert!(matches!(err, SelfAwareError::InvalidParameter { .. }));
    }

    #[test]
    fn utility_policy_agent_end_to_end() {
        // Goal-aware agent that switches action based on forecast load.
        let goal = Goal::new("g").objective(Objective::new("load", Direction::Minimize, 1.0, 1.0));
        let policy = UtilityPolicy::new(
            vec![(0usize, "low-power".into()), (1, "boost".into())],
            Box::new(|a: &usize, kb: &KnowledgeBase| {
                let expected = kb.last_or("forecast.load", kb.last_or("load", 0.0));
                if *a == 1 {
                    expected // boost pays off under high load
                } else {
                    1.0 - expected
                }
            }),
        );
        let mut a = SelfAwareAgent::builder("e2e")
            .levels(LevelSet::new().with(Level::Stimulus).with(Level::Time))
            .sensor("load", Scope::Public, |w: &World| w.load)
            .goal(goal)
            .policy(Box::new(policy))
            .build()
            .unwrap();
        let mut r = rng();
        let mut last = 0;
        for t in 0..20u64 {
            let d = a.step(&World { load: 0.9 }, Tick(t), &mut r);
            last = d.action;
        }
        assert_eq!(last, 1, "high load should select boost");
    }
}

/// Summary of a closed-loop episode run by
/// [`SelfAwareAgent::run_episode`].
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodeStats {
    /// Ticks executed.
    pub ticks: u64,
    /// Sum of rewards over the episode.
    pub total_reward: f64,
    /// Mean reward per tick.
    pub mean_reward: f64,
    /// Goal utility at the final tick, if goal-aware.
    pub final_utility: Option<f64>,
}

impl<E, A: Clone> SelfAwareAgent<E, A> {
    /// Drives the full closed loop for `ticks` steps: the agent
    /// observes `env`, decides, the [`Actuator`] applies the decision
    /// back to `env`, `evolve` advances the world one tick, and
    /// `reward` scores the new state.
    ///
    /// This is the whole sense→decide→act→world-moves→reward cycle in
    /// one call — the shape every example and case-study controller
    /// shares.
    ///
    /// [`Actuator`]: crate::expression::Actuator
    #[allow(clippy::too_many_arguments)] // one parameter per loop phase; a config struct would obscure the cycle
    pub fn run_episode(
        &mut self,
        env: &mut E,
        ticks: u64,
        start: Tick,
        rng: &mut Rng,
        actuator: &mut dyn crate::expression::Actuator<E, A>,
        mut evolve: impl FnMut(&mut E, Tick),
        mut reward: impl FnMut(&E) -> f64,
    ) -> EpisodeStats {
        let mut total = 0.0;
        for i in 0..ticks {
            let now = start + Tick(i);
            let decision = self.step(env, now, rng);
            actuator.apply(env, &decision.action);
            evolve(env, now);
            let r = reward(env);
            self.reward(r);
            total += r;
        }
        EpisodeStats {
            ticks,
            total_reward: total,
            mean_reward: if ticks > 0 { total / ticks as f64 } else { 0.0 },
            final_utility: self.utility(),
        }
    }
}

#[cfg(test)]
mod episode_tests {
    use super::*;
    use crate::expression::{FnActuator, UtilityPolicy};
    use crate::goals::{Direction, Goal, Objective};
    use crate::knowledge::KnowledgeBase;

    struct Heater {
        temp: f64,
        power: f64,
    }

    #[test]
    fn closed_loop_regulates_toward_setpoint() {
        // Keep temp near 20 by toggling power; the loop wiring is what
        // is under test.
        let goal =
            Goal::new("warm").objective(Objective::new("temp", Direction::Maximize, 20.0, 1.0));
        let policy = UtilityPolicy::new(
            vec![(0usize, "off".into()), (1, "on".into())],
            Box::new(|a: &usize, kb: &KnowledgeBase| {
                let t = kb.last_or("temp", 0.0);
                if *a == 1 {
                    20.0 - t // heat when cold
                } else {
                    t - 20.0
                }
            }),
        );
        let mut agent = SelfAwareAgent::builder("thermostat")
            .levels(LevelSet::new().with(Level::Stimulus).with(Level::Goal))
            .sensor("temp", Scope::Private, |h: &Heater| h.temp)
            .goal(goal)
            .policy(Box::new(policy))
            .build()
            .unwrap();
        let mut env = Heater {
            temp: 5.0,
            power: 0.0,
        };
        let mut rng = simkernel::SeedTree::new(8).rng("ep");
        let mut actuator =
            FnActuator::new(|h: &mut Heater, a: &usize| h.power = if *a == 1 { 2.0 } else { 0.0 });
        let stats = agent.run_episode(
            &mut env,
            200,
            Tick::ZERO,
            &mut rng,
            &mut actuator,
            |h, _| h.temp += h.power - 0.5, // heating minus leakage
            |h| 1.0 - (h.temp - 20.0).abs() / 20.0,
        );
        assert_eq!(stats.ticks, 200);
        assert!(
            (env.temp - 20.0).abs() < 3.0,
            "thermostat should hover near setpoint, got {}",
            env.temp
        );
        assert!(stats.final_utility.is_some());
        assert!(stats.mean_reward > 0.5);
        assert!((stats.mean_reward * 200.0 - stats.total_reward).abs() < 1e-9);
    }

    #[test]
    fn zero_tick_episode_is_empty() {
        let mut agent = SelfAwareAgent::<Heater, usize>::builder("idle")
            .levels(LevelSet::new())
            .policy(Box::new(crate::expression::ConstantPolicy::new(
                0usize, "x",
            )))
            .build()
            .unwrap();
        let mut env = Heater {
            temp: 0.0,
            power: 0.0,
        };
        let mut rng = simkernel::SeedTree::new(9).rng("ep0");
        let mut actuator = FnActuator::new(|_: &mut Heater, _: &usize| {});
        let stats = agent.run_episode(
            &mut env,
            0,
            Tick::ZERO,
            &mut rng,
            &mut actuator,
            |_, _| {},
            |_| 1.0,
        );
        assert_eq!(stats.ticks, 0);
        assert_eq!(stats.total_reward, 0.0);
        assert_eq!(stats.mean_reward, 0.0);
    }
}
