//! # selfaware — a computational self-awareness framework
//!
//! A production-grade Rust implementation of the conceptual framework
//! in *Peter R. Lewis, "Self-aware Computing Systems: From Psychology
//! to Engineering", DATE 2017*: the translation of psychological
//! self-awareness (Morin's definition, Neisser's levels) into
//! engineering building blocks for systems that must manage trade-offs
//! between conflicting goals at run time, in large, heterogeneous,
//! uncertain, changing and decentralised environments.
//!
//! ## The framework's three concepts → this crate
//!
//! 1. **Public vs private self-awareness** — every observation carries
//!    a [`sensors::Scope`]; the [`knowledge::KnowledgeBase`] keeps both
//!    kinds of self-knowledge.
//! 2. **Levels of self-awareness** — [`levels::Level`] and
//!    [`levels::LevelSet`] name the capability classes (stimulus,
//!    interaction, time, goal, meta); the [`agent::SelfAwareAgent`]
//!    wires in exactly the machinery a chosen level set implies.
//! 3. **Collective self-awareness without a global component** —
//!    [`collective`] provides gossip and hierarchical architectures
//!    whose awareness lives in no single node.
//!
//! On top of these sit the capabilities the paper surveys: learned
//! self-models ([`models`]), run-time goal trade-off management
//! ([`goals`]), self-expression ([`expression`]), meta-self-awareness
//! ([`meta`]), attention under resource constraints ([`attention`]),
//! self-explanation ([`explain`]), and robust collective messaging
//! over unreliable networks ([`comms`]).
//!
//! ## Quickstart
//!
//! ```
//! use selfaware::prelude::*;
//! use simkernel::{SeedTree, Tick};
//!
//! struct World { load: f64 }
//!
//! # fn main() -> Result<(), selfaware::error::SelfAwareError> {
//! let goal = Goal::new("serve-cheaply")
//!     .objective(Objective::new("load", Direction::Minimize, 1.0, 1.0));
//!
//! let policy = UtilityPolicy::new(
//!     vec![(0usize, "eco".into()), (1, "boost".into())],
//!     Box::new(|a: &usize, kb: &KnowledgeBase| {
//!         let load = kb.last_or("forecast.load", 0.5);
//!         if *a == 1 { load } else { 1.0 - load }
//!     }),
//! );
//!
//! let mut agent = SelfAwareAgent::builder("demo")
//!     .levels(LevelSet::full())
//!     .sensor("load", Scope::Public, |w: &World| w.load)
//!     .goal(goal)
//!     .policy(Box::new(policy))
//!     .build()?;
//!
//! let mut rng = SeedTree::new(42).rng("demo");
//! for t in 0..20u64 {
//!     let d = agent.step(&World { load: 0.9 }, Tick(t), &mut rng);
//!     agent.reward(if d.action == 1 { 1.0 } else { 0.0 });
//! }
//! assert!(agent.utility().is_some());
//! println!("{}", agent.explanations().latest().unwrap());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(clippy::unwrap_used, clippy::panic)]
#![warn(missing_docs)]

pub mod agent;
pub mod architecture;
pub mod attention;
pub mod collective;
pub mod comms;
pub mod error;
pub mod explain;
pub mod expression;
pub mod goals;
pub mod health;
pub mod knowledge;
pub mod levels;
pub mod meta;
pub mod models;
pub mod pressure;
pub mod replay;
pub mod runtime;
pub mod sensors;
pub mod supervision;
pub mod whatif;

/// Crate version, recorded in run-trace provenance (see
/// [`simkernel::obs`]).
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

/// Convenient glob-import of the most used items.
pub mod prelude {
    pub use crate::agent::{AgentBuilder, SelfAwareAgent};
    pub use crate::architecture::{describe, validate, SelfDescription};
    pub use crate::attention::AttentionAllocator;
    pub use crate::comms::{
        Arrivals, Channel, ChannelOutcome, CommsNetwork, CommsPolicy, CommsStats, Delivered,
        IdealChannel, ReliableConfig, StalenessWeighted,
    };
    pub use crate::error::SelfAwareError;
    pub use crate::explain::{Explanation, ExplanationLog};
    pub use crate::expression::{
        Actuator, BanditPolicy, ConstantPolicy, Decision, FnActuator, Policy, RandomPolicy,
        UtilityPolicy,
    };
    pub use crate::goals::{Direction, Goal, Objective};
    pub use crate::health::{HealthReading, SensorHealth, SensorHealthConfig};
    pub use crate::knowledge::KnowledgeBase;
    pub use crate::levels::{Level, LevelSet};
    pub use crate::meta::{ExplorationGovernor, ModelPool, ResidualTracker, StrategySwitcher};
    pub use crate::models::bandit::{Bandit, EpsilonGreedy, Exp3, SoftmaxBandit, Ucb1};
    pub use crate::models::drift::{Cusum, DriftDetector, PageHinkley, WindowDrift};
    pub use crate::models::ewma::Ewma;
    pub use crate::models::holt::Holt;
    pub use crate::models::qlearn::QLearner;
    pub use crate::models::seasonal::HoltWinters;
    pub use crate::models::{Forecaster, OnlineModel};
    pub use crate::pressure::{HysteresisGate, HysteresisGateConfig};
    pub use crate::replay::{
        CounterfactualDelta, CounterfactualReport, CounterfactualRun, InterventionClass,
        InterventionMask, ReplayOutcome,
    };
    pub use crate::runtime::{drive, ControlLoop};
    pub use crate::sensors::{FnSensor, Percept, Scope, Sensor, SensorHub};
    pub use crate::supervision::{
        Anomaly, ControlSource, Evidence, SupervisionStats, Supervisor, SupervisorConfig, Verdict,
    };
    pub use crate::whatif::{utility_with, ActionEffectModel};
}
