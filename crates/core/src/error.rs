//! Error types for the `selfaware` crate.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced by the self-awareness framework.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SelfAwareError {
    /// A component referenced a signal key that is not in the
    /// knowledge base.
    UnknownSignal(String),
    /// An agent was built without a required component.
    MissingComponent(&'static str),
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Human-readable constraint that was violated.
        constraint: &'static str,
    },
    /// A model was asked to predict before seeing any data.
    ModelCold(&'static str),
}

impl fmt::Display for SelfAwareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelfAwareError::UnknownSignal(key) => write!(f, "unknown signal key `{key}`"),
            SelfAwareError::MissingComponent(what) => {
                write!(f, "agent is missing required component: {what}")
            }
            SelfAwareError::InvalidParameter { name, constraint } => {
                write!(f, "invalid parameter `{name}`: {constraint}")
            }
            SelfAwareError::ModelCold(model) => {
                write!(f, "model `{model}` has no observations yet")
            }
        }
    }
}

impl StdError for SelfAwareError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SelfAwareError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            SelfAwareError::UnknownSignal("load".into()).to_string(),
            "unknown signal key `load`"
        );
        assert!(SelfAwareError::MissingComponent("policy")
            .to_string()
            .contains("policy"));
        assert!(SelfAwareError::InvalidParameter {
            name: "alpha",
            constraint: "must be in (0,1]"
        }
        .to_string()
        .contains("alpha"));
        assert!(SelfAwareError::ModelCold("ewma")
            .to_string()
            .contains("ewma"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SelfAwareError>();
    }
}
