//! Collective self-awareness without a global component.
//!
//! Framework concept 3 (paper Section IV, after Mitchell \[45\]):
//! "self-awareness can be a property of collective systems, even when
//! there is no single component with a global awareness of the whole
//! system." This module provides the three canonical architectures for
//! a collective estimating a global quantity from per-node
//! observations, with explicit message accounting so experiment T5 can
//! compare accuracy against coordination cost and per-node hot-spot
//! load:
//!
//! * [`centralized_estimate`] — everyone reports to node 0 (the
//!   architecture the paper argues is increasingly infeasible);
//! * [`hierarchical_estimate`] — tree aggregation (Guang et al. \[63\],
//!   Amoretti & Cagnoni \[62\]);
//! * [`GossipNetwork`] — fully decentralised pairwise averaging; every
//!   node converges to the global mean with no aggregation point at
//!   all.

use simkernel::rng::Rng;
use simkernel::Tick;

/// Result of a collective estimation round: the estimate available at
/// each node, plus coordination cost accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectiveOutcome {
    /// Per-node estimate of the global quantity.
    pub estimates: Vec<f64>,
    /// Total messages exchanged.
    pub messages: u64,
    /// Maximum messages handled by any single node (hot-spot load).
    pub max_node_load: u64,
}

impl CollectiveOutcome {
    /// Mean absolute error of the per-node estimates against `truth`.
    #[must_use]
    pub fn mean_abs_error(&self, truth: f64) -> f64 {
        if self.estimates.is_empty() {
            return 0.0;
        }
        self.estimates
            .iter()
            .map(|e| (e - truth).abs())
            .sum::<f64>()
            / self.estimates.len() as f64
    }

    /// Worst-node absolute error against `truth`.
    #[must_use]
    pub fn max_abs_error(&self, truth: f64) -> f64 {
        self.estimates
            .iter()
            .map(|e| (e - truth).abs())
            .fold(0.0, f64::max)
    }
}

/// Central aggregation: every node sends its observation to node 0,
/// which computes the mean and broadcasts it back.
///
/// Messages: `2 (n-1)`; node 0 handles all of them.
///
/// # Panics
///
/// Panics if `observations` is empty.
#[must_use]
pub fn centralized_estimate(observations: &[f64]) -> CollectiveOutcome {
    assert!(!observations.is_empty(), "need at least one observation");
    let n = observations.len() as u64;
    let mean = observations.iter().sum::<f64>() / observations.len() as f64;
    CollectiveOutcome {
        estimates: vec![mean; observations.len()],
        messages: 2 * (n - 1),
        max_node_load: 2 * (n - 1),
    }
}

/// Tree aggregation with branching factor `branching`: observations
/// flow up a balanced tree (partial means aggregated at each level),
/// the root's mean flows back down.
///
/// Messages: `2 (n-1)` as well, but the hot-spot load is only
/// `2 · branching` — the point of hierarchy is load spreading, not
/// message count.
///
/// # Panics
///
/// Panics if `observations` is empty or `branching < 2`.
#[must_use]
pub fn hierarchical_estimate(observations: &[f64], branching: usize) -> CollectiveOutcome {
    assert!(!observations.is_empty(), "need at least one observation");
    assert!(branching >= 2, "branching factor must be at least 2");
    let n = observations.len();
    // Aggregate (sum, count) pairs level by level.
    let mut level: Vec<(f64, usize)> = observations.iter().map(|&x| (x, 1)).collect();
    let mut messages = 0u64;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len() / branching + 1);
        for chunk in level.chunks(branching) {
            let sum: f64 = chunk.iter().map(|c| c.0).sum();
            let count: usize = chunk.iter().map(|c| c.1).sum();
            // Each non-head member of the chunk sends one message to
            // the chunk head.
            messages += chunk.len().saturating_sub(1) as u64;
            next.push((sum, count));
        }
        level = next;
    }
    let (sum, count) = level[0];
    let mean = sum / count as f64;
    // Downward broadcast mirrors the upward tree.
    let messages = 2 * messages;
    CollectiveOutcome {
        estimates: vec![mean; n],
        messages,
        max_node_load: 2 * branching as u64,
    }
}

/// Fully decentralised gossip averaging.
///
/// Each round, `n/2` random disjoint pairs exchange values and both
/// move to the pairwise mean. Pairwise averaging conserves the global
/// mean exactly, so the collective converges (geometrically) to it —
/// achieving collective awareness with no aggregation point.
///
/// # Example
///
/// ```
/// use selfaware::collective::GossipNetwork;
/// use simkernel::SeedTree;
///
/// let mut g = GossipNetwork::new((0..32).map(|i| i as f64).collect());
/// let mut rng = SeedTree::new(1).rng("gossip");
/// for _ in 0..40 {
///     g.round(&mut rng);
/// }
/// let truth = 15.5;
/// for &v in g.values() {
///     assert!((v - truth).abs() < 0.5);
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GossipNetwork {
    values: Vec<f64>,
    messages: u64,
    per_node: Vec<u64>,
    rounds: u32,
}

impl GossipNetwork {
    /// Creates a gossip network from per-node initial observations.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is empty.
    #[must_use]
    pub fn new(initial: Vec<f64>) -> Self {
        assert!(!initial.is_empty(), "need at least one node");
        let n = initial.len();
        Self {
            values: initial,
            messages: 0,
            per_node: vec![0; n],
            rounds: 0,
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the network has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Current per-node values.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Executes one gossip round: a random perfect matching of nodes;
    /// each matched pair exchanges values (2 messages) and averages.
    pub fn round(&mut self, rng: &mut Rng) {
        use rand::seq::SliceRandom as _;
        let n = self.values.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);
        for pair in order.chunks(2) {
            if let [a, b] = *pair {
                let mean = (self.values[a] + self.values[b]) / 2.0;
                self.values[a] = mean;
                self.values[b] = mean;
                self.messages += 2;
                self.per_node[a] += 2;
                self.per_node[b] += 2;
            }
        }
        self.rounds += 1;
    }

    /// Runs `rounds` gossip rounds.
    pub fn run(&mut self, rounds: u32, rng: &mut Rng) {
        for _ in 0..rounds {
            self.round(rng);
        }
    }

    /// Rounds executed so far.
    #[must_use]
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Snapshot as a [`CollectiveOutcome`].
    #[must_use]
    pub fn outcome(&self) -> CollectiveOutcome {
        CollectiveOutcome {
            estimates: self.values.clone(),
            messages: self.messages,
            max_node_load: self.per_node.iter().copied().max().unwrap_or(0),
        }
    }

    /// Spread (max − min) of current node values: a convergence
    /// indicator the nodes themselves can estimate locally.
    #[must_use]
    pub fn spread(&self) -> f64 {
        let min = self.values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = self
            .values
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        max - min
    }
}

/// A disturbance event for dynamic-collective tests: replace node
/// `node`'s value at time `at` (models a node re-observing a changed
/// local condition mid-gossip).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reobservation {
    /// Node index.
    pub node: usize,
    /// New locally observed value.
    pub value: f64,
    /// When it happens.
    pub at: Tick,
}

impl GossipNetwork {
    /// Applies a re-observation (paper: ongoing change — the
    /// collective must keep re-converging as the world moves).
    ///
    /// # Panics
    ///
    /// Panics if the node index is out of range.
    pub fn reobserve(&mut self, r: Reobservation) {
        assert!(r.node < self.values.len(), "node out of range");
        self.values[r.node] = r.value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng {
        simkernel::SeedTree::new(33).rng("collective")
    }

    #[test]
    fn centralized_is_exact_but_hot() {
        let obs: Vec<f64> = (0..10).map(f64::from).collect();
        let out = centralized_estimate(&obs);
        assert!((out.estimates[0] - 4.5).abs() < 1e-12);
        assert_eq!(out.messages, 18);
        assert_eq!(out.max_node_load, 18);
        assert_eq!(out.mean_abs_error(4.5), 0.0);
    }

    #[test]
    fn hierarchical_is_exact_with_low_hotspot() {
        let obs: Vec<f64> = (0..27).map(f64::from).collect();
        let out = hierarchical_estimate(&obs, 3);
        let truth = 13.0;
        assert!(out.max_abs_error(truth) < 1e-9);
        assert_eq!(out.max_node_load, 6);
        assert!(out.messages > 0);
        // Hot-spot load strictly lower than centralised.
        let central = centralized_estimate(&obs);
        assert!(out.max_node_load < central.max_node_load);
    }

    #[test]
    fn hierarchy_message_count_matches_tree() {
        // 9 leaves, branching 3: 6 up messages at level 0, 2 at level 1
        // → 8 up, 16 total.
        let obs = vec![1.0; 9];
        let out = hierarchical_estimate(&obs, 3);
        assert_eq!(out.messages, 16);
    }

    #[test]
    fn gossip_preserves_mean_and_converges() {
        let init: Vec<f64> = (0..64).map(f64::from).collect();
        let truth = init.iter().sum::<f64>() / 64.0;
        let mut g = GossipNetwork::new(init);
        let mut r = rng();
        let spread0 = g.spread();
        g.run(50, &mut r);
        // Mean conserved.
        let mean = g.values().iter().sum::<f64>() / 64.0;
        assert!((mean - truth).abs() < 1e-9);
        // Converged.
        assert!(g.spread() < spread0 / 1000.0);
        assert!(g.outcome().mean_abs_error(truth) < 0.01);
        assert_eq!(g.rounds(), 50);
    }

    #[test]
    fn gossip_has_no_hotspot() {
        let mut g = GossipNetwork::new(vec![1.0; 32]);
        let mut r = rng();
        g.run(10, &mut r);
        let out = g.outcome();
        // Every node handles ~2 messages per round; nothing like a
        // central node's O(n) load.
        assert!(out.max_node_load <= 20);
        assert_eq!(out.messages, 32 * 10);
    }

    #[test]
    fn gossip_odd_node_count() {
        let mut g = GossipNetwork::new(vec![0.0, 10.0, 20.0]);
        let mut r = rng();
        g.run(60, &mut r);
        for &v in g.values() {
            assert!((v - 10.0).abs() < 0.5, "value {v} should converge to 10");
        }
    }

    #[test]
    fn gossip_reconverges_after_reobservation() {
        let mut g = GossipNetwork::new(vec![5.0; 16]);
        let mut r = rng();
        g.run(5, &mut r);
        g.reobserve(Reobservation {
            node: 3,
            value: 21.0,
            at: Tick(5),
        });
        g.run(40, &mut r);
        let new_truth = (5.0 * 15.0 + 21.0) / 16.0;
        assert!(g.outcome().max_abs_error(new_truth) < 0.05);
    }

    #[test]
    fn single_node_network() {
        let mut g = GossipNetwork::new(vec![7.0]);
        let mut r = rng();
        g.round(&mut r);
        assert_eq!(g.values(), &[7.0]);
        assert_eq!(g.outcome().messages, 0);
    }

    #[test]
    #[should_panic(expected = "need at least one node")]
    fn empty_gossip_panics() {
        let _ = GossipNetwork::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "branching factor must be at least 2")]
    fn bad_branching_panics() {
        let _ = hierarchical_estimate(&[1.0], 1);
    }

    #[test]
    #[should_panic(expected = "node out of range")]
    fn reobserve_out_of_range_panics() {
        let mut g = GossipNetwork::new(vec![1.0]);
        g.reobserve(Reobservation {
            node: 5,
            value: 0.0,
            at: Tick(0),
        });
    }
}
