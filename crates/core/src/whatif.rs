//! Self-prediction: predicting the effects of one's own actions.
//!
//! Kounev's self-aware systems vision (paper Section III) names
//! **self-prediction** — "the ability to predict the effects of
//! environmental changes and of actions" — as a defining property.
//! This module provides two pieces:
//!
//! * [`ActionEffectModel`] — a learned input→output self-model: for
//!   each candidate action, an online RLS regression from context
//!   features to the resulting value of an outcome signal. After
//!   enough (action, context, outcome) experience, the agent can ask
//!   "what would signal `y` become if I did `a` now?" without doing it.
//! * [`utility_with`] — counterfactual goal evaluation: the utility
//!   the current `Goal` *would* score if some
//!   signals took hypothesised values, everything else as believed.
//!
//! Together they support model-predictive self-expression: score every
//! action by `utility_with(goal, kb, predicted effects of the action)`
//! and pick the argmax — Winfield's "internal model used to moderate
//! actions" (Section III) in its simplest form.

use crate::error::{Result, SelfAwareError};
use crate::goals::Goal;
use crate::knowledge::KnowledgeBase;
use crate::models::rls::Rls;

/// A learned per-action effect model over one outcome signal.
///
/// # Example
///
/// ```
/// use selfaware::whatif::ActionEffectModel;
///
/// // Outcome: latency. Action 0 = eco, action 1 = boost.
/// // True world: latency = 10*load (eco), 4*load (boost).
/// let mut m = ActionEffectModel::new(2, 2); // feature = [load, bias]
/// for i in 0..200 {
///     let load = (i % 10) as f64 / 10.0;
///     m.observe(0, &[load, 1.0], 10.0 * load);
///     m.observe(1, &[load, 1.0], 4.0 * load);
/// }
/// let eco = m.predict(0, &[0.8, 1.0]).unwrap();
/// let boost = m.predict(1, &[0.8, 1.0]).unwrap();
/// assert!((eco - 8.0).abs() < 0.2);
/// assert!((boost - 3.2).abs() < 0.2);
/// ```
#[derive(Debug, Clone)]
pub struct ActionEffectModel {
    models: Vec<Rls>,
    min_observations: u64,
}

impl ActionEffectModel {
    /// Creates a model over `n_actions` actions and `feature_dim`
    /// context features (include a constant-1 bias feature for an
    /// intercept).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(n_actions: usize, feature_dim: usize) -> Self {
        assert!(n_actions > 0, "need at least one action");
        assert!(feature_dim > 0, "need at least one feature");
        Self {
            models: (0..n_actions)
                .map(|_| Rls::new(feature_dim, 0.995, 1e4))
                .collect(),
            min_observations: 5,
        }
    }

    /// Sets how many observations an action needs before predictions
    /// are considered warm (builder style; default 5).
    #[must_use]
    pub fn with_min_observations(mut self, n: u64) -> Self {
        self.min_observations = n;
        self
    }

    /// Number of actions modelled.
    #[must_use]
    pub fn n_actions(&self) -> usize {
        self.models.len()
    }

    /// Records that doing `action` in context `features` produced
    /// `outcome`.
    ///
    /// # Panics
    ///
    /// Panics if `action` is out of range or the feature dimension is
    /// wrong.
    pub fn observe(&mut self, action: usize, features: &[f64], outcome: f64) {
        self.models[action].observe(features, outcome);
    }

    /// Predicts the outcome of doing `action` in context `features`.
    ///
    /// # Errors
    ///
    /// Returns [`SelfAwareError::ModelCold`] until the action has been
    /// observed at least `min_observations` times.
    ///
    /// # Panics
    ///
    /// Panics if `action` is out of range or the feature dimension is
    /// wrong.
    pub fn predict(&self, action: usize, features: &[f64]) -> Result<f64> {
        let m = &self.models[action];
        if m.observations() < self.min_observations {
            return Err(SelfAwareError::ModelCold("action effect model"));
        }
        Ok(m.predict(features))
    }

    /// Observations recorded for `action`.
    ///
    /// # Panics
    ///
    /// Panics if `action` is out of range.
    #[must_use]
    pub fn observations(&self, action: usize) -> u64 {
        self.models[action].observations()
    }
}

/// Counterfactual utility: evaluates `goal` against the knowledge base
/// with `overrides` substituted for the named signals.
///
/// # Example
///
/// ```
/// use selfaware::goals::{Direction, Goal, Objective};
/// use selfaware::knowledge::KnowledgeBase;
/// use selfaware::sensors::{Percept, Scope};
/// use selfaware::whatif::utility_with;
/// use simkernel::Tick;
///
/// let goal = Goal::new("g")
///     .objective(Objective::new("latency", Direction::Minimize, 10.0, 1.0));
/// let mut kb = KnowledgeBase::new(8);
/// kb.absorb(&Percept::new("latency", 8.0, Scope::Public, Tick(0)));
///
/// let now = utility_with(&goal, &kb, &[]);
/// let if_boosted = utility_with(&goal, &kb, &[("latency", 3.0)]);
/// assert!(if_boosted > now);
/// ```
#[must_use]
pub fn utility_with(goal: &Goal, kb: &KnowledgeBase, overrides: &[(&str, f64)]) -> f64 {
    goal.utility(|key| {
        overrides
            .iter()
            .find(|(k, _)| *k == key)
            .map(|&(_, v)| v)
            .or_else(|| kb.last(key))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goals::{Direction, Objective};
    use crate::sensors::{Percept, Scope};
    use simkernel::Tick;

    #[test]
    fn learns_distinct_action_effects() {
        let mut m = ActionEffectModel::new(3, 2);
        for i in 0..100 {
            let x = (i % 7) as f64;
            m.observe(0, &[x, 1.0], 2.0 * x);
            m.observe(1, &[x, 1.0], 5.0 - x);
            m.observe(2, &[x, 1.0], 0.0);
        }
        assert!((m.predict(0, &[3.0, 1.0]).unwrap() - 6.0).abs() < 0.1);
        assert!((m.predict(1, &[3.0, 1.0]).unwrap() - 2.0).abs() < 0.1);
        assert!(m.predict(2, &[3.0, 1.0]).unwrap().abs() < 0.1);
    }

    #[test]
    fn cold_actions_refuse_to_predict() {
        let mut m = ActionEffectModel::new(2, 1);
        for _ in 0..10 {
            m.observe(0, &[1.0], 1.0);
        }
        assert!(m.predict(0, &[1.0]).is_ok());
        assert_eq!(
            m.predict(1, &[1.0]).unwrap_err(),
            SelfAwareError::ModelCold("action effect model")
        );
        assert_eq!(m.observations(1), 0);
    }

    #[test]
    fn min_observations_configurable() {
        let mut m = ActionEffectModel::new(1, 1).with_min_observations(2);
        m.observe(0, &[1.0], 3.0);
        assert!(m.predict(0, &[1.0]).is_err());
        m.observe(0, &[1.0], 3.0);
        assert!(m.predict(0, &[1.0]).is_ok());
        assert_eq!(m.n_actions(), 1);
    }

    fn kb_with(entries: &[(&str, f64)]) -> KnowledgeBase {
        let mut kb = KnowledgeBase::new(8);
        for &(k, v) in entries {
            kb.absorb(&Percept::new(k, v, Scope::Public, Tick(0)));
        }
        kb
    }

    #[test]
    fn overrides_shadow_beliefs() {
        let goal = Goal::new("g")
            .objective(Objective::new("a", Direction::Maximize, 1.0, 1.0))
            .objective(Objective::new("b", Direction::Maximize, 1.0, 1.0));
        let kb = kb_with(&[("a", 0.2), ("b", 0.8)]);
        let base = utility_with(&goal, &kb, &[]);
        assert!((base - 0.5).abs() < 1e-12);
        let better = utility_with(&goal, &kb, &[("a", 1.0)]);
        assert!((better - 0.9).abs() < 1e-12);
        // Overriding an unknown signal fills the gap.
        let goal2 = Goal::new("g2").objective(Objective::new("c", Direction::Maximize, 1.0, 1.0));
        assert_eq!(utility_with(&goal2, &kb, &[]), 0.0);
        assert_eq!(utility_with(&goal2, &kb, &[("c", 1.0)]), 1.0);
    }

    #[test]
    fn model_predictive_action_selection_end_to_end() {
        // The composed pattern: learn effects, then choose the action
        // whose *predicted* consequences maximise counterfactual
        // utility.
        let goal = Goal::new("g")
            .objective(Objective::new("latency", Direction::Minimize, 20.0, 2.0))
            .objective(Objective::new("energy", Direction::Minimize, 10.0, 1.0));
        let mut lat = ActionEffectModel::new(2, 2);
        let mut en = ActionEffectModel::new(2, 2);
        // World: boost (1) halves latency but triples energy.
        for i in 0..100 {
            let load = (i % 10) as f64;
            lat.observe(0, &[load, 1.0], 2.0 * load);
            lat.observe(1, &[load, 1.0], 1.0 * load);
            en.observe(0, &[load, 1.0], 2.0);
            en.observe(1, &[load, 1.0], 6.0);
        }
        let kb = kb_with(&[("latency", 10.0), ("energy", 2.0)]);
        let choose = |load: f64| -> usize {
            (0..2)
                .max_by(|&a, &b| {
                    let ua = utility_with(
                        &goal,
                        &kb,
                        &[
                            ("latency", lat.predict(a, &[load, 1.0]).unwrap()),
                            ("energy", en.predict(a, &[load, 1.0]).unwrap()),
                        ],
                    );
                    let ub = utility_with(
                        &goal,
                        &kb,
                        &[
                            ("latency", lat.predict(b, &[load, 1.0]).unwrap()),
                            ("energy", en.predict(b, &[load, 1.0]).unwrap()),
                        ],
                    );
                    ua.partial_cmp(&ub).unwrap()
                })
                .expect("two actions")
        };
        // Light load: boost's energy is not worth the latency gain.
        assert_eq!(choose(1.0), 0);
        // Heavy load: predicted latency dominates — boost.
        assert_eq!(choose(9.0), 1);
    }

    #[test]
    #[should_panic(expected = "need at least one action")]
    fn zero_actions_panics() {
        let _ = ActionEffectModel::new(0, 1);
    }
}
