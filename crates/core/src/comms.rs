//! Robust communication over unreliable channels.
//!
//! Lewis (DATE 2017) grounds *collective* self-awareness in
//! decentralised agents that learn about one another through the
//! network — and real networks drop, delay, duplicate, and partition.
//! This module supplies the machinery a collective needs to stay
//! self-aware when its links misbehave:
//!
//! * [`Channel`] — the abstract unreliable medium. A transmission
//!   yields zero or more delivery ticks ([`ChannelOutcome`]); the
//!   deterministic lossy implementation lives in
//!   `workloads::faults::ChannelPlan`, while [`IdealChannel`] keeps
//!   the historical perfect-network behaviour.
//! * [`CommsNetwork`] — a message layer over a channel. In
//!   [`CommsPolicy::Naive`] mode it is fire-and-forget (the ablation
//!   baseline: no acknowledgements, no dedup, no retry). In
//!   [`CommsPolicy::Reliable`] mode it runs a full protocol: per-link
//!   sequence numbers, receiver-side dedup, ack/retry with exponential
//!   backoff under a retry budget, send timeouts, and per-peer
//!   staleness tracking. Every retry, expiry, and partition
//!   transition is recorded in the [`ExplanationLog`].
//! * [`StalenessWeighted`] — a fusion rule that discounts peer-derived
//!   knowledge by its age (weight `0.5^(age/half_life)`), so the
//!   public self-model leans on fresh peers and falls back toward
//!   priors for silent ones instead of trusting stale state.
//!
//! Determinism contract: the layer itself consumes **no** randomness;
//! all stochastic behaviour lives in the [`Channel`] implementation,
//! which must be a pure function of `(link, sequence number, tick)`.
//! Combined with the deterministic drain order of
//! [`simkernel::delivery::DeliveryQueue`], lossy runs stay
//! bit-identical between sequential and parallel replication.
//!
//! Allocation contract: the steady-state send/deliver/ack cycle is
//! free of per-message heap traffic. Payload bodies live once in a
//! reference-counted slab shared by duplicates and retries, dedup
//! uses a flat bitmap window, arrival outcomes are stored inline, and
//! drained per-tick buffers are recycled. Callers that want the
//! allocation-free delivery path use [`CommsNetwork::step_into`] with
//! a reused buffer (`step` is a convenience wrapper that allocates
//! the result `Vec`); `crates/bench/tests/zero_alloc.rs` enforces the
//! contract with a counting allocator.
//!
//! ```
//! use selfaware::comms::{CommsNetwork, CommsPolicy, IdealChannel};
//! use selfaware::explain::ExplanationLog;
//! use simkernel::Tick;
//!
//! let mut net: CommsNetwork<&str> = CommsNetwork::new(CommsPolicy::default());
//! let mut log = ExplanationLog::new(64);
//! net.send(&IdealChannel, 0, 1, "hello", Tick(0), &mut log);
//! let got = net.step(&IdealChannel, Tick(0), &mut log);
//! assert_eq!(got.len(), 1);
//! assert_eq!(got[0].payload, "hello");
//! assert_eq!(net.stats().delivered, 1);
//! ```

use crate::explain::{Explanation, ExplanationLog};
use crate::replay::{InterventionClass, InterventionMask};
use serde::{Deserialize, Serialize};
use simkernel::delivery::DeliveryQueue;
use simkernel::obs::{self, Json};
use simkernel::Tick;
use std::collections::{BTreeMap, BTreeSet};

/// High bit of the wire sequence space: marks acknowledgement frames
/// so they never share a channel decision with the data frame they
/// acknowledge.
const ACK_BIT: u64 = 1 << 63;
/// Retransmission attempts are folded into the wire sequence above
/// this bit, so every retry gets an independent channel decision.
const ATTEMPT_SHIFT: u32 = 48;
/// Per-link receiver dedup window (sequence numbers remembered).
const SEEN_WINDOW: usize = 512;

/// Arrival ticks of one transmission.
///
/// Stored inline for up to two copies — the overwhelmingly common
/// outcomes "delivered once" and "duplicated" — with heap spill only
/// for exotic channels, so constructing an outcome on the per-frame
/// hot path never allocates.
#[derive(Debug, Clone, Default)]
pub struct Arrivals {
    inline: [Tick; 2],
    inline_len: u8,
    spill: Vec<Tick>,
}

impl Arrivals {
    /// No arrivals (a lost frame).
    #[must_use]
    pub const fn new() -> Self {
        Self {
            inline: [Tick(0); 2],
            inline_len: 0,
            spill: Vec::new(),
        }
    }

    /// A single arrival at `at`.
    #[must_use]
    pub fn once(at: Tick) -> Self {
        let mut a = Self::new();
        a.push(at);
        a
    }

    /// Appends an arrival tick (insertion order is preserved).
    pub fn push(&mut self, at: Tick) {
        if usize::from(self.inline_len) < self.inline.len() {
            self.inline[usize::from(self.inline_len)] = at;
            self.inline_len += 1;
        } else {
            self.spill.push(at);
        }
    }

    /// Number of copies that arrive.
    #[must_use]
    pub fn len(&self) -> usize {
        usize::from(self.inline_len) + self.spill.len()
    }

    /// True when no copy arrives.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inline_len == 0
    }

    /// Arrival ticks in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = Tick> + '_ {
        self.inline[..usize::from(self.inline_len)]
            .iter()
            .copied()
            .chain(self.spill.iter().copied())
    }

    /// The first-pushed arrival, if any.
    #[must_use]
    pub fn first(&self) -> Option<Tick> {
        self.iter().next()
    }

    /// True when some copy arrives exactly at `at`.
    #[must_use]
    pub fn contains(&self, at: Tick) -> bool {
        self.iter().any(|t| t == at)
    }
}

// Equality is the arrival sequence; the inline/spill split and any
// stale inline slots beyond `inline_len` are representation details.
impl PartialEq for Arrivals {
    fn eq(&self, other: &Self) -> bool {
        self.iter().eq(other.iter())
    }
}

impl Eq for Arrivals {}

impl FromIterator<Tick> for Arrivals {
    fn from_iter<I: IntoIterator<Item = Tick>>(iter: I) -> Self {
        let mut a = Self::new();
        for t in iter {
            a.push(t);
        }
        a
    }
}

/// The fate of one transmission attempt on a channel.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChannelOutcome {
    /// Ticks at which copies of the frame arrive (empty = lost;
    /// more than one = duplicated; later than `now` = delayed).
    pub arrivals: Arrivals,
    /// True when the frame was dropped because the link is inside a
    /// scheduled partition window.
    pub partitioned: bool,
}

impl ChannelOutcome {
    /// A frame that arrives exactly once, at `at`.
    #[must_use]
    pub fn delivered(at: Tick) -> Self {
        Self {
            arrivals: Arrivals::once(at),
            partitioned: false,
        }
    }

    /// A frame the channel dropped (outside any partition).
    #[must_use]
    pub fn lost() -> Self {
        Self::default()
    }

    /// True if any copy arrives at exactly `now` (same-tick success,
    /// the requirement for latency-bound exchanges like auctions).
    #[must_use]
    pub fn arrives_at(&self, now: Tick) -> bool {
        self.arrivals.contains(now)
    }
}

/// An unreliable point-to-point medium.
///
/// Implementations must be *pure*: the outcome may depend only on the
/// link `(src, dst)`, the wire sequence number, and the tick — never
/// on mutable state or an RNG stream — so that call order cannot
/// perturb replicate determinism.
pub trait Channel {
    /// Decides the fate of frame `seq` sent `src → dst` at `now`.
    fn transmit(&self, src: usize, dst: usize, seq: u64, now: Tick) -> ChannelOutcome;

    /// True when the channel never loses, delays, duplicates, or
    /// partitions (lets callers skip degraded-mode bookkeeping).
    fn is_ideal(&self) -> bool {
        false
    }
}

/// The historical perfect network: every frame arrives once, in the
/// same tick it was sent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdealChannel;

impl Channel for IdealChannel {
    fn transmit(&self, _src: usize, _dst: usize, _seq: u64, now: Tick) -> ChannelOutcome {
        ChannelOutcome::delivered(now)
    }

    fn is_ideal(&self) -> bool {
        true
    }
}

/// Tuning for the reliable protocol.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReliableConfig {
    /// Ticks before the first retransmission of an unacked message.
    pub retry_backoff: u64,
    /// Upper bound on the (doubling) retransmission interval.
    pub backoff_max: u64,
    /// Maximum transmissions per message (initial send included).
    pub retry_budget: u32,
    /// Ticks after which an unacked message expires outright.
    pub send_timeout: u64,
    /// Half-life (ticks) for staleness discounting of peer knowledge.
    pub half_life: f64,
}

impl Default for ReliableConfig {
    fn default() -> Self {
        Self {
            retry_backoff: 2,
            backoff_max: 32,
            retry_budget: 8,
            send_timeout: 120,
            half_life: 40.0,
        }
    }
}

/// How a collective moves messages between its members.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CommsPolicy {
    /// Fire-and-forget: no acks, no dedup, no retry, no staleness
    /// model. The ablation baseline — what every pre-PR-4 run
    /// implicitly assumed, now made to face a real channel.
    Naive,
    /// Sequence numbers + dedup + ack/retry + timeouts + staleness.
    Reliable(ReliableConfig),
}

impl Default for CommsPolicy {
    fn default() -> Self {
        Self::Reliable(ReliableConfig::default())
    }
}

impl CommsPolicy {
    /// True for the fire-and-forget baseline.
    #[must_use]
    pub fn is_naive(&self) -> bool {
        matches!(self, Self::Naive)
    }

    /// Short label for tables and arm names.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::Naive => "naive",
            Self::Reliable(_) => "staleness-aware",
        }
    }
}

/// Lifetime counters for a [`CommsNetwork`].
///
/// Alongside the flat totals, two per-link maps attribute abandoned
/// sends to the `(src, dst)` link that lost them: a degradation report
/// that only shows "expired = 741" hides *which* edge of the collective
/// went dark, which is exactly the signal cascade diagnosis needs.
/// Per-link entries are created lazily on the first expiry of a link,
/// so the steady-state send/deliver/ack cycle stays allocation-free.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommsStats {
    /// Frames handed to the channel (retransmissions included).
    pub sent: u64,
    /// Unique messages delivered to a receiver.
    pub delivered: u64,
    /// Copies suppressed by receiver-side dedup.
    pub duplicates: u64,
    /// Retransmissions performed.
    pub retries: u64,
    /// Messages confirmed by an acknowledgement.
    pub acked: u64,
    /// Messages abandoned (budget or timeout exhausted).
    pub expired: u64,
    /// Messages abandoned specifically because the retry budget ran
    /// out (a subset of [`CommsStats::expired`]; the rest timed out).
    pub budget_exhausted: u64,
    /// Frames dropped inside a partition window.
    pub partition_hits: u64,
    /// Same-tick exchanges (probe/fire) that failed.
    pub exchange_failures: u64,
    /// Expired sends per `(src, dst)` link (all causes).
    pub expired_by_link: BTreeMap<(usize, usize), u64>,
    /// Retry-budget exhaustions per `(src, dst)` link.
    pub budget_exhausted_by_link: BTreeMap<(usize, usize), u64>,
}

impl CommsStats {
    /// Expired sends on the `src → dst` link (all causes).
    #[must_use]
    pub fn link_expired(&self, src: usize, dst: usize) -> u64 {
        self.expired_by_link.get(&(src, dst)).copied().unwrap_or(0)
    }

    /// Retry-budget exhaustions on the `src → dst` link.
    #[must_use]
    pub fn link_budget_exhausted(&self, src: usize, dst: usize) -> u64 {
        self.budget_exhausted_by_link
            .get(&(src, dst))
            .copied()
            .unwrap_or(0)
    }

    fn link_map_json(map: &BTreeMap<(usize, usize), u64>) -> Json {
        Json::obj(
            map.iter()
                .map(|(&(src, dst), &n)| (format!("{src}->{dst}"), Json::from(n))),
        )
    }

    /// Structured export for run traces (see [`simkernel::obs`]).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("sent", Json::from(self.sent)),
            ("delivered", Json::from(self.delivered)),
            ("duplicates", Json::from(self.duplicates)),
            ("retries", Json::from(self.retries)),
            ("acked", Json::from(self.acked)),
            ("expired", Json::from(self.expired)),
            ("budget_exhausted", Json::from(self.budget_exhausted)),
            ("partition_hits", Json::from(self.partition_hits)),
            ("exchange_failures", Json::from(self.exchange_failures)),
            (
                "expired_by_link",
                Self::link_map_json(&self.expired_by_link),
            ),
            (
                "budget_exhausted_by_link",
                Self::link_map_json(&self.budget_exhausted_by_link),
            ),
        ])
    }
}

/// A message delivered by [`CommsNetwork::step`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivered<M> {
    /// Original sender.
    pub src: usize,
    /// Receiver.
    pub dst: usize,
    /// Per-link sequence number.
    pub seq: u64,
    /// The payload.
    pub payload: M,
}

/// A data frame in the air. Payload bodies live in the network's
/// [`PayloadSlab`]; flights carry only the slot index, so duplicating
/// a frame across arrival ticks copies nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Flight {
    src: usize,
    dst: usize,
    seq: u64,
    wire_seq: u64,
    slot: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct AckFlight {
    src: usize,
    dst: usize,
    seq: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Pending {
    slot: u32,
    sent_at: u64,
    next_retry: u64,
    attempts: u32,
}

/// Words in the dedup bitmap ([`SEEN_WINDOW`] bits).
const SEEN_WORDS: usize = SEEN_WINDOW / 64;

/// Receiver-side dedup with bounded memory: a sliding bitmap covering
/// the [`SEEN_WINDOW`] sequence numbers from `floor` up; anything
/// below the floor is treated as already seen. A flat bitmap rather
/// than a `BTreeSet` keeps the per-frame dedup check allocation-free
/// (ascending inserts split a B-tree node roughly every eleven
/// sequence numbers).
#[derive(Debug, Clone, PartialEq, Eq)]
struct SeenWindow {
    floor: u64,
    bits: [u64; SEEN_WORDS],
}

impl Default for SeenWindow {
    fn default() -> Self {
        Self {
            floor: 0,
            bits: [0; SEEN_WORDS],
        }
    }
}

impl SeenWindow {
    /// Marks `seq` as seen; returns true when it was fresh.
    fn mark(&mut self, seq: u64) -> bool {
        if seq < self.floor {
            return false;
        }
        let width = SEEN_WINDOW as u64;
        if seq - self.floor >= width {
            // Slide the window up so `seq` becomes its newest bit;
            // whatever falls off the bottom counts as seen.
            let advance = seq - self.floor - (width - 1);
            self.shift_down(advance);
            self.floor += advance;
        }
        let off = (seq - self.floor) as usize;
        let (word, bit) = (off / 64, off % 64);
        let mask = 1u64 << bit;
        if self.bits[word] & mask != 0 {
            return false;
        }
        self.bits[word] |= mask;
        true
    }

    /// Shifts the bitmap toward lower positions by `by`: the bit for
    /// sequence `floor + by + i` moves to position `i`, the lowest
    /// `by` bits drop off.
    fn shift_down(&mut self, by: u64) {
        if by >= SEEN_WINDOW as u64 {
            self.bits = [0; SEEN_WORDS];
            return;
        }
        let by = by as usize;
        let (words, bits) = (by / 64, by % 64);
        let mut next = [0u64; SEEN_WORDS];
        for (i, slot) in next.iter_mut().enumerate().take(SEEN_WORDS - words) {
            let lo = self.bits[i + words] >> bits;
            let hi = if bits == 0 || i + words + 1 >= SEEN_WORDS {
                0
            } else {
                self.bits[i + words + 1] << (64 - bits)
            };
            *slot = lo | hi;
        }
        self.bits = next;
    }
}

/// Reference-counted payload arena: one copy of each message body,
/// shared by every in-flight duplicate and the retry buffer, indexed
/// by `u32` slot. Freed slots are recycled through an intrusive free
/// list, so the steady-state send/deliver/ack cycle allocates
/// nothing.
#[derive(Debug, Clone, PartialEq)]
enum PayloadSlot<M> {
    Free { next: Option<u32> },
    Full { payload: M, refs: u32 },
}

#[derive(Debug, Clone, PartialEq)]
struct PayloadSlab<M> {
    slots: Vec<PayloadSlot<M>>,
    free_head: Option<u32>,
}

impl<M> PayloadSlab<M> {
    const fn new() -> Self {
        Self {
            slots: Vec::new(),
            free_head: None,
        }
    }

    /// Stores `payload` with one reference; returns its slot index.
    fn insert(&mut self, payload: M) -> u32 {
        match self.free_head {
            Some(i) => {
                let slot = &mut self.slots[i as usize];
                self.free_head = match slot {
                    PayloadSlot::Free { next } => *next,
                    // Unreachable: only freed slots enter the list.
                    PayloadSlot::Full { .. } => None,
                };
                *slot = PayloadSlot::Full { payload, refs: 1 };
                i
            }
            None => {
                debug_assert!(self.slots.len() < u32::MAX as usize);
                let i = self.slots.len() as u32;
                self.slots.push(PayloadSlot::Full { payload, refs: 1 });
                i
            }
        }
    }

    /// The payload stored in `slot`.
    fn get(&self, slot: u32) -> &M {
        match &self.slots[slot as usize] {
            PayloadSlot::Full { payload, .. } => payload,
            PayloadSlot::Free { .. } => unreachable!("comms payload slot {slot} is free"),
        }
    }

    /// Adds a reference (another in-flight copy of the message).
    fn incref(&mut self, slot: u32) {
        if let PayloadSlot::Full { refs, .. } = &mut self.slots[slot as usize] {
            *refs += 1;
        }
    }

    /// Drops one reference; recycles the slot when none remain.
    fn decref(&mut self, slot: u32) {
        let entry = &mut self.slots[slot as usize];
        if let PayloadSlot::Full { refs, .. } = entry {
            *refs -= 1;
            if *refs == 0 {
                *entry = PayloadSlot::Free {
                    next: self.free_head,
                };
                self.free_head = Some(slot);
            }
        }
    }
}

/// A message layer for one collective: every member addressed by
/// index, every link running over the same [`Channel`].
///
/// The network consumes no randomness; pair it with a deterministic
/// channel and the whole exchange is a pure function of the seed.
#[derive(Debug, Clone, PartialEq)]
pub struct CommsNetwork<M> {
    policy: CommsPolicy,
    seq: BTreeMap<(usize, usize), u64>,
    payloads: PayloadSlab<M>,
    data: DeliveryQueue<Flight>,
    acks: DeliveryQueue<AckFlight>,
    pending: BTreeMap<(usize, usize, u64), Pending>,
    seen: BTreeMap<(usize, usize), SeenWindow>,
    last_heard: BTreeMap<(usize, usize), u64>,
    partitioned_links: BTreeSet<(usize, usize)>,
    stats: CommsStats,
    mask: InterventionMask,
    // Scratch buffers reused across `step` calls. Always drained
    // empty before a call returns, so the derived `PartialEq` (which
    // sees only empty vectors) and `Clone` stay honest.
    flight_scratch: Vec<Flight>,
    ack_scratch: Vec<AckFlight>,
    retry_scratch: Vec<(usize, usize, u64)>,
}

impl<M: Clone> CommsNetwork<M> {
    /// Creates an empty network under `policy`.
    #[must_use]
    pub fn new(policy: CommsPolicy) -> Self {
        Self {
            policy,
            seq: BTreeMap::new(),
            payloads: PayloadSlab::new(),
            data: DeliveryQueue::new(),
            acks: DeliveryQueue::new(),
            pending: BTreeMap::new(),
            seen: BTreeMap::new(),
            last_heard: BTreeMap::new(),
            partitioned_links: BTreeSet::new(),
            stats: CommsStats::default(),
            mask: InterventionMask::allow_all(),
            flight_scratch: Vec::new(),
            ack_scratch: Vec::new(),
            retry_scratch: Vec::new(),
        }
    }

    /// Sets the counterfactual-replay intervention mask (see
    /// [`crate::replay`]). With `CommsRetry` suppressed, pending
    /// messages still age, back off and expire on exactly the factual
    /// schedule — only the retransmission itself (and its stats/log
    /// footprint) is withheld. The network consumes no randomness
    /// either way.
    pub fn set_mask(&mut self, mask: InterventionMask) {
        self.mask = mask;
    }

    /// Builder-style [`CommsNetwork::set_mask`].
    #[must_use]
    pub fn with_mask(mut self, mask: InterventionMask) -> Self {
        self.set_mask(mask);
        self
    }

    /// The active policy.
    #[must_use]
    pub fn policy(&self) -> &CommsPolicy {
        &self.policy
    }

    /// Lifetime counters. Cloned out — the per-link attribution maps
    /// make [`CommsStats`] non-`Copy`; use [`CommsNetwork::stats_ref`]
    /// on hot paths.
    #[must_use]
    pub fn stats(&self) -> CommsStats {
        self.stats.clone()
    }

    /// Borrowed view of the lifetime counters (no clone).
    #[must_use]
    pub fn stats_ref(&self) -> &CommsStats {
        &self.stats
    }

    /// Messages sent but not yet acknowledged (reliable mode).
    #[must_use]
    pub fn unacked(&self) -> usize {
        self.pending.len()
    }

    fn bump_seq(&mut self, src: usize, dst: usize) -> u64 {
        let c = self.seq.entry((src, dst)).or_insert(0);
        let seq = *c;
        *c += 1;
        seq
    }

    /// One raw channel attempt, with partition-transition logging.
    fn transmit_logged<C: Channel + ?Sized>(
        &mut self,
        ch: &C,
        src: usize,
        dst: usize,
        wire_seq: u64,
        now: Tick,
        log: &mut ExplanationLog,
    ) -> ChannelOutcome {
        let o = ch.transmit(src, dst, wire_seq, now);
        if o.partitioned {
            self.stats.partition_hits += 1;
            if self.partitioned_links.insert((src, dst)) {
                log.record_with(|| {
                    Explanation::new(now, format!("comms:partition:{src}->{dst}"))
                        .because("src", src as f64)
                        .because("dst", dst as f64)
                });
            }
        } else if self.partitioned_links.remove(&(src, dst)) {
            log.record_with(|| {
                Explanation::new(now, format!("comms:heal:{src}->{dst}"))
                    .because("src", src as f64)
                    .because("dst", dst as f64)
            });
        }
        o
    }

    #[allow(clippy::too_many_arguments)] // first-send and retransmit share this path; attempt is the only extra knob
    fn launch<C: Channel + ?Sized>(
        &mut self,
        ch: &C,
        src: usize,
        dst: usize,
        seq: u64,
        attempt: u32,
        slot: u32,
        now: Tick,
        log: &mut ExplanationLog,
    ) {
        self.stats.sent += 1;
        let wire_seq = seq | (u64::from(attempt) << ATTEMPT_SHIFT);
        let o = self.transmit_logged(ch, src, dst, wire_seq, now, log);
        for at in o.arrivals.iter() {
            // Each airborne copy holds one slab reference; the body
            // itself is never duplicated.
            self.payloads.incref(slot);
            self.data.schedule(
                at,
                Flight {
                    src,
                    dst,
                    seq,
                    wire_seq,
                    slot,
                },
            );
        }
    }

    /// Sends `payload` from `src` to `dst`. Returns the per-link
    /// sequence number. In reliable mode the message is tracked until
    /// acked, expired, or out of retry budget.
    ///
    /// The payload is stored once in a reference-counted slab shared
    /// by every in-flight duplicate and the retry buffer: sending and
    /// retrying never clone the message body.
    pub fn send<C: Channel + ?Sized>(
        &mut self,
        ch: &C,
        src: usize,
        dst: usize,
        payload: M,
        now: Tick,
        log: &mut ExplanationLog,
    ) -> u64 {
        let _span = obs::span("comms");
        let seq = self.bump_seq(src, dst);
        let slot = self.payloads.insert(payload);
        if let CommsPolicy::Reliable(cfg) = self.policy {
            // The slab reference created by `insert` transfers to the
            // pending entry (released on ack or expiry).
            self.pending.insert(
                (src, dst, seq),
                Pending {
                    slot,
                    sent_at: now.0,
                    // Saturating: `retry_backoff` is caller-supplied
                    // and may be huge; a saturated deadline simply
                    // means "never retries before the timeout".
                    next_retry: now.0.saturating_add(cfg.retry_backoff),
                    attempts: 1,
                },
            );
            self.launch(ch, src, dst, seq, 0, slot, now, log);
        } else {
            self.launch(ch, src, dst, seq, 0, slot, now, log);
            // Fire-and-forget: only airborne copies keep the body
            // alive, so a lost frame frees its slot immediately.
            self.payloads.decref(slot);
        }
        seq
    }

    /// Advances the protocol one tick: lands acks, delivers due
    /// frames (deduped in reliable mode, acknowledged back through
    /// the same lossy channel), retries what the backoff says is due,
    /// and expires what is out of budget or past its timeout. Returns
    /// the messages that reached their receiver this tick, in
    /// deterministic (arrival, send-order) order.
    pub fn step<C: Channel + ?Sized>(
        &mut self,
        ch: &C,
        now: Tick,
        log: &mut ExplanationLog,
    ) -> Vec<Delivered<M>> {
        let mut out = Vec::new();
        self.step_into(ch, now, log, &mut out);
        out
    }

    /// Like [`CommsNetwork::step`], but appends deliveries to a
    /// caller-supplied buffer instead of allocating a fresh `Vec`
    /// (`out` is *not* cleared first). With a reused buffer the
    /// steady-state send/deliver/ack cycle performs no heap
    /// allocation per message.
    pub fn step_into<C: Channel + ?Sized>(
        &mut self,
        ch: &C,
        now: Tick,
        log: &mut ExplanationLog,
        out: &mut Vec<Delivered<M>>,
    ) {
        let _span = obs::span("comms");
        // 1. Acks coming home confirm pending messages (before the
        // retry scan, so an acked message never retries this tick).
        self.land_acks(now);

        // 2. Retries and expiries — before the delivery phase, so a
        // zero-delay retransmission can still land this same tick.
        self.drive_pending(ch, now, log);

        // 3. Data frames landing now.
        let reliable = matches!(self.policy, CommsPolicy::Reliable(_));
        let mut flights = std::mem::take(&mut self.flight_scratch);
        self.data.drain_due_into(now, &mut flights);
        for f in flights.drain(..) {
            let fresh = if reliable {
                self.seen.entry((f.src, f.dst)).or_default().mark(f.seq)
            } else {
                true
            };
            if fresh {
                self.stats.delivered += 1;
                self.last_heard.insert((f.dst, f.src), now.0);
                out.push(Delivered {
                    src: f.src,
                    dst: f.dst,
                    seq: f.seq,
                    // The one deliberate copy: the receiver owns its
                    // message (trivial for the `Copy` payloads the
                    // substrates use).
                    payload: self.payloads.get(f.slot).clone(),
                });
            } else {
                self.stats.duplicates += 1;
            }
            self.payloads.decref(f.slot);
            if reliable {
                // Ack every copy (the ack for an earlier copy may
                // itself have been lost); the ack rides the reverse
                // link and is just as mortal as the data was.
                let o = self.transmit_logged(ch, f.dst, f.src, f.wire_seq | ACK_BIT, now, log);
                if let Some(at) = o.arrivals.first() {
                    self.acks.schedule(
                        at,
                        AckFlight {
                            src: f.src,
                            dst: f.dst,
                            seq: f.seq,
                        },
                    );
                }
            }
        }
        self.flight_scratch = flights;

        // 4. Acks generated by this tick's deliveries may arrive in
        // the same tick on a zero-delay link; land them now so an
        // ideal channel leaves nothing pending across ticks.
        self.land_acks(now);
    }

    fn land_acks(&mut self, now: Tick) {
        let mut acks = std::mem::take(&mut self.ack_scratch);
        self.acks.drain_due_into(now, &mut acks);
        for a in acks.drain(..) {
            if let Some(p) = self.pending.remove(&(a.src, a.dst, a.seq)) {
                self.stats.acked += 1;
                self.last_heard.insert((a.src, a.dst), now.0);
                self.payloads.decref(p.slot);
            }
        }
        self.ack_scratch = acks;
    }

    fn drive_pending<C: Channel + ?Sized>(&mut self, ch: &C, now: Tick, log: &mut ExplanationLog) {
        let CommsPolicy::Reliable(cfg) = self.policy else {
            return;
        };
        let mut due = std::mem::take(&mut self.retry_scratch);
        due.extend(
            self.pending
                .iter()
                .filter(|(_, p)| p.next_retry <= now.0)
                .map(|(k, _)| *k),
        );
        for &key in &due {
            // `expired` distinguishes the two abandonment causes so
            // the stats can attribute them: `Some(true)` = retry
            // budget exhausted (checked first — the crisper signal
            // when both trip on the same tick), `Some(false)` = send
            // timeout.
            let (expired, info) = match self.pending.get_mut(&key) {
                None => continue,
                Some(p) => {
                    if p.attempts >= cfg.retry_budget {
                        (Some(true), None)
                    } else if now.0.saturating_sub(p.sent_at) >= cfg.send_timeout {
                        (Some(false), None)
                    } else {
                        let attempt = p.attempts;
                        p.attempts += 1;
                        // `1 << attempt.min(16)` cannot overflow:
                        // the literal is inferred as u64 from the
                        // `saturating_mul` receiver, and the
                        // shift amount is clamped to 16 ≪ 64, so
                        // the factor is at most 2¹⁶. The multiply
                        // saturates, and the deadline add below
                        // must too — `backoff_max` is
                        // caller-supplied and may be near
                        // `u64::MAX`, where `now + backoff`
                        // would overflow (a panic in debug, a
                        // *past-due* wrapped deadline in release;
                        // the regression tests cover both).
                        let backoff = cfg
                            .retry_backoff
                            .saturating_mul(1 << attempt.min(16))
                            .min(cfg.backoff_max.max(1));
                        p.next_retry = now.0.saturating_add(backoff);
                        (None, Some((p.slot, attempt, backoff)))
                    }
                }
            };
            let (src, dst, seq) = key;
            if let Some(out_of_budget) = expired {
                if let Some(p) = self.pending.remove(&key) {
                    self.stats.expired += 1;
                    *self.stats.expired_by_link.entry((src, dst)).or_insert(0) += 1;
                    if out_of_budget {
                        self.stats.budget_exhausted += 1;
                        *self
                            .stats
                            .budget_exhausted_by_link
                            .entry((src, dst))
                            .or_insert(0) += 1;
                    }
                    self.payloads.decref(p.slot);
                    log.record_with(|| {
                        Explanation::new(now, format!("comms:expire:{src}->{dst}"))
                            .because("seq", seq as f64)
                            .because("attempts", f64::from(p.attempts))
                            .because("age", now.0.saturating_sub(p.sent_at) as f64)
                            .because("out_of_budget", f64::from(u8::from(out_of_budget)))
                    });
                }
            } else if let Some((slot, attempt, backoff)) = info {
                // Masked retry (counterfactual replay): the pending
                // entry above already aged and backed off exactly as
                // in the factual run — withholding only the wire
                // attempt keeps expiry timing bit-identical.
                if self.mask.suppresses(InterventionClass::CommsRetry) {
                    continue;
                }
                self.stats.retries += 1;
                log.record_with(|| {
                    Explanation::new(now, format!("comms:retry:{src}->{dst}"))
                        .because("seq", seq as f64)
                        .because("attempt", f64::from(attempt))
                        .because("backoff", backoff as f64)
                });
                // Retransmits straight out of the slab: no payload
                // clone, however many attempts the budget allows.
                self.launch(ch, src, dst, seq, attempt, slot, now, log);
            }
        }
        due.clear();
        self.retry_scratch = due;
    }

    /// A latency-bound request/response exchange (`a` asks, `b`
    /// answers): succeeds only when both directions land in the same
    /// tick. Updates staleness tracking for whichever directions got
    /// through. Used for auction ask/bid rounds where a late answer
    /// is as useless as a lost one.
    pub fn probe_roundtrip<C: Channel + ?Sized>(
        &mut self,
        ch: &C,
        a: usize,
        b: usize,
        now: Tick,
        log: &mut ExplanationLog,
    ) -> bool {
        let _span = obs::span("comms");
        let seq = self.bump_seq(a, b);
        self.stats.sent += 1;
        let ask = self.transmit_logged(ch, a, b, seq, now, log);
        if !ask.arrives_at(now) {
            self.stats.exchange_failures += 1;
            return false;
        }
        self.stats.delivered += 1;
        self.last_heard.insert((b, a), now.0);
        let rseq = self.bump_seq(b, a);
        self.stats.sent += 1;
        let reply = self.transmit_logged(ch, b, a, rseq, now, log);
        if !reply.arrives_at(now) {
            self.stats.exchange_failures += 1;
            return false;
        }
        self.stats.delivered += 1;
        self.last_heard.insert((a, b), now.0);
        true
    }

    /// A one-shot, same-tick transmission with sender-visible outcome
    /// (models a transfer whose completion the sender can observe).
    pub fn fire_once<C: Channel + ?Sized>(
        &mut self,
        ch: &C,
        src: usize,
        dst: usize,
        now: Tick,
        log: &mut ExplanationLog,
    ) -> bool {
        let _span = obs::span("comms");
        let seq = self.bump_seq(src, dst);
        self.stats.sent += 1;
        let o = self.transmit_logged(ch, src, dst, seq, now, log);
        if o.arrives_at(now) {
            self.stats.delivered += 1;
            self.last_heard.insert((dst, src), now.0);
            true
        } else {
            self.stats.exchange_failures += 1;
            false
        }
    }

    /// Ticks since `observer` last heard from `peer` (never heard =
    /// ticks since the start of the run).
    #[must_use]
    pub fn staleness(&self, observer: usize, peer: usize, now: Tick) -> u64 {
        now.0
            .saturating_sub(self.last_heard.get(&(observer, peer)).copied().unwrap_or(0))
    }

    /// The staleness discount `observer` should apply to knowledge
    /// about `peer` (1.0 = fresh). Naive mode never discounts — it
    /// has no staleness model at all.
    #[must_use]
    pub fn freshness(&self, observer: usize, peer: usize, now: Tick) -> f64 {
        match self.policy {
            CommsPolicy::Naive => 1.0,
            CommsPolicy::Reliable(cfg) => {
                StalenessWeighted::new(cfg.half_life).weight(self.staleness(observer, peer, now))
            }
        }
    }
}

/// Age-discounting fusion: weight `0.5^(age/half_life)` per item.
///
/// ```
/// use selfaware::comms::StalenessWeighted;
///
/// let rule = StalenessWeighted::new(10.0);
/// assert!((rule.weight(0) - 1.0).abs() < 1e-12);
/// assert!((rule.weight(10) - 0.5).abs() < 1e-12);
/// // A fresh 4.0 and a very stale 100.0 fuse close to the fresh one.
/// let fused = rule.fuse([(4.0, 0), (100.0, 80)]).unwrap();
/// assert!(fused < 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StalenessWeighted {
    half_life: f64,
}

impl StalenessWeighted {
    /// Creates the rule; `half_life` is in ticks.
    ///
    /// # Panics
    ///
    /// Panics if `half_life` is not strictly positive.
    #[must_use]
    pub fn new(half_life: f64) -> Self {
        assert!(
            half_life.is_finite() && half_life > 0.0,
            "half_life must be positive"
        );
        Self { half_life }
    }

    /// The weight of an item `age` ticks old.
    #[must_use]
    pub fn weight(&self, age: u64) -> f64 {
        0.5_f64.powf(age as f64 / self.half_life)
    }

    /// Discounts `value` toward `prior` according to its age.
    #[must_use]
    pub fn blend(&self, value: f64, prior: f64, age: u64) -> f64 {
        let w = self.weight(age);
        w * value + (1.0 - w) * prior
    }

    /// Weighted mean of `(value, age)` items; `None` when empty.
    pub fn fuse(&self, items: impl IntoIterator<Item = (f64, u64)>) -> Option<f64> {
        let (mut num, mut den) = (0.0, 0.0);
        for (v, age) in items {
            let w = self.weight(age);
            num += w * v;
            den += w;
        }
        (den > 1e-12).then(|| num / den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scriptable channel: drops wire frames whose (src, dst,
    /// wire_seq) is listed, delays others by a fixed amount.
    #[derive(Default)]
    struct ScriptChannel {
        drop: BTreeSet<(usize, usize, u64)>,
        delay: u64,
        partition_all: bool,
    }

    impl Channel for ScriptChannel {
        fn transmit(&self, src: usize, dst: usize, seq: u64, now: Tick) -> ChannelOutcome {
            if self.partition_all {
                return ChannelOutcome {
                    arrivals: Arrivals::new(),
                    partitioned: true,
                };
            }
            if self.drop.contains(&(src, dst, seq)) {
                return ChannelOutcome::lost();
            }
            ChannelOutcome::delivered(Tick(now.0 + self.delay))
        }
    }

    fn log() -> ExplanationLog {
        ExplanationLog::new(128)
    }

    #[test]
    fn ideal_channel_delivers_same_tick() {
        let mut net: CommsNetwork<u32> = CommsNetwork::new(CommsPolicy::default());
        let mut l = log();
        net.send(&IdealChannel, 0, 1, 42, Tick(3), &mut l);
        let got = net.step(&IdealChannel, Tick(3), &mut l);
        assert_eq!(got.len(), 1);
        assert_eq!((got[0].src, got[0].dst, got[0].payload), (0, 1, 42));
        // Ack lands the same tick too: nothing pending afterwards.
        assert_eq!(net.unacked(), 0);
        assert_eq!(net.stats().acked, 1);
        assert_eq!(net.staleness(1, 0, Tick(3)), 0);
    }

    #[test]
    fn lost_first_attempt_is_retried_and_delivered() {
        let mut ch = ScriptChannel::default();
        // Drop the first attempt (attempt bits 0) of seq 0 on 0->1.
        ch.drop.insert((0, 1, 0));
        let mut net: CommsNetwork<u32> = CommsNetwork::new(CommsPolicy::default());
        let mut l = log();
        net.send(&ch, 0, 1, 7, Tick(0), &mut l);
        assert!(net.step(&ch, Tick(0), &mut l).is_empty());
        assert!(net.step(&ch, Tick(1), &mut l).is_empty());
        // Backoff 2 -> retry fires at t2 with attempt 1 and lands.
        let got = net.step(&ch, Tick(2), &mut l);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload, 7);
        assert_eq!(net.stats().retries, 1);
        assert_eq!(net.unacked(), 0);
        assert!(!l.find_by_action("comms:retry").is_empty());
    }

    #[test]
    fn duplicates_are_suppressed_in_reliable_mode() {
        struct Dup;
        impl Channel for Dup {
            fn transmit(&self, _s: usize, _d: usize, _q: u64, now: Tick) -> ChannelOutcome {
                ChannelOutcome {
                    arrivals: [now, Tick(now.0 + 1)].into_iter().collect(),
                    partitioned: false,
                }
            }
        }
        let mut net: CommsNetwork<u32> = CommsNetwork::new(CommsPolicy::default());
        let mut l = log();
        net.send(&Dup, 0, 1, 9, Tick(0), &mut l);
        assert_eq!(net.step(&Dup, Tick(0), &mut l).len(), 1);
        assert!(net.step(&Dup, Tick(1), &mut l).is_empty());
        assert_eq!(net.stats().duplicates, 1);

        // Naive mode happily double-delivers.
        let mut naive: CommsNetwork<u32> = CommsNetwork::new(CommsPolicy::Naive);
        naive.send(&Dup, 0, 1, 9, Tick(0), &mut l);
        assert_eq!(naive.step(&Dup, Tick(0), &mut l).len(), 1);
        assert_eq!(naive.step(&Dup, Tick(1), &mut l).len(), 1);
    }

    #[test]
    fn naive_mode_never_retries() {
        let mut ch = ScriptChannel::default();
        ch.drop.insert((0, 1, 0));
        let mut net: CommsNetwork<u32> = CommsNetwork::new(CommsPolicy::Naive);
        let mut l = log();
        net.send(&ch, 0, 1, 5, Tick(0), &mut l);
        for t in 0..50 {
            assert!(net.step(&ch, Tick(t), &mut l).is_empty());
        }
        assert_eq!(net.stats().retries, 0);
        assert_eq!(net.stats().sent, 1);
    }

    #[test]
    fn partition_expires_messages_and_logs_transitions() {
        let mut ch = ScriptChannel {
            partition_all: true,
            ..ScriptChannel::default()
        };
        let cfg = ReliableConfig {
            retry_budget: 3,
            send_timeout: 100,
            ..ReliableConfig::default()
        };
        let mut net: CommsNetwork<u32> = CommsNetwork::new(CommsPolicy::Reliable(cfg));
        let mut l = log();
        net.send(&ch, 2, 3, 1, Tick(0), &mut l);
        for t in 0..40 {
            net.step(&ch, Tick(t), &mut l);
        }
        assert_eq!(net.stats().expired, 1);
        assert_eq!(net.unacked(), 0);
        assert!(net.stats().partition_hits >= 3);
        assert_eq!(l.find_by_action("comms:partition:2->3").len(), 1);
        assert!(!l.find_by_action("comms:expire").is_empty());
        // A 3-retry budget runs out long before the 100-tick timeout,
        // and the loss is attributed to the 2→3 link.
        assert_eq!(net.stats().budget_exhausted, 1);
        assert_eq!(net.stats().link_expired(2, 3), 1);
        assert_eq!(net.stats().link_budget_exhausted(2, 3), 1);
        assert_eq!(net.stats().link_expired(3, 2), 0);

        // Healing is logged once the link carries a frame again.
        ch.partition_all = false;
        net.send(&ch, 2, 3, 2, Tick(50), &mut l);
        assert_eq!(l.find_by_action("comms:heal:2->3").len(), 1);
    }

    #[test]
    fn timeout_expiry_is_not_counted_as_budget_exhaustion() {
        // A generous retry budget with a tight send timeout: the
        // message expires by age, so the aggregate `expired` counter
        // and the per-link map tick but `budget_exhausted` stays 0.
        let mut ch = ScriptChannel {
            partition_all: true,
            ..ScriptChannel::default()
        };
        let cfg = ReliableConfig {
            retry_budget: 1_000,
            retry_backoff: 1,
            backoff_max: 1,
            send_timeout: 5,
            ..ReliableConfig::default()
        };
        let mut net: CommsNetwork<u32> = CommsNetwork::new(CommsPolicy::Reliable(cfg));
        let mut l = log();
        net.send(&ch, 7, 8, 1, Tick(0), &mut l);
        for t in 0..20 {
            net.step(&ch, Tick(t), &mut l);
        }
        let s = net.stats();
        assert_eq!(s.expired, 1);
        assert_eq!(s.budget_exhausted, 0);
        assert_eq!(s.link_expired(7, 8), 1);
        assert_eq!(s.link_budget_exhausted(7, 8), 0);
        // The healed link carries traffic again without phantom
        // attribution to other links.
        ch.partition_all = false;
        net.send(&ch, 8, 7, 2, Tick(30), &mut l);
        net.step(&ch, Tick(30), &mut l);
        assert_eq!(net.stats().link_expired(8, 7), 0);
        assert!(s.to_json().get("expired_by_link").is_some());
    }

    #[test]
    fn ack_loss_causes_duplicate_then_reack() {
        // Data always passes; the first ack frame is dropped, so the
        // sender retries, the receiver dedups and re-acks.
        struct AckDrop;
        impl Channel for AckDrop {
            fn transmit(&self, _s: usize, _d: usize, seq: u64, now: Tick) -> ChannelOutcome {
                // Drop exactly the ack of attempt 0 of seq 0.
                if seq == ACK_BIT {
                    return ChannelOutcome::lost();
                }
                ChannelOutcome::delivered(now)
            }
        }
        let mut net: CommsNetwork<u32> = CommsNetwork::new(CommsPolicy::default());
        let mut l = log();
        net.send(&AckDrop, 0, 1, 3, Tick(0), &mut l);
        assert_eq!(net.step(&AckDrop, Tick(0), &mut l).len(), 1);
        assert_eq!(net.unacked(), 1);
        net.step(&AckDrop, Tick(1), &mut l);
        net.step(&AckDrop, Tick(2), &mut l);
        assert_eq!(net.stats().duplicates, 1);
        assert_eq!(net.unacked(), 0);
        assert_eq!(net.stats().delivered, 1);
    }

    #[test]
    fn probe_roundtrip_and_fire_once_track_staleness() {
        let mut net: CommsNetwork<()> = CommsNetwork::new(CommsPolicy::default());
        let mut l = log();
        assert!(net.probe_roundtrip(&IdealChannel, 4, 5, Tick(10), &mut l));
        assert_eq!(net.staleness(4, 5, Tick(12)), 2);
        assert_eq!(net.staleness(5, 4, Tick(12)), 2);
        // Unheard peers are stale since the epoch.
        assert_eq!(net.staleness(4, 9, Tick(12)), 12);
        let mut dead = ScriptChannel {
            partition_all: true,
            ..ScriptChannel::default()
        };
        assert!(!net.probe_roundtrip(&dead, 4, 5, Tick(13), &mut l));
        assert!(!net.fire_once(&dead, 4, 5, Tick(13), &mut l));
        dead.partition_all = false;
        assert!(net.fire_once(&dead, 4, 5, Tick(14), &mut l));
        assert_eq!(net.stats().exchange_failures, 2);
    }

    #[test]
    fn freshness_is_flat_for_naive_and_decays_for_reliable() {
        let naive: CommsNetwork<()> = CommsNetwork::new(CommsPolicy::Naive);
        assert!((naive.freshness(0, 1, Tick(1000)) - 1.0).abs() < 1e-12);
        let rel: CommsNetwork<()> = CommsNetwork::new(CommsPolicy::default());
        let f = rel.freshness(0, 1, Tick(40));
        assert!((f - 0.5).abs() < 1e-12, "{f}");
    }

    #[test]
    fn staleness_weighted_fuse_handles_empty() {
        let rule = StalenessWeighted::new(5.0);
        assert_eq!(rule.fuse([]), None);
        let b = rule.blend(10.0, 0.0, 5);
        assert!((b - 5.0).abs() < 1e-12);
    }

    #[test]
    fn seen_window_floor_treats_ancient_as_duplicates() {
        let mut w = SeenWindow::default();
        for s in 0..(SEEN_WINDOW as u64 + 10) {
            assert!(w.mark(s));
        }
        // Everything below the advanced floor reads as a duplicate.
        assert!(!w.mark(0));
        assert!(!w.mark(5));
        assert!(w.mark(SEEN_WINDOW as u64 + 50));
    }

    #[test]
    fn seen_window_tracks_reordered_and_far_jumps() {
        let mut w = SeenWindow::default();
        assert!(w.mark(3));
        assert!(w.mark(1));
        assert!(w.mark(2));
        assert!(!w.mark(3));
        assert!(!w.mark(1));
        // A far jump slides the window; in-window history survives
        // the shift, out-of-window history falls below the floor.
        let far = 3 + SEEN_WINDOW as u64 - 1;
        assert!(w.mark(far));
        assert!(!w.mark(3), "still inside the window after the slide");
        assert!(w.mark(4), "unseen in-window seq stays fresh");
        // Jump beyond the whole window: everything old is below floor.
        assert!(w.mark(far + 3 * SEEN_WINDOW as u64));
        assert!(!w.mark(far));
        assert!(!w.mark(4));
    }

    #[test]
    fn arrivals_inline_spill_and_equality() {
        let mut a = Arrivals::new();
        assert!(a.is_empty());
        assert_eq!(a.first(), None);
        for t in 0..5 {
            a.push(Tick(t));
        }
        assert_eq!(a.len(), 5);
        assert_eq!(a.first(), Some(Tick(0)));
        assert!(a.contains(Tick(4)));
        assert!(!a.contains(Tick(9)));
        let collected: Arrivals = (0..5).map(Tick).collect();
        assert_eq!(a, collected);
        assert_ne!(a, Arrivals::once(Tick(0)));
        let ticks: Vec<Tick> = a.iter().collect();
        assert_eq!(ticks, (0..5).map(Tick).collect::<Vec<_>>());
    }

    #[test]
    fn payload_slab_recycles_slots() {
        let mut slab: PayloadSlab<u32> = PayloadSlab::new();
        let a = slab.insert(10);
        let b = slab.insert(20);
        assert_ne!(a, b);
        slab.incref(a);
        slab.decref(a);
        assert_eq!(*slab.get(a), 10, "still alive while referenced");
        slab.decref(a);
        // Freed slot is recycled before the backing Vec grows.
        let c = slab.insert(30);
        assert_eq!(c, a);
        assert_eq!(*slab.get(c), 30);
        assert_eq!(*slab.get(b), 20);
        assert_eq!(slab.slots.len(), 2);
    }

    #[test]
    fn reliable_cycle_reuses_payload_slots() {
        // A long steady-state conversation must not grow the slab:
        // every send/deliver/ack cycle returns its slot.
        let mut net: CommsNetwork<u64> = CommsNetwork::new(CommsPolicy::default());
        let mut l = log();
        for t in 0..200u64 {
            net.send(&IdealChannel, 0, 1, t, Tick(t), &mut l);
            let got = net.step(&IdealChannel, Tick(t), &mut l);
            assert_eq!(got.len(), 1);
            assert_eq!(got[0].payload, t);
        }
        assert_eq!(net.unacked(), 0);
        assert_eq!(
            net.payloads.slots.len(),
            1,
            "steady state should recycle a single slot"
        );
    }
}
