//! Sensors and percepts: how an agent acquires raw self-knowledge.
//!
//! The paper's first framework concept (Section IV) is the distinction
//! between **public** and **private** self-awareness processes:
//! knowledge grounded in phenomena *external* to the individual (its
//! public self — how it appears to, and interacts with, the world)
//! versus phenomena *internal* to it (its private experience — queue
//! depths, temperatures, its own decision statistics). Every
//! [`Percept`] therefore carries a [`Scope`].
//!
//! Sensors are generic over the environment type `E` so that each
//! case-study simulator can expose its own world view without the
//! framework depending on any domain.

use serde::{Deserialize, Serialize};
use simkernel::Tick;
use std::fmt;

/// Whether a piece of self-knowledge originates outside or inside the
/// agent (paper Section IV, public vs private self-awareness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scope {
    /// Externally observable phenomena: the agent's interactions with,
    /// and appearance within, its environment.
    Public,
    /// Internal phenomena: private experience not observable from
    /// outside (own state, own reasoning statistics).
    Private,
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Scope::Public => "public",
            Scope::Private => "private",
        })
    }
}

/// A single timestamped observation of a named signal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Percept {
    /// Signal key, e.g. `"load"`, `"temp.core0"`.
    pub key: String,
    /// Observed value.
    pub value: f64,
    /// Public or private origin.
    pub scope: Scope,
    /// Simulation time of the observation.
    pub at: Tick,
}

impl Percept {
    /// Creates a percept.
    #[must_use]
    pub fn new(key: impl Into<String>, value: f64, scope: Scope, at: Tick) -> Self {
        Self {
            key: key.into(),
            value,
            scope,
            at,
        }
    }
}

impl fmt::Display for Percept {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} {} {}={:.4}]",
            self.at, self.scope, self.key, self.value
        )
    }
}

/// A source of observations about the environment `E` (or the agent
/// itself).
///
/// Implementors are usually tiny adapters over simulator state; the
/// [`FnSensor`] wrapper covers the common closure case.
pub trait Sensor<E> {
    /// The signal key this sensor produces.
    fn key(&self) -> &str;
    /// Whether the signal is public or private self-knowledge.
    fn scope(&self) -> Scope;
    /// Reads the current value from the environment.
    fn read(&mut self, env: &E, at: Tick) -> f64;
    /// Relative cost of sampling this sensor (used by
    /// [`crate::attention`] when monitoring is budgeted). Default 1.
    fn cost(&self) -> f64 {
        1.0
    }
}

/// A sensor defined by a closure.
///
/// # Example
///
/// ```
/// use selfaware::sensors::{FnSensor, Scope, Sensor};
/// use simkernel::Tick;
///
/// struct World { load: f64 }
/// let mut s = FnSensor::new("load", Scope::Public, |w: &World| w.load);
/// let w = World { load: 0.7 };
/// assert_eq!(s.read(&w, Tick(0)), 0.7);
/// assert_eq!(s.key(), "load");
/// ```
pub struct FnSensor<E, F: FnMut(&E) -> f64> {
    key: String,
    scope: Scope,
    cost: f64,
    f: F,
    _marker: std::marker::PhantomData<fn(&E)>,
}

impl<E, F: FnMut(&E) -> f64> FnSensor<E, F> {
    /// Creates a closure-backed sensor with unit cost.
    #[must_use]
    pub fn new(key: impl Into<String>, scope: Scope, f: F) -> Self {
        Self {
            key: key.into(),
            scope,
            cost: 1.0,
            f,
            _marker: std::marker::PhantomData,
        }
    }

    /// Sets the sampling cost (builder style).
    #[must_use]
    pub fn with_cost(mut self, cost: f64) -> Self {
        self.cost = cost;
        self
    }
}

impl<E, F: FnMut(&E) -> f64> Sensor<E> for FnSensor<E, F> {
    fn key(&self) -> &str {
        &self.key
    }
    fn scope(&self) -> Scope {
        self.scope
    }
    fn read(&mut self, env: &E, _at: Tick) -> f64 {
        (self.f)(env)
    }
    fn cost(&self) -> f64 {
        self.cost
    }
}

impl<E, F: FnMut(&E) -> f64> fmt::Debug for FnSensor<E, F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FnSensor")
            .field("key", &self.key)
            .field("scope", &self.scope)
            .field("cost", &self.cost)
            .finish_non_exhaustive()
    }
}

/// An ordered collection of sensors over environment `E`.
///
/// The hub is what the agent's observe phase iterates; the attention
/// mechanism selects a subset of hub indices each step.
pub struct SensorHub<E> {
    sensors: Vec<Box<dyn Sensor<E>>>,
}

impl<E> SensorHub<E> {
    /// Creates an empty hub.
    #[must_use]
    pub fn new() -> Self {
        Self {
            sensors: Vec::new(),
        }
    }

    /// Adds a sensor; returns its index.
    pub fn add(&mut self, sensor: Box<dyn Sensor<E>>) -> usize {
        self.sensors.push(sensor);
        self.sensors.len() - 1
    }

    /// Adds a closure sensor (convenience).
    pub fn add_fn(
        &mut self,
        key: impl Into<String>,
        scope: Scope,
        f: impl FnMut(&E) -> f64 + 'static,
    ) -> usize
    where
        E: 'static,
    {
        self.add(Box::new(FnSensor::new(key, scope, f)))
    }

    /// Number of sensors.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sensors.len()
    }

    /// Whether the hub has no sensors.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sensors.is_empty()
    }

    /// Signal keys in registration order.
    #[must_use]
    pub fn keys(&self) -> Vec<String> {
        self.sensors.iter().map(|s| s.key().to_string()).collect()
    }

    /// Reads sensor `idx`, producing a percept.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn sample(&mut self, idx: usize, env: &E, at: Tick) -> Percept {
        let s = &mut self.sensors[idx];
        let value = s.read(env, at);
        Percept::new(s.key().to_string(), value, s.scope(), at)
    }

    /// Reads every sensor (full attention).
    pub fn sample_all(&mut self, env: &E, at: Tick) -> Vec<Percept> {
        (0..self.sensors.len())
            .map(|i| self.sample(i, env, at))
            .collect()
    }

    /// Reads the given subset of sensor indices.
    pub fn sample_subset(&mut self, indices: &[usize], env: &E, at: Tick) -> Vec<Percept> {
        indices.iter().map(|&i| self.sample(i, env, at)).collect()
    }

    /// Sampling cost of sensor `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn cost(&self, idx: usize) -> f64 {
        self.sensors[idx].cost()
    }
}

impl<E> Default for SensorHub<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> fmt::Debug for SensorHub<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SensorHub")
            .field("keys", &self.keys())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct World {
        load: f64,
        queue: f64,
    }

    fn hub() -> SensorHub<World> {
        let mut h = SensorHub::new();
        h.add_fn("load", Scope::Public, |w: &World| w.load);
        h.add_fn("queue", Scope::Private, |w: &World| w.queue);
        h
    }

    #[test]
    fn percept_display() {
        let p = Percept::new("x", 1.5, Scope::Private, Tick(3));
        assert_eq!(p.to_string(), "[t3 private x=1.5000]");
    }

    #[test]
    fn hub_sample_all() {
        let mut h = hub();
        let w = World {
            load: 0.5,
            queue: 3.0,
        };
        let ps = h.sample_all(&w, Tick(1));
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0].key, "load");
        assert_eq!(ps[0].scope, Scope::Public);
        assert_eq!(ps[1].value, 3.0);
        assert_eq!(ps[1].scope, Scope::Private);
    }

    #[test]
    fn hub_sample_subset() {
        let mut h = hub();
        let w = World {
            load: 0.1,
            queue: 9.0,
        };
        let ps = h.sample_subset(&[1], &w, Tick(2));
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].key, "queue");
        assert_eq!(ps[0].at, Tick(2));
    }

    #[test]
    fn hub_keys_and_len() {
        let h = hub();
        assert_eq!(h.len(), 2);
        assert!(!h.is_empty());
        assert_eq!(h.keys(), vec!["load".to_string(), "queue".to_string()]);
        assert!(SensorHub::<World>::new().is_empty());
    }

    #[test]
    fn sensor_cost_builder() {
        let s = FnSensor::new("x", Scope::Public, |_: &World| 0.0).with_cost(2.5);
        assert_eq!(s.cost(), 2.5);
        let mut h = SensorHub::new();
        h.add(Box::new(s));
        assert_eq!(h.cost(0), 2.5);
    }

    #[test]
    fn scope_display() {
        assert_eq!(Scope::Public.to_string(), "public");
        assert_eq!(Scope::Private.to_string(), "private");
    }

    #[test]
    fn closure_sensor_sees_mutating_env() {
        let mut h = hub();
        let mut w = World {
            load: 0.0,
            queue: 0.0,
        };
        assert_eq!(h.sample(0, &w, Tick(0)).value, 0.0);
        w.load = 0.9;
        assert_eq!(h.sample(0, &w, Tick(1)).value, 0.9);
    }
}
