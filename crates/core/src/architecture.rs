//! Architectural self-description and validation.
//!
//! Kounev's challenge, endorsed by the paper (Section III): the field
//! needs "systematic engineering methodologies for self-aware
//! systems". One concrete piece of methodology this crate can supply
//! is *architectural introspection*: an agent can emit a structured
//! description of its own awareness architecture — which levels it
//! possesses, what it senses, what it models, what goal it serves —
//! and that description can be mechanically checked for the common
//! mis-assemblies (a goal level with no goal, attention with nothing
//! to attend to, meta-awareness with nothing meta to monitor, ...).
//!
//! This is self-explanation one level up: not "why did I act",
//! but "what kind of self-aware system am I".

use crate::agent::SelfAwareAgent;
use crate::levels::{Level, LevelSet};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A structured description of an agent's awareness architecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelfDescription {
    /// Agent name.
    pub name: String,
    /// Possessed levels.
    pub levels: Vec<String>,
    /// Signal keys currently represented in the knowledge base.
    pub signals: Vec<String>,
    /// Whether a goal is installed.
    pub has_goal: bool,
    /// Whether attention (budgeted sensing) is configured.
    pub has_attention: bool,
    /// Loop iterations executed so far.
    pub steps: u64,
    /// Explanations retained.
    pub explanations: usize,
}

impl fmt::Display for SelfDescription {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "self-description of `{}`:", self.name)?;
        writeln!(f, "  levels: {}", self.levels.join("+"))?;
        writeln!(
            f,
            "  knowledge: {} signals ({})",
            self.signals.len(),
            self.signals.join(", ")
        )?;
        writeln!(
            f,
            "  goal: {} | attention: {}",
            if self.has_goal { "installed" } else { "none" },
            if self.has_attention {
                "budgeted"
            } else {
                "full"
            },
        )?;
        write!(
            f,
            "  history: {} steps, {} retained explanations",
            self.steps, self.explanations
        )
    }
}

/// Severity of an architectural finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Severity {
    /// The assembly will not do what the level set advertises.
    Defect,
    /// Legal but usually unintended.
    Warning,
}

/// One finding from [`validate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    /// Severity class.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.severity {
            Severity::Defect => "DEFECT",
            Severity::Warning => "WARN",
        };
        write!(f, "[{tag}] {}", self.message)
    }
}

/// Describes an agent's architecture.
#[must_use]
pub fn describe<E, A: Clone>(agent: &SelfAwareAgent<E, A>) -> SelfDescription {
    SelfDescription {
        name: agent.name().to_string(),
        levels: agent
            .levels()
            .iter()
            .map(|l| l.name().to_string())
            .collect(),
        signals: agent
            .knowledge()
            .keys()
            .into_iter()
            .map(str::to_string)
            .collect(),
        has_goal: agent.utility().is_some() || agent.knowledge().last("self.utility").is_some(),
        has_attention: agent.attention_counts().is_some(),
        steps: agent.steps(),
        explanations: agent.explanations().len(),
    }
}

/// Checks a level set (plus assembly facts) for common mis-assemblies.
///
/// Pure function of the declared architecture, so it can run at build
/// time in a deployment pipeline as well as against a live agent.
#[must_use]
pub fn validate(
    levels: LevelSet,
    has_sensors: bool,
    has_goal: bool,
    has_attention: bool,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let defect = |msg: &str| Finding {
        severity: Severity::Defect,
        message: msg.to_string(),
    };
    let warn = |msg: &str| Finding {
        severity: Severity::Warning,
        message: msg.to_string(),
    };

    if levels.contains(Level::Stimulus) && !has_sensors {
        findings.push(defect(
            "stimulus awareness declared but no sensors are registered: the agent is blind",
        ));
    }
    if !levels.contains(Level::Stimulus) && has_sensors {
        findings.push(warn(
            "sensors registered but stimulus awareness absent: they will never be sampled",
        ));
    }
    if levels.contains(Level::Time) && !levels.contains(Level::Stimulus) {
        findings.push(defect(
            "time awareness without stimulus awareness: there is no percept stream to model",
        ));
    }
    if levels.contains(Level::Goal) && !has_goal {
        findings.push(defect(
            "goal awareness declared but no goal installed: no utility can be evaluated",
        ));
    }
    if !levels.contains(Level::Goal) && has_goal {
        findings.push(warn(
            "a goal is installed but goal awareness is absent: utility will not be published",
        ));
    }
    if levels.contains(Level::Meta) && !levels.contains(Level::Time) {
        findings.push(warn(
            "meta-self-awareness without time awareness: there are no self-models to monitor, \
             only the reward stream",
        ));
    }
    if has_attention && !levels.contains(Level::Stimulus) {
        findings.push(warn(
            "attention configured but stimulus awareness absent: nothing will be attended to",
        ));
    }
    findings
}

/// `true` if `findings` contains no [`Severity::Defect`].
#[must_use]
pub fn is_sound(findings: &[Finding]) -> bool {
    findings.iter().all(|f| f.severity != Severity::Defect)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expression::ConstantPolicy;
    use crate::goals::{Direction, Goal, Objective};
    use crate::sensors::Scope;
    use simkernel::{SeedTree, Tick};

    struct World;

    #[test]
    fn well_formed_full_stack_is_sound() {
        let f = validate(LevelSet::full(), true, true, false);
        assert!(is_sound(&f), "findings: {f:?}");
        // Full stack with everything installed yields no findings at all.
        assert!(f.is_empty());
    }

    #[test]
    fn blind_stimulus_agent_is_defective() {
        let f = validate(LevelSet::new().with(Level::Stimulus), false, false, false);
        assert!(!is_sound(&f));
        assert!(f[0].to_string().contains("blind"));
    }

    #[test]
    fn time_without_stimulus_is_defective() {
        let f = validate(LevelSet::new().with(Level::Time), false, false, false);
        assert!(!is_sound(&f));
    }

    #[test]
    fn goal_level_without_goal_is_defective() {
        let f = validate(
            LevelSet::new().with(Level::Stimulus).with(Level::Goal),
            true,
            false,
            false,
        );
        assert!(!is_sound(&f));
    }

    #[test]
    fn warnings_do_not_break_soundness() {
        // Sensors without stimulus: warning only.
        let f = validate(LevelSet::new(), true, false, false);
        assert!(is_sound(&f));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].severity, Severity::Warning);
    }

    #[test]
    fn meta_without_time_warns() {
        let f = validate(
            LevelSet::new().with(Level::Stimulus).with(Level::Meta),
            true,
            false,
            false,
        );
        assert!(is_sound(&f));
        assert!(f.iter().any(|x| x.message.contains("meta")));
    }

    #[test]
    fn describe_reflects_agent_state() {
        let goal = Goal::new("g").objective(Objective::new("x", Direction::Maximize, 1.0, 1.0));
        let mut agent = SelfAwareAgent::builder("desc")
            .levels(LevelSet::full())
            .sensor("x", Scope::Public, |_: &World| 1.0)
            .goal(goal)
            .policy(Box::new(ConstantPolicy::new(0usize, "hold")))
            .build()
            .unwrap();
        let mut rng = SeedTree::new(1).rng("d");
        agent.step(&World, Tick(0), &mut rng);
        let d = describe(&agent);
        assert_eq!(d.name, "desc");
        assert_eq!(d.levels.len(), 5);
        assert!(d.signals.iter().any(|s| s == "x"));
        assert!(d.has_goal);
        assert!(!d.has_attention);
        assert_eq!(d.steps, 1);
        assert_eq!(d.explanations, 1);
        let rendered = d.to_string();
        assert!(rendered.contains("self-description of `desc`"));
        assert!(rendered.contains("stimulus+interaction+time+goal+meta"));
    }

    #[test]
    fn finding_display() {
        let f = Finding {
            severity: Severity::Defect,
            message: "boom".into(),
        };
        assert_eq!(f.to_string(), "[DEFECT] boom");
    }
}
