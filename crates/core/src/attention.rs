//! Attention: directing limited monitoring resources.
//!
//! Preden et al.'s observation, endorsed in paper Section V: "as
//! resource-constrained systems must determine, for themselves, how to
//! direct their limited resources, given the vast set of possible
//! things they could attend to", attention is intertwined with
//! self-awareness. The [`AttentionAllocator`] chooses, each step, which
//! sensors to sample under a cost budget, prioritising signals that are
//! *volatile* (changing fast, so stale knowledge decays quickly) and
//! *stale* (unsampled for a long time), with ε exploration so quiet
//! signals are still revisited.
//!
//! Experiment T6 sweeps the budget and compares this policy against
//! round-robin and random monitoring.

use crate::models::ewma::EwmaVariance;
use simkernel::rng::Rng;
use simkernel::Tick;

/// Budgeted sensor-selection policy.
///
/// # Example
///
/// ```
/// use selfaware::attention::AttentionAllocator;
/// use simkernel::{SeedTree, Tick};
///
/// let mut att = AttentionAllocator::new(4, 0.1, 0.3);
/// let mut rng = SeedTree::new(1).rng("att");
/// // Signal 0 is volatile, the rest are flat.
/// for t in 0..200u64 {
///     let picked = att.select(2.0, Tick(t), &mut rng);
///     for &i in &picked {
///         let value = if i == 0 { (t as f64).sin() * 10.0 } else { 1.0 };
///         att.feed(i, value, Tick(t));
///     }
/// }
/// // The volatile signal ends up sampled most.
/// let counts = att.sample_counts();
/// assert!(counts[0] >= *counts[1..].iter().max().unwrap());
/// ```
#[derive(Debug, Clone)]
pub struct AttentionAllocator {
    volatility: Vec<EwmaVariance>,
    last_sampled: Vec<Option<Tick>>,
    counts: Vec<u64>,
    costs: Vec<f64>,
    epsilon: f64,
    staleness_weight: f64,
}

impl AttentionAllocator {
    /// Creates an allocator over `n_signals` unit-cost signals.
    ///
    /// * `epsilon` — probability that each selection slot explores a
    ///   uniformly random signal instead of the top-priority one;
    /// * `staleness_weight` — how strongly "ticks since last sample"
    ///   contributes to priority, relative to volatility.
    ///
    /// # Panics
    ///
    /// Panics if `n_signals == 0`, `epsilon ∉ [0, 1]`, or
    /// `staleness_weight < 0`.
    #[must_use]
    pub fn new(n_signals: usize, epsilon: f64, staleness_weight: f64) -> Self {
        assert!(n_signals > 0, "need at least one signal");
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0,1]");
        assert!(
            staleness_weight >= 0.0,
            "staleness weight must be non-negative"
        );
        Self {
            volatility: (0..n_signals).map(|_| EwmaVariance::new(0.1)).collect(),
            last_sampled: vec![None; n_signals],
            counts: vec![0; n_signals],
            costs: vec![1.0; n_signals],
            epsilon,
            staleness_weight,
        }
    }

    /// Overrides per-signal sampling costs (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `costs.len()` differs from the signal count or any
    /// cost is non-positive.
    #[must_use]
    pub fn with_costs(mut self, costs: Vec<f64>) -> Self {
        assert_eq!(
            costs.len(),
            self.volatility.len(),
            "cost vector length mismatch"
        );
        assert!(costs.iter().all(|&c| c > 0.0), "costs must be positive");
        self.costs = costs;
        self
    }

    /// Number of managed signals.
    #[must_use]
    pub fn len(&self) -> usize {
        self.volatility.len()
    }

    /// Whether the allocator manages no signals.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.volatility.is_empty()
    }

    /// Priority score of signal `i` at time `now`: volatility plus
    /// weighted staleness, per unit cost. Never-sampled signals get
    /// infinite priority.
    #[must_use]
    pub fn priority(&self, i: usize, now: Tick) -> f64 {
        match self.last_sampled[i] {
            None => f64::INFINITY,
            Some(t) => {
                let stale = now.value().saturating_sub(t.value()) as f64;
                (self.volatility[i].std_dev() + self.staleness_weight * stale) / self.costs[i]
            }
        }
    }

    /// Selects signals to sample under `budget` total cost at time
    /// `now`. Selection is greedy by priority with per-slot ε
    /// exploration; a signal is selected at most once.
    pub fn select(&self, budget: f64, now: Tick, rng: &mut Rng) -> Vec<usize> {
        use rand::Rng as _;
        let n = self.len();
        let mut remaining = budget;
        let mut chosen = Vec::new();
        let mut available: Vec<usize> = (0..n).collect();
        while !available.is_empty() {
            // Anything still affordable?
            available.retain(|&i| self.costs[i] <= remaining + 1e-12);
            if available.is_empty() {
                break;
            }
            let pick = if rng.gen::<f64>() < self.epsilon {
                available[rng.gen_range(0..available.len())]
            } else {
                *available
                    .iter()
                    .max_by(|&&a, &&b| {
                        self.priority(a, now)
                            .partial_cmp(&self.priority(b, now))
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .expect("available is non-empty")
            };
            remaining -= self.costs[pick];
            chosen.push(pick);
            available.retain(|&i| i != pick);
        }
        chosen
    }

    /// Feeds the observed value of signal `i`, updating volatility and
    /// staleness state.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn feed(&mut self, i: usize, value: f64, at: Tick) {
        self.volatility[i].observe(value);
        self.last_sampled[i] = Some(at);
        self.counts[i] += 1;
    }

    /// Per-signal sample counts so far.
    #[must_use]
    pub fn sample_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Estimated volatility (std dev) of signal `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn volatility(&self, i: usize) -> f64 {
        self.volatility[i].std_dev()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> simkernel::rng::Rng {
        simkernel::SeedTree::new(77).rng("attn")
    }

    #[test]
    fn unsampled_signals_have_infinite_priority() {
        let a = AttentionAllocator::new(3, 0.0, 0.1);
        assert_eq!(a.priority(0, Tick(5)), f64::INFINITY);
    }

    #[test]
    fn selects_within_budget() {
        let a = AttentionAllocator::new(10, 0.0, 0.1);
        let mut r = rng();
        let picked = a.select(3.0, Tick(0), &mut r);
        assert_eq!(picked.len(), 3);
        // no duplicates
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), picked.len());
    }

    #[test]
    fn budget_larger_than_signals_selects_all() {
        let a = AttentionAllocator::new(4, 0.0, 0.1);
        let mut r = rng();
        assert_eq!(a.select(100.0, Tick(0), &mut r).len(), 4);
    }

    #[test]
    fn zero_budget_selects_nothing() {
        let a = AttentionAllocator::new(4, 0.0, 0.1);
        let mut r = rng();
        assert!(a.select(0.0, Tick(0), &mut r).is_empty());
    }

    #[test]
    fn volatile_signal_attracts_attention() {
        let mut a = AttentionAllocator::new(5, 0.05, 0.01);
        let mut r = rng();
        for t in 0..500u64 {
            let picked = a.select(2.0, Tick(t), &mut r);
            for &i in &picked {
                let v = if i == 0 {
                    (t as f64 * 1.3).sin() * 20.0
                } else {
                    1.0
                };
                a.feed(i, v, Tick(t));
            }
        }
        let counts = a.sample_counts();
        let other_max = counts[1..].iter().copied().max().unwrap();
        assert!(
            counts[0] > other_max,
            "volatile signal sampled {} vs max other {}",
            counts[0],
            other_max
        );
        assert!(a.volatility(0) > a.volatility(1));
    }

    #[test]
    fn staleness_forces_rotation() {
        // With a strong staleness term and zero volatility everywhere,
        // attention degenerates to round-robin — every signal gets
        // sampled regularly.
        let mut a = AttentionAllocator::new(6, 0.0, 1.0);
        let mut r = rng();
        for t in 0..600u64 {
            let picked = a.select(1.0, Tick(t), &mut r);
            for &i in &picked {
                a.feed(i, 1.0, Tick(t));
            }
        }
        for &c in a.sample_counts() {
            assert!(c >= 80, "every signal should be visited, got {c}");
        }
    }

    #[test]
    fn costs_bias_selection() {
        let a = AttentionAllocator::new(2, 0.0, 0.1).with_costs(vec![1.0, 10.0]);
        let mut r = rng();
        // Budget 1: can only ever afford signal 0... but both start
        // with infinite priority; greedy picks the max — ties by
        // partial_cmp are broken by position, and signal 1 is
        // unaffordable anyway.
        let picked = a.select(1.0, Tick(0), &mut r);
        assert_eq!(picked, vec![0]);
    }

    #[test]
    #[should_panic(expected = "cost vector length mismatch")]
    fn wrong_cost_len_panics() {
        let _ = AttentionAllocator::new(2, 0.0, 0.1).with_costs(vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "need at least one signal")]
    fn zero_signals_panics() {
        let _ = AttentionAllocator::new(0, 0.0, 0.1);
    }
}
