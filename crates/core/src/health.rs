//! Sensor health monitoring: residual-based fault detection with
//! graceful degradation.
//!
//! The paper argues (Section III) that self-awareness must extend to
//! the *instruments* of awareness: a self-aware system should notice
//! when its own sensors mislead it, and degrade gracefully rather than
//! act on corrupt data. [`SensorHealth`] watches each scalar sensor
//! through a per-sensor [`Holt`] self-model and a
//! [`ResidualTracker`](crate::meta::ResidualTracker), detects four
//! fault signatures — *stuck-at* (identical readings while the model
//! expected movement), *outlier runs* (readings far outside the
//! residual envelope, which also catches bias shifts), *dropout*
//! (missing readings), and *noise bursts* (a variance-ratio watchdog
//! on the trusted residual power, catching mean-reverting bursts that
//! stay close enough to the prediction to evade the outlier test) —
//! and on detection **quarantines** the sensor:
//! downstream consumers receive the model's forecast instead of the
//! raw reading, flagged as substituted, until the sensor agrees with
//! the model again for long enough to be trusted.
//!
//! Every quarantine entry and exit is recorded in the caller's
//! [`ExplanationLog`] (actions `quarantine:<key>` / `restore:<key>`),
//! so degraded-mode operation is self-explaining.

use crate::explain::{Explanation, ExplanationLog};
use crate::meta::ResidualTracker;
use crate::models::holt::Holt;
use crate::models::{Forecaster, OnlineModel};
use crate::replay::{InterventionClass, InterventionMask};
use std::collections::BTreeMap;

use simkernel::obs::Json;
use simkernel::Tick;

/// Tuning knobs for [`SensorHealth`].
#[derive(Debug, Clone, PartialEq)]
pub struct SensorHealthConfig {
    /// EWMA factor for the per-sensor residual magnitude estimate.
    pub residual_alpha: f64,
    /// Consecutive *bit-identical* readings before a moving signal is
    /// declared stuck.
    pub stuck_after: u32,
    /// Outlier threshold in residual multiples: a reading is suspect
    /// when `|x - forecast| > outlier_k * max(residual, outlier_floor)`.
    pub outlier_k: f64,
    /// Lower bound on the residual scale, so an exactly-predictable
    /// signal does not make the outlier envelope collapse to zero.
    pub outlier_floor: f64,
    /// Consecutive suspect (or missing) readings before quarantine.
    pub outlier_patience: u32,
    /// Consecutive readings agreeing with the model before a
    /// quarantined sensor is restored.
    pub recover_after: u32,
    /// Observations to absorb before any fault verdicts are issued.
    pub min_samples: u64,
    /// EWMA factor of the fast (reactive) residual-power tracker used
    /// by the variance-ratio watchdog.
    pub var_fast_alpha: f64,
    /// EWMA factor of the slow residual-power baseline.
    pub var_slow_alpha: f64,
    /// The variance watchdog trips when the fast residual power
    /// exceeds `var_ratio` times the slow baseline.
    pub var_ratio: f64,
    /// Floor on the slow residual-power baseline (keeps the ratio
    /// meaningful for near-perfectly-predictable signals).
    pub var_floor: f64,
    /// Consecutive trusted readings over the ratio before the
    /// variance watchdog quarantines.
    pub var_patience: u32,
}

impl Default for SensorHealthConfig {
    fn default() -> Self {
        Self {
            residual_alpha: 0.2,
            stuck_after: 12,
            outlier_k: 4.0,
            outlier_floor: 1e-3,
            outlier_patience: 3,
            recover_after: 8,
            min_samples: 16,
            var_fast_alpha: 0.25,
            var_slow_alpha: 0.02,
            var_ratio: 6.0,
            var_floor: 1e-4,
            var_patience: 4,
        }
    }
}

/// What [`SensorHealth::observe`] hands downstream for one reading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthReading {
    /// The value consumers should act on (raw if trusted, forecast if
    /// substituted).
    pub value: f64,
    /// The raw reading, if the sensor produced one.
    pub raw: Option<f64>,
    /// Whether `value` is a model substitute rather than the raw
    /// reading.
    pub substituted: bool,
    /// Whether the sensor is currently quarantined.
    pub degraded: bool,
}

/// Per-sensor state: self-model, residual envelope and fault streaks.
#[derive(Debug, Clone)]
struct Monitor {
    model: Holt,
    residual: ResidualTracker,
    last_raw: Option<f64>,
    repeats: u32,
    outlier_streak: u32,
    missing_streak: u32,
    agree_streak: u32,
    quarantined: bool,
    /// Ticks since the model last absorbed a trusted reading; the
    /// model's forecasts are projected this far forward so held-out
    /// and quarantined periods track the signal's trend.
    behind: u32,
    samples: u64,
    /// Fast EWMA of squared residuals over *trusted* readings.
    var_fast: f64,
    /// Slow EWMA of squared residuals over trusted readings — the
    /// sensor's normal noise power.
    var_slow: f64,
    /// Consecutive trusted readings with the fast/slow power ratio
    /// over threshold.
    var_streak: u32,
}

impl Monitor {
    fn new(residual_alpha: f64) -> Self {
        Self {
            model: Holt::new(0.4, 0.2),
            residual: ResidualTracker::new(residual_alpha),
            last_raw: None,
            repeats: 0,
            outlier_streak: 0,
            missing_streak: 0,
            agree_streak: 0,
            quarantined: false,
            behind: 0,
            samples: 0,
            var_fast: 0.0,
            var_slow: 0.0,
            var_streak: 0,
        }
    }

    /// Model's estimate of the signal *now*: the forecast projected
    /// over every tick the model has been frozen.
    fn predicted_now(&self) -> Option<f64> {
        self.model.forecast_h(self.behind.saturating_add(1))
    }

    /// Best substitute for an untrusted or missing reading: the frozen
    /// model projected to the current tick, else the last raw value
    /// ever seen, else zero (a cold sensor that never reported).
    fn substitute(&self) -> f64 {
        self.predicted_now().or(self.last_raw).unwrap_or(0.0)
    }

    fn envelope(&self, cfg: &SensorHealthConfig) -> f64 {
        cfg.outlier_k * self.residual.error().max(cfg.outlier_floor)
    }

    fn enter_quarantine(
        &mut self,
        key: &str,
        now: Tick,
        reason: &str,
        detail: f64,
        log: &mut ExplanationLog,
    ) {
        self.quarantined = true;
        self.agree_streak = 0;
        let mut e = Explanation::new(now, format!("quarantine:{key}"))
            .because(reason, detail)
            .because("residual", self.residual.error());
        if let Some(p) = self.model.forecast() {
            e = e.because("predicted", p);
        }
        log.record(e);
    }

    fn restore(&mut self, key: &str, now: Tick, log: &mut ExplanationLog, residual_alpha: f64) {
        self.quarantined = false;
        self.outlier_streak = 0;
        self.missing_streak = 0;
        self.repeats = 0;
        self.behind = 0;
        // The model sat frozen through the quarantine; its state is
        // stale, so relearn from scratch rather than resume from a
        // forecast that may have drifted arbitrarily far.
        self.model = Holt::new(0.4, 0.2);
        self.residual = ResidualTracker::new(residual_alpha);
        self.samples = 0;
        self.var_fast = 0.0;
        self.var_slow = 0.0;
        self.var_streak = 0;
        log.record(
            Explanation::new(now, format!("restore:{key}"))
                .because("agree_streak", f64::from(self.agree_streak)),
        );
        self.agree_streak = 0;
    }

    /// Feeds a trusted reading into the self-model, updating the
    /// variance-ratio watchdog's power trackers as a side effect.
    fn learn(&mut self, x: f64, cfg: &SensorHealthConfig) {
        if let Some(p) = self.model.forecast() {
            self.residual.record(p, x);
            let r2 = (p - x) * (p - x);
            self.var_fast += cfg.var_fast_alpha * (r2 - self.var_fast);
            self.var_slow += cfg.var_slow_alpha * (r2 - self.var_slow);
        }
        self.model.observe(x);
        self.behind = 0;
        self.samples += 1;
    }

    /// The variance-ratio watchdog: catches mean-reverting noise
    /// bursts. Such a burst stays centred on the prediction, so
    /// enough readings fall inside the outlier envelope to keep being
    /// learned — inflating the envelope until the whole burst passes
    /// as normal. The *power* of the trusted residual stream cannot
    /// hide, though: the fast tracker jumps an order of magnitude
    /// above the slow baseline within a few learned readings. Called
    /// after [`Monitor::learn`]; returns the ratio when the streak
    /// exceeds patience.
    fn variance_verdict(&mut self, cfg: &SensorHealthConfig) -> Option<f64> {
        let baseline = self.var_slow.max(cfg.var_floor);
        let ratio = self.var_fast / baseline;
        if self.samples >= cfg.min_samples && ratio > cfg.var_ratio {
            self.var_streak += 1;
        } else {
            self.var_streak = 0;
        }
        (self.var_streak >= cfg.var_patience).then_some(ratio)
    }
}

/// Residual-based health monitor over a set of named scalar sensors.
///
/// Call [`observe`](SensorHealth::observe) once per sensor per tick
/// with the raw reading (or `None` on dropout); act on the returned
/// [`HealthReading::value`]. Sensors are keyed by name and monitors
/// are created lazily; iteration order is deterministic (`BTreeMap`).
#[derive(Debug, Clone)]
pub struct SensorHealth {
    cfg: SensorHealthConfig,
    monitors: BTreeMap<String, Monitor>,
    quarantine_events: u64,
    restore_events: u64,
    mask: InterventionMask,
}

impl Default for SensorHealth {
    fn default() -> Self {
        Self::new(SensorHealthConfig::default())
    }
}

impl SensorHealth {
    /// Creates a monitor with the given configuration.
    #[must_use]
    pub fn new(cfg: SensorHealthConfig) -> Self {
        Self {
            cfg,
            monitors: BTreeMap::new(),
            quarantine_events: 0,
            restore_events: 0,
            mask: InterventionMask::allow_all(),
        }
    }

    /// Sets the counterfactual-replay intervention mask (see
    /// [`crate::replay`]): with `SensorQuarantine` suppressed,
    /// readings pass through raw and no quarantine ever fires.
    pub fn set_mask(&mut self, mask: InterventionMask) {
        self.mask = mask;
    }

    /// Builder-style [`SensorHealth::set_mask`].
    #[must_use]
    pub fn with_mask(mut self, mask: InterventionMask) -> Self {
        self.set_mask(mask);
        self
    }

    /// Processes one reading from sensor `key` and returns the value
    /// downstream consumers should use. `raw = None` means the sensor
    /// produced nothing this tick (dropout). Quarantine entries and
    /// exits are recorded in `log`.
    pub fn observe(
        &mut self,
        key: &str,
        raw: Option<f64>,
        now: Tick,
        log: &mut ExplanationLog,
    ) -> HealthReading {
        self.observe_with_reference(key, raw, None, now, log)
    }

    /// Like [`observe`](SensorHealth::observe), but with an external
    /// `reference` estimate of the monitored quantity (e.g. the fused
    /// value of the *other*, still-trusted sensors). The reference is
    /// used for the recovery probe of a quarantined sensor: a frozen
    /// self-model's forecast degrades over a long quarantine, so
    /// without a reference a sensor whose signal is not
    /// locally-linear may never be declared healthy again.
    pub fn observe_with_reference(
        &mut self,
        key: &str,
        raw: Option<f64>,
        reference: Option<f64>,
        now: Tick,
        log: &mut ExplanationLog,
    ) -> HealthReading {
        let cfg = self.cfg.clone();
        let m = self
            .monitors
            .entry(key.to_string())
            .or_insert_with(|| Monitor::new(cfg.residual_alpha));

        // Masked quarantine (counterfactual replay, see
        // [`crate::replay`]): readings pass through raw, holding the
        // last seen value over dropouts — exactly what a consumer
        // without this layer would do. The monitor keeps tracking
        // `last_raw` (and nothing here draws randomness), so flipping
        // the mask cannot perturb the host's seed streams.
        if self.mask.suppresses(InterventionClass::SensorQuarantine) {
            if let Some(x) = raw {
                m.last_raw = Some(x);
            }
            return HealthReading {
                value: raw.or(m.last_raw).unwrap_or(0.0),
                raw,
                substituted: false,
                degraded: false,
            };
        }

        if m.quarantined {
            if let Some(x) = raw {
                // Recovery probe: does the sensor agree with the best
                // current estimate of the signal — the caller's
                // reference if given, else the frozen model projected
                // to now? Tolerance is double the outlier envelope:
                // restoring needs looser agreement than staying
                // trusted, or a sensor whose residual scale froze
                // small can starve in quarantine forever. A reading
                // bit-identical to the previous one is never evidence
                // of health — a stuck sensor must not be restored just
                // because the real signal wandered across its frozen
                // value.
                let changed = m.last_raw.map(f64::to_bits) != Some(x.to_bits());
                let agrees = changed
                    && reference
                        .or_else(|| m.predicted_now())
                        .is_none_or(|p| (x - p).abs() <= 2.0 * m.envelope(&cfg));
                if agrees {
                    m.agree_streak += 1;
                } else {
                    m.agree_streak = 0;
                }
                m.last_raw = Some(x);
                if m.agree_streak >= cfg.recover_after {
                    m.restore(key, now, log, cfg.residual_alpha);
                    self.restore_events += 1;
                    m.learn(x, &cfg);
                    return HealthReading {
                        value: x,
                        raw,
                        substituted: false,
                        degraded: false,
                    };
                }
            } else {
                m.agree_streak = 0;
            }
            let value = m.substitute();
            m.behind = m.behind.saturating_add(1);
            return HealthReading {
                value,
                raw,
                substituted: true,
                degraded: true,
            };
        }

        let warm = m.samples >= cfg.min_samples;
        let Some(x) = raw else {
            m.missing_streak += 1;
            m.repeats = 0;
            m.outlier_streak = 0;
            if warm && m.missing_streak >= cfg.outlier_patience {
                m.enter_quarantine(key, now, "missing_streak", f64::from(m.missing_streak), log);
                self.quarantine_events += 1;
            }
            let value = m.substitute();
            m.behind = m.behind.saturating_add(1);
            return HealthReading {
                value,
                raw: None,
                substituted: true,
                degraded: m.quarantined,
            };
        };

        m.missing_streak = 0;
        if m.last_raw.map(f64::to_bits) == Some(x.to_bits()) {
            m.repeats += 1;
        } else {
            m.repeats = 1;
        }
        m.last_raw = Some(x);

        // Stuck-at: the reading froze while the residual envelope says
        // the signal had been moving. A genuinely constant signal has
        // residual ~ 0 and is never flagged.
        if warm && m.repeats >= cfg.stuck_after && m.residual.error() > cfg.outlier_floor {
            m.enter_quarantine(key, now, "repeats", f64::from(m.repeats), log);
            self.quarantine_events += 1;
            let value = m.substitute();
            m.behind = m.behind.saturating_add(1);
            return HealthReading {
                value,
                raw,
                substituted: true,
                degraded: true,
            };
        }

        // Outlier run: readings outside the residual envelope are held
        // out of the model (so a fault cannot teach the model its own
        // corruption) and quarantine the sensor once persistent. Each
        // held-out tick widens the tolerance proportionally — the
        // prediction is an extrapolation whose uncertainty grows with
        // its horizon — so a borderline reading cannot start a
        // self-reinforcing cascade of ever-worse extrapolations.
        let suspect = warm
            && m.predicted_now()
                .is_some_and(|p| (x - p).abs() > m.envelope(&cfg) * f64::from(m.behind + 1));
        if suspect {
            m.outlier_streak += 1;
            let degraded = if m.outlier_streak >= cfg.outlier_patience {
                m.enter_quarantine(key, now, "reading", x, log);
                self.quarantine_events += 1;
                true
            } else {
                false
            };
            let value = m.substitute();
            m.behind = m.behind.saturating_add(1);
            return HealthReading {
                value,
                raw,
                substituted: true,
                degraded,
            };
        }

        m.outlier_streak = 0;
        m.learn(x, &cfg);

        // Variance-ratio watchdog: a mean-reverting noise burst slips
        // past the outlier test (readings near the prediction keep
        // being learned, inflating the envelope), but its residual
        // power betrays it.
        if let Some(ratio) = m.variance_verdict(&cfg) {
            m.enter_quarantine(key, now, "variance_ratio", ratio, log);
            self.quarantine_events += 1;
            let value = m.substitute();
            m.behind = m.behind.saturating_add(1);
            return HealthReading {
                value,
                raw,
                substituted: true,
                degraded: true,
            };
        }

        HealthReading {
            value: x,
            raw,
            substituted: false,
            degraded: false,
        }
    }

    /// Whether sensor `key` is currently quarantined.
    #[must_use]
    pub fn is_quarantined(&self, key: &str) -> bool {
        self.monitors.get(key).is_some_and(|m| m.quarantined)
    }

    /// Number of sensors currently quarantined.
    #[must_use]
    pub fn quarantined_count(&self) -> usize {
        self.monitors.values().filter(|m| m.quarantined).count()
    }

    /// Number of sensors ever observed.
    #[must_use]
    pub fn monitored_count(&self) -> usize {
        self.monitors.len()
    }

    /// Total quarantine entries over the monitor's lifetime.
    #[must_use]
    pub fn quarantine_events(&self) -> u64 {
        self.quarantine_events
    }

    /// Total quarantine exits over the monitor's lifetime.
    #[must_use]
    pub fn restore_events(&self) -> u64 {
        self.restore_events
    }

    /// Structured export for run traces (see [`simkernel::obs`]):
    /// lifetime event counters plus the current quarantine census.
    #[must_use]
    pub fn stats_json(&self) -> Json {
        Json::obj([
            ("monitored", Json::from(self.monitored_count() as u64)),
            ("quarantined", Json::from(self.quarantined_count() as u64)),
            ("quarantine_events", Json::from(self.quarantine_events)),
            ("restore_events", Json::from(self.restore_events)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log() -> ExplanationLog {
        ExplanationLog::new(64)
    }

    fn ramp(t: u64) -> f64 {
        0.5 * t as f64
    }

    #[test]
    fn clean_readings_pass_through() {
        let mut h = SensorHealth::default();
        let mut log = log();
        for t in 0..100 {
            let r = h.observe("s", Some(ramp(t)), Tick(t), &mut log);
            assert!(!r.substituted);
            assert!(!r.degraded);
            assert_eq!(r.value, ramp(t));
        }
        assert!(!h.is_quarantined("s"));
        assert_eq!(h.quarantine_events(), 0);
        assert_eq!(log.len(), 0);
    }

    #[test]
    fn stuck_sensor_is_quarantined_and_explained() {
        let mut h = SensorHealth::default();
        let mut log = log();
        for t in 0..60 {
            // Mild wobble keeps the residual envelope non-degenerate.
            let x = ramp(t) + if t % 2 == 0 { 0.05 } else { -0.05 };
            h.observe("s", Some(x), Tick(t), &mut log);
        }
        let frozen = 123.25;
        let mut degraded_seen = false;
        for t in 60..100 {
            let r = h.observe("s", Some(frozen), Tick(t), &mut log);
            degraded_seen |= r.degraded;
            if r.degraded {
                assert!(r.substituted);
            }
        }
        assert!(degraded_seen, "stuck sensor should be quarantined");
        assert!(h.is_quarantined("s"));
        assert!(!log.find_by_action("quarantine:s").is_empty());
    }

    #[test]
    fn constant_signal_is_not_flagged_stuck() {
        let mut h = SensorHealth::default();
        let mut log = log();
        for t in 0..300 {
            let r = h.observe("s", Some(7.5), Tick(t), &mut log);
            assert!(!r.degraded);
        }
        assert_eq!(h.quarantine_events(), 0);
    }

    #[test]
    fn bias_shift_is_caught_as_outlier_run() {
        let mut h = SensorHealth::default();
        let mut log = log();
        for t in 0..50 {
            h.observe("s", Some(ramp(t)), Tick(t), &mut log);
        }
        for t in 50..60 {
            h.observe("s", Some(ramp(t) + 4.0), Tick(t), &mut log);
        }
        assert!(h.is_quarantined("s"));
        assert_eq!(h.quarantine_events(), 1);
        // Substituted values stay near the un-biased trajectory.
        let mut log2 = log.clone();
        let r = h.observe("s", Some(ramp(60) + 4.0), Tick(60), &mut log2);
        assert!(r.substituted);
        assert!((r.value - ramp(60)).abs() < 1.0);
    }

    #[test]
    fn single_spike_is_substituted_without_quarantine() {
        let mut h = SensorHealth::default();
        let mut log = log();
        for t in 0..40 {
            h.observe("s", Some(ramp(t)), Tick(t), &mut log);
        }
        let r = h.observe("s", Some(999.0), Tick(40), &mut log);
        assert!(r.substituted, "spike must not be passed through");
        assert!(!r.degraded);
        assert!((r.value - ramp(40)).abs() < 0.5);
        let r = h.observe("s", Some(ramp(41)), Tick(41), &mut log);
        assert!(!r.substituted);
        assert_eq!(h.quarantine_events(), 0);
    }

    #[test]
    fn dropout_quarantines_then_recovers() {
        let mut h = SensorHealth::default();
        let mut log = log();
        for t in 0..40 {
            h.observe("s", Some(ramp(t)), Tick(t), &mut log);
        }
        for t in 40..50 {
            let r = h.observe("s", None, Tick(t), &mut log);
            assert!(r.substituted);
            // The trend-aware substitute keeps tracking the ramp.
            assert!((r.value - ramp(t)).abs() < 0.5);
        }
        assert!(h.is_quarantined("s"));
        for t in 50..70 {
            h.observe("s", Some(ramp(t)), Tick(t), &mut log);
        }
        assert!(!h.is_quarantined("s"), "agreeing sensor must be restored");
        assert_eq!(h.restore_events(), 1);
        assert!(!log.find_by_action("restore:s").is_empty());
        let r = h.observe("s", Some(ramp(70)), Tick(70), &mut log);
        assert!(!r.substituted);
    }

    #[test]
    fn reference_recovers_sensor_with_stale_model() {
        // A sinusoid defeats the frozen linear model over a long
        // quarantine; the external reference still recovers it.
        let truth = |t: u64| 20.0 + 6.0 * (t as f64 * 0.02).sin();
        let mut h = SensorHealth::default();
        let mut log = log();
        for t in 0..200 {
            h.observe_with_reference("s", Some(truth(t)), Some(truth(t)), Tick(t), &mut log);
        }
        for t in 200..400 {
            // Stuck fault: reading frozen at truth(200).
            h.observe_with_reference("s", Some(truth(200)), Some(truth(t)), Tick(t), &mut log);
        }
        assert!(h.is_quarantined("s"));
        for t in 400..450 {
            h.observe_with_reference("s", Some(truth(t)), Some(truth(t)), Tick(t), &mut log);
        }
        assert!(!h.is_quarantined("s"), "reference agreement must restore");
        assert_eq!(h.restore_events(), 1);
    }

    #[test]
    fn cold_sensor_never_quarantines_during_warmup() {
        let mut h = SensorHealth::default();
        let mut log = log();
        for t in 0..10 {
            let r = h.observe(
                "s",
                if t % 2 == 0 { Some(1.0) } else { None },
                Tick(t),
                &mut log,
            );
            assert!(!r.degraded);
        }
        assert_eq!(h.quarantine_events(), 0);
    }

    /// Deterministic zero-mean zig pattern for synthetic noise.
    fn zig(t: u64) -> f64 {
        [0.9, -0.3, -1.0, 0.4, 0.1, -0.8, 0.7, 0.0][(t % 8) as usize]
    }

    #[test]
    fn mean_reverting_noise_burst_trips_variance_watchdog() {
        let mut h = SensorHealth::default();
        let mut log = log();
        for t in 0..150 {
            h.observe("s", Some(ramp(t) + 0.04 * zig(t)), Tick(t), &mut log);
        }
        assert_eq!(h.quarantine_events(), 0);
        // Burst: amplitude grows 4x but stays centred on the signal,
        // inside the outlier envelope — the residual test alone would
        // keep learning it.
        let mut caught_at = None;
        for t in 150..260 {
            let r = h.observe("s", Some(ramp(t) + 0.16 * zig(t)), Tick(t), &mut log);
            if r.degraded {
                caught_at = Some(t);
                break;
            }
        }
        assert!(caught_at.is_some(), "noise burst must be quarantined");
        assert!(h.is_quarantined("s"));
        let variance_entries: Vec<_> = log
            .iter()
            .filter(|e| {
                e.action.starts_with("quarantine:")
                    && e.factors.iter().any(|f| f.name == "variance_ratio")
            })
            .collect();
        assert!(
            !variance_entries.is_empty(),
            "quarantine must cite the variance ratio"
        );
    }

    #[test]
    fn steady_noise_never_trips_variance_watchdog() {
        let mut h = SensorHealth::default();
        let mut log = log();
        for t in 0..500 {
            let r = h.observe("s", Some(ramp(t) + 0.05 * zig(t)), Tick(t), &mut log);
            assert!(!r.degraded, "stationary noise is healthy (t={t})");
        }
        assert_eq!(h.quarantine_events(), 0);
    }

    #[test]
    fn monitors_are_independent_per_key() {
        let mut h = SensorHealth::default();
        let mut log = log();
        for t in 0..50 {
            h.observe("good", Some(ramp(t)), Tick(t), &mut log);
            h.observe("bad", Some(ramp(t)), Tick(t), &mut log);
        }
        for t in 50..60 {
            h.observe("good", Some(ramp(t)), Tick(t), &mut log);
            h.observe("bad", None, Tick(t), &mut log);
        }
        assert!(!h.is_quarantined("good"));
        assert!(h.is_quarantined("bad"));
        assert_eq!(h.monitored_count(), 2);
        assert_eq!(h.quarantined_count(), 1);
    }
}
