//! Self-explanation: reporting the reasons behind action (or
//! inaction).
//!
//! Schubert and Cox (paper Section III) identify self-explanation as a
//! benefit of self-awareness beyond adaptation: "self-aware systems
//! will be able to explain or justify themselves to external entities,
//! such as humans or other systems, based on their self-awareness."
//! The conclusion reiterates it: "a form of reporting in which the
//! reasons behind action (or inaction) are made clear."
//!
//! An [`Explanation`] captures the decision, the evidence (factor
//! values the agent believed at decision time), the expected utility,
//! and the rejected alternatives; the [`ExplanationLog`] retains a
//! bounded history an operator can query.

use serde::{Deserialize, Serialize};
use simkernel::obs::Json;
use simkernel::Tick;
use std::collections::VecDeque;
use std::fmt;

/// One piece of evidence behind a decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Factor {
    /// Signal or belief name.
    pub name: String,
    /// Believed value at decision time.
    pub value: f64,
}

/// A considered-but-rejected alternative.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alternative {
    /// Action label.
    pub action: String,
    /// Its expected utility at decision time.
    pub expected_utility: f64,
}

/// A record of why an action was chosen.
///
/// # Example
///
/// ```
/// use selfaware::explain::Explanation;
/// use simkernel::Tick;
///
/// let e = Explanation::new(Tick(10), "scale-up")
///     .because("load", 0.92)
///     .because("forecast.load", 0.97)
///     .expecting(0.8)
///     .rejected("hold", 0.55);
/// let text = e.to_string();
/// assert!(text.contains("scale-up"));
/// assert!(text.contains("load=0.92"));
/// assert!(text.contains("hold"));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Explanation {
    /// Decision time.
    pub at: Tick,
    /// The chosen action's label.
    pub action: String,
    /// Evidence the decision rested on.
    pub factors: Vec<Factor>,
    /// Expected utility of the chosen action, if computed.
    pub expected_utility: Option<f64>,
    /// Alternatives that were considered and rejected.
    pub alternatives: Vec<Alternative>,
}

impl Explanation {
    /// Starts an explanation for choosing `action` at time `at`.
    #[must_use]
    pub fn new(at: Tick, action: impl Into<String>) -> Self {
        Self {
            at,
            action: action.into(),
            factors: Vec::new(),
            expected_utility: None,
            alternatives: Vec::new(),
        }
    }

    /// Adds an evidence factor (builder style).
    #[must_use]
    pub fn because(mut self, name: impl Into<String>, value: f64) -> Self {
        self.factors.push(Factor {
            name: name.into(),
            value,
        });
        self
    }

    /// Records the expected utility of the choice (builder style).
    #[must_use]
    pub fn expecting(mut self, utility: f64) -> Self {
        self.expected_utility = Some(utility);
        self
    }

    /// Records a rejected alternative (builder style).
    #[must_use]
    pub fn rejected(mut self, action: impl Into<String>, expected_utility: f64) -> Self {
        self.alternatives.push(Alternative {
            action: action.into(),
            expected_utility,
        });
        self
    }

    /// Structured export for run traces (see [`simkernel::obs`]):
    /// `{tick, action, factors: [[name, value]…], expected_utility,
    /// rejected: [[action, utility]…]}`, with the optional fields
    /// omitted when empty so records stay compact.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("tick".to_owned(), Json::from(self.at.0)),
            ("action".to_owned(), Json::str(self.action.clone())),
        ];
        if !self.factors.is_empty() {
            pairs.push((
                "factors".to_owned(),
                Json::Arr(
                    self.factors
                        .iter()
                        .map(|f| Json::Arr(vec![Json::str(f.name.clone()), Json::from(f.value)]))
                        .collect(),
                ),
            ));
        }
        if let Some(u) = self.expected_utility {
            pairs.push(("expected_utility".to_owned(), Json::from(u)));
        }
        if !self.alternatives.is_empty() {
            pairs.push((
                "rejected".to_owned(),
                Json::Arr(
                    self.alternatives
                        .iter()
                        .map(|a| {
                            Json::Arr(vec![
                                Json::str(a.action.clone()),
                                Json::from(a.expected_utility),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        Json::Obj(pairs)
    }
}

impl fmt::Display for Explanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: chose `{}`", self.at, self.action)?;
        if let Some(u) = self.expected_utility {
            write!(f, " (expected utility {u:.3})")?;
        }
        if !self.factors.is_empty() {
            let fs: Vec<String> = self
                .factors
                .iter()
                .map(|fa| format!("{}={}", fa.name, trim_float(fa.value)))
                .collect();
            write!(f, " because {}", fs.join(", "))?;
        }
        if !self.alternatives.is_empty() {
            let alts: Vec<String> = self
                .alternatives
                .iter()
                .map(|a| format!("`{}` ({:.3})", a.action, a.expected_utility))
                .collect();
            write!(f, "; rejected {}", alts.join(", "))?;
        }
        Ok(())
    }
}

fn trim_float(v: f64) -> String {
    let s = format!("{v:.2}");
    s.trim_end_matches('0').trim_end_matches('.').to_string()
}

/// Default retention when a log is built via [`Default`].
pub const DEFAULT_LOG_CAPACITY: usize = 1024;

/// A bounded ring buffer of explanations.
///
/// Heavy producers (retry storms in the comms layer, quarantine churn
/// in sensor health) can record far more entries than an operator will
/// ever read back; the ring keeps the most recent `capacity` entries
/// and counts what it had to evict, so memory stays bounded on long
/// lossy runs without losing track of *how much* history is gone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExplanationLog {
    entries: VecDeque<Explanation>,
    capacity: usize,
    recorded: u64,
    dropped: u64,
    enabled: bool,
}

impl Default for ExplanationLog {
    fn default() -> Self {
        Self::new(DEFAULT_LOG_CAPACITY)
    }
}

impl ExplanationLog {
    /// Creates a log that retains the most recent `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            recorded: 0,
            dropped: 0,
            enabled: true,
        }
    }

    /// Appends an explanation, evicting the oldest retained entry (and
    /// counting it as dropped) once the ring is full. A no-op (nothing
    /// retained, nothing counted) while the log is disabled.
    pub fn record(&mut self, e: Explanation) {
        if !self.enabled {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(e);
        self.recorded += 1;
    }

    /// Builds and appends an explanation only when the log is enabled.
    ///
    /// Hot paths pay for explanation text (`format!`, factor vectors)
    /// even when no operator will ever read it; routing construction
    /// through a closure makes the disabled path allocation-free while
    /// keeping the recorded entry byte-identical when enabled.
    pub fn record_with(&mut self, make: impl FnOnce() -> Explanation) {
        if self.enabled {
            self.record(make());
        }
    }

    /// Turns recording on or off (on by default). While disabled,
    /// [`ExplanationLog::record`] and [`ExplanationLog::record_with`]
    /// do nothing; retained entries and counters are left untouched.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether the log is currently recording.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Changes the retention bound in place, evicting oldest entries
    /// (counted as dropped) if the new bound is smaller.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn resize(&mut self, capacity: usize) {
        assert!(capacity > 0, "capacity must be positive");
        while self.entries.len() > capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.capacity = capacity;
    }

    /// The retention bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifetime count of entries evicted to honour the bound.
    #[must_use]
    pub fn dropped_count(&self) -> u64 {
        self.dropped
    }

    /// The most recent explanation, if any.
    #[must_use]
    pub fn latest(&self) -> Option<&Explanation> {
        self.entries.back()
    }

    /// Retained explanations, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Explanation> {
        self.entries.iter()
    }

    /// Number of retained entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime count of recorded explanations (including evicted).
    #[must_use]
    pub fn recorded_count(&self) -> u64 {
        self.recorded
    }

    /// Explanations whose action label contains `needle`.
    #[must_use]
    pub fn find_by_action(&self, needle: &str) -> Vec<&Explanation> {
        self.entries
            .iter()
            .filter(|e| e.action.contains(needle))
            .collect()
    }

    /// Structured export for run traces (see [`simkernel::obs`]):
    /// `{recorded, dropped, entries: […]}` with entries oldest first.
    /// Everything the ring retains, plus the counters that say how
    /// much lifetime history the bounded buffer evicted — so an
    /// artifact reader knows whether it is looking at the whole story
    /// or its tail.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("recorded", Json::from(self.recorded)),
            ("dropped", Json::from(self.dropped)),
            (
                "entries",
                Json::Arr(self.entries.iter().map(Explanation::to_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: u64, action: &str) -> Explanation {
        Explanation::new(Tick(t), action)
            .because("load", 0.5)
            .expecting(0.7)
            .rejected("other", 0.3)
    }

    #[test]
    fn builder_collects_everything() {
        let e = sample(3, "act");
        assert_eq!(e.at, Tick(3));
        assert_eq!(e.action, "act");
        assert_eq!(e.factors.len(), 1);
        assert_eq!(e.expected_utility, Some(0.7));
        assert_eq!(e.alternatives.len(), 1);
    }

    #[test]
    fn display_is_readable() {
        let s = sample(3, "scale-up").to_string();
        assert!(s.starts_with("t3: chose `scale-up`"));
        assert!(s.contains("expected utility 0.700"));
        assert!(s.contains("load=0.5"));
        assert!(s.contains("rejected `other` (0.300)"));
    }

    #[test]
    fn display_minimal() {
        let s = Explanation::new(Tick(0), "hold").to_string();
        assert_eq!(s, "t0: chose `hold`");
    }

    #[test]
    fn log_bounds_capacity() {
        let mut log = ExplanationLog::new(3);
        for t in 0..10 {
            log.record(sample(t, "a"));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.recorded_count(), 10);
        assert_eq!(log.dropped_count(), 7);
        assert_eq!(log.latest().unwrap().at, Tick(9));
        let ticks: Vec<u64> = log.iter().map(|e| e.at.value()).collect();
        assert_eq!(ticks, vec![7, 8, 9]);
    }

    #[test]
    fn default_log_is_bounded() {
        let mut log = ExplanationLog::default();
        assert_eq!(log.capacity(), DEFAULT_LOG_CAPACITY);
        for t in 0..2 * DEFAULT_LOG_CAPACITY as u64 {
            log.record(sample(t, "a"));
        }
        assert_eq!(log.len(), DEFAULT_LOG_CAPACITY);
        assert_eq!(log.dropped_count(), DEFAULT_LOG_CAPACITY as u64);
    }

    #[test]
    fn resize_shrinks_and_grows() {
        let mut log = ExplanationLog::new(8);
        for t in 0..8 {
            log.record(sample(t, "a"));
        }
        log.resize(3);
        assert_eq!(log.len(), 3);
        assert_eq!(log.capacity(), 3);
        assert_eq!(log.dropped_count(), 5);
        let ticks: Vec<u64> = log.iter().map(|e| e.at.value()).collect();
        assert_eq!(ticks, vec![5, 6, 7]);
        log.resize(10);
        for t in 8..15 {
            log.record(sample(t, "a"));
        }
        assert_eq!(log.len(), 10);
    }

    #[test]
    fn find_by_action_filters() {
        let mut log = ExplanationLog::new(10);
        log.record(sample(1, "scale-up"));
        log.record(sample(2, "scale-down"));
        log.record(sample(3, "hold"));
        assert_eq!(log.find_by_action("scale").len(), 2);
        assert_eq!(log.find_by_action("hold").len(), 1);
        assert!(log.find_by_action("reboot").is_empty());
    }

    #[test]
    fn disabled_log_records_nothing_and_reenables() {
        let mut log = ExplanationLog::new(4);
        assert!(log.is_enabled());
        log.record(sample(0, "kept"));
        log.set_enabled(false);
        log.record(sample(1, "dropped-eager"));
        let mut built = false;
        log.record_with(|| {
            built = true;
            sample(2, "dropped-lazy")
        });
        assert!(!built, "record_with must not build while disabled");
        assert_eq!(log.len(), 1);
        assert_eq!(log.recorded_count(), 1);
        log.set_enabled(true);
        log.record_with(|| sample(3, "kept-lazy"));
        assert_eq!(log.len(), 2);
        assert_eq!(log.latest().unwrap().action, "kept-lazy");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = ExplanationLog::new(0);
    }

    #[test]
    fn empty_log() {
        let log = ExplanationLog::new(4);
        assert!(log.is_empty());
        assert!(log.latest().is_none());
    }

    #[test]
    fn trim_float_output() {
        assert_eq!(trim_float(0.50), "0.5");
        assert_eq!(trim_float(2.00), "2");
        assert_eq!(trim_float(1.25), "1.25");
    }
}
