//! Levels of computational self-awareness.
//!
//! The paper (Section IV) adopts Neisser's levels of human
//! self-knowledge, as translated to computing by Faniyi et al. \[44\] and
//! Lewis et al. \[41\]. Each level names a *capability class* a system may
//! or may not possess; "full-stack" self-awareness is all of them, but
//! the paper stresses that minimal subsets are often appropriate.
//!
//! | Level | Neisser origin | Computational meaning |
//! |---|---|---|
//! | [`Level::Stimulus`] | ecological self | reacts to current internal/external stimuli |
//! | [`Level::Interaction`] | interpersonal self | models interactions with other entities |
//! | [`Level::Time`] | extended self | models history and anticipated futures |
//! | [`Level::Goal`] | private/conceptual self | represents goals/objectives and trades them off |
//! | [`Level::Meta`] | meta-self-awareness (Morin) | models the quality of its own awareness |

use serde::{Deserialize, Serialize};
use std::fmt;

/// One level of computational self-awareness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Level {
    /// Stimulus awareness: knowledge of current raw phenomena
    /// (internal state and environmental stimuli).
    Stimulus,
    /// Interaction awareness: knowledge that stimuli and own actions
    /// form causal chains with other entities.
    Interaction,
    /// Time awareness: knowledge of historical phenomena and of likely
    /// futures (prediction).
    Time,
    /// Goal awareness: explicit representation of goals, objectives
    /// and constraints, enabling run-time trade-off management.
    Goal,
    /// Meta-self-awareness: awareness of the system's own awareness —
    /// of which models it runs and how well they are doing.
    Meta,
}

impl Level {
    /// All levels, in conventional (increasing sophistication) order.
    pub const ALL: [Level; 5] = [
        Level::Stimulus,
        Level::Interaction,
        Level::Time,
        Level::Goal,
        Level::Meta,
    ];

    /// Short lowercase name used in tables and logs.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Level::Stimulus => "stimulus",
            Level::Interaction => "interaction",
            Level::Time => "time",
            Level::Goal => "goal",
            Level::Meta => "meta",
        }
    }

    /// The psychological notion the level was translated from.
    #[must_use]
    pub fn psychological_origin(self) -> &'static str {
        match self {
            Level::Stimulus => "Neisser's ecological self",
            Level::Interaction => "Neisser's interpersonal self",
            Level::Time => "Neisser's extended self",
            Level::Goal => "Neisser's private & conceptual self",
            Level::Meta => "Morin's meta-self-awareness",
        }
    }

    fn bit(self) -> u8 {
        match self {
            Level::Stimulus => 1 << 0,
            Level::Interaction => 1 << 1,
            Level::Time => 1 << 2,
            Level::Goal => 1 << 3,
            Level::Meta => 1 << 4,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A set of self-awareness levels possessed by an agent.
///
/// # Example
///
/// ```
/// use selfaware::levels::{Level, LevelSet};
///
/// let minimal = LevelSet::new().with(Level::Stimulus);
/// assert!(minimal.contains(Level::Stimulus));
/// assert!(!minimal.contains(Level::Meta));
///
/// let full = LevelSet::full();
/// assert_eq!(full.count(), 5);
/// assert!(full.contains(Level::Goal));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize, PartialOrd, Ord,
)]
pub struct LevelSet(u8);

impl LevelSet {
    /// The empty set (a purely reactive, pre-self-aware system).
    #[must_use]
    pub fn new() -> Self {
        LevelSet(0)
    }

    /// The full stack: every level.
    #[must_use]
    pub fn full() -> Self {
        Level::ALL.iter().fold(LevelSet::new(), |s, &l| s.with(l))
    }

    /// Returns a copy with `level` added.
    #[must_use]
    pub fn with(self, level: Level) -> Self {
        LevelSet(self.0 | level.bit())
    }

    /// Returns a copy with `level` removed.
    #[must_use]
    pub fn without(self, level: Level) -> Self {
        LevelSet(self.0 & !level.bit())
    }

    /// Whether `level` is in the set.
    #[must_use]
    pub fn contains(self, level: Level) -> bool {
        self.0 & level.bit() != 0
    }

    /// Number of levels present.
    #[must_use]
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates the levels present, in [`Level::ALL`] order.
    pub fn iter(self) -> impl Iterator<Item = Level> {
        Level::ALL.into_iter().filter(move |&l| self.contains(l))
    }

    /// Whether this set is a superset of `other`.
    #[must_use]
    pub fn is_superset_of(self, other: LevelSet) -> bool {
        self.0 & other.0 == other.0
    }
}

impl fmt::Display for LevelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("(pre-self-aware)");
        }
        let names: Vec<&str> = self.iter().map(Level::name).collect();
        f.write_str(&names.join("+"))
    }
}

impl FromIterator<Level> for LevelSet {
    fn from_iter<I: IntoIterator<Item = Level>>(iter: I) -> Self {
        iter.into_iter().fold(LevelSet::new(), LevelSet::with)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        assert!(LevelSet::new().is_empty());
        assert_eq!(LevelSet::new().count(), 0);
        assert_eq!(LevelSet::full().count(), 5);
        for l in Level::ALL {
            assert!(LevelSet::full().contains(l));
        }
    }

    #[test]
    fn with_without_roundtrip() {
        let s = LevelSet::new().with(Level::Time).with(Level::Goal);
        assert!(s.contains(Level::Time));
        assert!(s.contains(Level::Goal));
        assert!(!s.contains(Level::Meta));
        let s2 = s.without(Level::Time);
        assert!(!s2.contains(Level::Time));
        assert!(s2.contains(Level::Goal));
    }

    #[test]
    fn with_is_idempotent() {
        let s = LevelSet::new().with(Level::Meta);
        assert_eq!(s.with(Level::Meta), s);
    }

    #[test]
    fn superset_relation() {
        let small = LevelSet::new().with(Level::Stimulus);
        let big = small.with(Level::Time);
        assert!(big.is_superset_of(small));
        assert!(!small.is_superset_of(big));
        assert!(LevelSet::full().is_superset_of(big));
        assert!(big.is_superset_of(LevelSet::new()));
    }

    #[test]
    fn iter_in_order() {
        let s: LevelSet = [Level::Meta, Level::Stimulus].into_iter().collect();
        let v: Vec<Level> = s.iter().collect();
        assert_eq!(v, vec![Level::Stimulus, Level::Meta]);
    }

    #[test]
    fn display_names() {
        assert_eq!(LevelSet::new().to_string(), "(pre-self-aware)");
        let s = LevelSet::new().with(Level::Stimulus).with(Level::Goal);
        assert_eq!(s.to_string(), "stimulus+goal");
        assert_eq!(Level::Meta.to_string(), "meta");
    }

    #[test]
    fn origins_are_documented() {
        for l in Level::ALL {
            assert!(!l.psychological_origin().is_empty());
        }
    }
}
