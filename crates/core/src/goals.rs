//! Goals, objectives and run-time multi-objective trade-off
//! management.
//!
//! The paper's central hypothesis (Section III) is that self-aware
//! systems "better manage **trade-offs between goals** at run time, in
//! complex, uncertain and dynamic environments". That requires goals to
//! be *first-class run-time objects* rather than design-time
//! assumptions: stakeholder concerns (throughput, cost, reliability,
//! ...) become [`Objective`]s; a [`Goal`] aggregates them into a scalar
//! utility and tracks constraint violations; and Pareto utilities
//! ([`dominates`], [`pareto_front`]) support reasoning about
//! incomparable configurations.
//!
//! Normalisation: each objective declares a `scale` — the magnitude at
//! which the stakeholder considers the concern "fully satisfied"
//! (maximise) or "fully spent" (minimise). Scores are clamped to
//! `[0, 1]` so weighted sums remain meaningful when objectives have
//! wildly different units.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Whether more or less of a measured quantity is better.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Larger values are better (e.g. throughput).
    Maximize,
    /// Smaller values are better (e.g. latency, energy, cost).
    Minimize,
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Direction::Maximize => "max",
            Direction::Minimize => "min",
        })
    }
}

/// One stakeholder concern, measured by a named signal.
///
/// # Example
///
/// ```
/// use selfaware::goals::{Direction, Objective};
///
/// let thr = Objective::new("throughput", Direction::Maximize, 100.0, 1.0);
/// assert!((thr.score(50.0) - 0.5).abs() < 1e-12);
/// assert_eq!(thr.score(200.0), 1.0); // clamped
///
/// let lat = Objective::new("latency", Direction::Minimize, 20.0, 2.0);
/// assert!((lat.score(5.0) - 0.75).abs() < 1e-12);
/// assert_eq!(lat.score(40.0), 0.0); // clamped
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Objective {
    /// Signal key the objective is measured by.
    pub key: String,
    /// Whether larger or smaller is better.
    pub direction: Direction,
    /// Normalisation scale (see module docs). Must be positive.
    pub scale: f64,
    /// Relative importance in the weighted aggregate. Must be
    /// non-negative.
    pub weight: f64,
    /// Optional hard constraint: for `Maximize`, the value must stay
    /// **at or above** this; for `Minimize`, **at or below**.
    pub constraint: Option<f64>,
}

impl Objective {
    /// Creates an objective.
    ///
    /// # Panics
    ///
    /// Panics if `scale <= 0` or `weight < 0`.
    #[must_use]
    pub fn new(key: impl Into<String>, direction: Direction, scale: f64, weight: f64) -> Self {
        assert!(scale > 0.0, "objective scale must be positive");
        assert!(weight >= 0.0, "objective weight must be non-negative");
        Self {
            key: key.into(),
            direction,
            scale,
            weight,
            constraint: None,
        }
    }

    /// Adds a hard constraint (builder style).
    #[must_use]
    pub fn with_constraint(mut self, threshold: f64) -> Self {
        self.constraint = Some(threshold);
        self
    }

    /// Normalised satisfaction score in `[0, 1]` for a measured value.
    #[must_use]
    pub fn score(&self, value: f64) -> f64 {
        let raw = match self.direction {
            Direction::Maximize => value / self.scale,
            Direction::Minimize => 1.0 - value / self.scale,
        };
        raw.clamp(0.0, 1.0)
    }

    /// Whether `value` violates the hard constraint (false if no
    /// constraint is set).
    #[must_use]
    pub fn violated_by(&self, value: f64) -> bool {
        match (self.constraint, self.direction) {
            (Some(c), Direction::Maximize) => value < c,
            (Some(c), Direction::Minimize) => value > c,
            (None, _) => false,
        }
    }
}

/// A run-time goal: a weighted set of objectives plus a constraint
/// penalty.
///
/// Utility is the weight-normalised sum of objective scores, minus
/// `violation_penalty` for each violated constraint (clamped at 0 from
/// below is deliberately **not** done: persistent violation should be
/// visible as strongly negative utility).
///
/// # Example
///
/// ```
/// use selfaware::goals::{Direction, Goal, Objective};
///
/// let goal = Goal::new("serve-well")
///     .objective(Objective::new("throughput", Direction::Maximize, 100.0, 2.0))
///     .objective(
///         Objective::new("latency", Direction::Minimize, 50.0, 1.0).with_constraint(45.0),
///     );
///
/// let u = goal.utility(|k| match k {
///     "throughput" => Some(80.0),
///     "latency" => Some(10.0),
///     _ => None,
/// });
/// // (2*0.8 + 1*0.8) / 3 = 0.8, no violations
/// assert!((u - 0.8).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Goal {
    /// Human-readable goal name.
    pub name: String,
    objectives: Vec<Objective>,
    violation_penalty: f64,
}

impl Goal {
    /// Creates an empty goal with the default violation penalty (0.5).
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            objectives: Vec::new(),
            violation_penalty: 0.5,
        }
    }

    /// Adds an objective (builder style).
    #[must_use]
    pub fn objective(mut self, o: Objective) -> Self {
        self.objectives.push(o);
        self
    }

    /// Sets the per-violation utility penalty (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `penalty` is negative.
    #[must_use]
    pub fn with_violation_penalty(mut self, penalty: f64) -> Self {
        assert!(penalty >= 0.0, "penalty must be non-negative");
        self.violation_penalty = penalty;
        self
    }

    /// The goal's objectives.
    #[must_use]
    pub fn objectives(&self) -> &[Objective] {
        &self.objectives
    }

    /// Scalar utility given a signal lookup. Signals missing from the
    /// lookup score 0 for `Maximize` objectives and 0 for `Minimize`
    /// ones as well (unknown = assume worst), keeping the agent honest
    /// about unmonitored concerns.
    pub fn utility<F: Fn(&str) -> Option<f64>>(&self, read: F) -> f64 {
        let total_weight: f64 = self.objectives.iter().map(|o| o.weight).sum();
        if total_weight <= 0.0 {
            return 0.0;
        }
        let mut sum = 0.0;
        let mut penalty = 0.0;
        for o in &self.objectives {
            match read(&o.key) {
                Some(v) => {
                    sum += o.weight * o.score(v);
                    if o.violated_by(v) {
                        penalty += self.violation_penalty;
                    }
                }
                None => {
                    // worst-case score for unknown signals
                    sum += 0.0;
                }
            }
        }
        sum / total_weight - penalty
    }

    /// Number of violated constraints given a signal lookup (unknown
    /// signals are not counted).
    pub fn violations<F: Fn(&str) -> Option<f64>>(&self, read: F) -> usize {
        self.objectives
            .iter()
            .filter(|o| read(&o.key).is_some_and(|v| o.violated_by(v)))
            .count()
    }
}

/// Whether point `a` Pareto-dominates point `b` under per-dimension
/// directions (at least as good everywhere, strictly better somewhere).
///
/// # Panics
///
/// Panics if `a`, `b` and `dirs` differ in length.
#[must_use]
pub fn dominates(a: &[f64], b: &[f64], dirs: &[Direction]) -> bool {
    assert!(
        a.len() == b.len() && b.len() == dirs.len(),
        "dimension mismatch"
    );
    let mut strictly_better = false;
    for ((&x, &y), &d) in a.iter().zip(b).zip(dirs) {
        let (better, worse) = match d {
            Direction::Maximize => (x > y, x < y),
            Direction::Minimize => (x < y, x > y),
        };
        if worse {
            return false;
        }
        if better {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Indices of the Pareto-optimal points among `points`.
///
/// O(n²) pairwise scan — fine for the configuration-space sizes in this
/// workspace.
#[must_use]
pub fn pareto_front(points: &[Vec<f64>], dirs: &[Direction]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            !points
                .iter()
                .enumerate()
                .any(|(j, p)| j != i && dominates(p, &points[i], dirs))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objective_scores_clamp() {
        let o = Objective::new("x", Direction::Maximize, 10.0, 1.0);
        assert_eq!(o.score(-5.0), 0.0);
        assert_eq!(o.score(15.0), 1.0);
        assert!((o.score(5.0) - 0.5).abs() < 1e-12);
        let m = Objective::new("y", Direction::Minimize, 10.0, 1.0);
        assert_eq!(m.score(0.0), 1.0);
        assert_eq!(m.score(10.0), 0.0);
        assert_eq!(m.score(99.0), 0.0);
    }

    #[test]
    fn constraints_by_direction() {
        let up = Objective::new("thr", Direction::Maximize, 10.0, 1.0).with_constraint(5.0);
        assert!(up.violated_by(4.0));
        assert!(!up.violated_by(5.0));
        let down = Objective::new("lat", Direction::Minimize, 10.0, 1.0).with_constraint(5.0);
        assert!(down.violated_by(6.0));
        assert!(!down.violated_by(5.0));
        let free = Objective::new("z", Direction::Minimize, 10.0, 1.0);
        assert!(!free.violated_by(1e9));
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_panics() {
        let _ = Objective::new("x", Direction::Maximize, 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "weight must be non-negative")]
    fn negative_weight_panics() {
        let _ = Objective::new("x", Direction::Maximize, 1.0, -1.0);
    }

    #[test]
    fn utility_weighted_sum() {
        let g = Goal::new("g")
            .objective(Objective::new("a", Direction::Maximize, 1.0, 3.0))
            .objective(Objective::new("b", Direction::Maximize, 1.0, 1.0));
        let u = g.utility(|k| if k == "a" { Some(1.0) } else { Some(0.0) });
        assert!((u - 0.75).abs() < 1e-12);
    }

    #[test]
    fn utility_penalises_violations() {
        let g = Goal::new("g")
            .objective(Objective::new("lat", Direction::Minimize, 10.0, 1.0).with_constraint(5.0))
            .with_violation_penalty(1.0);
        let ok = g.utility(|_| Some(2.0));
        let bad = g.utility(|_| Some(8.0));
        assert!(ok > bad);
        assert!(bad < 0.0, "violation should push utility negative");
        assert_eq!(g.violations(|_| Some(8.0)), 1);
        assert_eq!(g.violations(|_| Some(2.0)), 0);
        assert_eq!(g.violations(|_| None), 0);
    }

    #[test]
    fn utility_unknown_signal_scores_worst() {
        let g = Goal::new("g").objective(Objective::new("a", Direction::Maximize, 1.0, 1.0));
        assert_eq!(g.utility(|_| None), 0.0);
    }

    #[test]
    fn utility_empty_goal_is_zero() {
        assert_eq!(Goal::new("empty").utility(|_| Some(1.0)), 0.0);
    }

    #[test]
    fn dominance_basics() {
        let dirs = [Direction::Maximize, Direction::Minimize];
        assert!(dominates(&[2.0, 1.0], &[1.0, 2.0], &dirs));
        assert!(!dominates(&[2.0, 3.0], &[1.0, 2.0], &dirs));
        assert!(
            !dominates(&[1.0, 2.0], &[1.0, 2.0], &dirs),
            "equal points don't dominate"
        );
    }

    #[test]
    fn pareto_front_finds_nondominated() {
        let dirs = [Direction::Maximize, Direction::Maximize];
        let pts = vec![
            vec![1.0, 5.0], // front
            vec![5.0, 1.0], // front
            vec![3.0, 3.0], // front
            vec![1.0, 1.0], // dominated
            vec![2.0, 2.0], // dominated by [3,3]
        ];
        assert_eq!(pareto_front(&pts, &dirs), vec![0, 1, 2]);
    }

    #[test]
    fn pareto_front_empty_and_single() {
        let dirs = [Direction::Maximize];
        assert!(pareto_front(&[], &dirs).is_empty());
        assert_eq!(pareto_front(&[vec![1.0]], &dirs), vec![0]);
    }

    #[test]
    fn direction_display() {
        assert_eq!(Direction::Maximize.to_string(), "max");
        assert_eq!(Direction::Minimize.to_string(), "min");
    }
}
