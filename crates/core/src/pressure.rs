//! Pressure-proportional hysteresis for degradation ladders.
//!
//! The compose ladder (PR 7) and the live server (PR 9) both gate
//! expensive interventions — throttling a producer, shedding load —
//! behind a two-threshold hysteresis band on a believed pressure
//! signal (backlog, queue depth). F10's counterfactual gate showed the
//! *fixed* band misfires in a characteristic way: with static
//! engage/release thresholds the intervention engages exactly as late
//! under a fast-rising backlog as under a slow drift, and then hangs
//! on after the pressure has already collapsed, so across every
//! campaign the throttle class measured slightly *negative* utility.
//!
//! [`HysteresisGate`] keeps the band but tilts it by the believed
//! backlog **slope** (an EWMA of per-tick deltas): rising pressure
//! pulls the engage threshold down (intervene earlier, before the
//! backlog peaks), falling pressure pulls the release threshold up
//! (let go sooner, once the trend has clearly turned). The tilt is
//! clamped so the band never inverts, and the whole computation is
//! pure `f64` arithmetic off the signal the caller already believes —
//! no RNG draws, so masked counterfactual replays stay bit-identical.

use serde::{Deserialize, Serialize};

/// Two-threshold hysteresis whose band tilts with the signal's slope.
///
/// # Example
///
/// ```
/// use selfaware::pressure::{HysteresisGate, HysteresisGateConfig};
/// let mut gate = HysteresisGate::new(HysteresisGateConfig {
///     engage: 14.0,
///     release: 6.0,
///     slope_gain: 2.0,
///     slope_alpha: 0.3,
///     max_tilt: 6.0,
/// });
/// // Fast-rising backlog engages before the static threshold…
/// let mut on = false;
/// for step in 0..8 {
///     on = gate.observe(step as f64 * 2.5);
///     if on {
///         break;
///     }
/// }
/// assert!(on, "rising pressure should engage early");
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HysteresisGate {
    cfg: HysteresisGateConfig,
    engaged: bool,
    slope: f64,
    last: Option<f64>,
}

/// Static band plus slope-proportional tilt parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HysteresisGateConfig {
    /// Static engage threshold (signal above ⇒ turn on).
    pub engage: f64,
    /// Static release threshold (signal below ⇒ turn off); must be
    /// below `engage`.
    pub release: f64,
    /// How many threshold units one unit of per-tick slope is worth.
    pub slope_gain: f64,
    /// EWMA smoothing for the slope estimate (0 < α ≤ 1).
    pub slope_alpha: f64,
    /// Cap on the tilt in either direction, in threshold units.
    pub max_tilt: f64,
}

impl HysteresisGate {
    /// Creates a gate in the released state with no slope history.
    #[must_use]
    pub fn new(cfg: HysteresisGateConfig) -> Self {
        Self {
            cfg,
            engaged: false,
            slope: 0.0,
            last: None,
        }
    }

    /// Feeds one pressure sample; returns the gate's new state.
    ///
    /// Rising pressure (positive slope) lowers the effective engage
    /// threshold and raises the effective release threshold (engage
    /// earlier, hold on while still climbing); falling pressure does
    /// the reverse (engage later, release earlier). The tilt is
    /// clamped to `max_tilt` and the band is kept non-inverted.
    pub fn observe(&mut self, signal: f64) -> bool {
        if let Some(prev) = self.last {
            let delta = signal - prev;
            let a = self.cfg.slope_alpha.clamp(0.0, 1.0);
            self.slope += a * (delta - self.slope);
        }
        self.last = Some(signal);

        let tilt = (self.slope * self.cfg.slope_gain).clamp(-self.cfg.max_tilt, self.cfg.max_tilt);
        let (engage_at, release_at) = self.band(tilt);

        if self.engaged {
            if signal < release_at {
                self.engaged = false;
            }
        } else if signal > engage_at {
            self.engaged = true;
        }
        self.engaged
    }

    /// The effective (engage, release) thresholds for a given tilt,
    /// kept non-inverted: a rising signal engages earlier and releases
    /// later, a falling signal the reverse, but engage never drops to
    /// or below release.
    fn band(&self, tilt: f64) -> (f64, f64) {
        let mut engage_at = self.cfg.engage - tilt;
        let mut release_at = self.cfg.release - tilt;
        // Never let the band invert or collapse past the midpoint.
        let mid = 0.5 * (self.cfg.engage + self.cfg.release);
        if engage_at < mid {
            engage_at = mid;
        }
        if release_at > mid {
            release_at = mid;
        }
        (engage_at, release_at)
    }

    /// Current gate state without feeding a sample.
    #[must_use]
    pub fn engaged(&self) -> bool {
        self.engaged
    }

    /// Current smoothed slope estimate (signal units per tick).
    #[must_use]
    pub fn slope(&self) -> f64 {
        self.slope
    }

    /// Resets state (released, no history) keeping the configuration.
    pub fn reset(&mut self) {
        self.engaged = false;
        self.slope = 0.0;
        self.last = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate() -> HysteresisGate {
        HysteresisGate::new(HysteresisGateConfig {
            engage: 14.0,
            release: 6.0,
            slope_gain: 2.0,
            slope_alpha: 0.5,
            max_tilt: 3.5,
        })
    }

    #[test]
    fn static_behaviour_matches_plain_hysteresis_at_zero_slope() {
        let mut g = gate();
        // Flat signals have zero slope: plain two-threshold logic.
        for _ in 0..5 {
            assert!(!g.observe(10.0), "flat mid-band signal must stay off");
        }
        for _ in 0..3 {
            g.observe(16.0);
        }
        assert!(g.engaged(), "flat above-engage signal must turn on");
        for _ in 0..3 {
            g.observe(16.0);
        }
        assert!(g.engaged(), "flat high signal must hold");
        for _ in 0..5 {
            g.observe(3.0);
        }
        assert!(!g.engaged(), "flat below-release signal must turn off");
    }

    #[test]
    fn rising_pressure_engages_before_static_threshold() {
        let mut g = gate();
        // Climb at +3/tick; static gate would wait for >14.
        let mut engaged_at = None;
        for (i, s) in [0.0, 3.0, 6.0, 9.0, 12.0, 15.0].iter().enumerate() {
            if g.observe(*s) {
                engaged_at = Some(i);
                break;
            }
        }
        let at = engaged_at.expect("must engage during the climb");
        // Tilt of up to 3.5 lowers the threshold toward 10.5, so the
        // 12.0 sample (index 4) engages where a static gate waits for
        // the 15.0 sample (index 5).
        assert!(at <= 4, "engaged at sample {at}, expected early engage");
    }

    #[test]
    fn falling_pressure_releases_before_static_threshold() {
        let mut g = gate();
        for s in [16.0, 16.0, 16.0] {
            g.observe(s);
        }
        assert!(g.engaged());
        // Collapse at -4/tick: the release threshold tilts up toward
        // the mid-band, so 8.0 (inside the static 6..14 band, where a
        // static gate would hold) releases.
        g.observe(12.0);
        let on = g.observe(8.0);
        assert!(!on, "fast-falling signal should release inside the band");
    }

    #[test]
    fn band_never_inverts() {
        let g = gate();
        let (e, r) = g.band(1e9);
        assert!(e >= r);
        let (e, r) = g.band(-1e9);
        assert!(e >= r);
    }

    #[test]
    fn reset_clears_state() {
        let mut g = gate();
        g.observe(20.0);
        g.observe(20.0);
        assert!(g.engaged());
        g.reset();
        assert!(!g.engaged());
        assert_eq!(g.slope(), 0.0);
    }

    #[test]
    fn deterministic_replay() {
        let run = |sig: &[f64]| -> Vec<bool> {
            let mut g = gate();
            sig.iter().map(|s| g.observe(*s)).collect()
        };
        let sig: Vec<f64> = (0..50).map(|i| ((i * 37) % 23) as f64).collect();
        assert_eq!(run(&sig), run(&sig));
    }
}
