//! Self-expression: acting on self-knowledge.
//!
//! In the EPiCS framework the counterpart of self-awareness is
//! *self-expression* — behaviour determined by the agent's own models
//! rather than by a fixed design-time script. A [`Policy`] turns the
//! contents of the knowledge base into a [`Decision`]; implementations
//! range from the degenerate [`ConstantPolicy`] (the non-self-aware
//! baseline) through [`BanditPolicy`] (learned action values) to
//! [`UtilityPolicy`] (explicit goal-aware expected-utility
//! maximisation, with self-explanation built in).

use crate::explain::Explanation;
use crate::knowledge::KnowledgeBase;
use crate::models::bandit::Bandit;
use simkernel::rng::Rng;
use simkernel::Tick;

/// The outcome of a policy invocation.
#[derive(Debug, Clone)]
pub struct Decision<A> {
    /// The selected action.
    pub action: A,
    /// Human-readable label of the action (for explanations/logs).
    pub label: String,
    /// Why, if the policy can say.
    pub explanation: Option<Explanation>,
}

/// A decision-maker over action type `A`.
pub trait Policy<A> {
    /// Chooses an action from current self-knowledge.
    fn decide(&mut self, kb: &KnowledgeBase, now: Tick, rng: &mut Rng) -> Decision<A>;

    /// Reports the reward of the most recent decision (no-op by
    /// default, for policies that do not learn).
    fn feedback(&mut self, reward: f64) {
        let _ = reward;
    }

    /// Adjusts the policy's exploration intensity in `[0, 1]` (no-op
    /// by default). Used by meta-level governors.
    fn set_exploration(&mut self, rate: f64) {
        let _ = rate;
    }
}

/// Always chooses the same action: the design-time-pinned baseline the
/// paper argues against.
#[derive(Debug, Clone)]
pub struct ConstantPolicy<A: Clone> {
    action: A,
    label: String,
}

impl<A: Clone> ConstantPolicy<A> {
    /// Creates a policy that always returns `action`.
    #[must_use]
    pub fn new(action: A, label: impl Into<String>) -> Self {
        Self {
            action,
            label: label.into(),
        }
    }
}

impl<A: Clone> Policy<A> for ConstantPolicy<A> {
    fn decide(&mut self, _kb: &KnowledgeBase, now: Tick, _rng: &mut Rng) -> Decision<A> {
        Decision {
            action: self.action.clone(),
            label: self.label.clone(),
            explanation: Some(Explanation::new(now, self.label.clone())),
        }
    }
}

/// Chooses uniformly at random among the actions: the zero-knowledge
/// baseline.
#[derive(Debug, Clone)]
pub struct RandomPolicy<A: Clone> {
    actions: Vec<(A, String)>,
}

impl<A: Clone> RandomPolicy<A> {
    /// Creates a random policy over labelled actions.
    ///
    /// # Panics
    ///
    /// Panics if `actions` is empty.
    #[must_use]
    pub fn new(actions: Vec<(A, String)>) -> Self {
        assert!(!actions.is_empty(), "need at least one action");
        Self { actions }
    }
}

impl<A: Clone> Policy<A> for RandomPolicy<A> {
    fn decide(&mut self, _kb: &KnowledgeBase, now: Tick, rng: &mut Rng) -> Decision<A> {
        use rand::Rng as _;
        let i = rng.gen_range(0..self.actions.len());
        let (a, label) = &self.actions[i];
        Decision {
            action: a.clone(),
            label: label.clone(),
            explanation: Some(Explanation::new(now, label.clone()).because("random", 1.0)),
        }
    }
}

/// Learns action values with any [`Bandit`] and maps arms to actions.
pub struct BanditPolicy<A: Clone> {
    actions: Vec<(A, String)>,
    bandit: Box<dyn Bandit>,
    last_arm: Option<usize>,
}

impl<A: Clone> BanditPolicy<A> {
    /// Creates a bandit policy.
    ///
    /// # Panics
    ///
    /// Panics if `actions` is empty or its length differs from
    /// `bandit.arms()`.
    #[must_use]
    pub fn new(actions: Vec<(A, String)>, bandit: Box<dyn Bandit>) -> Self {
        assert!(!actions.is_empty(), "need at least one action");
        assert_eq!(
            actions.len(),
            bandit.arms(),
            "bandit arm count must match action count"
        );
        Self {
            actions,
            bandit,
            last_arm: None,
        }
    }

    /// The underlying bandit (for inspection).
    #[must_use]
    pub fn bandit(&self) -> &dyn Bandit {
        &*self.bandit
    }
}

impl<A: Clone> Policy<A> for BanditPolicy<A> {
    fn decide(&mut self, _kb: &KnowledgeBase, now: Tick, rng: &mut Rng) -> Decision<A> {
        let arm = self.bandit.select(rng);
        self.last_arm = Some(arm);
        let (a, label) = &self.actions[arm];
        let mut ex = Explanation::new(now, label.clone())
            .expecting(self.bandit.expected(arm))
            .because("pulls", self.bandit.pulls() as f64);
        for (i, (_, l)) in self.actions.iter().enumerate() {
            if i != arm {
                ex = ex.rejected(l.clone(), self.bandit.expected(i));
            }
        }
        Decision {
            action: a.clone(),
            label: label.clone(),
            explanation: Some(ex),
        }
    }

    fn feedback(&mut self, reward: f64) {
        if let Some(arm) = self.last_arm.take() {
            self.bandit.update(arm, reward);
        }
    }
}

impl<A: Clone> std::fmt::Debug for BanditPolicy<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BanditPolicy")
            .field("actions", &self.actions.len())
            .field("pulls", &self.bandit.pulls())
            .finish_non_exhaustive()
    }
}

/// Goal-aware expected-utility maximisation: scores every candidate
/// action against the knowledge base with a caller-supplied model and
/// picks the argmax (ε-greedy exploration optional). Produces full
/// explanations with rejected alternatives.
pub struct UtilityPolicy<A: Clone> {
    actions: Vec<(A, String)>,
    score: ScoreFn<A>,
    epsilon: f64,
}

/// Scoring function used by [`UtilityPolicy`]: expected utility of an
/// action given current self-knowledge.
pub type ScoreFn<A> = Box<dyn Fn(&A, &KnowledgeBase) -> f64>;

impl<A: Clone> UtilityPolicy<A> {
    /// Creates a utility policy with scoring function `score`.
    ///
    /// # Panics
    ///
    /// Panics if `actions` is empty.
    #[must_use]
    pub fn new(actions: Vec<(A, String)>, score: ScoreFn<A>) -> Self {
        assert!(!actions.is_empty(), "need at least one action");
        Self {
            actions,
            score,
            epsilon: 0.0,
        }
    }

    /// Enables ε-greedy exploration (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon ∉ [0, 1]`.
    #[must_use]
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0,1]");
        self.epsilon = epsilon;
        self
    }
}

impl<A: Clone> Policy<A> for UtilityPolicy<A> {
    fn decide(&mut self, kb: &KnowledgeBase, now: Tick, rng: &mut Rng) -> Decision<A> {
        use rand::Rng as _;
        let scores: Vec<f64> = self
            .actions
            .iter()
            .map(|(a, _)| (self.score)(a, kb))
            .collect();
        let chosen = if rng.gen::<f64>() < self.epsilon {
            rng.gen_range(0..self.actions.len())
        } else {
            (0..scores.len())
                .max_by(|&a, &b| {
                    scores[a]
                        .partial_cmp(&scores[b])
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("actions is non-empty")
        };
        let (a, label) = &self.actions[chosen];
        let mut ex = Explanation::new(now, label.clone()).expecting(scores[chosen]);
        for (i, (_, l)) in self.actions.iter().enumerate() {
            if i != chosen {
                ex = ex.rejected(l.clone(), scores[i]);
            }
        }
        Decision {
            action: a.clone(),
            label: label.clone(),
            explanation: Some(ex),
        }
    }

    fn set_exploration(&mut self, rate: f64) {
        self.epsilon = rate.clamp(0.0, 1.0);
    }
}

impl<A: Clone> std::fmt::Debug for UtilityPolicy<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UtilityPolicy")
            .field("actions", &self.actions.len())
            .field("epsilon", &self.epsilon)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::bandit::EpsilonGreedy;
    use crate::sensors::{Percept, Scope};

    fn rng() -> Rng {
        simkernel::SeedTree::new(10).rng("policy")
    }

    fn kb_with(key: &str, v: f64) -> KnowledgeBase {
        let mut kb = KnowledgeBase::new(8);
        kb.absorb(&Percept::new(key, v, Scope::Public, Tick(0)));
        kb
    }

    #[test]
    fn constant_policy_is_constant() {
        let mut p = ConstantPolicy::new(7usize, "seven");
        let kb = KnowledgeBase::new(8);
        let mut r = rng();
        for _ in 0..5 {
            let d = p.decide(&kb, Tick(0), &mut r);
            assert_eq!(d.action, 7);
            assert_eq!(d.label, "seven");
        }
    }

    #[test]
    fn random_policy_covers_actions() {
        let mut p = RandomPolicy::new(vec![(0usize, "a".into()), (1, "b".into())]);
        let kb = KnowledgeBase::new(8);
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50 {
            seen.insert(p.decide(&kb, Tick(0), &mut r).action);
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn bandit_policy_learns() {
        let actions = vec![(0usize, "bad".into()), (1, "good".into())];
        let mut p = BanditPolicy::new(actions, Box::new(EpsilonGreedy::new(2, 0.1, None)));
        let kb = KnowledgeBase::new(8);
        let mut r = rng();
        for _ in 0..500 {
            let d = p.decide(&kb, Tick(0), &mut r);
            p.feedback(if d.action == 1 { 1.0 } else { 0.0 });
        }
        assert_eq!(p.bandit().best_arm(), 1);
        // The explanation carries rejected alternatives.
        let d = p.decide(&kb, Tick(1), &mut r);
        let ex = d.explanation.unwrap();
        assert_eq!(ex.alternatives.len(), 1);
    }

    #[test]
    fn feedback_without_decision_is_harmless() {
        let actions = vec![(0usize, "x".into())];
        let mut p = BanditPolicy::new(actions, Box::new(EpsilonGreedy::new(1, 0.0, None)));
        p.feedback(1.0); // no prior decide
        assert_eq!(p.bandit().pulls(), 0);
    }

    #[test]
    fn utility_policy_argmaxes_knowledge() {
        let actions = vec![(0usize, "low".into()), (1, "high".into())];
        let mut p = UtilityPolicy::new(
            actions,
            Box::new(|a: &usize, kb: &KnowledgeBase| {
                let load = kb.last_or("load", 0.0);
                if *a == 1 {
                    load
                } else {
                    1.0 - load
                }
            }),
        );
        let mut r = rng();
        let d = p.decide(&kb_with("load", 0.9), Tick(0), &mut r);
        assert_eq!(d.action, 1);
        let d = p.decide(&kb_with("load", 0.1), Tick(0), &mut r);
        assert_eq!(d.action, 0);
        let ex = d.explanation.unwrap();
        assert!(ex.expected_utility.unwrap() > 0.8);
        assert_eq!(ex.alternatives.len(), 1);
    }

    #[test]
    fn utility_policy_exploration_hook() {
        let actions = vec![(0usize, "a".into()), (1, "b".into())];
        let mut p = UtilityPolicy::new(actions, Box::new(|a: &usize, _: &KnowledgeBase| *a as f64));
        p.set_exploration(1.0);
        let kb = KnowledgeBase::new(8);
        let mut r = rng();
        let mut zeros = 0;
        for _ in 0..100 {
            if p.decide(&kb, Tick(0), &mut r).action == 0 {
                zeros += 1;
            }
        }
        assert!(zeros > 20, "full exploration should pick both, got {zeros}");
    }

    #[test]
    #[should_panic(expected = "bandit arm count must match action count")]
    fn bandit_arity_mismatch_panics() {
        let _ = BanditPolicy::new(
            vec![(0usize, "a".into())],
            Box::new(EpsilonGreedy::new(3, 0.1, None)),
        );
    }

    #[test]
    #[should_panic(expected = "need at least one action")]
    fn empty_actions_panics() {
        let _ = RandomPolicy::<usize>::new(vec![]);
    }
}

/// The acting half of self-expression: applies a chosen action to the
/// environment. Keeping actuation behind a trait lets the same policy
/// drive a simulator in tests and a real effector in deployment.
pub trait Actuator<E, A> {
    /// Applies `action` to the environment.
    fn apply(&mut self, env: &mut E, action: &A);
}

/// An actuator defined by a closure.
///
/// # Example
///
/// ```
/// use selfaware::expression::{Actuator, FnActuator};
///
/// struct Plant { capacity: f64 }
/// let mut act = FnActuator::new(|p: &mut Plant, a: &f64| p.capacity = *a);
/// let mut plant = Plant { capacity: 1.0 };
/// act.apply(&mut plant, &4.0);
/// assert_eq!(plant.capacity, 4.0);
/// ```
pub struct FnActuator<E, A, F: FnMut(&mut E, &A)> {
    f: F,
    _marker: std::marker::PhantomData<fn(&mut E, &A)>,
}

impl<E, A, F: FnMut(&mut E, &A)> FnActuator<E, A, F> {
    /// Wraps a closure as an actuator.
    #[must_use]
    pub fn new(f: F) -> Self {
        Self {
            f,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<E, A, F: FnMut(&mut E, &A)> Actuator<E, A> for FnActuator<E, A, F> {
    fn apply(&mut self, env: &mut E, action: &A) {
        (self.f)(env, action);
    }
}

impl<E, A, F: FnMut(&mut E, &A)> std::fmt::Debug for FnActuator<E, A, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnActuator").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod actuator_tests {
    use super::*;

    #[test]
    fn closure_actuator_mutates_env() {
        let mut counter = 0u32;
        let mut act = FnActuator::new(|c: &mut u32, delta: &u32| *c += *delta);
        act.apply(&mut counter, &3);
        act.apply(&mut counter, &4);
        assert_eq!(counter, 7);
    }

    #[test]
    fn trait_object_usable() {
        let mut act: Box<dyn Actuator<Vec<i32>, i32>> =
            Box::new(FnActuator::new(|v: &mut Vec<i32>, x: &i32| v.push(*x)));
        let mut v = Vec::new();
        act.apply(&mut v, &1);
        act.apply(&mut v, &2);
        assert_eq!(v, vec![1, 2]);
    }
}
