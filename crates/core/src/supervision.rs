//! Meta-self-aware controller supervision: watchdogs, checkpoints and
//! an escalation ladder for the self-models themselves.
//!
//! PR 2 made the *substrates* fault-tolerant; this module guards the
//! other half of the loop — the awareness machinery. The paper
//! (Sections II, IV, VI) singles out meta-self-awareness, citing Cox's
//! metacognitive loop, and the Handbook of Engineering Self-Aware and
//! Self-Expressive Systems (Chen et al., arXiv:1409.1793) prescribes
//! the architectural pattern implemented here: a *reflective layer*
//! that monitors, repairs and, when necessary, replaces the layers
//! below it.
//!
//! [`Supervisor`] wraps any cloneable controller or self-model and
//! watches the *evidence stream* the substrate feeds it each tick:
//!
//! * **NaN/Inf guard** — a non-finite output is unambiguous and
//!   escalates immediately;
//! * **divergence** — the fast residual EWMA blowing up relative to a
//!   held-out slow baseline (the [`ResidualTracker`] machinery), with
//!   a Page–Hinkley channel on the normalised error for sharp shifts;
//! * **oscillation** — bit-exact A-B-A flip-flop of the output;
//! * **stall** — frozen output bits while the input keeps moving.
//!
//! Detection walks an **escalation ladder**: warn → roll back to the
//! last-good checkpoint → fall back to the substrate's baseline
//! controller, with exponential-backoff re-promotion probes. Every
//! transition is recorded in the [`ExplanationLog`] — self-explanation
//! of self-repair.

use crate::explain::{Explanation, ExplanationLog};
use crate::meta::ResidualTracker;
use crate::models::drift::{DriftDetector, PageHinkley};
use crate::replay::{InterventionClass, InterventionMask};
use simkernel::obs::Json;
use simkernel::Tick;
use std::sync::Arc;

/// What the watchdogs saw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Anomaly {
    /// The controller produced a NaN or infinite output.
    NonFinite,
    /// Residuals blew up relative to the model's own recent history.
    Divergence,
    /// The output is flip-flopping between two exact values.
    Oscillation,
    /// The output is frozen while the input keeps changing.
    Stall,
}

impl Anomaly {
    /// Short factor label used in explanations.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Anomaly::NonFinite => "non-finite",
            Anomaly::Divergence => "divergence",
            Anomaly::Oscillation => "oscillation",
            Anomaly::Stall => "stall",
        }
    }
}

/// Who is currently in control of the substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlSource {
    /// The supervised self-model is driving decisions.
    Model,
    /// The substrate's baseline controller has taken over.
    Baseline,
}

/// Outcome of one supervised tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Nothing suspicious this tick.
    Healthy,
    /// An anomaly was observed; the model stays in control for now.
    Warned(Anomaly),
    /// The model was restored from the last-good checkpoint.
    RolledBack(Anomaly),
    /// Control passed to the substrate's baseline controller.
    FellBack(Anomaly),
    /// A re-promotion probe found the model still unhealthy; the
    /// backoff doubled.
    ProbeFailed(Anomaly),
    /// The model earned back control after a quiet probe window.
    Repromoted,
}

/// One tick of evidence about a supervised model.
///
/// Two contracts are supported. *Forecast* evidence
/// ([`Evidence::forecast`]) is for models whose output predicts the
/// next input: the supervisor scores last tick's output against this
/// tick's realised input. *Scored* evidence ([`Evidence::scored`]) is
/// for models with no forecasting contract (routing tables, affinity
/// maps): the substrate supplies its own error signal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evidence {
    input: Option<f64>,
    output: f64,
    error: Option<f64>,
}

impl Evidence {
    /// Forecast-contract evidence: `input` is the value realised this
    /// tick, `output` the model's fresh one-step forecast. The error
    /// charged is `|previous output − input|`.
    #[must_use]
    pub fn forecast(input: f64, output: f64) -> Self {
        Self {
            input: Some(input),
            output,
            error: None,
        }
    }

    /// Scored evidence: the substrate supplies the `error` directly
    /// alongside a representative `output` scalar (watched for NaN,
    /// oscillation and stalls).
    #[must_use]
    pub fn scored(output: f64, error: f64) -> Self {
        Self {
            input: None,
            output,
            error: Some(error),
        }
    }

    /// Attaches an input signal (enables stall detection for scored
    /// evidence).
    #[must_use]
    pub fn with_input(mut self, input: f64) -> Self {
        self.input = Some(input);
        self
    }
}

/// Tuning knobs for a [`Supervisor`].
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisorConfig {
    /// Smoothing of the fast (reactive) residual tracker.
    pub fast_alpha: f64,
    /// Smoothing of the slow held-out baseline tracker (only fed on
    /// healthy ticks, so an ongoing anomaly cannot drag it along).
    pub slow_alpha: f64,
    /// Divergence fires when `fast > ratio · max(slow, floor)`.
    pub divergence_ratio: f64,
    /// Floor on the slow baseline, guarding the ratio against a
    /// near-perfect model's ~0 error.
    pub divergence_floor: f64,
    /// Consecutive over-ratio ticks before divergence is declared.
    pub patience: u32,
    /// Finite-error samples required before any statistical watchdog
    /// (everything but the NaN guard) may fire.
    pub min_samples: u64,
    /// Frozen-output ticks (under a moving input) before a stall is
    /// declared.
    pub stall_after: u32,
    /// Minimum input delta that counts as "the input moved".
    pub input_epsilon: f64,
    /// Consecutive bit-exact A-B-A alternations before oscillation is
    /// declared.
    pub oscillation_flips: u32,
    /// Checkpoint cadence in ticks (gated on a quiet streak).
    pub checkpoint_every: u64,
    /// Healthy ticks required to clear warnings, take a checkpoint, or
    /// win a re-promotion probe.
    pub quiet_ticks: u32,
    /// Warnings tolerated before the ladder escalates past warning.
    pub warn_limit: u32,
    /// Initial fallback backoff (ticks until the first probe).
    pub backoff_initial: u64,
    /// Backoff ceiling.
    pub backoff_max: u64,
    /// A second escalation within this many ticks of a rollback skips
    /// straight to baseline fallback (the rollback evidently did not
    /// cure the fault).
    pub relapse_window: u64,
    /// Page–Hinkley tolerance on the normalised error stream.
    pub ph_delta: f64,
    /// Page–Hinkley threshold on the normalised error stream.
    pub ph_lambda: f64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            fast_alpha: 0.3,
            slow_alpha: 0.02,
            divergence_ratio: 8.0,
            divergence_floor: 1e-3,
            patience: 3,
            min_samples: 24,
            stall_after: 12,
            input_epsilon: 1e-9,
            oscillation_flips: 6,
            checkpoint_every: 25,
            quiet_ticks: 10,
            warn_limit: 2,
            backoff_initial: 20,
            backoff_max: 320,
            relapse_window: 50,
            ph_delta: 0.5,
            ph_lambda: 25.0,
        }
    }
}

/// Lifetime counters of supervision activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SupervisionStats {
    /// Warnings issued.
    pub warns: u32,
    /// Checkpoint restores.
    pub rollbacks: u32,
    /// Falls to the baseline controller.
    pub fallbacks: u32,
    /// Re-promotion probes that found the model still unhealthy.
    pub probe_failures: u32,
    /// Successful returns of control to the model.
    pub repromotions: u32,
    /// Checkpoints taken.
    pub checkpoints: u32,
}

impl SupervisionStats {
    /// Structured export for run traces (see [`simkernel::obs`]).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("warns", Json::from(self.warns)),
            ("rollbacks", Json::from(self.rollbacks)),
            ("fallbacks", Json::from(self.fallbacks)),
            ("probe_failures", Json::from(self.probe_failures)),
            ("repromotions", Json::from(self.repromotions)),
            ("checkpoints", Json::from(self.checkpoints)),
        ])
    }
}

/// A reflective wrapper supervising one controller or self-model.
///
/// The supervisor *owns* the model (`C`), takes periodic checkpoints
/// of it while healthy, and decides each tick — from the evidence the
/// substrate feeds it — whether the model keeps control, is rolled
/// back, or is benched in favour of the substrate's baseline.
///
/// # Example
///
/// ```
/// use selfaware::models::holt::Holt;
/// use selfaware::models::{Forecaster, OnlineModel};
/// use selfaware::prelude::*;
/// use selfaware::supervision::{ControlSource, Evidence, Supervisor};
/// use simkernel::Tick;
///
/// let mut log = ExplanationLog::new(64);
/// let mut sup = Supervisor::new("demo", Holt::new(0.3, 0.1));
/// for t in 0..200u64 {
///     let x = t as f64;
///     sup.model_mut().observe(x);
///     let out = sup.model().forecast().unwrap_or(x);
///     sup.observe(Tick(t), Evidence::forecast(x, out), &mut log);
/// }
/// assert_eq!(sup.source(), ControlSource::Model);
/// assert!(sup.stats().checkpoints > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Supervisor<C: Clone> {
    name: String,
    cfg: SupervisorConfig,
    // Both live behind `Arc` so a checkpoint is a pointer bump, not a
    // deep copy: large controllers (Q-tables, routing tables) pay for
    // a clone only when the model is actually written *while* it
    // shares state with a checkpoint (copy-on-write via
    // `Arc::make_mut`), i.e. on the first write after a checkpoint or
    // restore — never on the periodic quiet-streak checkpoint itself.
    controller: Arc<C>,
    checkpoint: Option<Arc<C>>,
    source: ControlSource,
    fast: ResidualTracker,
    slow: ResidualTracker,
    detector: PageHinkley,
    samples: u64,
    prev_output: Option<f64>,
    prev_bits: Option<u64>,
    prev_prev_bits: Option<u64>,
    prev_input: Option<f64>,
    div_streak: u32,
    osc_streak: u32,
    stall_streak: u32,
    warns: u32,
    quiet: u32,
    last_rollback: Option<u64>,
    fallback_elapsed: u64,
    probe_quiet: u32,
    backoff: u64,
    stats: SupervisionStats,
    mask: InterventionMask,
}

impl<C: Clone> Supervisor<C> {
    /// Wraps `controller` with default tuning.
    #[must_use]
    pub fn new(name: impl Into<String>, controller: C) -> Self {
        Self::with_config(name, controller, SupervisorConfig::default())
    }

    /// Wraps `controller` with explicit tuning.
    #[must_use]
    pub fn with_config(name: impl Into<String>, controller: C, cfg: SupervisorConfig) -> Self {
        let fast = ResidualTracker::new(cfg.fast_alpha);
        let slow = ResidualTracker::new(cfg.slow_alpha);
        let detector = PageHinkley::new(cfg.ph_delta, cfg.ph_lambda);
        let backoff = cfg.backoff_initial;
        Self {
            name: name.into(),
            cfg,
            controller: Arc::new(controller),
            checkpoint: None,
            source: ControlSource::Model,
            fast,
            slow,
            detector,
            samples: 0,
            prev_output: None,
            prev_bits: None,
            prev_prev_bits: None,
            prev_input: None,
            div_streak: 0,
            osc_streak: 0,
            stall_streak: 0,
            warns: 0,
            quiet: 0,
            last_rollback: None,
            fallback_elapsed: 0,
            probe_quiet: 0,
            backoff,
            stats: SupervisionStats::default(),
            mask: InterventionMask::allow_all(),
        }
    }

    /// Sets the counterfactual-replay intervention mask (see
    /// [`crate::replay`]). Masked escalation rungs never fire; all
    /// watchdog state (residual trackers, drift detector, warn/quiet
    /// streaks, backoff timers) still advances identically, and no
    /// RNG is consumed either way, so masking cannot perturb the
    /// host simulation's seed streams.
    pub fn set_mask(&mut self, mask: InterventionMask) {
        self.mask = mask;
    }

    /// Builder-style [`Supervisor::set_mask`].
    #[must_use]
    pub fn with_mask(mut self, mask: InterventionMask) -> Self {
        self.set_mask(mask);
        self
    }

    /// The supervised model.
    #[must_use]
    pub fn model(&self) -> &C {
        self.controller.as_ref()
    }

    /// Mutable access to the supervised model (the substrate trains it
    /// through this — including while benched, so it can relearn).
    ///
    /// Copy-on-write: if the model currently shares storage with a
    /// checkpoint, the first call after that checkpoint/restore deep-
    /// clones it once; subsequent calls are free until the next
    /// checkpoint. Substrates that overwrite the whole model every
    /// tick should prefer [`Supervisor::set_model`], which never
    /// clones the old state.
    pub fn model_mut(&mut self) -> &mut C {
        Arc::make_mut(&mut self.controller)
    }

    /// Replaces the supervised model wholesale without touching the
    /// checkpoint (cheaper than `*model_mut() = c` — the shared
    /// checkpoint state is never deep-cloned just to be overwritten).
    pub fn set_model(&mut self, c: C) {
        self.controller = Arc::new(c);
    }

    /// Who currently holds control.
    #[must_use]
    pub fn source(&self) -> ControlSource {
        self.source
    }

    /// Whether the baseline controller is currently in charge.
    #[must_use]
    pub fn is_fallback(&self) -> bool {
        self.source == ControlSource::Baseline
    }

    /// Lifetime supervision counters.
    #[must_use]
    pub fn stats(&self) -> SupervisionStats {
        self.stats
    }

    /// Supervisor name (used in explanation actions).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Feeds one tick of evidence and walks the escalation ladder.
    /// Every transition is recorded in `log` under the action
    /// `"supervise:{name}:{step}"`.
    pub fn observe(&mut self, now: Tick, evidence: Evidence, log: &mut ExplanationLog) -> Verdict {
        let output = evidence.output;
        let error = evidence
            .error
            .or_else(|| match (self.prev_output, evidence.input) {
                (Some(p), Some(x)) => Some((p - x).abs()),
                _ => None,
            });

        let anomaly = self.detect(output, error, evidence.input);

        // Feed the trackers: fast always (finite errors only); slow is
        // held out — only healthy ticks may move the baseline.
        if let Some(e) = error.filter(|e| e.is_finite()) {
            self.fast.record(e, 0.0);
            if anomaly.is_none() {
                self.slow.record(e, 0.0);
            }
            self.samples += 1;
        }

        // Remember this tick for the next one's watchdogs.
        self.prev_prev_bits = self.prev_bits;
        self.prev_bits = Some(output.to_bits());
        self.prev_output = Some(output);
        if evidence.input.is_some() {
            self.prev_input = evidence.input;
        }

        match self.source {
            ControlSource::Model => self.step_active(now, output, error, anomaly, log),
            ControlSource::Baseline => self.step_fallback(now, error, anomaly, log),
        }
    }

    /// Runs the watchdogs on this tick's evidence.
    fn detect(&mut self, output: f64, error: Option<f64>, input: Option<f64>) -> Option<Anomaly> {
        if !output.is_finite() || error.is_some_and(|e| !e.is_finite()) {
            return Some(Anomaly::NonFinite);
        }
        let warmed = self.samples >= self.cfg.min_samples;

        // Divergence: fast-vs-slow residual ratio with patience, plus
        // a Page–Hinkley channel on the normalised error.
        let mut diverged = false;
        if let Some(e) = error {
            let baseline = self.slow.error().max(self.cfg.divergence_floor);
            if warmed && self.fast.error() > self.cfg.divergence_ratio * baseline {
                self.div_streak += 1;
            } else {
                self.div_streak = 0;
            }
            let ph_fired = self.detector.observe(e / baseline);
            diverged = self.div_streak >= self.cfg.patience || (warmed && ph_fired);
        }

        // Oscillation: bit-exact A-B-A alternation of the output.
        let bits = output.to_bits();
        if self.prev_prev_bits == Some(bits) && self.prev_bits != Some(bits) {
            self.osc_streak += 1;
        } else {
            self.osc_streak = 0;
        }

        // Stall: frozen output bits while the input keeps moving.
        match (self.prev_input, input, self.prev_bits) {
            (Some(pi), Some(x), Some(pb))
                if pb == bits && (x - pi).abs() > self.cfg.input_epsilon =>
            {
                self.stall_streak += 1;
            }
            _ => self.stall_streak = 0,
        }

        if warmed && diverged {
            Some(Anomaly::Divergence)
        } else if warmed && self.osc_streak >= self.cfg.oscillation_flips {
            Some(Anomaly::Oscillation)
        } else if warmed && self.stall_streak >= self.cfg.stall_after {
            Some(Anomaly::Stall)
        } else {
            None
        }
    }

    /// Ladder logic while the model holds control.
    fn step_active(
        &mut self,
        now: Tick,
        output: f64,
        error: Option<f64>,
        anomaly: Option<Anomaly>,
        log: &mut ExplanationLog,
    ) -> Verdict {
        let Some(a) = anomaly else {
            self.quiet += 1;
            if self.quiet >= self.cfg.quiet_ticks {
                self.warns = 0;
                if now.0.is_multiple_of(self.cfg.checkpoint_every) && output.is_finite() {
                    self.checkpoint = Some(Arc::clone(&self.controller));
                    self.stats.checkpoints += 1;
                }
            }
            return Verdict::Healthy;
        };

        self.quiet = 0;
        // A non-finite output is unambiguous — no warning stage.
        if a != Anomaly::NonFinite && self.warns < self.cfg.warn_limit {
            self.warns += 1;
            self.stats.warns += 1;
            log.record(
                Explanation::new(now, format!("supervise:{}:warn", self.name))
                    .because(a.label(), error.unwrap_or(output)),
            );
            return Verdict::Warned(a);
        }

        let relapse = self
            .last_rollback
            .is_some_and(|t| now.0.saturating_sub(t) <= self.cfg.relapse_window);

        if self.checkpoint.is_some()
            && !relapse
            && self.mask.allows(InterventionClass::SupervisorRollback)
        {
            // Clone-on-restore: the restored state is shared with the
            // checkpoint and only deep-copied on the next write.
            if let Some(cp) = &self.checkpoint {
                self.controller = Arc::clone(cp);
            }
            self.reset_watchdogs();
            self.warns = 0;
            self.last_rollback = Some(now.0);
            self.stats.rollbacks += 1;
            log.record(
                Explanation::new(now, format!("supervise:{}:rollback", self.name))
                    .because(a.label(), error.unwrap_or(output)),
            );
            Verdict::RolledBack(a)
        } else {
            // Masked fallback: the anomaly stays visible as a warning
            // but the model keeps control — the counterfactual world
            // where the supervisor never benches it.
            if self.mask.suppresses(InterventionClass::SupervisorFallback) {
                return Verdict::Warned(a);
            }
            // Restore the checkpoint too (when one exists) so the
            // benched model relearns from a sane state rather than
            // from the corrupted one.
            if let Some(cp) = &self.checkpoint {
                self.controller = Arc::clone(cp);
            }
            self.source = ControlSource::Baseline;
            self.reset_watchdogs();
            self.warns = 0;
            self.fallback_elapsed = 0;
            self.probe_quiet = 0;
            self.backoff = self.cfg.backoff_initial;
            self.stats.fallbacks += 1;
            log.record(
                Explanation::new(now, format!("supervise:{}:fallback", self.name))
                    .because(a.label(), error.unwrap_or(output)),
            );
            Verdict::FellBack(a)
        }
    }

    /// Ladder logic while the baseline holds control: the model runs
    /// in the shadow; after `backoff` ticks a quiet streak re-promotes
    /// it, an anomaly doubles the backoff.
    fn step_fallback(
        &mut self,
        now: Tick,
        error: Option<f64>,
        anomaly: Option<Anomaly>,
        log: &mut ExplanationLog,
    ) -> Verdict {
        self.fallback_elapsed += 1;
        match anomaly {
            Some(a) => {
                self.probe_quiet = 0;
                if self.fallback_elapsed >= self.backoff {
                    self.backoff = (self.backoff * 2).min(self.cfg.backoff_max);
                    self.fallback_elapsed = 0;
                    self.stats.probe_failures += 1;
                    log.record(
                        Explanation::new(now, format!("supervise:{}:probe-fail", self.name))
                            .because(a.label(), error.unwrap_or(f64::NAN))
                            .because("next-backoff", self.backoff as f64),
                    );
                    return Verdict::ProbeFailed(a);
                }
                Verdict::Healthy
            }
            None => {
                self.probe_quiet += 1;
                if self.fallback_elapsed >= self.backoff
                    && self.probe_quiet >= self.cfg.quiet_ticks
                    && self.mask.allows(InterventionClass::SupervisorRepromote)
                {
                    self.source = ControlSource::Model;
                    self.checkpoint = Some(Arc::clone(&self.controller));
                    self.stats.checkpoints += 1;
                    self.stats.repromotions += 1;
                    self.fallback_elapsed = 0;
                    self.quiet = 0;
                    log.record(
                        Explanation::new(now, format!("supervise:{}:repromote", self.name))
                            .because("quiet-ticks", f64::from(self.probe_quiet)),
                    );
                    return Verdict::Repromoted;
                }
                Verdict::Healthy
            }
        }
    }

    /// Clears watchdog state after the model's state jumped (rollback
    /// or fallback restore) — stale comparisons would be meaningless.
    fn reset_watchdogs(&mut self) {
        self.fast = ResidualTracker::new(self.cfg.fast_alpha);
        self.detector.reset();
        self.div_streak = 0;
        self.osc_streak = 0;
        self.stall_streak = 0;
        self.prev_output = None;
        self.prev_bits = None;
        self.prev_prev_bits = None;
        self.quiet = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::holt::Holt;
    use crate::models::{Forecaster, OnlineModel};

    fn log() -> ExplanationLog {
        ExplanationLog::new(256)
    }

    /// Drives a supervised Holt over a clean ramp for `ticks`,
    /// starting at tick `t0`.
    fn warm_up(sup: &mut Supervisor<Holt>, log: &mut ExplanationLog, t0: u64, ticks: u64) {
        for t in t0..t0 + ticks {
            let x = t as f64;
            sup.model_mut().observe(x);
            let out = sup.model().forecast().unwrap_or(x);
            let v = sup.observe(Tick(t), Evidence::forecast(x, out), log);
            assert!(
                matches!(v, Verdict::Healthy | Verdict::Repromoted),
                "clean ramp must stay healthy, got {v:?} at t={t}"
            );
        }
    }

    #[test]
    fn healthy_stream_checkpoints_and_stays_quiet() {
        let mut l = log();
        let mut sup = Supervisor::new("m", Holt::new(0.3, 0.1));
        warm_up(&mut sup, &mut l, 0, 300);
        assert_eq!(sup.source(), ControlSource::Model);
        let s = sup.stats();
        assert!(s.checkpoints > 5, "periodic checkpoints: {s:?}");
        assert_eq!(
            (s.warns, s.rollbacks, s.fallbacks, s.repromotions),
            (0, 0, 0, 0)
        );
        assert!(l.is_empty(), "no transitions logged on a healthy run");
    }

    #[test]
    fn nan_output_rolls_back_immediately() {
        let mut l = log();
        let mut sup = Supervisor::new("m", Holt::new(0.3, 0.1));
        warm_up(&mut sup, &mut l, 0, 100);
        let good_level = sup.model().level();
        sup.model_mut().set_state(f64::NAN, f64::NAN);
        let out = sup.model().forecast().unwrap_or(f64::NAN);
        let v = sup.observe(Tick(100), Evidence::forecast(100.0, out), &mut l);
        assert_eq!(v, Verdict::RolledBack(Anomaly::NonFinite));
        assert!(sup.model().level().is_finite(), "checkpoint restored");
        assert!((sup.model().level() - good_level).abs() < 30.0);
        assert_eq!(sup.stats().rollbacks, 1);
        assert!(!l.find_by_action("supervise:m:rollback").is_empty());
    }

    #[test]
    fn divergence_warns_then_rolls_back() {
        let mut l = log();
        let mut sup = Supervisor::new("m", Holt::new(0.3, 0.1));
        // 110 ticks: the last checkpoint (t=100) predates the scramble.
        warm_up(&mut sup, &mut l, 0, 110);
        // Scramble the model state: forecasts leave the rails.
        sup.model_mut().set_state(1e6, 1e5);
        let mut saw_warn = false;
        let mut saw_rollback = false;
        for t in 110..150u64 {
            let x = t as f64;
            sup.model_mut().observe(x);
            let out = sup.model().forecast().unwrap_or(x);
            match sup.observe(Tick(t), Evidence::forecast(x, out), &mut l) {
                Verdict::Warned(Anomaly::Divergence) => saw_warn = true,
                Verdict::RolledBack(Anomaly::Divergence) => {
                    saw_rollback = true;
                    break;
                }
                _ => {}
            }
        }
        assert!(saw_warn, "divergence should warn before escalation");
        assert!(saw_rollback, "sustained divergence must roll back");
        assert!(!l.find_by_action("supervise:m:warn").is_empty());
        // The rollback actually repaired the forecasts.
        assert!(sup.model().level() < 1000.0);
    }

    #[test]
    fn relapse_after_rollback_falls_back_to_baseline() {
        let mut l = log();
        let mut sup = Supervisor::new("m", Holt::new(0.3, 0.1));
        warm_up(&mut sup, &mut l, 0, 100);
        let mut fell_back = false;
        for t in 100..220u64 {
            let x = t as f64;
            // Persistent corruption: re-scramble every tick, so the
            // rollback cannot cure it.
            sup.model_mut().set_state(1e6, 1e5);
            let out = sup.model().forecast().unwrap_or(x);
            if let Verdict::FellBack(_) = sup.observe(Tick(t), Evidence::forecast(x, out), &mut l) {
                fell_back = true;
                break;
            }
        }
        assert!(fell_back, "relapsing anomaly must bench the model");
        assert!(sup.is_fallback());
        assert_eq!(sup.stats().fallbacks, 1);
        assert!(sup.stats().rollbacks >= 1, "ladder passed through rollback");
        assert!(!l.find_by_action("supervise:m:fallback").is_empty());
    }

    #[test]
    fn fallback_probes_backoff_then_repromote() {
        let mut l = log();
        let mut sup = Supervisor::new("m", Holt::new(0.3, 0.1));
        warm_up(&mut sup, &mut l, 0, 100);
        // Force a fallback via persistent corruption.
        let mut t = 100u64;
        while !sup.is_fallback() {
            sup.model_mut().set_state(1e6, 1e5);
            let out = sup.model().forecast().unwrap_or(0.0);
            sup.observe(Tick(t), Evidence::forecast(t as f64, out), &mut l);
            t += 1;
            assert!(t < 400, "fallback must happen");
        }
        // Keep the corruption active: probes must fail and back off.
        let mut probe_fails = 0;
        for _ in 0..80 {
            sup.model_mut().set_state(1e6, 1e5);
            let out = sup.model().forecast().unwrap_or(0.0);
            if let Verdict::ProbeFailed(_) =
                sup.observe(Tick(t), Evidence::forecast(t as f64, out), &mut l)
            {
                probe_fails += 1;
            }
            t += 1;
        }
        assert!(probe_fails >= 1, "probes against a broken model fail");
        assert!(!l.find_by_action("supervise:m:probe-fail").is_empty());
        // Corruption ends: the shadow model relearns and is promoted.
        let mut repromoted = false;
        for _ in 0..2000 {
            let x = t as f64;
            sup.model_mut().observe(x);
            let out = sup.model().forecast().unwrap_or(x);
            if let Verdict::Repromoted = sup.observe(Tick(t), Evidence::forecast(x, out), &mut l) {
                repromoted = true;
                break;
            }
            t += 1;
        }
        assert!(repromoted, "healthy shadow model earns control back");
        assert_eq!(sup.source(), ControlSource::Model);
        assert!(!l.find_by_action("supervise:m:repromote").is_empty());
        assert_eq!(sup.stats().repromotions, 1);
    }

    #[test]
    fn stall_detected_when_output_freezes_under_moving_input() {
        let mut l = log();
        let mut sup = Supervisor::new("m", Holt::new(0.3, 0.1));
        // Scored evidence with a flat error keeps the divergence
        // watchdog quiet: only the frozen output can be the trigger.
        for t in 0..100u64 {
            let x = t as f64;
            let v = sup.observe(Tick(t), Evidence::scored(x, 0.1).with_input(x), &mut l);
            assert_eq!(v, Verdict::Healthy);
        }
        // Freeze: output bits never change while the input moves on.
        let mut anomalies = Vec::new();
        for t in 100..160u64 {
            let x = t as f64;
            match sup.observe(Tick(t), Evidence::scored(42.0, 0.1).with_input(x), &mut l) {
                Verdict::Warned(a) | Verdict::RolledBack(a) | Verdict::FellBack(a) => {
                    anomalies.push(a);
                }
                _ => {}
            }
        }
        assert!(
            anomalies.contains(&Anomaly::Stall),
            "frozen output under moving input must stall: {anomalies:?}"
        );
    }

    #[test]
    fn oscillation_detected_on_bit_exact_flip_flop() {
        let mut l = log();
        let mut sup = Supervisor::new("m", Holt::new(0.3, 0.1));
        // Warm with scored evidence so the slow baseline sits at the
        // same error level as the flip-flop phase: only the
        // oscillation watchdog has grounds to fire.
        for t in 0..100u64 {
            let v = sup.observe(Tick(t), Evidence::scored(50.0, 0.1), &mut l);
            assert_eq!(v, Verdict::Healthy);
        }
        let mut anomalies = Vec::new();
        for t in 100..140u64 {
            let out = if t % 2 == 0 { 10.0 } else { 90.0 };
            match sup.observe(Tick(t), Evidence::scored(out, 0.1), &mut l) {
                Verdict::Warned(a) | Verdict::RolledBack(a) | Verdict::FellBack(a) => {
                    anomalies.push(a);
                }
                _ => {}
            }
        }
        assert!(
            anomalies.contains(&Anomaly::Oscillation),
            "A-B-A flip-flop must be flagged: {anomalies:?}"
        );
    }

    #[test]
    fn no_checkpoint_escalates_straight_to_fallback() {
        let mut l = log();
        let cfg = SupervisorConfig {
            min_samples: 4,
            warn_limit: 1,
            ..SupervisorConfig::default()
        };
        let mut sup = Supervisor::with_config("m", Holt::new(0.3, 0.1), cfg);
        // NaN before any checkpoint exists (checkpoints need a quiet
        // streak that never forms here).
        let mut fell = false;
        for t in 0..8u64 {
            let v = sup.observe(Tick(t), Evidence::scored(f64::NAN, f64::NAN), &mut l);
            if let Verdict::FellBack(Anomaly::NonFinite) = v {
                fell = true;
                break;
            }
        }
        assert!(fell, "no checkpoint → fallback is the only repair");
        assert_eq!(sup.stats().rollbacks, 0);
    }

    #[test]
    fn scored_evidence_divergence_fires() {
        let mut l = log();
        let mut sup = Supervisor::new("m", Holt::new(0.3, 0.1));
        for t in 0..100u64 {
            let v = sup.observe(Tick(t), Evidence::scored(5.0, 0.2), &mut l);
            assert_eq!(v, Verdict::Healthy);
        }
        let mut flagged = false;
        for t in 100..130u64 {
            if sup.observe(Tick(t), Evidence::scored(5.0, 40.0), &mut l) != Verdict::Healthy {
                flagged = true;
                break;
            }
        }
        assert!(flagged, "a 200x error blow-up must be flagged");
    }

    /// A model whose `Clone` impl counts deep copies, to prove the
    /// `Arc` checkpoints are pointer bumps and not clones.
    #[derive(Debug)]
    struct CloneCounter {
        value: f64,
        clones: std::rc::Rc<std::cell::Cell<u32>>,
    }

    impl Clone for CloneCounter {
        fn clone(&self) -> Self {
            self.clones.set(self.clones.get() + 1);
            Self {
                value: self.value,
                clones: std::rc::Rc::clone(&self.clones),
            }
        }
    }

    #[test]
    fn healthy_run_takes_checkpoints_without_cloning() {
        let clones = std::rc::Rc::new(std::cell::Cell::new(0u32));
        let mut l = log();
        let mut sup = Supervisor::new(
            "m",
            CloneCounter {
                value: 1.0,
                clones: std::rc::Rc::clone(&clones),
            },
        );
        for t in 0..300u64 {
            let x = t as f64;
            let v = sup.observe(Tick(t), Evidence::scored(x, 0.1).with_input(x), &mut l);
            assert_eq!(v, Verdict::Healthy);
        }
        assert!(sup.stats().checkpoints > 5, "checkpoints were taken");
        assert_eq!(
            clones.get(),
            0,
            "quiet-streak checkpoints must not deep-copy the controller"
        );
    }

    #[test]
    fn restore_clones_lazily_and_set_model_never_clones() {
        let clones = std::rc::Rc::new(std::cell::Cell::new(0u32));
        let mut l = log();
        let mut sup = Supervisor::new(
            "m",
            CloneCounter {
                value: 1.0,
                clones: std::rc::Rc::clone(&clones),
            },
        );
        for t in 0..100u64 {
            let x = t as f64;
            sup.observe(Tick(t), Evidence::scored(x, 0.1).with_input(x), &mut l);
        }
        // NaN output: immediate rollback to the last checkpoint.
        let v = sup.observe(Tick(100), Evidence::scored(f64::NAN, f64::NAN), &mut l);
        assert_eq!(v, Verdict::RolledBack(Anomaly::NonFinite));
        assert_eq!(clones.get(), 0, "restore itself is a pointer swap");
        // First write after the restore pays for exactly one copy.
        sup.model_mut().value = 2.0;
        assert_eq!(clones.get(), 1, "clone-on-restore happens on write");
        sup.model_mut().value = 3.0;
        assert_eq!(clones.get(), 1, "further writes are free until shared");
        // Whole-model replacement bypasses copy-on-write entirely.
        sup.set_model(CloneCounter {
            value: 9.0,
            clones: std::rc::Rc::clone(&clones),
        });
        assert_eq!(clones.get(), 1, "set_model never clones old state");
        assert!((sup.model().value - 9.0).abs() < 1e-12);
    }

    /// Checkpoint-anchored replay: cloning a supervisor mid-run and
    /// feeding the clone the same evidence stream must reproduce the
    /// suffix of the full run bit-exactly. The clone shares its
    /// checkpoint `Arc` with the original, so this also guards the
    /// copy-on-write restore path: both worlds roll back through the
    /// *same* shared checkpoint and must still diverge nowhere.
    #[test]
    fn cloned_supervisor_replays_suffix_bit_exactly() {
        let mut l = log();
        let mut sup = Supervisor::new("m", Holt::new(0.3, 0.1));
        warm_up(&mut sup, &mut l, 0, 150);
        assert!(sup.stats().checkpoints > 0, "anchor needs a checkpoint");

        // Anchor: a mid-run snapshot, Arc-shared with the original.
        let mut replica = sup.clone();
        let mut replica_log = log();

        // Drive both worlds over the identical suffix: clean ramp,
        // then a NaN injection (forcing a rollback through the shared
        // checkpoint), then recovery.
        let drive = |sup: &mut Supervisor<Holt>, log: &mut ExplanationLog| -> Vec<Verdict> {
            let mut verdicts = Vec::new();
            for t in 150..400u64 {
                let x = t as f64;
                if t == 200 {
                    sup.model_mut().set_state(f64::NAN, f64::NAN);
                }
                sup.model_mut().observe(x);
                let out = sup.model().forecast().unwrap_or(x);
                verdicts.push(sup.observe(Tick(t), Evidence::forecast(x, out), log));
            }
            verdicts
        };
        let original = drive(&mut sup, &mut l);
        let replayed = drive(&mut replica, &mut replica_log);

        assert!(
            original.contains(&Verdict::RolledBack(Anomaly::NonFinite)),
            "suffix must exercise the shared-checkpoint restore"
        );
        assert_eq!(original, replayed, "verdict streams must match");
        assert_eq!(sup.stats(), replica.stats());
        assert_eq!(sup.source(), replica.source());
        assert_eq!(
            sup.model().level().to_bits(),
            replica.model().level().to_bits(),
            "replayed model state must be bit-identical"
        );
        assert_eq!(
            l.find_by_action("supervise:m:rollback").len(),
            replica_log.find_by_action("supervise:m:rollback").len()
        );
    }

    #[test]
    fn evidence_builders() {
        let f = Evidence::forecast(1.0, 2.0);
        assert_eq!(f.input, Some(1.0));
        assert_eq!(f.output, 2.0);
        assert_eq!(f.error, None);
        let s = Evidence::scored(3.0, 0.5).with_input(7.0);
        assert_eq!(s.input, Some(7.0));
        assert_eq!(s.error, Some(0.5));
    }
}
