//! Clock-agnostic sense → decide → act loops.
//!
//! Every self-aware substrate in this workspace runs the same shape of
//! loop — read the world (*sense*), update self-models and pick an
//! action (*decide*), apply it (*act*) — but until PR 9 the loop
//! itself was always a `for t in 0..steps` over simulated [`Tick`]s.
//! [`ControlLoop`] names the three phases as a trait, and [`drive`]
//! runs one against any [`ClockSource`]: under the simulated
//! [`simkernel::Clock`] the loop is bit-identical to the hand-written
//! `for` loop it replaces; under [`simkernel::WallClock`] each
//! iteration is pinned to a real-time quantum, which is how the
//! `liveserve` governor runs the same supervision and ladder machinery
//! against live TCP traffic.
//!
//! The phases are wrapped in the standard `SAS_OBS` profiling spans
//! (`sense` / `decide` / `act`), so a live governor shows up in
//! perfbench phase tables exactly like a simulated substrate.

use simkernel::clock::{ClockSource, Tick};
use simkernel::obs;

/// One sense → decide → act step of a self-aware control loop.
///
/// Implementations hold all loop state; [`drive`] owns only time.
pub trait ControlLoop {
    /// What sensing yields (believed state, raw counters, …).
    type Sensed;

    /// Reads the world as believed at `now`.
    fn sense(&mut self, now: Tick) -> Self::Sensed;

    /// Updates self-models and decides; then applies the decision.
    ///
    /// Split from [`ControlLoop::sense`] so profiling separates
    /// observation cost from reasoning cost, mirroring the
    /// sense/decide/act phase split used by every simulator.
    fn step(&mut self, now: Tick, sensed: Self::Sensed);

    /// Called once per iteration after `step`, with the tick the loop
    /// will next wake at; return `false` to stop early.
    fn keep_running(&mut self, _next: Tick) -> bool {
        true
    }
}

/// Drives `ctl` from `clock.now()` until `until`, one tick at a time.
///
/// Returns the tick at which the loop stopped. Under a wall clock, if
/// an iteration overruns its quantum the loop does *not* try to catch
/// up by running sense/decide/act for the skipped ticks — it re-reads
/// `now` and continues from real time, because the controllers being
/// driven (supervisors, hysteresis gates) key off elapsed time, not
/// iteration count.
///
/// # Example
///
/// ```
/// use selfaware::runtime::{drive, ControlLoop};
/// use simkernel::{Clock, Tick};
///
/// struct Counter(u64);
/// impl ControlLoop for Counter {
///     type Sensed = u64;
///     fn sense(&mut self, now: Tick) -> u64 { now.value() }
///     fn step(&mut self, _now: Tick, s: u64) { self.0 += s; }
/// }
///
/// let mut c = Counter(0);
/// let end = drive(&mut Clock::new(), &mut c, Tick(5));
/// assert_eq!(end, Tick(5));
/// assert_eq!(c.0, 0 + 1 + 2 + 3 + 4);
/// ```
pub fn drive<K: ClockSource, L: ControlLoop>(clock: &mut K, ctl: &mut L, until: Tick) -> Tick {
    while clock.now() < until {
        let now = clock.now();
        let sensed = {
            let _s = obs::span("sense");
            ctl.sense(now)
        };
        {
            let _s = obs::span("decide");
            ctl.step(now, sensed);
        }
        let next = now + Tick(1);
        if !ctl.keep_running(next) {
            return clock.now();
        }
        clock.wait_until(next);
    }
    clock.now()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::{Clock, WallClock};
    use std::time::Duration;

    struct Recorder {
        seen: Vec<u64>,
        stop_after: Option<usize>,
    }

    impl ControlLoop for Recorder {
        type Sensed = u64;
        fn sense(&mut self, now: Tick) -> u64 {
            now.value()
        }
        fn step(&mut self, _now: Tick, s: u64) {
            self.seen.push(s);
        }
        fn keep_running(&mut self, _next: Tick) -> bool {
            self.stop_after.is_none_or(|n| self.seen.len() < n)
        }
    }

    #[test]
    fn sim_drive_visits_every_tick_in_order() {
        let mut r = Recorder {
            seen: Vec::new(),
            stop_after: None,
        };
        let end = drive(&mut Clock::new(), &mut r, Tick(10));
        assert_eq!(end, Tick(10));
        assert_eq!(r.seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn early_stop_honoured() {
        let mut r = Recorder {
            seen: Vec::new(),
            stop_after: Some(3),
        };
        drive(&mut Clock::new(), &mut r, Tick(100));
        assert_eq!(r.seen.len(), 3);
    }

    #[test]
    fn wall_drive_advances_real_time() {
        let mut r = Recorder {
            seen: Vec::new(),
            stop_after: None,
        };
        let mut wc = WallClock::new(Duration::from_micros(300));
        let end = drive(&mut wc, &mut r, Tick(5));
        assert!(end >= Tick(5));
        assert!(!r.seen.is_empty());
        // Monotone, no tick revisited.
        for w in r.seen.windows(2) {
            assert!(w[1] > w[0]);
        }
    }
}
