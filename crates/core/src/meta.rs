//! Meta-self-awareness: awareness of one's own awareness.
//!
//! The paper (Sections II, IV, VI) singles out meta-self-awareness —
//! "they are aware of the way they themselves are aware of these
//! things, and of the way in which they make decisions" — as the mark
//! of advanced self-aware systems, citing Cox's metacognitive loop.
//! Concretely this module lets an agent:
//!
//! * track how well each of its own models is predicting
//!   ([`ResidualTracker`]);
//! * run several candidate self-models side by side and *select among
//!   them at run time* ([`ModelPool`]) — the direct computational
//!   analogue of "thinking about (one's own) thinking";
//! * adapt its own learning parameters when its models go stale
//!   ([`ExplorationGovernor`]);
//! * deploy one of several whole *strategies* at a time and switch on
//!   sustained evidence or detected reward drift
//!   ([`StrategySwitcher`]).

use crate::models::drift::{DriftDetector, PageHinkley};
use crate::models::ewma::Ewma;
use crate::models::{Forecaster, OnlineModel};
use std::fmt;

/// Tracks the recent absolute prediction error of a model via EWMA.
///
/// # Example
///
/// ```
/// use selfaware::meta::ResidualTracker;
///
/// let mut t = ResidualTracker::new(0.2);
/// t.record(1.0, 1.1);
/// t.record(1.0, 0.9);
/// assert!(t.error() > 0.0 && t.error() < 0.2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ResidualTracker {
    err: Ewma,
}

impl ResidualTracker {
    /// Creates a tracker with error-smoothing factor `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha ∉ (0, 1]`.
    #[must_use]
    pub fn new(alpha: f64) -> Self {
        Self {
            err: Ewma::new(alpha),
        }
    }

    /// Records a `(predicted, actual)` pair.
    pub fn record(&mut self, predicted: f64, actual: f64) {
        self.err.observe((predicted - actual).abs());
    }

    /// Smoothed absolute error (0 while cold).
    #[must_use]
    pub fn error(&self) -> f64 {
        self.err.level()
    }

    /// Number of recorded pairs.
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.err.observations()
    }
}

/// A pool of candidate forecasters with run-time model selection.
///
/// Every observation trains **all** members; before training, each
/// member's standing one-step forecast is scored against the incoming
/// truth. The pool's own [`ModelPool::forecast`] delegates to the
/// member with the lowest recent error — so when the environment
/// changes regime and the best model changes with it, the pool follows
/// (after hysteresis `patience`, to avoid thrashing on noise).
///
/// This is the object of experiment F3.
///
/// # Example
///
/// ```
/// use selfaware::meta::ModelPool;
/// use selfaware::models::ewma::Ewma;
/// use selfaware::models::holt::Holt;
///
/// let mut pool = ModelPool::new(0.1, 8);
/// pool.add("ewma", Box::new(Ewma::new(0.3)));
/// pool.add("holt", Box::new(Holt::new(0.5, 0.3)));
/// for t in 0..200 {
///     pool.observe(t as f64); // a ramp: holt should win
/// }
/// assert_eq!(pool.active_name(), "holt");
/// ```
pub struct ModelPool {
    names: Vec<String>,
    models: Vec<Box<dyn Forecaster>>,
    errors: Vec<ResidualTracker>,
    alpha: f64,
    active: usize,
    patience: u32,
    streak: u32,
    switches: u32,
    n: u64,
}

impl ModelPool {
    /// Creates an empty pool. `error_alpha` smooths each member's
    /// error; the active model only changes after a challenger has
    /// been strictly better for `patience` consecutive observations.
    ///
    /// # Panics
    ///
    /// Panics if `error_alpha ∉ (0, 1]` or `patience == 0`.
    #[must_use]
    pub fn new(error_alpha: f64, patience: u32) -> Self {
        assert!(
            error_alpha > 0.0 && error_alpha <= 1.0,
            "error alpha must be in (0,1]"
        );
        assert!(patience > 0, "patience must be positive");
        Self {
            names: Vec::new(),
            models: Vec::new(),
            errors: Vec::new(),
            alpha: error_alpha,
            active: 0,
            patience,
            streak: 0,
            switches: 0,
            n: 0,
        }
    }

    /// Adds a named candidate model; returns its index.
    pub fn add(&mut self, name: impl Into<String>, model: Box<dyn Forecaster>) -> usize {
        self.names.push(name.into());
        self.models.push(model);
        self.errors.push(ResidualTracker::new(self.alpha));
        self.models.len() - 1
    }

    /// Number of candidate models.
    #[must_use]
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the pool has no candidates.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Index of the currently selected model.
    #[must_use]
    pub fn active(&self) -> usize {
        self.active
    }

    /// Name of the currently selected model.
    ///
    /// # Panics
    ///
    /// Panics if the pool is empty.
    #[must_use]
    pub fn active_name(&self) -> &str {
        &self.names[self.active]
    }

    /// Recent smoothed error of member `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn error_of(&self, idx: usize) -> f64 {
        self.errors[idx].error()
    }

    /// How many times the active model has changed.
    #[must_use]
    pub fn switches(&self) -> u32 {
        self.switches
    }

    fn best(&self) -> usize {
        let mut best = 0;
        for i in 1..self.errors.len() {
            if self.errors[i].error() < self.errors[best].error() {
                best = i;
            }
        }
        best
    }

    /// Feeds one observation: scores all members' standing forecasts,
    /// trains all members, then reconsiders the active model.
    ///
    /// # Panics
    ///
    /// Panics if the pool is empty.
    pub fn observe(&mut self, x: f64) {
        assert!(!self.models.is_empty(), "pool has no models");
        for (m, e) in self.models.iter().zip(self.errors.iter_mut()) {
            if let Some(pred) = m.forecast() {
                e.record(pred, x);
            }
        }
        for m in &mut self.models {
            m.observe(x);
        }
        self.n += 1;
        let challenger = self.best();
        if challenger != self.active {
            self.streak += 1;
            if self.streak >= self.patience {
                self.active = challenger;
                self.streak = 0;
                self.switches += 1;
            }
        } else {
            self.streak = 0;
        }
    }

    /// One-step forecast of the active model.
    #[must_use]
    pub fn forecast(&self) -> Option<f64> {
        self.models.get(self.active).and_then(|m| m.forecast())
    }

    /// `h`-step forecast of the active model.
    #[must_use]
    pub fn forecast_h(&self, h: u32) -> Option<f64> {
        self.models.get(self.active).and_then(|m| m.forecast_h(h))
    }

    /// Total observations fed to the pool.
    #[must_use]
    pub fn observations(&self) -> u64 {
        self.n
    }
}

impl fmt::Debug for ModelPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ModelPool")
            .field("names", &self.names)
            .field("active", &self.active)
            .field("switches", &self.switches)
            .finish_non_exhaustive()
    }
}

/// Adapts a learner's exploration rate from drift signals: boost
/// exploration when the world (or the learner's reward stream) shifts,
/// decay it while things are stable.
///
/// This is parameter-level meta-self-awareness: the agent changes *how
/// it learns* based on knowledge about its own learning.
///
/// # Example
///
/// ```
/// use selfaware::meta::ExplorationGovernor;
///
/// let mut g = ExplorationGovernor::new(0.05, 0.5, 0.995, 0.2, 30.0);
/// for _ in 0..500 {
///     g.observe_reward(1.0);
/// }
/// let calm = g.epsilon();
/// for _ in 0..100 {
///     g.observe_reward(-5.0); // reward collapse → drift
/// }
/// assert!(g.epsilon() > calm);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ExplorationGovernor {
    epsilon: f64,
    floor: f64,
    boost: f64,
    decay: f64,
    detector: PageHinkley,
}

impl ExplorationGovernor {
    /// Creates a governor.
    ///
    /// * `floor` — minimum exploration rate;
    /// * `boost` — epsilon jumps to this on detected drift;
    /// * `decay` — multiplicative decay per quiet observation;
    /// * `delta`, `lambda` — Page–Hinkley parameters for the reward
    ///   stream.
    ///
    /// # Panics
    ///
    /// Panics if `floor ∉ [0, boost]`, `boost ∉ (0, 1]`, or
    /// `decay ∉ (0, 1]`.
    #[must_use]
    pub fn new(floor: f64, boost: f64, decay: f64, delta: f64, lambda: f64) -> Self {
        assert!(boost > 0.0 && boost <= 1.0, "boost must be in (0,1]");
        assert!((0.0..=boost).contains(&floor), "floor must be in [0,boost]");
        assert!(decay > 0.0 && decay <= 1.0, "decay must be in (0,1]");
        Self {
            epsilon: boost,
            floor,
            boost,
            decay,
            detector: PageHinkley::new(delta, lambda),
        }
    }

    /// Feeds the latest reward; returns `true` if drift was detected
    /// (and exploration boosted).
    pub fn observe_reward(&mut self, reward: f64) -> bool {
        let drifted = self.detector.observe(reward);
        if drifted {
            self.epsilon = self.boost;
        } else {
            self.epsilon = (self.epsilon * self.decay).max(self.floor);
        }
        drifted
    }

    /// Current recommended exploration rate.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Number of drift events seen.
    #[must_use]
    pub fn drift_count(&self) -> u32 {
        self.detector.detections()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ar::ArModel;
    use crate::models::ewma::Ewma;
    use crate::models::holt::Holt;

    #[test]
    fn residual_tracker_prefers_accurate_model() {
        let mut good = ResidualTracker::new(0.2);
        let mut bad = ResidualTracker::new(0.2);
        for t in 0..100 {
            let truth = t as f64;
            good.record(truth + 0.1, truth);
            bad.record(truth + 5.0, truth);
        }
        assert!(good.error() < bad.error());
        assert_eq!(good.samples(), 100);
    }

    #[test]
    fn pool_picks_holt_on_ramp() {
        let mut pool = ModelPool::new(0.1, 5);
        pool.add("ewma", Box::new(Ewma::new(0.3)));
        pool.add("holt", Box::new(Holt::new(0.5, 0.3)));
        for t in 0..300 {
            pool.observe(2.0 * t as f64);
        }
        assert_eq!(pool.active_name(), "holt");
        assert!(pool.error_of(1) < pool.error_of(0));
    }

    #[test]
    fn pool_picks_ar_on_oscillation() {
        let mut pool = ModelPool::new(0.1, 5);
        pool.add("ewma", Box::new(Ewma::new(0.3)));
        pool.add("ar", Box::new(ArModel::new(2, 64)));
        for t in 0..400 {
            pool.observe((t as f64 * 0.6).sin());
        }
        assert_eq!(pool.active_name(), "ar");
    }

    #[test]
    fn pool_switches_on_regime_change() {
        let mut pool = ModelPool::new(0.2, 5);
        pool.add("ewma", Box::new(Ewma::new(0.5)));
        pool.add("holt", Box::new(Holt::new(0.6, 0.4)));
        // Regime 1: flat (EWMA adequate, usually wins on noise-free
        // flat both are perfect; feed noise-free ramp after).
        for _ in 0..100 {
            pool.observe(5.0);
        }
        for t in 0..200 {
            pool.observe(5.0 + 3.0 * t as f64);
        }
        assert_eq!(pool.active_name(), "holt");
        assert!(pool.observations() == 300);
    }

    #[test]
    fn pool_forecast_delegates_to_active() {
        let mut pool = ModelPool::new(0.1, 3);
        pool.add("ewma", Box::new(Ewma::new(1.0)));
        pool.observe(7.0);
        assert_eq!(pool.forecast(), Some(7.0));
        assert_eq!(pool.forecast_h(4), Some(7.0));
        assert_eq!(pool.len(), 1);
        assert!(!pool.is_empty());
    }

    #[test]
    fn pool_hysteresis_limits_thrash() {
        let mut patient = ModelPool::new(0.5, 50);
        patient.add("a", Box::new(Ewma::new(0.9)));
        patient.add("b", Box::new(Ewma::new(0.1)));
        let mut eager = ModelPool::new(0.5, 1);
        eager.add("a", Box::new(Ewma::new(0.9)));
        eager.add("b", Box::new(Ewma::new(0.1)));
        let mut rng = simkernel::SeedTree::new(9).rng("noise");
        use rand::Rng as _;
        for _ in 0..2000 {
            let x = rng.gen_range(-1.0..1.0);
            patient.observe(x);
            eager.observe(x);
        }
        assert!(patient.switches() <= eager.switches());
    }

    #[test]
    #[should_panic(expected = "pool has no models")]
    fn empty_pool_observe_panics() {
        let mut pool = ModelPool::new(0.1, 3);
        pool.observe(1.0);
    }

    #[test]
    fn governor_decays_when_calm() {
        let mut g = ExplorationGovernor::new(0.01, 0.4, 0.99, 0.2, 50.0);
        let start = g.epsilon();
        for _ in 0..200 {
            g.observe_reward(1.0);
        }
        assert!(g.epsilon() < start);
        assert!(g.epsilon() >= 0.01);
    }

    #[test]
    fn governor_boosts_on_reward_shift() {
        let mut g = ExplorationGovernor::new(0.01, 0.4, 0.99, 0.1, 10.0);
        for _ in 0..300 {
            g.observe_reward(1.0);
        }
        let calm = g.epsilon();
        let mut fired = false;
        for _ in 0..200 {
            fired |= g.observe_reward(-2.0);
        }
        assert!(fired);
        assert!(g.drift_count() >= 1);
        assert!(g.epsilon() > calm);
    }

    #[test]
    #[should_panic(expected = "floor must be in [0,boost]")]
    fn governor_bad_floor_panics() {
        let _ = ExplorationGovernor::new(0.5, 0.4, 0.99, 0.1, 10.0);
    }
}

/// Policy-level meta-self-awareness: runs one of several candidate
/// strategies at a time, tracks each strategy's realised reward, and
/// switches when the incumbent has been beaten for a sustained period.
///
/// Unlike [`ModelPool`] (whose members can all be trained on every
/// observation), strategies only generate reward evidence *while
/// deployed*, so the switcher uses round-robin probation: an untried
/// or long-unused strategy is given a trial window before judgement.
/// This is the "strategy switching" form of meta-self-awareness from
/// the common-techniques catalogue (Wang et al. \[61\]).
///
/// # Example
///
/// ```
/// use selfaware::meta::StrategySwitcher;
///
/// let mut sw = StrategySwitcher::new(vec!["a".into(), "b".into()], 0.1, 50, 25);
/// for t in 0..2000u32 {
///     let active = sw.active();
///     // Strategy 1 ("b") is better in this world.
///     let reward = if active == 1 { 0.9 } else { 0.2 };
///     sw.record_reward(reward);
///     let _ = t;
/// }
/// assert_eq!(sw.active_name(), "b");
/// ```
#[derive(Debug, Clone)]
pub struct StrategySwitcher {
    names: Vec<String>,
    reward: Vec<Ewma>,
    tried: Vec<bool>,
    active: usize,
    trial_len: u32,
    trial_left: u32,
    patience: u32,
    losing_streak: u32,
    switches: u32,
    /// Watches the live reward stream: a detected shift means the
    /// stale estimates of the benched strategies can no longer be
    /// trusted, so everyone is re-tried.
    detector: PageHinkley,
}

impl StrategySwitcher {
    /// Creates a switcher over named strategies.
    ///
    /// * `alpha` — reward-smoothing factor per strategy;
    /// * `trial_len` — reward samples granted to a freshly deployed
    ///   strategy before it can be switched away from;
    /// * `patience` — consecutive samples the incumbent must trail the
    ///   best known alternative before a switch.
    ///
    /// # Panics
    ///
    /// Panics if `strategies` is empty, `alpha ∉ (0,1]`, or either
    /// window is zero.
    #[must_use]
    pub fn new(strategies: Vec<String>, alpha: f64, trial_len: u32, patience: u32) -> Self {
        assert!(!strategies.is_empty(), "need at least one strategy");
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        assert!(trial_len > 0, "trial length must be positive");
        assert!(patience > 0, "patience must be positive");
        let n = strategies.len();
        let mut tried = vec![false; n];
        tried[0] = true;
        Self {
            names: strategies,
            reward: (0..n).map(|_| Ewma::new(alpha)).collect(),
            tried,
            active: 0,
            trial_len,
            trial_left: trial_len,
            patience,
            losing_streak: 0,
            switches: 0,
            detector: PageHinkley::new(0.05, 5.0),
        }
    }

    /// Index of the currently deployed strategy.
    #[must_use]
    pub fn active(&self) -> usize {
        self.active
    }

    /// Name of the currently deployed strategy.
    #[must_use]
    pub fn active_name(&self) -> &str {
        &self.names[self.active]
    }

    /// Number of strategies under management.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the switcher manages no strategies (never true after
    /// construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Smoothed reward estimate of strategy `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn reward_estimate(&self, idx: usize) -> f64 {
        self.reward[idx].level()
    }

    /// Lifetime switch count.
    #[must_use]
    pub fn switches(&self) -> u32 {
        self.switches
    }

    fn deploy(&mut self, idx: usize) {
        self.active = idx;
        self.tried[idx] = true;
        self.trial_left = self.trial_len;
        self.losing_streak = 0;
        self.switches += 1;
        // A new deployment legitimately changes the reward level; the
        // drift detector must judge shifts *within* a deployment.
        self.detector.reset();
    }

    /// Records the reward realised by the *active* strategy and
    /// reconsiders the deployment. Returns the (possibly new) active
    /// index.
    pub fn record_reward(&mut self, reward: f64) -> usize {
        self.reward[self.active].observe(reward);
        // Meta-level drift check: if the incumbent's reward stream
        // shifts, the benched strategies' estimates are stale — re-try
        // everyone (the paper's "aware ... of the way in which they
        // make decisions" applied to the decision-maker itself).
        if self.detector.observe(reward) {
            for (i, t) in self.tried.iter_mut().enumerate() {
                *t = i == self.active;
            }
            self.trial_left = 0;
        }
        if self.trial_left > 0 {
            self.trial_left -= 1;
            return self.active;
        }
        // Probation for never-tried strategies first: evidence before
        // judgement.
        if let Some(untried) = (0..self.names.len()).find(|&i| !self.tried[i]) {
            self.deploy(untried);
            return self.active;
        }
        // Challenge: is some tried strategy persistently better?
        let best = (0..self.names.len())
            .max_by(|&a, &b| {
                self.reward[a]
                    .level()
                    .partial_cmp(&self.reward[b].level())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty");
        if best != self.active && self.reward[best].level() > self.reward[self.active].level() {
            self.losing_streak += 1;
            if self.losing_streak >= self.patience {
                self.deploy(best);
            }
        } else {
            self.losing_streak = 0;
        }
        self.active
    }
}

#[cfg(test)]
mod switcher_tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("s{i}")).collect()
    }

    #[test]
    fn tries_every_strategy_before_settling() {
        let mut sw = StrategySwitcher::new(names(3), 0.2, 10, 5);
        let mut deployed = std::collections::HashSet::new();
        for _ in 0..100 {
            deployed.insert(sw.active());
            sw.record_reward(0.5);
        }
        assert_eq!(deployed.len(), 3, "all strategies get a trial");
    }

    #[test]
    fn settles_on_the_best_strategy() {
        let mut sw = StrategySwitcher::new(names(3), 0.1, 20, 10);
        for _ in 0..1000 {
            let r = match sw.active() {
                0 => 0.2,
                1 => 0.5,
                _ => 0.9,
            };
            sw.record_reward(r);
        }
        assert_eq!(sw.active(), 2);
        assert!(sw.reward_estimate(2) > 0.8);
    }

    #[test]
    fn switches_when_the_world_flips() {
        let mut sw = StrategySwitcher::new(names(2), 0.15, 20, 10);
        for _ in 0..400 {
            let r = if sw.active() == 0 { 0.9 } else { 0.1 };
            sw.record_reward(r);
        }
        assert_eq!(sw.active(), 0);
        let before = sw.switches();
        // Regime flip: strategy 1 becomes the good one.
        for _ in 0..800 {
            let r = if sw.active() == 1 { 0.9 } else { 0.1 };
            sw.record_reward(r);
        }
        assert_eq!(sw.active(), 1, "should follow the regime change");
        assert!(sw.switches() > before);
    }

    #[test]
    fn trial_protects_fresh_deployments() {
        let mut sw = StrategySwitcher::new(names(2), 0.5, 50, 5);
        // During the first trial window the incumbent cannot change.
        for _ in 0..49 {
            sw.record_reward(0.0);
            assert_eq!(sw.active(), 0);
        }
        assert_eq!(sw.len(), 2);
        assert!(!sw.is_empty());
    }

    #[test]
    #[should_panic(expected = "need at least one strategy")]
    fn empty_switcher_panics() {
        let _ = StrategySwitcher::new(vec![], 0.1, 10, 10);
    }
}
