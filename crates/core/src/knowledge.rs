//! The knowledge base: an agent's accumulated self-knowledge.
//!
//! Kounev's self-aware systems "build models of the system's
//! architecture and its interactions with its environment ... used to
//! enable run-time reasoning and adaptation" (paper Section III). The
//! [`KnowledgeBase`] is the passive half of that: per-signal histories
//! with cheap streaming summaries, from which the active half (the
//! models in [`crate::models`]) learns.
//!
//! History depth is bounded per signal; an agent's memory footprint is
//! therefore O(signals × window), independent of run length — a
//! prerequisite for the resource-constrained deployments the paper
//! highlights (Section V, fog/mist computing).

use crate::sensors::{Percept, Scope};
use simkernel::{OnlineStats, Tick};
use std::collections::{BTreeMap, VecDeque};

/// Bounded history plus running summary of one signal.
#[derive(Debug, Clone)]
pub struct SignalHistory {
    scope: Scope,
    window: VecDeque<(Tick, f64)>,
    capacity: usize,
    stats: OnlineStats,
    last: Option<(Tick, f64)>,
}

impl SignalHistory {
    fn new(scope: Scope, capacity: usize) -> Self {
        Self {
            scope,
            window: VecDeque::with_capacity(capacity),
            capacity,
            stats: OnlineStats::new(),
            last: None,
        }
    }

    fn record(&mut self, at: Tick, value: f64) {
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back((at, value));
        self.stats.push(value);
        self.last = Some((at, value));
    }

    /// Most recent value, if any.
    #[must_use]
    pub fn last(&self) -> Option<f64> {
        self.last.map(|(_, v)| v)
    }

    /// Time of the most recent observation, if any.
    #[must_use]
    pub fn last_at(&self) -> Option<Tick> {
        self.last.map(|(t, _)| t)
    }

    /// The signal's scope (public/private self-knowledge).
    #[must_use]
    pub fn scope(&self) -> Scope {
        self.scope
    }

    /// All retained `(tick, value)` samples, oldest first.
    pub fn window(&self) -> impl Iterator<Item = (Tick, f64)> + '_ {
        self.window.iter().copied()
    }

    /// Retained values only, oldest first.
    #[must_use]
    pub fn values(&self) -> Vec<f64> {
        self.window.iter().map(|&(_, v)| v).collect()
    }

    /// Number of retained samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Whether no samples are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Lifetime streaming statistics (not limited to the window).
    #[must_use]
    pub fn stats(&self) -> &OnlineStats {
        &self.stats
    }

    /// Mean of the retained window only.
    #[must_use]
    pub fn window_mean(&self) -> f64 {
        if self.window.is_empty() {
            return 0.0;
        }
        self.window.iter().map(|&(_, v)| v).sum::<f64>() / self.window.len() as f64
    }
}

/// An agent's store of self-knowledge, keyed by signal name.
///
/// # Example
///
/// ```
/// use selfaware::knowledge::KnowledgeBase;
/// use selfaware::sensors::{Percept, Scope};
/// use simkernel::Tick;
///
/// let mut kb = KnowledgeBase::new(64);
/// for t in 0..10u64 {
///     kb.absorb(&Percept::new("load", t as f64, Scope::Public, Tick(t)));
/// }
/// assert_eq!(kb.last("load"), Some(9.0));
/// assert_eq!(kb.history("load").unwrap().len(), 10);
/// assert!(kb.last("unknown").is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct KnowledgeBase {
    signals: BTreeMap<String, SignalHistory>,
    default_capacity: usize,
    absorbed: u64,
}

impl KnowledgeBase {
    /// Creates a knowledge base whose signals retain up to
    /// `default_capacity` recent samples each.
    ///
    /// # Panics
    ///
    /// Panics if `default_capacity` is zero.
    #[must_use]
    pub fn new(default_capacity: usize) -> Self {
        assert!(default_capacity > 0, "capacity must be positive");
        Self {
            signals: BTreeMap::new(),
            default_capacity,
            absorbed: 0,
        }
    }

    /// Ingests one percept.
    pub fn absorb(&mut self, percept: &Percept) {
        self.absorbed += 1;
        self.signals
            .entry(percept.key.clone())
            .or_insert_with(|| SignalHistory::new(percept.scope, self.default_capacity))
            .record(percept.at, percept.value);
    }

    /// Ingests many percepts.
    pub fn absorb_all<'a, I: IntoIterator<Item = &'a Percept>>(&mut self, percepts: I) {
        for p in percepts {
            self.absorb(p);
        }
    }

    /// Most recent value of `key`, if the signal has been observed.
    #[must_use]
    pub fn last(&self, key: &str) -> Option<f64> {
        self.signals.get(key).and_then(SignalHistory::last)
    }

    /// Most recent value of `key`, or `default` if never observed.
    #[must_use]
    pub fn last_or(&self, key: &str, default: f64) -> f64 {
        self.last(key).unwrap_or(default)
    }

    /// Full history record for `key`, if the signal exists.
    #[must_use]
    pub fn history(&self, key: &str) -> Option<&SignalHistory> {
        self.signals.get(key)
    }

    /// Signal keys, in lexicographic order.
    #[must_use]
    pub fn keys(&self) -> Vec<&str> {
        self.signals.keys().map(String::as_str).collect()
    }

    /// Number of distinct signals observed.
    #[must_use]
    pub fn signal_count(&self) -> usize {
        self.signals.len()
    }

    /// Total percepts absorbed over the agent's lifetime.
    #[must_use]
    pub fn absorbed_count(&self) -> u64 {
        self.absorbed
    }

    /// How stale signal `key` is at time `now` (ticks since last
    /// observation); `None` if never observed.
    #[must_use]
    pub fn staleness(&self, key: &str, now: Tick) -> Option<u64> {
        self.signals
            .get(key)
            .and_then(SignalHistory::last_at)
            .map(|t| now.value().saturating_sub(t.value()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn percept(key: &str, v: f64, t: u64) -> Percept {
        Percept::new(key, v, Scope::Public, Tick(t))
    }

    #[test]
    fn absorb_and_query() {
        let mut kb = KnowledgeBase::new(8);
        kb.absorb(&percept("a", 1.0, 0));
        kb.absorb(&percept("a", 2.0, 1));
        kb.absorb(&percept("b", 5.0, 1));
        assert_eq!(kb.last("a"), Some(2.0));
        assert_eq!(kb.last("b"), Some(5.0));
        assert_eq!(kb.last_or("c", -1.0), -1.0);
        assert_eq!(kb.signal_count(), 2);
        assert_eq!(kb.absorbed_count(), 3);
        assert_eq!(kb.keys(), vec!["a", "b"]);
    }

    #[test]
    fn window_is_bounded() {
        let mut kb = KnowledgeBase::new(4);
        for t in 0..10 {
            kb.absorb(&percept("s", t as f64, t));
        }
        let h = kb.history("s").unwrap();
        assert_eq!(h.len(), 4);
        assert_eq!(h.values(), vec![6.0, 7.0, 8.0, 9.0]);
        // lifetime stats still cover all 10 samples
        assert_eq!(h.stats().count(), 10);
        assert!((h.window_mean() - 7.5).abs() < 1e-12);
    }

    #[test]
    fn staleness_tracks_time() {
        let mut kb = KnowledgeBase::new(4);
        kb.absorb(&percept("s", 1.0, 5));
        assert_eq!(kb.staleness("s", Tick(9)), Some(4));
        assert_eq!(kb.staleness("s", Tick(5)), Some(0));
        assert_eq!(kb.staleness("other", Tick(9)), None);
    }

    #[test]
    fn scope_is_preserved() {
        let mut kb = KnowledgeBase::new(4);
        kb.absorb(&Percept::new("priv", 1.0, Scope::Private, Tick(0)));
        assert_eq!(kb.history("priv").unwrap().scope(), Scope::Private);
    }

    #[test]
    fn absorb_all_bulk() {
        let mut kb = KnowledgeBase::new(4);
        let ps: Vec<Percept> = (0..3).map(|t| percept("s", t as f64, t)).collect();
        kb.absorb_all(&ps);
        assert_eq!(kb.absorbed_count(), 3);
        assert_eq!(kb.history("s").unwrap().last_at(), Some(Tick(2)));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = KnowledgeBase::new(0);
    }

    #[test]
    fn empty_history_queries() {
        let kb = KnowledgeBase::new(4);
        assert!(kb.history("x").is_none());
        assert!(kb.last("x").is_none());
        assert_eq!(kb.signal_count(), 0);
    }
}
