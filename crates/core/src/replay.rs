//! Deterministic counterfactual replay: intervention masks and the
//! re-execution driver that turns explanation-log entries into
//! *measured* deltas.
//!
//! The paper (and the self-explainability literature it anchors)
//! argues that *why*-answers require reflexive re-examination, not
//! just event logs. This repo's replication contract makes those
//! answers exact: every run is a pure function of its
//! [`simkernel::rng::SeedTree`], bit-identical sequentially and in
//! parallel. An [`InterventionMask`] force-disables exactly one class
//! of self-awareness intervention (sensor quarantine, supervisor
//! rollback, comms retry, ladder shed, …) **without perturbing any
//! RNG draw** — none of the masked decision paths consume randomness,
//! the same discipline that keeps `ChannelPlan`'s stateless hashing
//! seq-vs-par clean — so re-running a completed replicate under the
//! same seeds with one mask bit flipped isolates that intervention's
//! causal contribution to the headline metric. [`CounterfactualRun`]
//! drives the re-executions and attaches each measured delta to the
//! originating [`ExplanationLog`] entry ("rolling back at tick 812
//! avoided 47.9 regret").
//!
//! Masking invariants (enforced by the proptest suite in `sas-bench`):
//!
//! * the all-bits-off mask ([`InterventionMask::allow_all`])
//!   reproduces the original run bit-exactly;
//! * any masked run is itself parity-clean (bit-identical seq-vs-par),
//!   because masking only gates deterministic state transitions.

use crate::explain::{Explanation, ExplanationLog};
use crate::goals::Direction;
use serde::{Deserialize, Serialize};
use simkernel::obs::Json;

/// One suppressible class of self-awareness intervention.
///
/// Each variant names a decision path where the system *acts on* its
/// self-knowledge; masking the class leaves the knowledge in place
/// (monitors still learn, supervisors still score, retry timers still
/// advance) but vetoes the action — the cheapest faithful model of
/// "what if the system had not intervened".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InterventionClass {
    /// Sensor-health quarantine and model/consensus substitution
    /// ([`crate::health::SensorHealth`]): masked readings pass through
    /// raw (hold-last on dropout), exactly like the naive ablation.
    SensorQuarantine,
    /// Supervisor checkpoint rollback
    /// ([`crate::supervision::Supervisor`]): masked anomalies that
    /// would restore a checkpoint escalate straight to fallback.
    SupervisorRollback,
    /// Supervisor fallback onto the baseline controller: masked
    /// escalations keep warning instead of benching the model.
    SupervisorFallback,
    /// Supervisor re-promotion of a benched model after quiet probes:
    /// masked supervisors stay on the baseline forever.
    SupervisorRepromote,
    /// Reliable-comms retransmission
    /// ([`crate::comms::CommsNetwork`]): masked retries still expire
    /// pendings on the same schedule but never relaunch the wire.
    CommsRetry,
    /// Periodic command re-issue (command-plane belief refresh:
    /// zoned-plane re-sends, throttle refresh): masked planes send
    /// only on change.
    CommsReissue,
    /// Degradation-ladder quality shedding (compose).
    ComposeShed,
    /// Degradation-ladder detection re-homing around a dead zone
    /// (compose).
    ComposeRehome,
    /// Degradation-ladder admission throttling (compose).
    ComposeThrottle,
}

impl InterventionClass {
    /// Every class, in bit order.
    pub const ALL: [InterventionClass; 9] = [
        InterventionClass::SensorQuarantine,
        InterventionClass::SupervisorRollback,
        InterventionClass::SupervisorFallback,
        InterventionClass::SupervisorRepromote,
        InterventionClass::CommsRetry,
        InterventionClass::CommsReissue,
        InterventionClass::ComposeShed,
        InterventionClass::ComposeRehome,
        InterventionClass::ComposeThrottle,
    ];

    /// The class's bit position in an [`InterventionMask`].
    #[must_use]
    pub fn bit(self) -> u16 {
        1 << (Self::ALL
            .iter()
            .position(|&c| c == self)
            .unwrap_or_default() as u16)
    }

    /// Stable table/trace label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            InterventionClass::SensorQuarantine => "sensor-quarantine",
            InterventionClass::SupervisorRollback => "supervisor-rollback",
            InterventionClass::SupervisorFallback => "supervisor-fallback",
            InterventionClass::SupervisorRepromote => "supervisor-repromote",
            InterventionClass::CommsRetry => "comms-retry",
            InterventionClass::CommsReissue => "comms-reissue",
            InterventionClass::ComposeShed => "compose-shed",
            InterventionClass::ComposeRehome => "compose-rehome",
            InterventionClass::ComposeThrottle => "compose-throttle",
        }
    }

    /// Action-label substrings that anchor this class's explanation
    /// entries (matched with
    /// [`ExplanationLog::find_by_action`]): the logged actions a
    /// counterfactual delta is attributed to.
    #[must_use]
    pub fn anchor_patterns(self) -> &'static [&'static str] {
        match self {
            InterventionClass::SensorQuarantine => &["quarantine:"],
            InterventionClass::SupervisorRollback => &[":rollback"],
            InterventionClass::SupervisorFallback => &[":fallback"],
            InterventionClass::SupervisorRepromote => &[":repromote"],
            InterventionClass::CommsRetry => &["comms:retry"],
            InterventionClass::CommsReissue => &["comms:reissue"],
            InterventionClass::ComposeShed => &["ladder:shed"],
            InterventionClass::ComposeRehome => &["ladder:rehome"],
            InterventionClass::ComposeThrottle => &["ladder:throttle"],
        }
    }
}

/// A bitset of *suppressed* intervention classes.
///
/// The default ([`InterventionMask::allow_all`]) suppresses nothing —
/// the factual run. [`InterventionMask::suppressing`] flips exactly
/// one bit, the single-intervention counterfactual the F10 driver
/// measures. Plumbed by value (it is two bytes) through every
/// intervention site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct InterventionMask(u16);

impl InterventionMask {
    /// The factual mask: every intervention class allowed.
    #[must_use]
    pub fn allow_all() -> Self {
        Self(0)
    }

    /// The single-flip counterfactual mask: exactly `class` suppressed.
    #[must_use]
    pub fn suppressing(class: InterventionClass) -> Self {
        Self(class.bit())
    }

    /// Returns the mask with `class` additionally suppressed.
    #[must_use]
    pub fn and_suppressing(self, class: InterventionClass) -> Self {
        Self(self.0 | class.bit())
    }

    /// Whether `class` is suppressed (the intervention must not fire).
    #[must_use]
    pub fn suppresses(self, class: InterventionClass) -> bool {
        self.0 & class.bit() != 0
    }

    /// Whether `class` is allowed (the factual behaviour).
    #[must_use]
    pub fn allows(self, class: InterventionClass) -> bool {
        !self.suppresses(class)
    }

    /// Whether nothing is suppressed (the factual mask).
    #[must_use]
    pub fn is_factual(self) -> bool {
        self.0 == 0
    }

    /// The suppressed classes, in bit order.
    #[must_use]
    pub fn suppressed(self) -> Vec<InterventionClass> {
        InterventionClass::ALL
            .into_iter()
            .filter(|&c| self.suppresses(c))
            .collect()
    }

    /// Stable label: `factual`, or `-`-joined suppressed-class labels.
    #[must_use]
    pub fn label(self) -> String {
        if self.is_factual() {
            return "factual".into();
        }
        self.suppressed()
            .iter()
            .map(|c| c.label())
            .collect::<Vec<_>>()
            .join("+")
    }

    /// Structured export: the suppressed-class labels.
    #[must_use]
    pub fn to_json(self) -> Json {
        Json::Arr(
            self.suppressed()
                .iter()
                .map(|c| Json::str(c.label()))
                .collect(),
        )
    }
}

/// What one (masked) re-execution reports back to the driver: the
/// headline metric plus the run's explanation log, from which the
/// driver extracts anchors and truncation evidence.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// The scenario's headline metric value.
    pub metric: f64,
    /// The run's explanation log (by value — the run is over).
    pub log: ExplanationLog,
}

/// The measured effect of suppressing one intervention class on one
/// completed replicate.
#[derive(Debug, Clone)]
pub struct CounterfactualDelta {
    /// The suppressed class.
    pub class: InterventionClass,
    /// Headline metric of the factual run.
    pub factual: f64,
    /// Headline metric of the masked re-execution.
    pub counterfactual: f64,
    /// Direction-signed benefit of the intervention: positive means
    /// the factual run (intervention active) beat the counterfactual.
    pub benefit: f64,
    /// Factual-run explanation entries attributed to this class.
    pub events: u64,
    /// Tick of the first anchoring explanation entry, if any.
    pub anchor_tick: Option<u64>,
    /// Action label of the first anchoring entry, if any.
    pub anchor_action: Option<String>,
    /// Entries the factual run's bounded log evicted: when nonzero the
    /// event count (and the anchor) may understate the truth.
    pub log_dropped: u64,
}

impl CounterfactualDelta {
    /// Whether fidelity scoring ran on a truncated log.
    #[must_use]
    pub fn truncated(&self) -> bool {
        self.log_dropped > 0
    }

    /// One-line operator rendering: "`supervisor-rollback` at tick 812
    /// avoided 47.9 utility regret (3 events)".
    #[must_use]
    pub fn headline(&self, metric: &str) -> String {
        let at = self
            .anchor_tick
            .map_or_else(|| "(never fired)".into(), |t| format!("at tick {t}"));
        let verb = if self.benefit >= 0.0 {
            "avoided"
        } else {
            "cost"
        };
        format!(
            "`{}` {} {} {:.3} {} regret ({} events)",
            self.class.label(),
            at,
            verb,
            self.benefit.abs(),
            metric,
            self.events
        )
    }

    /// Structured export matching the `counterfactual` run-trace
    /// record (see `sas-bench`'s `obs_validate`).
    #[must_use]
    pub fn to_json(&self, metric: &str) -> Json {
        Json::obj([
            ("class", Json::str(self.class.label())),
            ("metric", Json::str(metric)),
            ("factual", Json::from(self.factual)),
            ("counterfactual", Json::from(self.counterfactual)),
            ("benefit", Json::from(self.benefit)),
            ("events", Json::from(self.events)),
            (
                "anchor_tick",
                self.anchor_tick.map_or(Json::Null, Json::from),
            ),
            (
                "anchor_action",
                self.anchor_action.clone().map_or(Json::Null, Json::str),
            ),
            ("log_dropped", Json::from(self.log_dropped)),
            ("truncated", Json::from(self.truncated())),
        ])
    }
}

/// The full counterfactual report for one replicate: the factual
/// outcome plus one delta per probed class.
#[derive(Debug, Clone)]
pub struct CounterfactualReport {
    /// Headline metric name.
    pub metric: String,
    /// Headline metric of the factual run.
    pub factual: f64,
    /// Entries the factual log evicted (truncation flag for the whole
    /// replay window).
    pub log_dropped: u64,
    /// Per-class measured deltas, in probe order.
    pub deltas: Vec<CounterfactualDelta>,
}

impl CounterfactualReport {
    /// Whether any probed window ran on a truncated explanation log.
    #[must_use]
    pub fn truncated(&self) -> bool {
        self.log_dropped > 0
    }

    /// The delta for `class`, if probed.
    #[must_use]
    pub fn delta(&self, class: InterventionClass) -> Option<&CounterfactualDelta> {
        self.deltas.iter().find(|d| d.class == class)
    }
}

/// Re-executes a completed replicate under single-flip intervention
/// masks and scores each intervention class's measured benefit on the
/// scenario's headline metric.
///
/// The driver owns no simulation: callers hand it a closure that runs
/// the scenario under a given mask (factual == `allow_all`) from the
/// same seeds every time. Because masked paths consume identical
/// seed-stream material, the factual/counterfactual pair is a
/// common-random-number pair and the delta is exact, not statistical.
///
/// # Example
///
/// ```
/// use selfaware::replay::{CounterfactualRun, InterventionClass, InterventionMask, ReplayOutcome};
/// use selfaware::explain::{Explanation, ExplanationLog};
/// use selfaware::goals::Direction;
/// use simkernel::Tick;
///
/// // A toy "system" whose only intervention is a comms retry that
/// // recovers 2.0 of utility when allowed.
/// let run = |mask: InterventionMask| {
///     let mut log = ExplanationLog::new(8);
///     let retried = mask.allows(InterventionClass::CommsRetry);
///     if retried {
///         log.record(Explanation::new(Tick(7), "comms:retry:0->1"));
///     }
///     ReplayOutcome { metric: if retried { 10.0 } else { 8.0 }, log }
/// };
/// let report = CounterfactualRun::new("utility", Direction::Maximize, run)
///     .probe(&[InterventionClass::CommsRetry]);
/// let d = report.delta(InterventionClass::CommsRetry).unwrap();
/// assert_eq!(d.benefit, 2.0);
/// assert_eq!(d.anchor_tick, Some(7));
/// ```
pub struct CounterfactualRun<'a, F> {
    metric: &'a str,
    direction: Direction,
    run: F,
}

impl<'a, F> CounterfactualRun<'a, F>
where
    F: FnMut(InterventionMask) -> ReplayOutcome,
{
    /// Configures a driver for a scenario whose headline metric is
    /// `metric`, better in `direction`, re-executed by `run`.
    pub fn new(metric: &'a str, direction: Direction, run: F) -> Self {
        Self {
            metric,
            direction,
            run,
        }
    }

    /// Runs the factual replicate once, then one masked re-execution
    /// per class in `classes`, and returns the measured report.
    pub fn probe(mut self, classes: &[InterventionClass]) -> CounterfactualReport {
        let factual = (self.run)(InterventionMask::allow_all());
        let deltas = classes
            .iter()
            .map(|&class| {
                let masked = (self.run)(InterventionMask::suppressing(class));
                let benefit = match self.direction {
                    Direction::Maximize => factual.metric - masked.metric,
                    Direction::Minimize => masked.metric - factual.metric,
                };
                let anchors = anchors_of(&factual.log, class);
                CounterfactualDelta {
                    class,
                    factual: factual.metric,
                    counterfactual: masked.metric,
                    benefit,
                    events: anchors.len() as u64,
                    anchor_tick: anchors.first().map(|e| e.at.value()),
                    anchor_action: anchors.first().map(|e| e.action.clone()),
                    log_dropped: factual.log.dropped_count(),
                }
            })
            .collect();
        CounterfactualReport {
            metric: self.metric.to_string(),
            factual: factual.metric,
            log_dropped: factual.log.dropped_count(),
            deltas,
        }
    }
}

/// The factual log's entries attributed to `class`, oldest first.
fn anchors_of(log: &ExplanationLog, class: InterventionClass) -> Vec<&Explanation> {
    let mut out: Vec<&Explanation> = class
        .anchor_patterns()
        .iter()
        .flat_map(|p| log.find_by_action(p))
        .collect();
    out.sort_by_key(|e| e.at);
    out.dedup_by(|a, b| std::ptr::eq(*a, *b));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::Tick;

    #[test]
    fn bits_are_distinct_and_stable() {
        let mut seen = 0u16;
        for c in InterventionClass::ALL {
            assert_eq!(seen & c.bit(), 0, "bit collision for {c:?}");
            seen |= c.bit();
        }
        assert_eq!(seen.count_ones() as usize, InterventionClass::ALL.len());
        assert_eq!(InterventionClass::SensorQuarantine.bit(), 1);
        assert_eq!(InterventionClass::ComposeThrottle.bit(), 1 << 8);
    }

    #[test]
    fn default_mask_is_factual() {
        let m = InterventionMask::default();
        assert!(m.is_factual());
        assert_eq!(m, InterventionMask::allow_all());
        for c in InterventionClass::ALL {
            assert!(m.allows(c));
            assert!(!m.suppresses(c));
        }
        assert_eq!(m.label(), "factual");
        assert!(m.suppressed().is_empty());
    }

    #[test]
    fn single_flip_suppresses_exactly_one_class() {
        for c in InterventionClass::ALL {
            let m = InterventionMask::suppressing(c);
            assert!(!m.is_factual());
            assert!(m.suppresses(c));
            for other in InterventionClass::ALL {
                if other != c {
                    assert!(m.allows(other), "{c:?} mask leaked onto {other:?}");
                }
            }
            assert_eq!(m.suppressed(), vec![c]);
            assert_eq!(m.label(), c.label());
        }
    }

    #[test]
    fn masks_compose() {
        let m = InterventionMask::allow_all()
            .and_suppressing(InterventionClass::ComposeShed)
            .and_suppressing(InterventionClass::CommsRetry);
        assert!(m.suppresses(InterventionClass::ComposeShed));
        assert!(m.suppresses(InterventionClass::CommsRetry));
        assert!(m.allows(InterventionClass::SensorQuarantine));
        assert_eq!(m.label(), "comms-retry+compose-shed");
        let arr = m.to_json();
        assert_eq!(arr.as_arr().map(<[Json]>::len), Some(2));
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<&str> = InterventionClass::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), InterventionClass::ALL.len());
    }

    fn toy_outcome(mask: InterventionMask) -> ReplayOutcome {
        // Two interventions with separable effects: rollback is worth
        // +3 utility, retry is worth +2; the log anchors both.
        let mut log = ExplanationLog::new(4);
        let mut metric = 5.0;
        if mask.allows(InterventionClass::SupervisorRollback) {
            metric += 3.0;
            log.record(Explanation::new(Tick(812), "supervise:demo:rollback"));
        }
        if mask.allows(InterventionClass::CommsRetry) {
            metric += 2.0;
            log.record(Explanation::new(Tick(40), "comms:retry:1->2"));
            log.record(Explanation::new(Tick(41), "comms:retry:1->2"));
        }
        ReplayOutcome { metric, log }
    }

    #[test]
    fn driver_measures_separable_benefits_exactly() {
        let report = CounterfactualRun::new("utility", Direction::Maximize, toy_outcome).probe(&[
            InterventionClass::SupervisorRollback,
            InterventionClass::CommsRetry,
            InterventionClass::ComposeShed,
        ]);
        assert_eq!(report.factual, 10.0);
        assert!(!report.truncated());
        let rb = report
            .delta(InterventionClass::SupervisorRollback)
            .expect("probed");
        assert_eq!(rb.benefit, 3.0);
        assert_eq!(rb.events, 1);
        assert_eq!(rb.anchor_tick, Some(812));
        assert_eq!(rb.anchor_action.as_deref(), Some("supervise:demo:rollback"));
        let rt = report.delta(InterventionClass::CommsRetry).expect("probed");
        assert_eq!(rt.benefit, 2.0);
        assert_eq!(rt.events, 2);
        assert_eq!(rt.anchor_tick, Some(40));
        // A class that never fired: zero delta, zero events, no anchor.
        let shed = report
            .delta(InterventionClass::ComposeShed)
            .expect("probed");
        assert_eq!(shed.benefit, 0.0);
        assert_eq!(shed.events, 0);
        assert!(shed.anchor_tick.is_none());
    }

    #[test]
    fn minimize_direction_flips_the_sign() {
        // For a minimized metric (regret, error), an intervention that
        // *lowers* it has positive benefit.
        let run = |mask: InterventionMask| ReplayOutcome {
            metric: if mask.allows(InterventionClass::SensorQuarantine) {
                1.0
            } else {
                4.0
            },
            log: ExplanationLog::new(2),
        };
        let report = CounterfactualRun::new("tracking_error", Direction::Minimize, run)
            .probe(&[InterventionClass::SensorQuarantine]);
        assert_eq!(
            report
                .delta(InterventionClass::SensorQuarantine)
                .expect("probed")
                .benefit,
            3.0
        );
    }

    #[test]
    fn truncated_logs_are_flagged() {
        let run = |mask: InterventionMask| {
            let mut log = ExplanationLog::new(1);
            if mask.allows(InterventionClass::CommsRetry) {
                log.record(Explanation::new(Tick(1), "comms:retry:0->1"));
                log.record(Explanation::new(Tick(2), "comms:retry:0->1"));
            }
            ReplayOutcome { metric: 1.0, log }
        };
        let report = CounterfactualRun::new("utility", Direction::Maximize, run)
            .probe(&[InterventionClass::CommsRetry]);
        assert!(report.truncated());
        let d = report.delta(InterventionClass::CommsRetry).expect("probed");
        assert!(d.truncated());
        assert_eq!(d.log_dropped, 1);
        // Only the retained entry is countable — the flag says so.
        assert_eq!(d.events, 1);
    }

    #[test]
    fn headline_reads_like_an_explanation() {
        let report = CounterfactualRun::new("utility", Direction::Maximize, toy_outcome)
            .probe(&[InterventionClass::SupervisorRollback]);
        let d = report
            .delta(InterventionClass::SupervisorRollback)
            .expect("probed");
        let line = d.headline(&report.metric);
        assert!(line.contains("supervisor-rollback"), "{line}");
        assert!(line.contains("at tick 812"), "{line}");
        assert!(line.contains("avoided 3.000 utility"), "{line}");
    }

    #[test]
    fn delta_json_matches_the_trace_schema() {
        let report = CounterfactualRun::new("utility", Direction::Maximize, toy_outcome)
            .probe(&[InterventionClass::CommsRetry]);
        let d = report.delta(InterventionClass::CommsRetry).expect("probed");
        let j = d.to_json(&report.metric);
        for key in [
            "class",
            "metric",
            "factual",
            "counterfactual",
            "benefit",
            "events",
            "anchor_tick",
            "anchor_action",
            "log_dropped",
            "truncated",
        ] {
            assert!(j.get(key).is_some(), "missing key {key}");
        }
        assert_eq!(j.get("class").and_then(Json::as_str), Some("comms-retry"));
    }
}
