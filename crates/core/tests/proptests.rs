//! Property-based tests for the self-awareness framework's core data
//! structures and learners.

use proptest::prelude::*;
use selfaware::knowledge::KnowledgeBase;
use selfaware::models::bandit::{Bandit, EpsilonGreedy, Exp3, SoftmaxBandit, Ucb1};
use selfaware::models::drift::{Cusum, DriftDetector, PageHinkley, WindowDrift};
use selfaware::models::holt::Holt;
use selfaware::models::kalman::Kalman1d;
use selfaware::models::qlearn::QLearner;
use selfaware::models::{Forecaster, OnlineModel};
use selfaware::sensors::{Percept, Scope};
use simkernel::{SeedTree, Tick};

proptest! {
    #[test]
    fn knowledge_base_window_is_bounded(
        capacity in 1usize..64,
        n in 0u64..500,
    ) {
        let mut kb = KnowledgeBase::new(capacity);
        for t in 0..n {
            kb.absorb(&Percept::new("s", t as f64, Scope::Public, Tick(t)));
        }
        if n > 0 {
            let h = kb.history("s").unwrap();
            prop_assert!(h.len() <= capacity);
            prop_assert_eq!(h.stats().count(), n);
            prop_assert_eq!(kb.last("s"), Some((n - 1) as f64));
            // The window holds exactly the most recent values.
            let vals = h.values();
            let expected: Vec<f64> = (n.saturating_sub(capacity as u64)..n)
                .map(|x| x as f64)
                .collect();
            prop_assert_eq!(vals, expected);
        }
    }

    #[test]
    fn bandit_estimates_stay_in_reward_hull(
        rewards in proptest::collection::vec(0.0f64..1.0, 1..200),
        seed in any::<u64>(),
    ) {
        // Feed arbitrary rewards; value estimates must remain within
        // the convex hull of observed rewards (plus the 0 prior).
        let mut eg = EpsilonGreedy::new(3, 0.3, None);
        let mut ucb = Ucb1::new(3, 1.4);
        let mut sm = SoftmaxBandit::new(3, 0.5, 0.2);
        let mut rng = SeedTree::new(seed).rng("b");
        for &r in &rewards {
            for b in [&mut eg as &mut dyn Bandit, &mut ucb, &mut sm] {
                let arm = b.select(&mut rng);
                b.update(arm, r);
            }
        }
        for b in [&eg as &dyn Bandit, &ucb, &sm] {
            for arm in 0..3 {
                let v = b.expected(arm);
                prop_assert!((-1e-9..=1.0 + 1e-9).contains(&v), "estimate {v}");
            }
            prop_assert!(b.best_arm() < 3);
        }
    }

    #[test]
    fn exp3_preferences_form_distribution(
        pulls in 1u32..300,
        gamma in 0.01f64..1.0,
        seed in any::<u64>(),
    ) {
        let mut b = Exp3::new(4, gamma);
        let mut rng = SeedTree::new(seed).rng("e");
        for i in 0..pulls {
            let arm = b.select(&mut rng);
            b.update(arm, f64::from(i % 2));
        }
        let total: f64 = (0..4).map(|a| b.expected(a)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn qlearner_values_bounded_by_reward_bound(
        transitions in proptest::collection::vec((0usize..3, 0usize..2, 0.0f64..1.0, 0usize..3), 1..300),
        gamma in 0.0f64..0.95,
    ) {
        let mut q = QLearner::new(3, 2, 0.5, gamma, 0.1);
        for &(s, a, r, s2) in &transitions {
            q.update(s, a, r, s2);
        }
        // With rewards in [0,1], values are bounded by 1/(1-γ).
        let bound = 1.0 / (1.0 - gamma) + 1e-6;
        for s in 0..3 {
            for a in 0..2 {
                let v = q.q_value(s, a);
                prop_assert!((0.0 - 1e-9..=bound).contains(&v), "q {v} bound {bound}");
            }
        }
    }

    #[test]
    fn kalman_estimate_in_measurement_hull(
        zs in proptest::collection::vec(-1e3f64..1e3, 1..100),
        q in 0.0f64..10.0,
        r in 0.01f64..10.0,
    ) {
        let mut k = Kalman1d::new(q, r);
        for &z in &zs {
            k.observe(z);
        }
        // The estimate is a convex combination of the measurements and
        // the prior mean (0), so the hull must include 0.
        let lo = zs.iter().cloned().fold(0.0f64, f64::min);
        let hi = zs.iter().cloned().fold(0.0f64, f64::max);
        let est = k.forecast().unwrap();
        prop_assert!(est >= lo - 1e-6 && est <= hi + 1e-6);
        prop_assert!(k.variance() >= 0.0);
    }

    #[test]
    fn holt_fits_any_affine_signal_exactly(
        intercept in -100.0f64..100.0,
        slope in -10.0f64..10.0,
    ) {
        let mut m = Holt::new(0.9, 0.9);
        for t in 0..200 {
            m.observe(intercept + slope * f64::from(t));
        }
        let truth = intercept + slope * 200.0;
        prop_assert!((m.forecast().unwrap() - truth).abs() < 1e-3 * (1.0 + truth.abs()));
    }

    #[test]
    fn detectors_quiet_on_constant_streams(
        level in -100.0f64..100.0,
        n in 10usize..500,
    ) {
        let mut ph = PageHinkley::new(0.05, 10.0);
        let mut cu = Cusum::new(0.25, 8.0);
        let mut wd = WindowDrift::new(8, 4.0);
        for _ in 0..n {
            prop_assert!(!ph.observe(level));
            prop_assert!(!cu.observe(level));
            prop_assert!(!wd.observe(level));
        }
        prop_assert_eq!(ph.detections() + cu.detections() + wd.detections(), 0);
    }

    #[test]
    fn detectors_catch_large_steps(
        level in -10.0f64..10.0,
        jump in 5.0f64..50.0,
        up in any::<bool>(),
    ) {
        let shift = if up { jump } else { -jump };
        let mut ph = PageHinkley::new(0.05, 10.0);
        let mut wd = WindowDrift::new(8, 4.0);
        for _ in 0..100 {
            ph.observe(level);
            wd.observe(level);
        }
        let mut ph_fired = false;
        let mut wd_fired = false;
        for _ in 0..100 {
            ph_fired |= ph.observe(level + shift);
            wd_fired |= wd.observe(level + shift);
        }
        prop_assert!(ph_fired, "page-hinkley missed a {shift} step");
        prop_assert!(wd_fired, "window drift missed a {shift} step");
    }

    #[test]
    fn attention_selection_within_budget_and_unique(
        n in 1usize..20,
        budget in 0.0f64..25.0,
        seed in any::<u64>(),
    ) {
        use selfaware::attention::AttentionAllocator;
        let a = AttentionAllocator::new(n, 0.2, 0.1);
        let mut rng = SeedTree::new(seed).rng("a");
        let picked = a.select(budget, Tick(0), &mut rng);
        prop_assert!(picked.len() <= budget as usize);
        prop_assert!(picked.len() <= n);
        let mut uniq = picked.clone();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert_eq!(uniq.len(), picked.len());
        prop_assert!(picked.iter().all(|&i| i < n));
    }

    #[test]
    fn explanation_roundtrips_through_display(
        action in "[a-z]{1,10}",
        utility in -10.0f64..10.0,
    ) {
        use selfaware::explain::Explanation;
        let e = Explanation::new(Tick(1), action.clone()).expecting(utility);
        let s = e.to_string();
        prop_assert!(s.contains(&action));
        prop_assert!(s.contains("chose"));
    }
}
